"""Benchmark regenerating Figure 6: response times vs rho_l at rho_s = 1.5
(Coxian longs, C^2 = 8).

Reproduction targets: shorts -- CS-ID hits its stability asymptote near
rho_l ~ 0.135 while CS-CQ survives to rho_l = 0.5, so CS-CQ "appears far
superior"; Dedicated is unstable everywhere.  Longs -- stable for all
rho_l < 1 under every policy; cycle stealing barely penalizes them except
in case (c) (shorts 10x longer), where the penalty shows at low rho_l and
vanishes at high rho_l ("the short jobs can't get in to steal").
"""

import numpy as np

from repro.experiments import figure6_panels, format_panel

from _util import save_result


def bench_figure6(benchmark):
    panels = benchmark.pedantic(figure6_panels, rounds=1, iterations=1)
    assert len(panels) == 6

    shorts_a = panels[0]
    cs_id = shorts_a.by_label("CS-Immed-Disp").y
    cs_cq = shorts_a.by_label("CS-Central-Q").y
    assert np.isfinite(cs_cq).all()  # stable on the whole plotted range
    assert np.isnan(cs_id[-1])  # CS-ID unstable before rho_l = 0.5

    longs_c = panels[5]
    xs = longs_c.series[0].x
    dedicated = longs_c.by_label("Dedicated").y
    cs_cq_long = longs_c.by_label("CS-Central-Q").y
    low = int(np.argmin(np.abs(xs - 0.2)))
    high = int(np.argmin(np.abs(xs - 0.95)))
    rel_penalty_low = cs_cq_long[low] / dedicated[low] - 1
    rel_penalty_high = cs_cq_long[high] / dedicated[high] - 1
    assert rel_penalty_low > rel_penalty_high  # penalty vanishes at high load

    save_result(
        "figure6_vs_rho_l", "\n\n".join(format_panel(p, chart=True) for p in panels)
    )
