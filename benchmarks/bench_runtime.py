"""Benchmark reproducing the Section 4 runtime claim.

"Whereas generating a plot of simulation results typically requires an
hour, generating the plot analytically requires only a couple seconds."
We time a full analytic sweep (one figure panel) against a single
simulation point of comparable statistical quality and assert the
per-point speedup is at least two orders of magnitude.
"""

from repro.core import CsCqAnalysis, SystemParameters
from repro.experiments import format_table, runtime_comparison
from repro.simulation import simulate

from _util import save_result


def bench_analysis_single_point(benchmark):
    """Latency of one full CS-CQ matrix-analytic solve (both classes)."""
    params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)

    def solve():
        analysis = CsCqAnalysis(params)
        return (
            analysis.mean_response_time_short(),
            analysis.mean_response_time_long(),
        )

    short, long = benchmark(solve)
    assert short > 0 and long > 0


def bench_simulation_single_point(benchmark):
    """Latency of one simulation point (150k measured jobs)."""
    params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
    result = benchmark.pedantic(
        lambda: simulate("cs-cq", params, seed=5, measured_jobs=150_000),
        rounds=1,
        iterations=1,
    )
    assert result.mean_response_short > 0


def bench_runtime_ratio(benchmark):
    comparison = benchmark.pedantic(runtime_comparison, rounds=1, iterations=1)
    assert comparison.speedup_per_point > 100.0
    save_result(
        "runtime_comparison",
        format_table(
            ["quantity", "value"],
            [
                ["analytic sweep points", comparison.analysis_points],
                ["analytic sweep seconds", comparison.analysis_seconds],
                ["simulation points", comparison.simulation_points],
                ["simulation seconds", comparison.simulation_seconds],
                ["per-point speedup", comparison.speedup_per_point],
            ],
            float_fmt="{:.4g}",
        )
        + "\n(paper: 'an hour' of simulation vs 'a couple seconds' of analysis)",
    )
