"""Ablation benchmark: busy-period moment-matching order (1 vs 2 vs 3).

The paper matches three moments and claims that "provides sufficient
accuracy" (Section 2.2).  Against the exact (generously truncated) 2D
chain for exponential sizes we verify 3-moment matching is the most
accurate and stays within the paper's ~2% envelope.
"""

from repro.experiments import format_moment_ablation, moment_matching_ablation

from _util import save_result


def bench_moment_matching_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: moment_matching_ablation(
            [0.5, 0.9, 1.2], rho_l=0.5, max_short=220, max_long=60
        ),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.rel_error(3) < 0.02
        # 3-moment matching beats 1-moment matching at every load.
        assert row.rel_error(3) < row.rel_error(1)
    save_result(
        "ablation_moment_matching",
        format_moment_ablation(rows)
        + "\n(paper: 'three moments provide sufficient accuracy')",
    )
