"""Benchmark regenerating Figure 5: Figure 4's setup with Coxian longs
(squared coefficient of variation 8).

Reproduction targets: the shorts' benefit is essentially unchanged from
Figure 4; longs have higher absolute response times but a similar absolute
increase, so the *percentage* penalty shrinks (case (a): < 10% CS-ID,
< 5% CS-CQ at rho_s = 1; case (b): < 1% under both).
"""

import numpy as np

from repro.experiments import figure5_panels, format_panel

from _util import save_result


def bench_figure5(benchmark):
    panels = benchmark.pedantic(figure5_panels, rounds=1, iterations=1)
    assert len(panels) == 6

    longs_a = panels[1]
    xs = longs_a.series[0].x
    idx = int(np.argmin(np.abs(xs - 1.0)))
    dedicated_ref = 5.5  # M/G/1, rho_l=.5, E[X^2]=9
    cs_id_penalty = longs_a.by_label("CS-Immed-Disp").y[idx] / dedicated_ref - 1
    cs_cq_penalty = longs_a.by_label("CS-Central-Q").y[idx] / dedicated_ref - 1
    assert cs_id_penalty < 0.10
    assert cs_cq_penalty < 0.05

    longs_b = panels[3]
    idx_b = int(np.argmin(np.abs(longs_b.series[0].x - 1.0)))
    dedicated_b = longs_b.by_label("Dedicated").y
    finite = np.isfinite(dedicated_b)
    ded_ref_b = dedicated_b[finite][-1]  # constant in rho_s
    assert longs_b.by_label("CS-Immed-Disp").y[idx_b] / ded_ref_b - 1 < 0.01
    assert longs_b.by_label("CS-Central-Q").y[idx_b] / ded_ref_b - 1 < 0.01

    save_result(
        "figure5_coxian_longs", "\n\n".join(format_panel(p, chart=True) for p in panels)
    )
