"""Benchmark regenerating Figure 4: response times vs rho_s, exponential
sizes, rho_l = 0.5, cases (a) 1/1, (b) 1/10, (c) 10/1.

Reproduction targets (paper Section 5): shorts gain order(s) of magnitude
over Dedicated at high rho_s; as rho_s -> 1 shorts see ~4 (CS-ID) and ~3
(CS-CQ); long penalty at rho_s = 1 is ~25% (CS-ID) and ~10% (CS-CQ) in
case (a), dropping to ~2.5%/1% in case (b) and growing (but staying
dominated by the shorts' benefit) in case (c).
"""

import time

import numpy as np

from repro.experiments import figure4_panels, format_panel
from repro.perf import sweep_cache

from _util import record_bench, save_result


def bench_figure4(benchmark):
    start = time.perf_counter()
    panels = benchmark.pedantic(figure4_panels, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    record_bench("bench_figure4", wall)
    assert len(panels) == 6

    shorts_a, longs_a = panels[0], panels[1]
    xs = shorts_a.series[0].x
    at = lambda arr, x: float(arr[np.argmin(np.abs(xs - x))])  # noqa: E731

    cs_cq_short = shorts_a.by_label("CS-Central-Q").y
    cs_id_short = shorts_a.by_label("CS-Immed-Disp").y
    assert abs(at(cs_cq_short, 1.0) - 3.0) < 0.7  # "3 under CS-CQ"
    assert abs(at(cs_id_short, 1.0) - 4.0) < 0.5  # "4 under CS-ID"

    cs_cq_long = longs_a.by_label("CS-Central-Q").y
    cs_id_long = longs_a.by_label("CS-Immed-Disp").y
    assert abs(at(cs_id_long, 1.0) / 2.0 - 1.25) < 0.01  # 25% penalty
    assert abs(at(cs_cq_long, 1.0) / 2.0 - 1.10) < 0.04  # ~10% penalty

    save_result(
        "figure4_exponential", "\n\n".join(format_panel(p, chart=True) for p in panels)
    )


def bench_figure4_higher_rho_l(benchmark):
    """The paper's follow-up: "Other experiments, at higher values of
    rho_l, show behavior largely similar ... except that both the benefits
    to short jobs and the penalty to long jobs are reduced ... Nevertheless,
    the performance improvement ... is still orders of magnitude for high
    rho_s."  Checked at rho_l = 0.8."""
    # One sweep-cache scope spanning all four sweeps below: the nested
    # per-figure scopes join it, so the repeated rho_l = 0.5 comparison
    # sweep is served from the cache instead of re-solved.
    with sweep_cache():
        start = time.perf_counter()
        panels = benchmark.pedantic(
            lambda: figure4_panels(rho_l=0.8, rho_s_values=[0.4, 0.8, 0.99, 1.1]),
            rounds=1,
            iterations=1,
        )
        shorts_a, longs_a = panels[0], panels[1]
        xs = shorts_a.series[0].x
        at = lambda arr, x: float(arr[np.argmin(np.abs(xs - x))])  # noqa: E731

        cs_cq = shorts_a.by_label("CS-Central-Q").y
        dedicated = shorts_a.by_label("Dedicated").y
        # Still an order of magnitude approaching the Dedicated asymptote ...
        assert at(dedicated, 0.99) / at(cs_cq, 0.99) > 10.0
        # ... but a smaller benefit than at rho_l = 0.5 at moderate load.
        panels_half = figure4_panels(rho_l=0.5, rho_s_values=[0.8])
        benefit_half = panels_half[0].by_label("Dedicated").y[0] - panels_half[
            0
        ].by_label("CS-Central-Q").y[0]
        benefit_high = at(dedicated, 0.8) - at(cs_cq, 0.8)
        assert benefit_high < benefit_half
        # Long penalty also shrinks (fewer idle cycles stolen).
        longs_half = figure4_panels(rho_l=0.5, rho_s_values=[0.8])[1]
        penalty_half = (
            longs_half.by_label("CS-Central-Q").y[0]
            / longs_half.by_label("Dedicated").y[0]
        )
        penalty_high = at(longs_a.by_label("CS-Central-Q").y, 0.8) / at(
            longs_a.by_label("Dedicated").y, 0.8
        )
        assert penalty_high < penalty_half
        wall = time.perf_counter() - start
    record_bench("bench_figure4_higher_rho_l", wall)

    save_result(
        "figure4_rho_l_08", "\n\n".join(format_panel(p, chart=True) for p in panels[:2])
    )
