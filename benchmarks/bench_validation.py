"""Benchmark regenerating the Section 4 validation study.

Two parts, as in the paper: (1) limiting-case comparisons against exact
formulas ("perfect" agreement); (2) analysis vs simulation over a load
grid — the paper reports errors "under 2% in almost all cases, and never
over 5%", the rare large ones "only at very high load".
"""

from repro.experiments import (
    analysis_vs_simulation,
    format_table,
    format_validation_rows,
    limiting_cases,
)
from repro.workloads import COXIAN_LONG_CASES, EXPONENTIAL_CASES

from _util import save_result


def bench_limiting_cases(benchmark):
    results = benchmark.pedantic(limiting_cases, rounds=1, iterations=1)
    for result in results:
        assert result.rel_error < 1e-3, result.name
    save_result(
        "validation_limiting_cases",
        format_table(
            ["limiting case", "our analysis", "exact", "rel err"],
            [[r.name, r.ours, r.exact, f"{r.rel_error:.2e}"] for r in results],
        ),
    )


def bench_analysis_vs_simulation(benchmark):
    cases = [EXPONENTIAL_CASES[0], EXPONENTIAL_CASES[1], COXIAN_LONG_CASES[0]]

    def run():
        # Grid chosen so no policy sits closer than ~7% to its stability
        # boundary: right at a boundary neither a finite simulation nor a
        # three-moment busy-period match pins the diverging mean (the
        # paper's own caveat — big deviations "only at very high load").
        return analysis_vs_simulation(
            cases,
            rho_s_values=[0.5, 0.9, 1.15],
            rho_l_values=[0.3, 0.5],
            measured_jobs=400_000,
            warmup_jobs=40_000,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rows, "no stable points simulated"
    errors = [r.rel_error for r in rows]
    # Paper envelope ("under 2% in almost all cases, never over 5%"), with
    # slack for the finite simulation length here.
    assert max(errors) < 0.06
    assert sum(e < 0.025 for e in errors) / len(errors) > 0.75
    save_result("validation_vs_simulation", format_validation_rows(rows))
