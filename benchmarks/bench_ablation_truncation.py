"""Ablation benchmark: truncating the 2D chain vs busy-period transitions.

Paper Section 1: "truncation of the Markov chain is possible, [but] the
errors introduced by ignoring portions of the state space (infinite in 2D)
can be quite significant, especially at higher traffic intensities.  Thus
truncation is neither sufficiently accurate nor robust."  We reproduce
that: at high load a tight truncation is badly biased, convergence in the
truncation bound is slow, and the state space grows multiplicatively while
the QBD stays at a handful of phases per level.
"""

from repro.core import CsCqAnalysis, SystemParameters
from repro.experiments import format_truncation_ablation, truncation_ablation

from _util import save_result


def bench_truncation_ablation(benchmark):
    params = SystemParameters.from_loads(rho_s=1.35, rho_l=0.6)
    analysis = CsCqAnalysis(params)
    qbd_value = analysis.mean_response_time_short()
    qbd_states = analysis.solution.r_matrix.shape[0]

    rows = benchmark.pedantic(
        lambda: truncation_ablation(params, [5, 10, 20, 40, 80], max_short=220),
        rounds=1,
        iterations=1,
    )

    values = [r.mean_response_short for r in rows]
    # Truncation systematically under-estimates and approaches from below.
    assert values == sorted(values)
    assert values[0] < 0.9 * values[-1]  # tight truncation is badly biased
    # The generous truncation agrees with the QBD analysis within ~2%.
    assert abs(qbd_value / values[-1] - 1) < 0.02
    # State-space cost: thousands of states vs a handful of phases.
    assert rows[-1].n_states > 100 * qbd_states

    save_result(
        "ablation_truncation",
        format_truncation_ablation(rows, qbd_value, qbd_states),
    )
