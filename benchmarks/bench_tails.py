"""Extension benchmark: response-time *tails* under cycle stealing.

The paper evaluates means; operators usually also care about percentiles.
This study uses the simulator's sample collection to compare p50/p95/p99
response times of Dedicated vs CS-CQ, answering two questions the paper's
framing raises:

* the shorts' benefit is not a mean-only artifact — their whole
  distribution shifts down;
* the longs' penalty stays mild even at the 99th percentile (the setup a
  long can suffer is bounded by one short's residual, so the long tail is
  dominated by their own service/queueing variability).
"""

from repro.core import SystemParameters
from repro.experiments import format_table
from repro.simulation import simulate

from _util import save_result


def _run():
    params = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
    out = {}
    for policy in ("dedicated", "cs-cq"):
        result = simulate(
            policy,
            params,
            seed=83,
            warmup_jobs=40_000,
            measured_jobs=400_000,
            keep_samples=True,
        )
        out[policy] = {
            "short": [result.percentile_short(q) for q in (50, 95, 99)],
            "long": [result.percentile_long(q) for q in (50, 95, 99)],
        }
    return out


def bench_response_time_tails(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)
    ded, cs = data["dedicated"], data["cs-cq"]
    # Shorts improve at every percentile, by a growing absolute margin.
    for i in range(3):
        assert cs["short"][i] < ded["short"][i]
    # Longs' p99 penalty stays under 30% (mean penalty was ~10%).
    assert cs["long"][2] < 1.30 * ded["long"][2]

    rows = []
    for cls in ("short", "long"):
        for i, q in enumerate((50, 95, 99)):
            rows.append(
                [f"{cls} p{q}", ded[cls][i], cs[cls][i], cs[cls][i] / ded[cls][i]]
            )
    save_result(
        "response_time_tails",
        format_table(
            ["percentile", "Dedicated", "CS-CQ", "ratio"], rows
        )
        + "\n(rho_s=0.9, rho_l=0.5, exponential sizes; simulated, 400k jobs)",
    )
