"""Benchmark regenerating the Section 6 M/G/2/SJF discussion.

"It turns out that from the perspective of both the short and long jobs,
M/G/2/SJF sometimes outperforms our cycle stealing algorithms and
sometimes does worse, depending on rho_s, rho_l, and the job size
distributions."  We pick load points on both sides of the flip and assert
each side occurs.
"""

from repro.experiments import format_mg2sjf_rows, mg2sjf_comparison
from repro.workloads import case_by_name

from _util import save_result


def bench_mg2sjf(benchmark):
    # Case (b) (longs 10x shorts) at moderate load: SJF's two prioritized
    # servers shine.  Case (a) near shorts' saturation: the dedicated short
    # server protects shorts where SJF can strand them behind two longs.
    cases = [case_by_name("a"), case_by_name("b", coxian_longs=True)]
    load_points = [(0.8, 0.6), (1.2, 0.4), (1.4, 0.3)]

    rows = benchmark.pedantic(
        lambda: mg2sjf_comparison(cases, load_points, measured_jobs=200_000),
        rounds=1,
        iterations=1,
    )
    wins = [r.sjf_wins_short for r in rows]
    assert any(wins) and not all(wins)  # sometimes better, sometimes worse
    save_result("mg2sjf_comparison", format_mg2sjf_rows(rows))
