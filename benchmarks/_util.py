"""Helpers shared by the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it, and persists
the rendered text under ``results/`` so the regenerated rows survive the
pytest run (stdout is captured by default).
"""

from __future__ import annotations

from pathlib import Path

from repro.orchestration.checkpoint import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a rendered table and persist it to ``results/<name>.txt``.

    The write is atomic (temp file in the same directory + ``os.replace``)
    so an interrupted benchmark run can never leave a truncated or
    corrupted table where a previously regenerated one stood.
    """
    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
    print(f"\n{text}\n[saved to results/{name}.txt]")
