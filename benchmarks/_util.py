"""Helpers shared by the benchmark harness.

Each benchmark regenerates one paper table/figure, prints it, and persists
the rendered text under ``results/`` so the regenerated rows survive the
pytest run (stdout is captured by default).
"""

from __future__ import annotations

from pathlib import Path

from repro.orchestration.checkpoint import atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a rendered table and persist it to ``results/<name>.txt``.

    The write is atomic (temp file in the same directory + ``os.replace``)
    so an interrupted benchmark run can never leave a truncated or
    corrupted table where a previously regenerated one stood.
    """
    atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
    print(f"\n{text}\n[saved to results/{name}.txt]")


def record_bench(name: str, wall_time: float, extra: "dict | None" = None) -> None:
    """Persist a pytest-benchmark measurement as ``results/BENCH_<name>.json``.

    Bridges the pytest-benchmark scripts into the same trajectory format
    as ``python -m repro bench`` (see :mod:`repro.perf.bench`): wall time,
    machine calibration, and any benchmark-specific ``extra`` payload —
    e.g. the pre-PR baseline a speedup is measured against.
    """
    from repro.perf.bench import calibration_time, write_bench_json

    # The pytest modules pass their own module-ish names ("bench_figure4");
    # strip the prefix so the record lands under the same canonical name
    # the ``python -m repro bench`` harness and the regression gate use
    # ("BENCH_figure4.json", not a stale "BENCH_bench_figure4.json" twin).
    if name.startswith("bench_"):
        name = name[len("bench_") :]
    payload = {
        "name": name,
        "quick": False,
        "wall_time": float(wall_time),
        "wall_times": [float(wall_time)],
        "repeat": 1,
        "cache": None,
        "solver": None,
        "calibration": calibration_time(),
    }
    if extra:
        payload.update(extra)
    path = write_bench_json(payload, RESULTS_DIR)
    print(f"[bench recorded to results/{path.name}]")
