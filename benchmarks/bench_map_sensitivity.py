"""Extension benchmark: cycle stealing under bursty (MAP) arrivals.

The paper's analysis assumes Poisson arrivals but notes the approach "can
be generalized to a MAP".  This study quantifies, by simulation, how the
cycle-stealing benefit behaves when the *short* arrivals become bursty
(an on/off MMPP with the same mean rate): response times inflate for all
policies, but the *ordering* — CS-CQ < CS-ID < Dedicated — survives, i.e.
the paper's qualitative conclusions are not an artifact of Poisson
arrivals.
"""

from repro.core import SystemParameters
from repro.experiments import format_table
from repro.simulation import JobClass
from repro.simulation.policies import POLICIES
from repro.workloads import mmpp2

from _util import save_result


def _run_grid():
    params = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
    burst_levels = {
        "poisson": None,
        "mild burst": mmpp2(1.35, 0.45, 0.3, 0.3),  # mean rate 0.9
        "heavy burst": mmpp2(1.8, 0.0, 0.2, 0.2),  # on/off, mean rate 0.9
    }
    rows = []
    for label, process in burst_levels.items():
        arrival = {JobClass.SHORT: process} if process else {}
        values = {}
        for policy in ("dedicated", "cs-id", "cs-cq"):
            sim = POLICIES[policy](
                params,
                seed=29,
                warmup_jobs=30_000,
                measured_jobs=250_000,
                arrival_processes=arrival,
            ).run()
            values[policy] = sim.mean_response_short
        rows.append([label, values["dedicated"], values["cs-id"], values["cs-cq"]])
    return rows


def bench_map_sensitivity(benchmark):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    for _, dedicated, cs_id, cs_cq in rows:
        assert cs_cq < cs_id < dedicated  # the paper's ordering survives
    # Burstiness hurts in absolute terms.
    assert rows[-1][3] > rows[0][3]
    save_result(
        "map_burstiness_sensitivity",
        format_table(
            ["short arrivals", "Dedicated T_S", "CS-ID T_S", "CS-CQ T_S"], rows
        )
        + "\n(rho_s=0.9, rho_l=0.5; same mean short rate in every row)",
    )
