"""Extension benchmark: sensitivity to the exponential-shorts assumption.

The paper's chain assumes exponential short service "for simplicity" and
calls the phase-type generalization straightforward; this study implements
it (``CsCqPhAnalysis``) and quantifies both (a) how far the published
exponential-shorts model drifts when the real shorts are not exponential,
and (b) that the generalized chain tracks simulation across short-size
variabilities.
"""

from repro.core import CsCqAnalysis, CsCqPhAnalysis, SystemParameters
from repro.experiments import format_table
from repro.simulation import simulate

from _util import save_result


def _run():
    rows = []
    for scv in (0.5, 1.0, 2.0, 4.0):
        params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5, short_scv=scv)
        exp_model = CsCqAnalysis(
            SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        ).mean_response_time_short()
        ph_model = CsCqPhAnalysis(params).mean_response_time_short()
        sim = simulate(
            "cs-cq", params, seed=62, warmup_jobs=60_000, measured_jobs=900_000
        ).mean_response_short
        rows.append([f"{scv:g}", exp_model, ph_model, sim])
    return rows


def bench_ph_shorts(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for scv_label, exp_model, ph_model, sim in rows:
        ph_err = abs(ph_model / sim - 1)
        exp_err = abs(exp_model / sim - 1)
        # The generalized chain tracks simulation; its error grows mildly
        # with short-size variability (the entry-averaged B_{N+1} interval
        # is a new approximation on top of the paper's two) but stays in
        # the single digits where the fixed exponential-shorts model is
        # off by tens of percent.
        assert ph_err < 0.07
        if scv_label != "1":  # away from exponential, PH must win
            assert ph_err < exp_err
    save_result(
        "ph_shorts_sensitivity",
        format_table(
            [
                "short scv",
                "exp-shorts model T_S",
                "PH-shorts model T_S",
                "simulated T_S",
            ],
            rows,
        )
        + "\n(rho_s=1.0, rho_l=0.5; exponential-shorts model held fixed by design)",
    )
