"""Benchmark reproducing the introduction's prior-work narrative.

The paper's Section 1 survey makes three empirical claims about earlier
task-assignment policies, which this study regenerates by simulation:

1. "When the job processing requirements come from an exponential
   distribution ... the M/G/k policy has been proven to minimize mean
   response time" — and Round-Robin "neither maximizes utilization ...
   nor minimizes mean response time".
2. "[Under] higher variability ... Dedicated far outperforms these other
   policies", because "waiting behind the long jobs is very costly".
3. "Even when the job size is not known ... TAGS works almost as well
   [and] significantly outperforms other policies that do not segregate
   jobs by size" under high variability.
"""

from repro.core import SystemParameters
from repro.distributions import BoundedPareto
from repro.experiments import format_table
from repro.simulation import SimulationResult, simulate
from repro.simulation.policies import TagsSimulation

from _util import save_result

JOBS = dict(warmup_jobs=30_000, measured_jobs=300_000)


def overall_mean(result: SimulationResult) -> float:
    total = result.n_measured_short + result.n_measured_long
    return (
        result.mean_response_short * result.n_measured_short
        + result.mean_response_long * result.n_measured_long
    ) / total


def _run():
    tables = {}

    # (1) exponential, indistinguishable classes.
    exp_params = SystemParameters.from_loads(rho_s=0.8, rho_l=0.8)
    tables["exponential"] = {
        policy: overall_mean(simulate(policy, exp_params, seed=5, **JOBS))
        for policy in ("mgk", "shortest-queue", "round-robin", "dedicated")
    }

    # (2) high variability via the classic bimodal split: longs 10x shorts.
    bimodal = SystemParameters.from_loads(rho_s=0.6, rho_l=0.6, mean_long=10.0)
    tables["bimodal shorts"] = {
        policy: simulate(policy, bimodal, seed=5, **JOBS).mean_response_short
        for policy in ("mgk", "shortest-queue", "round-robin", "dedicated")
    }

    # (3) heavy-tailed unknown sizes: TAGS vs the size-blind policies.
    heavy = BoundedPareto(0.1, 1000.0, 1.1)  # scv ~ 110
    lam = 1.0 / heavy.mean  # rho = 0.5 per host
    heavy_params = SystemParameters(
        lam_s=lam / 2, lam_l=lam / 2, short_service=heavy, long_service=heavy
    )
    heavy_table = {
        policy: overall_mean(simulate(policy, heavy_params, seed=5, **JOBS))
        for policy in ("mgk", "shortest-queue", "round-robin")
    }
    heavy_table["tags (cutoff 5)"] = overall_mean(
        TagsSimulation(heavy_params, seed=5, cutoff=5.0, **JOBS).run()
    )
    tables["heavy-tailed"] = heavy_table
    return tables


def bench_prior_work(benchmark):
    tables = benchmark.pedantic(_run, rounds=1, iterations=1)

    exp = tables["exponential"]
    assert exp["mgk"] < exp["shortest-queue"] < exp["round-robin"]
    assert exp["mgk"] < exp["dedicated"]  # M/G/k wins under exponential

    bim = tables["bimodal shorts"]
    assert bim["dedicated"] < min(bim["mgk"], bim["shortest-queue"], bim["round-robin"])

    heavy = tables["heavy-tailed"]
    assert heavy["tags (cutoff 5)"] < min(
        heavy["mgk"], heavy["shortest-queue"], heavy["round-robin"]
    )

    lines = []
    for name, table in tables.items():
        lines.append(
            format_table(
                [f"policy ({name})", "mean response"],
                [[policy, value] for policy, value in table.items()],
            )
        )
    save_result("prior_work_survey", "\n\n".join(lines))
