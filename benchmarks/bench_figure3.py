"""Benchmark regenerating Figure 3: stability constraint on rho_s.

Reproduction target: Dedicated flat at 1; CS-ID from the golden ratio
(~1.618) at rho_l = 0 down to 1 at rho_l -> 1; CS-CQ the line 2 - rho_l.
"""

import numpy as np

from repro.experiments import figure3_panel, format_panel

from _util import save_result


def bench_figure3(benchmark):
    grid = np.round(np.arange(0.0, 1.0, 0.05), 10)
    panel = benchmark(figure3_panel, grid)

    dedicated = panel.by_label("Dedicated").y
    cs_id = panel.by_label("Immed-Disp").y
    cs_cq = panel.by_label("Central-Q").y
    assert np.all(dedicated == 1.0)
    assert cs_id[0] == pytest_approx((1 + 5**0.5) / 2)
    assert np.all((cs_id > dedicated) & (cs_cq > cs_id))
    assert np.allclose(cs_cq, 2.0 - grid)

    save_result("figure3_stability", format_panel(panel, chart=True))


def pytest_approx(value, rel=1e-9):
    import pytest

    return pytest.approx(value, rel=rel)
