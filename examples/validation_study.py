#!/usr/bin/env python3
"""Section 4 validation, as a runnable study.

Compares the busy-period-transition analysis against (1) exact limiting
cases and (2) the discrete-event simulator across a load grid, printing
the same error summary the paper reports ("under 2% in almost all cases,
and never over 5%").

Run:  python examples/validation_study.py          (full grid, ~2 min)
      python examples/validation_study.py --quick  (reduced grid)
"""

import sys

from repro.experiments import (
    analysis_vs_simulation,
    format_table,
    format_validation_rows,
    limiting_cases,
)
from repro.workloads import COXIAN_LONG_CASES, EXPONENTIAL_CASES


def main() -> None:
    quick = "--quick" in sys.argv

    print("== Limiting cases (paper: 'the validation ... was perfect') ==\n")
    results = limiting_cases()
    print(
        format_table(
            ["limiting case", "ours", "exact", "rel err"],
            [[r.name, r.ours, r.exact, f"{r.rel_error:.2e}"] for r in results],
        )
    )

    print("\n== Analysis vs simulation ==\n")
    if quick:
        cases = [EXPONENTIAL_CASES[0]]
        rho_s_values, rho_l_values, jobs = [0.8, 1.2], [0.5], 80_000
    else:
        cases = list(EXPONENTIAL_CASES) + [COXIAN_LONG_CASES[0]]
        rho_s_values, rho_l_values, jobs = [0.5, 0.9, 1.2], [0.3, 0.6], 250_000
    rows = analysis_vs_simulation(
        cases, rho_s_values, rho_l_values, measured_jobs=jobs
    )
    print(format_validation_rows(rows))


if __name__ == "__main__":
    main()
