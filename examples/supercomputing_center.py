#!/usr/bin/env python3
"""A Table-1-style supercomputing workload, end to end.

The paper's model is motivated by run-to-completion distributed servers
(Xolas, Pleiades, the Cray J90/C90 clusters) whose job sizes are heavy
tailed: many short jobs, a few enormous ones.  This example:

1. generates a synthetic heavy-tailed trace (bounded-Pareto sizes),
2. splits it into short/long classes at a duration cutoff (the way
   duration-limited queue classes split real submissions),
3. fits analytic stand-ins to each class's empirical moments,
4. compares Dedicated / CS-ID / CS-CQ analytically, and
5. *replays the raw trace* (exact bounded-Pareto sizes, exact arrival
   instants) through each policy simulator as a robustness check on the
   fitted model.

Run:  python examples/supercomputing_center.py
"""

import numpy as np

from repro import SystemParameters, UnstableSystemError
from repro.core import CsCqAnalysis, CsIdAnalysis, DedicatedAnalysis
from repro.distributions import Exponential, fit_phase_type
from repro.simulation import simulate_trace
from repro.workloads import TraceSpec, generate_trace, split_by_cutoff


def main() -> None:
    rng = np.random.default_rng(7)
    spec = TraceSpec(
        arrival_rate=12.0,  # jobs per hour
        pareto_alpha=1.3,
        min_size=0.02,  # hours
        max_size=200.0,
        cutoff=1.0,  # the "0-1 hour" queue class boundary
    )
    trace = generate_trace(spec, n_jobs=200_000, rng=rng)
    short_stats, long_stats = split_by_cutoff(trace)

    print("Synthetic supercomputing trace (bounded-Pareto sizes):")
    print(f"  jobs: {trace.n_jobs}, short fraction: {trace.is_short.mean():.1%}")
    print(f"  short class: mean {short_stats['mean']:.3f} h, C^2 {short_stats['scv']:.2f}")
    print(f"  long class:  mean {long_stats['mean']:.3f} h, C^2 {long_stats['scv']:.2f}")
    print(f"  per-host loads: rho_s = {trace.load_short:.3f}, rho_l = {trace.load_long:.3f}")

    # Analytic stand-ins: exponential shorts (chain assumption) matched on
    # the mean; three-moment phase-type longs (the paper's Coxian step).
    sizes_long = trace.sizes[~trace.is_short]
    long_moments = tuple(float(np.mean(sizes_long**k)) for k in (1, 2, 3))
    long_dist = fit_phase_type(*long_moments)
    lam_s = spec.arrival_rate * trace.is_short.mean()
    lam_l = spec.arrival_rate * (1 - trace.is_short.mean())
    params = SystemParameters(
        lam_s=lam_s,
        lam_l=lam_l,
        short_service=Exponential.from_mean(short_stats["mean"]),
        long_service=long_dist,
    )
    print(f"\nAnalytic model: {params.describe()}\n")

    print(f"{'policy':12s} {'E[T_short] (h)':>15s} {'E[T_long] (h)':>15s}")
    for name, cls in (
        ("Dedicated", DedicatedAnalysis),
        ("CS-ID", CsIdAnalysis),
        ("CS-CQ", CsCqAnalysis),
    ):
        try:
            analysis = cls(params)
            print(
                f"{name:12s} {analysis.mean_response_time_short():15.3f} "
                f"{analysis.mean_response_time_long():15.3f}"
            )
        except UnstableSystemError as exc:
            print(f"{name:12s} {'unstable':>15s}  ({exc})")

    print("\nRaw trace replay (exact heavy-tailed sizes and arrival instants):")
    for policy in ("dedicated", "cs-id", "cs-cq"):
        result = simulate_trace(policy, trace, warmup_jobs=20_000)
        print(
            f"{policy:12s} {result.mean_response_short:15.3f} "
            f"{result.mean_response_long:15.3f}"
        )

    print(
        "\nReading: with heavy-tailed sizes the long class hogs its host in "
        "bursts, leaving\nlong idle stretches — exactly the cycles the "
        "stealing policies hand to the shorts."
    )


if __name__ == "__main__":
    main()
