#!/usr/bin/env python3
"""Heterogeneous hosts: the paper's conclusion, implemented.

"We have also assumed homogeneous hosts.  This assumption was simply made
for ease of exposition.  This work may be extended to hosts of different
speeds."  This example does that extension end to end for CS-ID: how much
donor-host speed does it take to compensate a given long load, and what
does a *slow* donor do to the value of cycle stealing?

Run:  python examples/heterogeneous_hosts.py
"""

from repro.core import CsIdAnalysis, DedicatedAnalysis, SystemParameters
from repro.simulation import simulate


def main() -> None:
    params = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
    print(f"System: {params.describe()}")
    print("Sweeping the donor (long) host's speed under CS-ID:\n")
    print(
        f"{'donor speed':>12s} {'E[T_short] ana':>15s} {'E[T_short] sim':>15s} "
        f"{'E[T_long] ana':>14s} {'E[T_long] sim':>14s}"
    )
    for speed in (0.6, 0.8, 1.0, 1.5, 2.0):
        analysis = CsIdAnalysis(params, host_speeds=(1.0, speed))
        sim = simulate(
            "cs-id", params, seed=31, warmup_jobs=20_000, measured_jobs=200_000,
            host_speeds=(1.0, speed),
        )
        print(
            f"{speed:12.1f} {analysis.mean_response_time_short():15.3f} "
            f"{sim.mean_response_short:15.3f} "
            f"{analysis.mean_response_time_long():14.3f} "
            f"{sim.mean_response_long:14.3f}"
        )

    dedicated = DedicatedAnalysis(params)
    print(
        f"\nDedicated baseline (homogeneous): E[T_short] = "
        f"{dedicated.mean_response_time_short():.3f}, E[T_long] = "
        f"{dedicated.mean_response_time_long():.3f}"
    )
    print(
        "Reading: even a donor at 60% speed still beats Dedicated for the "
        "shorts — stolen\ncycles are valuable in proportion to how often "
        "the donor is idle, not just how fast it is."
    )


if __name__ == "__main__":
    main()
