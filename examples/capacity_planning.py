#!/usr/bin/env python3
"""Capacity planning with cycle stealing.

A service operator runs two hosts with a long-job load of ``rho_l`` and a
target mean response time for short jobs.  How much short-job load can
each task-assignment policy sustain?  This is the practical payoff of
Theorem 1 + the response-time analysis: cycle stealing extends the usable
capacity region, and CS-CQ extends it furthest.

Run:  python examples/capacity_planning.py
"""

from repro import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    UnstableSystemError,
    cs_cq_max_rho_s,
    cs_id_max_rho_s,
)


def max_load_for_target(analysis_cls, rho_l: float, target_t_short: float,
                        upper: float) -> float:
    """Largest rho_s with E[T_short] <= target, by bisection."""

    def response(rho_s: float) -> float:
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        try:
            return analysis_cls(params).mean_response_time_short()
        except UnstableSystemError:
            return float("inf")

    lo, hi = 0.0, upper
    if response(hi - 1e-6) <= target_t_short:
        return hi
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if response(mid) <= target_t_short:
            lo = mid
        else:
            hi = mid
    return lo


def main() -> None:
    rho_l = 0.5
    print(f"Long-job load rho_l = {rho_l}; exponential sizes, mean 1.")
    print("Maximum sustainable short-job load rho_s per response-time target:\n")
    targets = (2.0, 4.0, 8.0)
    print(f"{'policy':12s}" + "".join(f"  T_S<={t:<6g}" for t in targets) + "  hard limit")
    rows = (
        ("Dedicated", DedicatedAnalysis, 1.0),
        ("CS-ID", CsIdAnalysis, cs_id_max_rho_s(rho_l)),
        ("CS-CQ", CsCqAnalysis, cs_cq_max_rho_s(rho_l)),
    )
    for name, cls, hard_limit in rows:
        capacities = [
            max_load_for_target(cls, rho_l, target, hard_limit) for target in targets
        ]
        print(
            f"{name:12s}"
            + "".join(f"  {c:9.3f}" for c in capacities)
            + f"  {hard_limit:9.3f}"
        )

    print(
        "\nReading: at any response-time target, CS-CQ sustains the most "
        "short-job load;\nthe hard limits are Theorem 1's stability "
        "boundaries (1, ~1.28, 1.5 at rho_l = 0.5)."
    )


if __name__ == "__main__":
    main()
