#!/usr/bin/env python3
"""Response-time *distributions* under cycle stealing (beyond the paper).

The paper reports means.  This example shows the whole picture at the
headline load point (rho_s = 1.0, rho_l = 0.5):

* short jobs: simulated percentiles under CS-CQ vs what Dedicated would
  need (it is unstable here — so the comparison is at rho_s = 0.9);
* long jobs: the *analytic* response-time CDF from the level-crossing
  transform of the M/G/1-with-setup queue, cross-checked against
  simulated percentiles.

Run:  python examples/response_distributions.py
"""

from repro.core import CsCqAnalysis, SystemParameters
from repro.queueing import Mg1Queue
from repro.simulation import simulate


def main() -> None:
    params = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5)
    print(f"System: {params.describe()}\n")
    print("Simulating Dedicated and CS-CQ with sample collection ...")
    sims = {
        policy: simulate(
            policy, params, seed=101, warmup_jobs=30_000, measured_jobs=300_000,
            keep_samples=True,
        )
        for policy in ("dedicated", "cs-cq")
    }

    print("\nShort jobs (simulated percentiles):")
    print(f"{'percentile':>10s} {'Dedicated':>11s} {'CS-CQ':>9s} {'ratio':>7s}")
    for q in (50, 90, 95, 99):
        d = sims["dedicated"].percentile_short(q)
        c = sims["cs-cq"].percentile_short(q)
        print(f"{q:>9d}% {d:11.3f} {c:9.3f} {c / d:7.3f}")

    print("\nLong jobs — analytic CDF (level-crossing transform) vs simulation:")
    analysis = CsCqAnalysis(params)
    dedicated_long = Mg1Queue(params.lam_l, params.long_service)
    print(f"{'percentile':>10s} {'sim CS-CQ':>10s} {'analytic CDF':>13s} "
          f"{'Dedicated CDF there':>20s}")
    for q in (50, 90, 95, 99):
        t = sims["cs-cq"].percentile_long(q)
        print(
            f"{q:>9d}% {t:10.3f} {analysis.long_response_time_cdf(t):13.4f} "
            f"{dedicated_long.response_time_cdf(t):20.4f}"
        )
    print(
        "\nReading: the shorts improve ~5x at every percentile; the longs' "
        "penalty lives in\nthe median (the occasional Exp(2 mu_s) setup) "
        "and is nearly invisible at p99."
    )


if __name__ == "__main__":
    main()
