#!/usr/bin/env python3
"""Quickstart: analyze cycle stealing for one load point.

Reproduces the paper's headline comparison at ``rho_s = 1.0``,
``rho_l = 0.5`` (exponential sizes, mean 1): Dedicated is *unstable* for
the shorts, while both cycle-stealing policies serve them comfortably —
and the longs barely notice.

Run:  python examples/quickstart.py
"""

from repro import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    UnstableSystemError,
    simulate,
)


def main() -> None:
    params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
    print(f"System: {params.describe()}\n")

    print(f"{'policy':12s} {'E[T_short]':>12s} {'E[T_long]':>12s}")
    try:
        dedicated = DedicatedAnalysis(params)
        print(
            f"{'Dedicated':12s} {dedicated.mean_response_time_short():12.3f} "
            f"{dedicated.mean_response_time_long():12.3f}"
        )
    except UnstableSystemError as exc:
        print(f"{'Dedicated':12s} {'unstable':>12s}  ({exc})")

    for name, analysis_cls in (("CS-ID", CsIdAnalysis), ("CS-CQ", CsCqAnalysis)):
        analysis = analysis_cls(params)
        print(
            f"{name:12s} {analysis.mean_response_time_short():12.3f} "
            f"{analysis.mean_response_time_long():12.3f}"
        )

    # Cross-check the CS-CQ analysis against the discrete-event simulator.
    print("\nSimulating CS-CQ (400k jobs) to cross-check the analysis ...")
    sim = simulate("cs-cq", params, seed=1, measured_jobs=400_000)
    analysis = CsCqAnalysis(params)
    print(
        f"analysis:   T_S = {analysis.mean_response_time_short():.3f}, "
        f"T_L = {analysis.mean_response_time_long():.3f}"
    )
    print(
        f"simulation: T_S = {sim.mean_response_short:.3f}, "
        f"T_L = {sim.mean_response_long:.3f}"
    )
    err = abs(analysis.mean_response_time_short() / sim.mean_response_short - 1)
    print(f"short-job relative difference: {100 * err:.2f}% "
          "(paper: 'under 2% in almost all cases')")


if __name__ == "__main__":
    main()
