#!/usr/bin/env python3
"""Section 6's discussion: cycle stealing vs M/G/2/SJF.

The paper closes by comparing against a natural non-preemptive rival: a
central queue that gives the *smallest* waiting job priority at both
hosts.  "M/G/2/SJF sometimes outperforms our cycle stealing algorithms
and sometimes does worse."  This example finds both regimes.

Run:  python examples/mg2sjf_comparison.py
"""

from repro.experiments import format_mg2sjf_rows, mg2sjf_comparison
from repro.workloads import case_by_name


def main() -> None:
    cases = [case_by_name("a"), case_by_name("b", coxian_longs=True)]
    load_points = [(0.8, 0.6), (1.2, 0.4), (1.4, 0.3)]
    print("Simulating CS-CQ vs M/G/2/SJF (this takes a minute) ...\n")
    rows = mg2sjf_comparison(cases, load_points, measured_jobs=200_000)
    print(format_mg2sjf_rows(rows))
    print(
        "\nReading: with longs 10x shorts (case b) SJF's two short-priority "
        "servers win;\nnear the shorts' saturation (case a at rho_s = 1.4) "
        "only CS-CQ's dedicated short\nserver keeps shorts stable — under "
        "SJF a short can still get stuck behind two longs."
    )


if __name__ == "__main__":
    main()
