"""Setup shim for offline editable installs.

The sandboxed environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) fail while building the editable wheel.
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
once ``wheel`` is available) achieves the same result.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
