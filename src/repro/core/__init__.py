"""The paper's analytic models: Dedicated, CS-ID and CS-CQ, plus stability."""

from .cs_cq import (
    CsCqAnalysis,
    RegionProbabilities,
    cs_cq_long_response_saturated,
    fit_busy_period,
)
from .cs_cq_ph import CsCqPhAnalysis, first_completion_of_two
from .cs_cq_truncated import CsCqTruncatedChain, TruncatedResult
from .cs_id import CsIdAnalysis, LongHostCycle, caught_short_remainder_moments
from .cs_id_ph import CsIdPhAnalysis, catch_phase_distribution
from .dedicated import DedicatedAnalysis
from .params import SystemParameters, UnstableSystemError
from .stability import (
    GOLDEN_RATIO,
    cs_cq_is_stable,
    cs_cq_max_rho_s,
    cs_id_is_stable,
    cs_id_long_host_prob_busy,
    cs_id_long_host_prob_busy_from_cycle,
    cs_id_max_rho_s,
    dedicated_is_stable,
    dedicated_max_rho_s,
)

__all__ = [
    "GOLDEN_RATIO",
    "CsCqAnalysis",
    "CsCqPhAnalysis",
    "CsCqTruncatedChain",
    "CsIdAnalysis",
    "CsIdPhAnalysis",
    "DedicatedAnalysis",
    "LongHostCycle",
    "RegionProbabilities",
    "SystemParameters",
    "TruncatedResult",
    "UnstableSystemError",
    "catch_phase_distribution",
    "caught_short_remainder_moments",
    "cs_cq_is_stable",
    "cs_cq_long_response_saturated",
    "cs_cq_max_rho_s",
    "cs_id_is_stable",
    "cs_id_long_host_prob_busy",
    "cs_id_long_host_prob_busy_from_cycle",
    "cs_id_max_rho_s",
    "dedicated_is_stable",
    "dedicated_max_rho_s",
    "first_completion_of_two",
    "fit_busy_period",
]
