"""The Dedicated task-assignment policy (paper's baseline).

Shorts always go to the short host, longs to the long host: two independent
M/G/1 queues.  Stable only for ``rho_s < 1`` and ``rho_l < 1``.
"""

from __future__ import annotations

from ..queueing import Mg1Queue
from .params import SystemParameters, UnstableSystemError

__all__ = ["DedicatedAnalysis"]


class DedicatedAnalysis:
    """Exact analysis of the Dedicated policy (two independent M/G/1s).

    ``host_speeds = (short_host_speed, long_host_speed)`` supports the
    heterogeneous-host extension: each M/G/1 serves its class at its own
    speed.
    """

    def __init__(
        self,
        params: SystemParameters,
        host_speeds: tuple[float, float] = (1.0, 1.0),
    ):
        self.params = params
        c_s, c_l = (float(s) for s in host_speeds)
        if c_s <= 0.0 or c_l <= 0.0:
            raise ValueError(f"host speeds must be positive, got {host_speeds}")
        if params.rho_s / c_s >= 1.0:
            raise UnstableSystemError(
                f"Dedicated short host unstable: rho_s/speed = "
                f"{params.rho_s / c_s:.4g} >= 1"
            )
        if params.rho_l / c_l >= 1.0:
            raise UnstableSystemError(
                f"Dedicated long host unstable: rho_l/speed = "
                f"{params.rho_l / c_l:.4g} >= 1"
            )
        short = params.short_service if c_s == 1.0 else params.short_service.scaled(1.0 / c_s)
        long = params.long_service if c_l == 1.0 else params.long_service.scaled(1.0 / c_l)
        self._short_queue = Mg1Queue(params.lam_s, short)
        self._long_queue = Mg1Queue(params.lam_l, long)

    def mean_response_time_short(self) -> float:
        """Mean response time of short jobs (Pollaczek-Khinchine)."""
        return self._short_queue.mean_response_time()

    def mean_response_time_long(self) -> float:
        """Mean response time of long jobs (Pollaczek-Khinchine)."""
        return self._long_queue.mean_response_time()

    def mean_number_short(self) -> float:
        """Mean number of short jobs in the system."""
        return self._short_queue.mean_number_in_system()

    def mean_number_long(self) -> float:
        """Mean number of long jobs in the system."""
        return self._long_queue.mean_number_in_system()
