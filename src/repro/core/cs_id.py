"""Cycle Stealing with Immediate Dispatch (CS-ID).

The ICDCS paper analyzes CS-ID in its companion technical report [9]
(CMU-CS-02-158) by "decomposing the system into two separate stochastic
processes"; the decomposition below is derived independently from the
policy definition and is exact up to the same three-moment busy-period
matching the paper uses:

**Long host (autonomous).**  Under CS-ID the long host's evolution never
depends on the short host.  Regenerating at the instants the long host
becomes free: a free period ``Exp(lam_s + lam_l)`` ends with a short
arrival (probability ``q = lam_s/(lam_s+lam_l)``) that seizes the host for
``X_S``, or a long arrival that starts an ordinary long busy period
``B_L``.  A short in service may be "caught" by a long arrival; the longs
that accumulate during the rest of that short's service then trigger a
delay busy period.  Long jobs therefore see an M/G/1 queue with setup
``I``: ``I = 0`` when the busy-period-starting long found the host truly
idle and ``I =`` the short's remaining service otherwise, whose moments we
derive in closed form from the short-size transform.

**Short host (QBD modulated by the long host).**  The short host is an
M/M/1-type queue whose Poisson(``lam_s``) arrivals are admitted only while
the long host is busy (otherwise the short runs at the long host).  The
modulating phase process replays the long host's regenerative cycle:
``IDLE``, ``S0`` (short at long host, no long waiting), ``S1`` (short at
long host, >= 1 long waiting), a PH block for ``B_L``, and a PH block for
``B_{M+1}`` (busy period started by the ``M+1`` longs present when the
caught short finishes; ``M`` = Poisson arrivals during the remaining
``Exp(mu_s)`` service).  In phase ``IDLE`` a short arrival changes the
*phase*, not the level — this captures exactly the correlation between the
hosts that CS-ID induces.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..busy_periods import MG1BusyPeriod, NPlusOneBusyPeriod
from ..distributions import Distribution, Exponential
from ..markov import QbdProcess, QbdSolution, cached_solution
from ..queueing import Mg1SetupQueue
from ..robustness import NumericalError, SolverDiagnostics
from .cs_cq import fit_busy_period
from .params import SystemParameters, UnstableSystemError

__all__ = ["CsIdAnalysis", "LongHostCycle", "caught_short_remainder_moments"]


def caught_short_remainder_moments(
    short_service: Distribution, lam_l: float, upto: int = 3
) -> tuple[float, ...]:
    """Moments of the setup ``I``: remaining short service at the first
    long arrival, conditioned on that arrival landing inside the service.

    With ``h(s) = X_S~(s) - X_S~(lam_l)``, the conditional transform is
    ``I~(s) = lam_l * g(s) / (1 - X_S~(lam_l))`` where
    ``g(s) = h(s) / (lam_l - s)``.  Differentiating ``g (lam_l - s) = h``
    gives the recursion ``g^(k)(0) = (h^(k)(0) + k g^(k-1)(0)) / lam_l``,
    from which ``E[I^k] = (-1)^k I~^(k)(0)`` follows with no numerical
    differentiation.  For exponential shorts this reduces to ``Exp(mu_s)``
    (memorylessness), which the test suite asserts.
    """
    if lam_l <= 0.0:
        raise ValueError(f"lam_l must be positive, got {lam_l}")
    x_at_lam = float(short_service.laplace(lam_l).real)
    p_caught = 1.0 - x_at_lam
    if p_caught <= 0.0:
        raise NumericalError(
            "short service transform degenerate at lam_l", value=x_at_lam
        )
    # h^{(k)}(0): h(0) = 1 - X~(lam_l); h^{(k)}(0) = (-1)^k m_k for k >= 1.
    h_derivs = [1.0 - x_at_lam] + [
        (-1.0) ** k * short_service.moment(k) for k in range(1, upto + 1)
    ]
    g_derivs = [h_derivs[0] / lam_l]
    for k in range(1, upto + 1):
        g_derivs.append((h_derivs[k] + k * g_derivs[k - 1]) / lam_l)
    return tuple(
        (-1.0) ** k * lam_l * g_derivs[k] / p_caught for k in range(1, upto + 1)
    )


class LongHostCycle:
    """Regenerative-cycle analysis of the CS-ID long host.

    Regeneration points: instants the long host becomes free of all work.
    """

    def __init__(
        self,
        params: SystemParameters,
        host_speeds: tuple[float, float] = (1.0, 1.0),
    ):
        if len(host_speeds) != 2 or any(s <= 0.0 for s in host_speeds):
            raise ValueError("host_speeds must be two positive values")
        self.host_speeds = (float(host_speeds[0]), float(host_speeds[1]))
        c_l = self.host_speeds[1]
        # Effective in-service distributions at the (possibly faster or
        # slower) donor host: a job of nominal size X occupies it for X/c_l.
        self.long_eff = (
            params.long_service if c_l == 1.0 else params.long_service.scaled(1.0 / c_l)
        )
        self.short_at_donor = (
            params.short_service
            if c_l == 1.0
            else params.short_service.scaled(1.0 / c_l)
        )
        self.rho_l_eff = params.lam_l * self.long_eff.mean
        if self.rho_l_eff >= 1.0:
            raise UnstableSystemError(
                f"CS-ID long jobs unstable: effective rho_l = "
                f"{self.rho_l_eff:.4g} >= 1"
            )
        self.params = params
        lam_s, lam_l = params.lam_s, params.lam_l
        self.q_short_first = lam_s / (lam_s + lam_l) if lam_s + lam_l > 0 else 0.0
        # Probability a short serving at the long host is caught by a long.
        self.p_caught = (
            1.0 - float(self.short_at_donor.laplace(lam_l).real) if lam_l > 0 else 0.0
        )

    @cached_property
    def mean_cycle_length(self) -> float:
        """Expected regeneration-cycle length of the long host."""
        params = self.params
        lam_s, lam_l = params.lam_s, params.lam_l
        free = 1.0 / (lam_s + lam_l)
        one_minus_rho = 1.0 - self.rho_l_eff
        # Short-initiated branch: the short's service, plus (if >= 1 long
        # arrived during it) a delay busy period started by the longs' work.
        short_branch = self.short_at_donor.mean + (
            lam_l * self.short_at_donor.mean * self.long_eff.mean / one_minus_rho
            if lam_l > 0
            else 0.0
        )
        long_branch = self.long_eff.mean / one_minus_rho if lam_l > 0 else 0.0
        q = self.q_short_first
        return free + q * short_branch + (1.0 - q) * long_branch

    @cached_property
    def prob_idle(self) -> float:
        """Long-run fraction of time the long host is idle (= P a Poisson
        arrival finds it idle, by PASTA)."""
        lam_s, lam_l = self.params.lam_s, self.params.lam_l
        if lam_s + lam_l == 0.0:
            return 1.0
        return (1.0 / (lam_s + lam_l)) / self.mean_cycle_length

    @cached_property
    def prob_setup_zero(self) -> float:
        """P(the long starting a long busy period found the host truly idle).

        Each regeneration round ends the longs' idle period with either a
        long arriving to a free host (no setup) or a long catching a short
        in service (setup = the short's remainder); rounds where a short is
        served without being caught recur.
        """
        q, r = self.q_short_first, self.p_caught
        denom = 1.0 - q * (1.0 - r)
        if denom <= 0.0:
            raise NumericalError("degenerate long-host cycle", value=denom)
        return (1.0 - q) / denom

    def setup_moments(self) -> tuple[float, float]:
        """First two moments of the mixed setup time of long busy periods."""
        p_zero = self.prob_setup_zero
        if self.params.lam_l <= 0.0 or p_zero >= 1.0:
            return 0.0, 0.0
        i1, i2, _ = caught_short_remainder_moments(
            self.short_at_donor, self.params.lam_l
        )
        weight = 1.0 - p_zero
        return weight * i1, weight * i2

    def caught_remainder_lst(self, s: complex) -> complex:
        """Transform of the caught short's remainder (the positive setup):
        ``I~(s) = lam_l (X_S~(lam_l) - X_S~(s)) / ((s - lam_l)(1 - X_S~(lam_l)))``
        with the removable singularity at ``s = lam_l`` handled by the
        derivative limit."""
        lam_l = self.params.lam_l
        short = self.short_at_donor
        x_at_lam = complex(short.laplace(lam_l)).real
        if abs(s - lam_l) < 1e-8 * max(1.0, abs(lam_l)):
            # lim_{s->lam} = -lam X~'(lam) / (1 - X~(lam)) via finite diff.
            h = 1e-6 * max(1.0, abs(lam_l))
            deriv = (short.laplace(lam_l + h) - short.laplace(lam_l - h)) / (2 * h)
            return -lam_l * deriv / (1.0 - x_at_lam)
        return (
            lam_l
            * (x_at_lam - short.laplace(s))
            / ((s - lam_l) * (1.0 - x_at_lam))
        )

    def setup_lst(self, s: complex) -> complex:
        """Transform of the mixed setup: atom at 0 plus the remainder."""
        p_zero = self.prob_setup_zero
        if self.params.lam_l <= 0.0 or p_zero >= 1.0:
            return 1.0
        return p_zero + (1.0 - p_zero) * self.caught_remainder_lst(s)

    def _setup_queue(self) -> Mg1SetupQueue:
        return Mg1SetupQueue(
            self.params.lam_l,
            self.long_eff,
            self.setup_moments(),
            setup_lst=self.setup_lst,
        )

    def mean_response_time_long(self) -> float:
        """Mean long response time: M/G/1 with the mixed setup above."""
        return self._setup_queue().mean_response_time()

    def long_response_time_cdf(self, t: float) -> float:
        """``P(T_L <= t)`` — the full long response distribution, via the
        level-crossing transform of the setup queue."""
        return self._setup_queue().response_time_cdf(t)


class CsIdAnalysis:
    """Full CS-ID analysis: long-host cycle + modulated short-host QBD.

    Parameters
    ----------
    params:
        Short service must be exponential for the short-host QBD (same
        assumption as the paper's CS-CQ chain); long service is general.
    n_moments:
        Busy-period moments matched by the PH blocks (default 3).
    host_speeds:
        ``(short_host_speed, long_host_speed)`` relative speeds — the
        heterogeneous-host extension sketched in the paper's conclusion.
        A job of nominal size ``x`` occupies host ``h`` for
        ``x / host_speeds[h]``.  Defaults to the paper's homogeneous model.
    """

    def __init__(
        self,
        params: SystemParameters,
        n_moments: int = 3,
        host_speeds: tuple[float, float] = (1.0, 1.0),
    ):
        self.params = params
        self.n_moments = n_moments
        self.host_speeds = (float(host_speeds[0]), float(host_speeds[1]))
        self.cycle = LongHostCycle(params, host_speeds=self.host_speeds)
        self.mu_s = params.mu_s
        c_s, c_l = self.host_speeds
        # Stability of the short host: admitted rate below service rate.
        p_busy = 1.0 - self.cycle.prob_idle
        if params.lam_s * p_busy * params.short_service.mean / c_s >= 1.0:
            raise UnstableSystemError(
                f"CS-ID short host unstable: rho_s * P(long host busy) = "
                f"{params.rho_s * p_busy / c_s:.4g} >= 1 (Theorem 1)"
            )
        lam_l = params.lam_l
        long_eff = self.cycle.long_eff
        if lam_l > 0.0:
            self.busy_l = MG1BusyPeriod(lam_l, long_eff)
            self.busy_m1 = NPlusOneBusyPeriod(
                lam_l, long_eff, freeing_rate=self.mu_s * c_l
            )
            self._ph_l = fit_busy_period(self.busy_l.moments(), n_moments).as_phase_type()
            self._ph_m1 = fit_busy_period(self.busy_m1.moments(), n_moments).as_phase_type()
        else:
            self.busy_l = None
            self.busy_m1 = None
            self._ph_l = Exponential(1.0).as_phase_type()  # unreachable filler
            self._ph_m1 = Exponential(1.0).as_phase_type()

    # ------------------------------------------------------------------
    # Short-host QBD
    # ------------------------------------------------------------------
    def _build_qbd(self) -> QbdProcess:
        return QbdProcess(**self._build_blocks())

    def _build_blocks(self) -> dict:
        """Raw (unvalidated) QBD blocks, as :class:`QbdProcess` kwargs.

        Split from :meth:`_build_qbd` for the batched sweep backend (see
        :meth:`CsCqAnalysis._build_blocks`): stacking raw blocks skips the
        per-point process construction while producing byte-identical
        cache keys.
        """
        lam_s, lam_l, mu_s = self.params.lam_s, self.params.lam_l, self.mu_s
        alpha_l, t_l = self._ph_l.alpha, self._ph_l.T
        alpha_m, t_m = self._ph_m1.alpha, self._ph_m1.T
        exit_l, exit_m = self._ph_l.exit_rates, self._ph_m1.exit_rates
        k_l, k_m = len(alpha_l), len(alpha_m)

        # Phase layout: 0 IDLE, 1 S0, 2 S1, then B_L block, then B_{M+1}.
        m = 3 + k_l + k_m
        idle, s0, s1 = 0, 1, 2
        bl = slice(3, 3 + k_l)
        bm = slice(3 + k_l, 3 + k_l + k_m)

        c_s, c_l = self.host_speeds
        # Within-level phase dynamics (level = short-host queue length).
        a1 = np.zeros((m, m))
        a1[idle, s0] = lam_s  # short dispatched to the idle long host
        if lam_l > 0.0:
            a1[idle, bl] = lam_l * alpha_l
            a1[s0, s1] = lam_l
        a1[s0, idle] = mu_s * c_l  # uncaught short finishes at the long host
        a1[s1, bm] = mu_s * c_l * alpha_m  # caught short done; longs take over
        a1[bl, bl] += t_l - np.diag(np.diag(t_l))
        a1[bm, bm] += t_m - np.diag(np.diag(t_m))
        a1[bl, idle] += exit_l
        a1[bm, idle] += exit_m

        # Up: short arrivals join the short host in every phase but IDLE.
        a0 = lam_s * np.eye(m)
        a0[idle, idle] = 0.0

        # Down: the short host always serves its queue.
        a2 = mu_s * c_s * np.eye(m)

        return dict(
            boundary_local=[a1.copy()],
            boundary_up=[a0.copy()],
            boundary_down=[a2.copy()],
            a0=a0,
            a1=a1,
            a2=a2,
        )

    @cached_property
    def solution(self) -> QbdSolution:
        """Stationary solution of the modulated short-host QBD.

        Keyed on the chain's defining inputs under an active sweep-cache
        scope, so a hit skips the block assembly as well as the solve.
        """
        key = self._solution_cache_key()
        return cached_solution(key, lambda: self._build_qbd().solve())

    def _solution_cache_key(self) -> tuple:
        """``analysis-solution`` cache key (shared with the batched
        backend, which seeds the cache under exactly this key)."""
        return (
            "cs-id",
            self.params.lam_s,
            self.params.lam_l,
            self.mu_s,
            self.host_speeds,
            self._ph_l.alpha.tobytes(),
            self._ph_l.T.tobytes(),
            self._ph_m1.alpha.tobytes(),
            self._ph_m1.T.tobytes(),
        )

    @property
    def solver_diagnostics(self) -> SolverDiagnostics:
        """Diagnostics of the short-host QBD solve (method, rungs, residuals)."""
        return self.solution.diagnostics

    def _phase_probabilities(self) -> np.ndarray:
        sol = self.solution
        return sol.level_vector(0) + sol.phase_marginal()

    def prob_long_host_idle(self) -> float:
        """P(long host idle), from the QBD phase marginal.

        Must agree with :attr:`LongHostCycle.prob_idle`; asserted in tests
        as an internal consistency check.
        """
        return float(self._phase_probabilities()[0])

    # ------------------------------------------------------------------
    # Response times
    # ------------------------------------------------------------------
    def mean_number_short_at_short_host(self) -> float:
        """Mean number of shorts queued or in service at the short host."""
        return self.solution.mean_level()

    def mean_response_time_short(self) -> float:
        """Mean short response time across both dispatch destinations.

        A short arriving to an idle long host runs there immediately
        (response = its own size); otherwise it joins the short host, whose
        mean response follows from Little's law applied to the QBD level.
        """
        if self.params.lam_s <= 0.0:
            raise ValueError("short response time undefined when lam_s == 0")
        p_idle = self.cycle.prob_idle
        mean_n = self.mean_number_short_at_short_host()
        # Rate into the short host is lam_s * P(long host busy) (PASTA).
        rate_short_host = self.params.lam_s * (1.0 - p_idle)
        if rate_short_host <= 0.0:
            return self.cycle.short_at_donor.mean
        t_short_host = mean_n / rate_short_host
        return (
            p_idle * self.cycle.short_at_donor.mean
            + (1.0 - p_idle) * t_short_host
        )

    def mean_response_time_long(self) -> float:
        """Mean long response time (M/G/1 with mixed setup)."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        return self.cycle.mean_response_time_long()

    def long_response_time_cdf(self, t: float) -> float:
        """``P(T_L <= t)`` — the full long response distribution."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        return self.cycle.long_response_time_cdf(t)

    def mean_number_short(self) -> float:
        """Mean number of shorts in the whole system (Little's law)."""
        return self.params.lam_s * self.mean_response_time_short()

    def mean_number_long(self) -> float:
        """Mean number of longs in the whole system (Little's law)."""
        return self.params.lam_l * self.mean_response_time_long()
