"""Cycle Stealing with Central Queue (CS-CQ) — the paper's contribution.

The analysis follows Section 2 of the paper exactly:

* The Markov chain tracks the number of short jobs as the (1D-infinite)
  level.  The effect of long jobs is compressed into *busy-period
  transitions* whose durations are ``B_L`` (a long busy period started by a
  single long) and ``B_{N+1}`` (a long busy period started by the work of
  ``N+1`` longs, ``N`` = Poisson arrivals during ``Exp(2 mu_s)``).
* Each busy-period transition is replaced by a small phase-type
  distribution matched on the busy period's first three moments (the
  paper's 2-stage Coxian; we fall back to a slightly larger acyclic PH for
  triples outside the Coxian-2 region).
* The resulting QBD is solved by matrix-analytic methods; the mean short
  response time follows from Little's law.
* Long jobs see an M/G/1 queue with setup time ``I``, where ``I = 0`` if
  the busy-period-starting long arrived in region 1 (zero longs, at most
  one short in service) and ``I ~ Exp(2 mu_s)`` if it arrived in region 2
  (zero longs, two shorts in service), with probabilities read off the
  solved chain.

Phase layout of the repeating levels (``n >= 2`` short jobs)::

    0               ZERO_L  - no long jobs; shorts served by both hosts
    1 .. kL         B_L     - long busy period in progress (PH stage i)
    kL+1 .. kL+kN   B_{N+1} - "renamed-host" busy period in progress
    kL+kN+1         WAIT    - long waiting for the first of 2 shorts

Boundary levels 0 and 1 lack the WAIT phase (region 5 needs two shorts in
service) and enter ``B_L`` directly on a long arrival (region 1 -> 3).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Optional, Union

import numpy as np

from ..busy_periods import MG1BusyPeriod, NPlusOneBusyPeriod
from ..distributions import (
    Distribution,
    Exponential,
    coxian_from_mean_scv,
    fit_phase_type,
)
from ..markov import QbdProcess, QbdSolution, cached_solution
from ..queueing import Mg1SetupQueue
from ..robustness import (
    NearBoundaryWarning,
    NumericalError,
    ReproError,
    SolverDiagnostics,
    trust_verdict,
)
from ..telemetry import span
from .params import SystemParameters, UnstableSystemError

__all__ = ["CsCqAnalysis", "RegionProbabilities", "cs_cq_long_response_saturated"]


@dataclass(frozen=True)
class RegionProbabilities:
    """Stationary probabilities of the paper's regions 1 and 2.

    Region 1: zero longs and at most one short (a host is idle).
    Region 2: zero longs and two shorts in service (both hosts busy).
    The conditional probability of region 2 given "zero longs" determines
    the long jobs' setup time.
    """

    region1: float
    region2: float

    @property
    def p_setup_zero(self) -> float:
        """P(busy-period-starting long waits 0) = P(region 1 | region 1 or 2)."""
        total = self.region1 + self.region2
        if total <= 0.0:
            raise NumericalError(
                "regions 1 and 2 have zero probability",
                region1=self.region1,
                region2=self.region2,
            )
        return self.region1 / total


def fit_busy_period(moments: tuple[float, float, float], n_moments: int) -> Distribution:
    """Phase-type stand-in for a busy period, matching ``n_moments`` moments.

    ``n_moments = 3`` is the paper's choice; 1 and 2 exist for the ablation
    study ("three moments provide sufficient accuracy").
    """
    m1, m2, m3 = moments
    if n_moments == 3:
        return fit_phase_type(m1, m2, m3)
    if n_moments == 2:
        scv = m2 / (m1 * m1) - 1.0
        return coxian_from_mean_scv(m1, scv)
    if n_moments == 1:
        return Exponential(1.0 / m1)
    raise ValueError(f"n_moments must be 1, 2 or 3, got {n_moments}")


def cs_cq_long_response_saturated(params: SystemParameters) -> float:
    """Mean long response time under CS-CQ when short jobs are *overloaded*.

    Figure 6 (row 2) plots the long jobs for all ``rho_l < 1`` even where
    the shorts are unstable (``rho_s >= 2 - rho_l``).  In that regime the
    short queue is eventually never empty, so every long busy period starts
    with both hosts serving shorts and the setup is ``Exp(2 mu_s)`` with
    probability one; longs remain stable because they still receive one
    host's worth of capacity.
    """
    if params.rho_l >= 1.0:
        raise UnstableSystemError(
            f"CS-CQ long jobs unstable: rho_l = {params.rho_l:.4g} >= 1"
        )
    nu = 2.0 * params.mu_s
    queue = Mg1SetupQueue(
        params.lam_l, params.long_service, (1.0 / nu, 2.0 / (nu * nu))
    )
    return queue.mean_response_time()


class CsCqAnalysis:
    """Matrix-analytic solution of CS-CQ via busy-period transitions.

    Parameters
    ----------
    params:
        System parameters; short service must be exponential (the chain
        assumption of Section 2.2 — long service is fully general).
    n_moments:
        How many busy-period moments to match (default 3, as in the paper).
    degrade_near_boundary:
        When True (the default) and the exact QBD solve fails with a typed
        :class:`~repro.robustness.ReproError` *within* ``boundary_margin``
        of the stability boundary, fall back to the finite-level
        :class:`~repro.core.cs_cq_truncated.CsCqTruncatedChain` (possible
        for exponential longs only) and attach a
        :class:`~repro.robustness.NearBoundaryWarning` instead of crashing
        — so figure sweeps complete end-to-end.
    boundary_margin:
        Relative distance to the boundary that arms the fallback: degrade
        when ``(2 - rho_l) - rho_s <= boundary_margin * (2 - rho_l)``.
    """

    def __init__(
        self,
        params: SystemParameters,
        n_moments: int = 3,
        degrade_near_boundary: bool = True,
        boundary_margin: float = 0.05,
    ):
        self.params = params
        self.n_moments = n_moments
        self.degrade_near_boundary = degrade_near_boundary
        self.boundary_margin = boundary_margin
        if params.rho_l >= 1.0:
            raise UnstableSystemError(
                f"CS-CQ long jobs unstable: rho_l = {params.rho_l:.4g} >= 1"
            )
        if params.rho_s >= 2.0 - params.rho_l:
            raise UnstableSystemError(
                f"CS-CQ short jobs unstable: rho_s = {params.rho_s:.4g} >= "
                f"2 - rho_l = {2.0 - params.rho_l:.4g} (Theorem 1)"
            )
        self.mu_s = params.mu_s  # validates the exponential-short assumption

        lam_l, long_service = params.lam_l, params.long_service
        self.busy_l = MG1BusyPeriod(lam_l, long_service)
        self.busy_n1 = NPlusOneBusyPeriod(lam_l, long_service, freeing_rate=2.0 * self.mu_s)
        self._ph_l = fit_busy_period(self.busy_l.moments(), n_moments).as_phase_type()
        self._ph_n1 = fit_busy_period(self.busy_n1.moments(), n_moments).as_phase_type()

    # ------------------------------------------------------------------
    # Graceful degradation near the stability boundary
    # ------------------------------------------------------------------
    def _near_boundary(self) -> bool:
        capacity = 2.0 - self.params.rho_l
        return capacity - self.params.rho_s <= self.boundary_margin * capacity

    def _can_degrade(self) -> bool:
        return (
            self.degrade_near_boundary
            and self._near_boundary()
            and isinstance(self.params.short_service, Exponential)
            and isinstance(self.params.long_service, Exponential)
        )

    @cached_property
    def _outcome(self) -> tuple[str, Union[QbdSolution, "TruncatedResult"]]:
        """``("qbd", QbdSolution)`` or ``("truncated", TruncatedResult)``.

        The truncated branch only arms when the exact solve raised a typed
        error near the boundary and both size distributions are exponential
        (the truncated chain's requirement); otherwise the error propagates.
        """
        with span(
            "analysis.cs_cq",
            rho_s=self.params.rho_s,
            rho_l=self.params.rho_l,
        ) as analysis_span:
            kind, value = self._solve_outcome()
            analysis_span.set("mode", kind)
        return kind, value

    def _solution_cache_key(self) -> tuple:
        """``analysis-solution`` cache key: the chain's defining inputs
        (rates + exact PH representations), so a sweep-cache hit skips the
        block assembly as well as the solve.  Shared with the batched
        backend, which seeds the cache under exactly this key."""
        return (
            "cs-cq",
            self.params.lam_s,
            self.params.lam_l,
            self.mu_s,
            self._ph_l.alpha.tobytes(),
            self._ph_l.T.tobytes(),
            self._ph_n1.alpha.tobytes(),
            self._ph_n1.T.tobytes(),
        )

    def _solve_outcome(self) -> tuple[str, Union[QbdSolution, "TruncatedResult"]]:
        try:
            key = self._solution_cache_key()
            return "qbd", cached_solution(key, lambda: self._build_qbd().solve())
        except ReproError as exc:
            if not self._can_degrade():
                raise
            self._degraded_from = exc
            warnings.warn(
                NearBoundaryWarning(
                    f"CS-CQ exact QBD solve failed at rho_s={self.params.rho_s:.4g}, "
                    f"rho_l={self.params.rho_l:.4g} ({type(exc).__name__}: {exc.message}); "
                    "falling back to the truncated finite-level solver — results "
                    "carry truncation error"
                ),
                stacklevel=2,
            )
            from .cs_cq_truncated import CsCqTruncatedChain

            chain = CsCqTruncatedChain(self.params, max_short=250, max_long=120)
            return "truncated", chain.solve()

    @property
    def degraded(self) -> bool:
        """True when results come from the truncated fallback solver."""
        return self._outcome[0] == "truncated"

    @property
    def solver_diagnostics(self) -> SolverDiagnostics:
        """Diagnostics of the solve that produced this analysis' numbers."""
        kind, value = self._outcome
        if kind == "qbd":
            return value.diagnostics
        exc = getattr(self, "_degraded_from", None)
        # The finite-level chain's dominant error source is the mass it
        # truncates away, so that is the forward error bound; a degraded
        # result never earns full trust even when the mass is tiny.
        bound = float(value.truncation_mass)
        verdict = trust_verdict(bound)
        if verdict == "trusted":
            verdict = "suspect"
        return SolverDiagnostics(
            method="truncated-fallback",
            degraded=True,
            notes=(
                f"exact solve failed: {exc}" if exc is not None else "exact solve failed",
                f"truncation mass {value.truncation_mass:.3g}",
            ),
            error_bound=bound,
            trust=verdict,
        )

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------
    def _build_qbd(self) -> QbdProcess:
        return QbdProcess(**self._build_blocks())

    def _build_blocks(self) -> dict:
        """Raw (unvalidated) QBD blocks, as :class:`QbdProcess` kwargs.

        Split from :meth:`_build_qbd` so the batched sweep backend can
        stack the blocks of many load points into tensors without paying
        for per-point process construction; validation never changes the
        bytes, so cache keys derived from these arrays match the scalar
        path's exactly.
        """
        lam_s, lam_l, mu_s = self.params.lam_s, self.params.lam_l, self.mu_s
        alpha_l, t_mat_l = self._ph_l.alpha, self._ph_l.T
        alpha_n, t_mat_n = self._ph_n1.alpha, self._ph_n1.T
        exit_l, exit_n = self._ph_l.exit_rates, self._ph_n1.exit_rates
        k_l, k_n = len(alpha_l), len(alpha_n)

        mb = 1 + k_l + k_n  # boundary phases: ZERO_L + B_L + B_N
        m = mb + 1  # repeating adds WAIT
        wait = m - 1
        bl = slice(1, 1 + k_l)
        bn = slice(1 + k_l, 1 + k_l + k_n)

        def ph_internal(block: np.ndarray) -> None:
            """Install both PH internal transitions and exits to ZERO_L."""
            sub_l = t_mat_l - np.diag(np.diag(t_mat_l))
            sub_n = t_mat_n - np.diag(np.diag(t_mat_n))
            block[bl, bl] += sub_l
            block[bn, bn] += sub_n
            block[bl, 0] += exit_l
            block[bn, 0] += exit_n

        # Repeating within-level block A1 (off-diagonal rates only).
        a1 = np.zeros((m, m))
        ph_internal(a1)
        a1[0, wait] = lam_l  # region 2 -> region 5

        # Up: every phase gains a short at rate lam_s, phase preserved.
        a0 = lam_s * np.eye(m)

        # Down: short completions.
        a2 = np.zeros((m, m))
        a2[0, 0] = 2.0 * mu_s  # both hosts on shorts
        a2[bl, bl] = mu_s * np.eye(k_l)
        a2[bn, bn] = mu_s * np.eye(k_n)
        a2[wait, bn] = 2.0 * mu_s * alpha_n  # region 5 -> B_{N+1} starts

        # Boundary levels 0 and 1 (no WAIT phase; long arrival starts B_L).
        local = np.zeros((mb, mb))
        ph_internal(local)
        local[0, bl] = lam_l * alpha_l  # region 1 -> region 3

        up0 = lam_s * np.eye(mb)  # level 0 -> 1 (same phase set)
        up1 = np.zeros((mb, m))
        up1[:, :mb] = lam_s * np.eye(mb)  # level 1 -> 2 (embed into repeating)

        down1to0 = np.zeros((mb, mb))
        down1to0[0, 0] = mu_s  # one short in service
        down1to0[bl, bl] = mu_s * np.eye(k_l)
        down1to0[bn, bn] = mu_s * np.eye(k_n)

        down2to1 = np.zeros((m, mb))
        down2to1[0, 0] = 2.0 * mu_s
        down2to1[bl, bl] = mu_s * np.eye(k_l)
        down2to1[bn, bn] = mu_s * np.eye(k_n)
        down2to1[wait, bn] = 2.0 * mu_s * alpha_n

        return dict(
            boundary_local=[local, local.copy()],
            boundary_up=[up0, up1],
            boundary_down=[down1to0, down2to1],
            a0=a0,
            a1=a1,
            a2=a2,
        )

    @property
    def solution(self) -> QbdSolution:
        """Stationary solution of the busy-period-transition QBD.

        Raises the original solver error when the analysis degraded to the
        truncated fallback (which has no matrix-geometric solution); the
        mean-value accessors keep working in that mode.
        """
        kind, value = self._outcome
        if kind != "qbd":
            raise self._degraded_from
        return value

    # ------------------------------------------------------------------
    # Short jobs
    # ------------------------------------------------------------------
    def mean_number_short(self) -> float:
        """Mean number of short jobs in the system, ``E[N_S]``."""
        kind, value = self._outcome
        return value.mean_level() if kind == "qbd" else value.mean_number_short

    def mean_response_time_short(self) -> float:
        """Mean response time of short jobs (Little's law on the chain)."""
        if self.params.lam_s <= 0.0:
            raise ValueError("short response time undefined when lam_s == 0")
        return self.mean_number_short() / self.params.lam_s

    def queue_length_distribution_short(self, max_n: int) -> np.ndarray:
        """Return ``P(N_S = n)`` for ``n = 0..max_n``."""
        return np.array(
            [self.solution.level_probability(n) for n in range(max_n + 1)]
        )

    # ------------------------------------------------------------------
    # Long jobs
    # ------------------------------------------------------------------
    def region_probabilities(self) -> RegionProbabilities:
        """Stationary probabilities of regions 1 and 2 (paper Section 2.4)."""
        sol = self.solution
        region1 = float(sol.level_vector(0)[0] + sol.level_vector(1)[0])
        region2 = float(sol.phase_marginal()[0])  # ZERO_L at levels >= 2
        return RegionProbabilities(region1=region1, region2=region2)

    def setup_moments(self) -> tuple[float, float]:
        """First two moments of the long jobs' setup time ``I``.

        ``I = 0`` w.p. ``P(region 1 | region 1 or 2)``, else
        ``I ~ Exp(2 mu_s)`` (first of the two shorts in service finishes,
        thanks to host renaming).
        """
        p_zero = self.region_probabilities().p_setup_zero
        nu = 2.0 * self.mu_s
        q = 1.0 - p_zero
        return q / nu, 2.0 * q / (nu * nu)

    def setup_lst(self, s: complex) -> complex:
        """Transform of the setup mixture: atom at 0 plus ``Exp(2 mu_s)``."""
        p_zero = self.region_probabilities().p_setup_zero
        nu = 2.0 * self.mu_s
        return p_zero + (1.0 - p_zero) * nu / (nu + s)

    def _setup_queue(self) -> Mg1SetupQueue:
        return Mg1SetupQueue(
            self.params.lam_l,
            self.params.long_service,
            self.setup_moments(),
            setup_lst=self.setup_lst,
        )

    def mean_response_time_long(self) -> float:
        """Mean long-job response time: M/G/1 with setup (paper Section 2.4)."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        kind, value = self._outcome
        if kind == "truncated":
            return value.mean_response_time_long
        return self._setup_queue().mean_response_time()

    def long_response_time_cdf(self, t: float) -> float:
        """``P(T_L <= t)`` — the full long response distribution (beyond
        the paper's means), via the setup queue's level-crossing transform
        and Laplace inversion."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        return self._setup_queue().response_time_cdf(t)

    def mean_number_long(self) -> float:
        """Mean number of long jobs (Little's law on the setup queue)."""
        return self.params.lam_l * self.mean_response_time_long()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def diagnostics(self) -> dict[str, Any]:
        """Solver internals for debugging and research.

        Returns the busy-period moments, the phase counts of their fitted
        stand-ins, the spectral radius of the geometric tail (the chain's
        effective utilization — response times diverge as it approaches
        1), the region probabilities, and the
        :class:`~repro.robustness.SolverDiagnostics` of the underlying
        solve (under ``"solver"``).  In degraded (truncated-fallback) mode
        only the solver record and the degradation flag are meaningful.
        """
        out: dict[str, Any] = {
            "busy_l_moments": self.busy_l.moments(),
            "busy_n1_moments": self.busy_n1.moments(),
            "ph_l_phases": self._ph_l.n_phases,
            "ph_n1_phases": self._ph_n1.n_phases,
            "degraded": self.degraded,
            "solver": self.solver_diagnostics,
        }
        if not self.degraded:
            sol = self.solution
            regions = self.region_probabilities()
            out.update(
                {
                    "phases_per_level": sol.r_matrix.shape[0],
                    "tail_spectral_radius": sol.tail_spectral_radius,
                    "region1": regions.region1,
                    "region2": regions.region2,
                    "p_setup_zero": regions.p_setup_zero,
                }
            )
        return out
