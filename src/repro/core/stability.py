"""Stability regions (paper Theorem 1 and Figure 3).

* Dedicated: ``rho_s < 1`` and ``rho_l < 1``.
* CS-CQ: ``rho_l < 1`` and ``rho_s < 2 - rho_l`` (shorts may consume all
  capacity the longs leave behind, across both hosts).
* CS-ID: ``rho_l < 1``; the short-host condition is
  ``rho_s * P(long host busy) < 1``.  The long host's regenerative cycle
  collapses to the remarkably clean ``P(idle) = (1 - rho_l)/(1 + rho_s)``
  (only loads enter — means and higher moments cancel), so the boundary is
  the positive root of ``rho_s^2 + rho_s rho_l - rho_s - 1 = 0``::

      rho_s_max = ((1 - rho_l) + sqrt((1 - rho_l)^2 + 4)) / 2

  At ``rho_l = 0`` this is the golden ratio ~= 1.618 ("as high as about
  1.6" in the paper); as ``rho_l -> 1`` it tightens to ``rho_s < 1``.

Every function keeps the regenerative-cycle computation available as an
independent cross-check of the closed form (asserted equal in the tests).
"""

from __future__ import annotations

import math

from ..distributions import Exponential
from .params import SystemParameters

__all__ = [
    "dedicated_is_stable",
    "dedicated_max_rho_s",
    "cs_cq_is_stable",
    "cs_cq_max_rho_s",
    "cs_id_long_host_prob_busy",
    "cs_id_long_host_prob_busy_from_cycle",
    "cs_id_is_stable",
    "cs_id_max_rho_s",
    "GOLDEN_RATIO",
]

GOLDEN_RATIO = (1.0 + math.sqrt(5.0)) / 2.0


def dedicated_is_stable(rho_s: float, rho_l: float) -> bool:
    """Dedicated stability: each M/G/1 host below load one."""
    return rho_s < 1.0 and rho_l < 1.0


def dedicated_max_rho_s(rho_l: float) -> float:
    """Dedicated short-load boundary (independent of ``rho_l < 1``)."""
    return 1.0 if rho_l < 1.0 else 0.0


def cs_cq_is_stable(rho_s: float, rho_l: float) -> bool:
    """CS-CQ stability (Theorem 1): ``rho_l < 1`` and ``rho_s < 2 - rho_l``."""
    return rho_l < 1.0 and rho_s < 2.0 - rho_l


def cs_cq_max_rho_s(rho_l: float) -> float:
    """CS-CQ short-load boundary ``2 - rho_l``."""
    return 2.0 - rho_l if rho_l < 1.0 else 0.0


def cs_id_long_host_prob_busy(rho_s: float, rho_l: float) -> float:
    """P(long host busy) under CS-ID: ``(rho_s + rho_l)/(1 + rho_s)``.

    Closed form of the regenerative cycle (see module docstring); depends
    only on the two loads.  The long host's evolution is independent of
    the short host, so this is well-defined even when the short host
    itself is overloaded.
    """
    if rho_s < 0.0 or not 0.0 <= rho_l < 1.0:
        raise ValueError(
            f"need rho_s >= 0 and 0 <= rho_l < 1, got ({rho_s}, {rho_l})"
        )
    return (rho_s + rho_l) / (1.0 + rho_s)


def cs_id_long_host_prob_busy_from_cycle(
    rho_s: float, rho_l: float, mean_short: float = 1.0, mean_long: float = 1.0
) -> float:
    """Same probability computed from the explicit regenerative cycle.

    Kept as an independent derivation path; the tests assert it coincides
    with the closed form for any mean sizes (the means cancel).
    """
    from .cs_id import LongHostCycle

    params = SystemParameters(
        lam_s=rho_s / mean_short,
        lam_l=rho_l / mean_long,
        short_service=Exponential.from_mean(mean_short),
        long_service=Exponential.from_mean(mean_long),
    )
    return 1.0 - LongHostCycle(params).prob_idle


def cs_id_is_stable(rho_s: float, rho_l: float) -> bool:
    """CS-ID stability (Theorem 1): ``rho_l < 1`` and
    ``rho_s^2 + rho_s rho_l - rho_s - 1 < 0``."""
    if rho_l >= 1.0 or rho_s < 0.0:
        return False
    return rho_s * rho_s + rho_s * rho_l - rho_s - 1.0 < 0.0


def cs_id_max_rho_s(rho_l: float) -> float:
    """CS-ID short-load boundary (closed form, see module docstring)."""
    if rho_l >= 1.0:
        return 0.0
    one = 1.0 - rho_l
    return (one + math.sqrt(one * one + 4.0)) / 2.0
