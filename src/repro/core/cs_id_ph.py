"""CS-ID with phase-type short-job service.

Companion to :mod:`repro.core.cs_cq_ph`: drops the exponential-shorts
assumption from the CS-ID short-host QBD.  The donor (long) host is
autonomous under CS-ID, so — unlike the CS-CQ case — every donor-side
quantity is exact with no fixed-point iteration:

* the phase of the stolen short at the moment the first long "catches" it
  is ``eta ~ lam_l * beta (lam_l I - S)^{-1}`` (normalized) — the phase
  distribution of a PH at an independent exponential time, conditioned on
  not yet absorbed;
* the interval ``E`` during which the extra ``M`` longs of ``B_{M+1}``
  accumulate is then exactly ``PH(eta, S)`` (the remainder from the
  catch), matching :func:`caught_short_remainder_moments` (asserted in
  the tests);
* the long jobs' M/G/1-with-setup analysis of
  :class:`~repro.core.cs_id.LongHostCycle` already handles general shorts
  and is reused unchanged.

The short-host QBD's phase space becomes (donor state) x (service phase of
the short being served at the short host): donor states are IDLE, ``S(j)``
(stolen short in phase ``j``, no long waiting), ``S+(j)`` (ditto, >= 1 long
waiting), and the two busy-period PH blocks.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..busy_periods import (
    DelayBusyPeriod,
    MG1BusyPeriod,
    poisson_during_ph_factorial_moments,
    random_sum_moments,
)
from ..distributions import PhaseType, moments_of_sum
from ..markov import QbdProcess, QbdSolution
from ..robustness import NumericalError, SolverDiagnostics
from .cs_cq import fit_busy_period
from .cs_id import LongHostCycle
from .params import SystemParameters, UnstableSystemError

__all__ = ["CsIdPhAnalysis", "catch_phase_distribution"]


def catch_phase_distribution(short_ph: PhaseType, lam_l: float) -> np.ndarray:
    """Phase of a PH service at the first Poisson(``lam_l``) arrival,
    conditioned on the arrival landing before completion."""
    if lam_l <= 0.0:
        raise ValueError(f"lam_l must be positive, got {lam_l}")
    k = short_ph.n_phases
    weights = lam_l * short_ph.alpha @ np.linalg.inv(
        lam_l * np.eye(k) - short_ph.T
    )
    total = weights.sum()
    if total <= 0.0:
        raise NumericalError("degenerate catch-phase computation", value=float(total))
    return weights / total


class CsIdPhAnalysis:
    """CS-ID analysis with phase-type short service (exact donor side).

    Parameters
    ----------
    params:
        ``short_service`` may be any distribution with a phase-type
        representation; ``long_service`` is general.
    n_moments:
        Busy-period moments matched by the PH blocks (default 3).
    """

    def __init__(self, params: SystemParameters, n_moments: int = 3):
        self.params = params
        self.n_moments = n_moments
        self.cycle = LongHostCycle(params)  # handles general shorts exactly
        self.short_ph = params.short_service.as_phase_type()
        self.k = self.short_ph.n_phases
        if self.short_ph.alpha.sum() < 1.0 - 1e-9:
            raise ValueError("short service PH must have no atom at zero")
        p_busy = 1.0 - self.cycle.prob_idle
        if params.lam_s * p_busy * params.short_service.mean >= 1.0:
            raise UnstableSystemError(
                f"CS-ID short host unstable: rho_s * P(long host busy) = "
                f"{params.rho_s * p_busy:.4g} >= 1 (Theorem 1)"
            )
        lam_l = params.lam_l
        if lam_l > 0.0:
            self.busy_l = MG1BusyPeriod(lam_l, params.long_service)
            self._ph_l = fit_busy_period(
                self.busy_l.moments(), n_moments
            ).as_phase_type()
            self._ph_m1 = self._fit_bm1()
        else:
            from ..distributions import Exponential

            self.busy_l = None
            self._ph_l = Exponential(1.0).as_phase_type()  # unreachable filler
            self._ph_m1 = Exponential(1.0).as_phase_type()

    def _fit_bm1(self) -> PhaseType:
        """B_{M+1}: delay busy period started by the longs accumulated
        behind the caught short's (exact) PH remainder."""
        lam_l = self.params.lam_l
        eta = catch_phase_distribution(self.short_ph, lam_l)
        remainder = PhaseType(eta, self.short_ph.T)
        fact = poisson_during_ph_factorial_moments(lam_l, remainder.moments(3))
        x_moms = self.params.long_service.moments(3)
        work = moments_of_sum(x_moms, random_sum_moments(fact, x_moms))
        delay = DelayBusyPeriod(work, lam_l, self.params.long_service)
        return fit_busy_period(delay.moments(), self.n_moments).as_phase_type()

    # ------------------------------------------------------------------
    # Donor-state generator and QBD assembly
    # ------------------------------------------------------------------
    def _donor_blocks(self):
        """Off-diagonal donor-state rate matrix and the IDLE index."""
        lam_s, lam_l = self.params.lam_s, self.params.lam_l
        beta, s_mat, v = (
            self.short_ph.alpha,
            self.short_ph.T,
            self.short_ph.exit_rates,
        )
        s_off = s_mat - np.diag(np.diag(s_mat))
        alpha_l, t_l, exit_l = self._ph_l.alpha, self._ph_l.T, self._ph_l.exit_rates
        alpha_m, t_m, exit_m = (
            self._ph_m1.alpha,
            self._ph_m1.T,
            self._ph_m1.exit_rates,
        )
        k, k_l, k_m = self.k, self._ph_l.n_phases, self._ph_m1.n_phases

        idle = 0
        s_states = slice(1, 1 + k)
        sp_states = slice(1 + k, 1 + 2 * k)
        bl = slice(1 + 2 * k, 1 + 2 * k + k_l)
        bm = slice(1 + 2 * k + k_l, 1 + 2 * k + k_l + k_m)
        d = 1 + 2 * k + k_l + k_m

        donor = np.zeros((d, d))
        donor[idle, s_states] = lam_s * beta  # arrival steals the idle host
        if lam_l > 0.0:
            donor[idle, bl] = lam_l * alpha_l
            donor[s_states, sp_states] = lam_l * np.eye(k)
        donor[s_states, s_states] += s_off
        donor[np.arange(1, 1 + k), idle] += v  # uncaught short finishes
        donor[sp_states, sp_states] += s_off
        donor[sp_states, bm] += np.outer(v, alpha_m)  # caught short finishes
        donor[bl, bl] += t_l - np.diag(np.diag(t_l))
        donor[np.arange(bl.start, bl.stop), idle] += exit_l
        donor[bm, bm] += t_m - np.diag(np.diag(t_m))
        donor[np.arange(bm.start, bm.stop), idle] += exit_m
        return donor, idle, d

    def _build_qbd(self) -> QbdProcess:
        lam_s = self.params.lam_s
        beta, s_mat, v = (
            self.short_ph.alpha,
            self.short_ph.T,
            self.short_ph.exit_rates,
        )
        s_off = s_mat - np.diag(np.diag(s_mat))
        k = self.k
        donor, idle, d = self._donor_blocks()
        ident_k, ident_d = np.eye(k), np.eye(d)

        # Level >= 1 phases: (donor state) x (short-host service phase).
        a1 = np.kron(donor, ident_k) + np.kron(ident_d, s_off)
        not_idle = np.ones(d)
        not_idle[idle] = 0.0
        a0 = lam_s * np.kron(np.diag(not_idle), ident_k)
        a2 = np.kron(ident_d, np.outer(v, beta))

        # Level 0: donor state only.
        local0 = donor
        up0 = np.zeros((d, d * k))
        for donor_state in range(d):
            if donor_state == idle:
                continue  # the arrival is stolen by the donor instead
            up0[donor_state, donor_state * k : (donor_state + 1) * k] = lam_s * beta
        down1to0 = np.kron(ident_d, v[:, None])

        return QbdProcess(
            boundary_local=[local0],
            boundary_up=[up0],
            boundary_down=[down1to0],
            a0=a0,
            a1=a1,
            a2=a2,
        )

    @cached_property
    def solution(self) -> QbdSolution:
        """Stationary solution of the modulated short-host QBD."""
        return self._build_qbd().solve()

    @property
    def solver_diagnostics(self) -> SolverDiagnostics:
        """Diagnostics of the short-host QBD solve (method, rungs, residuals)."""
        return self.solution.diagnostics

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def prob_long_host_idle(self) -> float:
        """P(donor idle) from the QBD; must match the renewal cycle."""
        sol = self.solution
        k = self.k
        level0 = sol.level_vector(0)
        marginal = sol.phase_marginal()
        idle_mass = float(level0[0]) + float(marginal[:k].sum())
        return idle_mass

    def mean_number_short_at_short_host(self) -> float:
        """Mean number of shorts at the short host (queued or in service)."""
        return self.solution.mean_level()

    def mean_response_time_short(self) -> float:
        """Mean short response across both dispatch destinations."""
        if self.params.lam_s <= 0.0:
            raise ValueError("short response time undefined when lam_s == 0")
        p_idle = self.cycle.prob_idle
        rate_short_host = self.params.lam_s * (1.0 - p_idle)
        if rate_short_host <= 0.0:
            return self.params.short_service.mean
        t_short_host = self.mean_number_short_at_short_host() / rate_short_host
        return (
            p_idle * self.params.short_service.mean
            + (1.0 - p_idle) * t_short_host
        )

    def mean_response_time_long(self) -> float:
        """Mean long response (exact renewal cycle + M/G/1 with setup)."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        return self.cycle.mean_response_time_long()
