"""Shared system description for all task-assignment policies.

The model of the paper: two homogeneous hosts, Poisson arrivals of short
(beneficiary) jobs at rate ``lam_s`` and long (donor) jobs at rate
``lam_l``, generally-distributed non-preemptible service requirements
``X_S`` and ``X_L``, loads ``rho_s = lam_s E[X_S]`` and
``rho_l = lam_l E[X_L]`` (each load is relative to ONE host).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distributions import Distribution, Exponential, coxian_from_mean_scv
from ..robustness import (
    UnstableSystemError,
    ensure_finite_scalar,
    ensure_nonnegative_scalar,
)

__all__ = ["SystemParameters", "UnstableSystemError"]


@dataclass(frozen=True)
class SystemParameters:
    """Arrival rates and job-size distributions of the two-host system."""

    lam_s: float
    lam_l: float
    short_service: Distribution
    long_service: Distribution

    def __post_init__(self) -> None:
        # Reject NaN/inf/negative rates at construction — a single bad rate
        # otherwise surfaces much later as an unexplainable solver failure.
        object.__setattr__(self, "lam_s", ensure_nonnegative_scalar(self.lam_s, "lam_s"))
        object.__setattr__(self, "lam_l", ensure_nonnegative_scalar(self.lam_l, "lam_l"))
        for name in ("short_service", "long_service"):
            dist = getattr(self, name)
            mean = ensure_finite_scalar(dist.mean, f"{name}.mean")
            if mean <= 0.0:
                raise ValueError(f"{name} must have positive mean, got {mean}")

    @classmethod
    def from_loads(
        cls,
        rho_s: float,
        rho_l: float,
        mean_short: float = 1.0,
        mean_long: float = 1.0,
        short_scv: float = 1.0,
        long_scv: float = 1.0,
    ) -> "SystemParameters":
        """Build parameters from per-host loads and size statistics.

        This is the parameterization of every figure in the paper: loads
        ``(rho_s, rho_l)``, mean sizes (1 or 10), and a squared coefficient
        of variation for each class (1 = exponential; Figure 5 uses
        ``long_scv = 8``).
        """
        rho_s = ensure_nonnegative_scalar(rho_s, "rho_s")
        rho_l = ensure_nonnegative_scalar(rho_l, "rho_l")
        mean_short = ensure_finite_scalar(mean_short, "mean_short")
        mean_long = ensure_finite_scalar(mean_long, "mean_long")
        short = (
            Exponential.from_mean(mean_short)
            if short_scv == 1.0
            else coxian_from_mean_scv(mean_short, short_scv)
        )
        long = (
            Exponential.from_mean(mean_long)
            if long_scv == 1.0
            else coxian_from_mean_scv(mean_long, long_scv)
        )
        return cls(
            lam_s=rho_s / mean_short,
            lam_l=rho_l / mean_long,
            short_service=short,
            long_service=long,
        )

    @property
    def rho_s(self) -> float:
        """Load of short jobs relative to one host."""
        return self.lam_s * self.short_service.mean

    @property
    def rho_l(self) -> float:
        """Load of long jobs relative to one host."""
        return self.lam_l * self.long_service.mean

    @property
    def mu_s(self) -> float:
        """Service rate of short jobs; requires exponential shorts.

        The CS-CQ Markov chain (paper Section 2.2) assumes exponential short
        service inside the chain; this property enforces that assumption
        where the analysis relies on it.
        """
        if not isinstance(self.short_service, Exponential):
            raise TypeError(
                "this analysis requires exponential short-job service (the "
                "paper's chain assumption); got "
                f"{type(self.short_service).__name__}"
            )
        return self.short_service.rate

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"lam_s={self.lam_s:.4g} (rho_s={self.rho_s:.4g}), "
            f"lam_l={self.lam_l:.4g} (rho_l={self.rho_l:.4g}), "
            f"X_S={self.short_service!r}, X_L={self.long_service!r}"
        )
