"""Brute-force truncated 2D chain for CS-CQ with exponential job sizes.

The paper's Section 1 argues that truncating the 2D-infinite CS-CQ chain
"is neither sufficiently accurate nor robust ... especially at higher
traffic intensities" — motivating the busy-period-transition method.  This
module implements the truncation so that (a) the claim can be reproduced
quantitatively (see the truncation ablation benchmark) and (b) with a very
generous truncation at moderate load it serves as an *exact* independent
check of the QBD analysis for exponential sizes.

State space (exponential shorts rate ``mu_s``, exponential longs rate
``mu_l``; CS-CQ semantics with renamable hosts, so at most one long is ever
in service):

* ``(n_s, 0)`` — no longs; ``min(n_s, 2)`` shorts in service.
* ``(n_s, n_l, L)`` — ``n_l >= 1`` longs, one in service; ``min(n_s, 1)``
  shorts in service.
* ``(n_s, n_l, SS)`` — ``n_l >= 1`` longs all waiting while two shorts are
  in service (the paper's region 5); requires ``n_s >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions import Exponential
from ..markov import Ctmc
from .params import SystemParameters, UnstableSystemError

__all__ = ["CsCqTruncatedChain", "TruncatedResult"]


@dataclass(frozen=True)
class TruncatedResult:
    """Outputs of a truncated-chain solve."""

    mean_number_short: float
    mean_number_long: float
    mean_response_time_short: float
    mean_response_time_long: float
    truncation_mass: float
    """Stationary probability on the truncation boundary (n_s == max or n_l == max);
    large values signal an untrustworthy truncation."""


class CsCqTruncatedChain:
    """Exact CS-CQ dynamics on a finite ``(n_s, n_l)`` grid.

    Parameters
    ----------
    params:
        Both service distributions must be exponential.
    max_short, max_long:
        Truncation bounds (inclusive) on the two job counts.  Transitions
        that would exceed a bound are dropped (arrivals blocked), the
        standard truncation scheme the paper critiques.
    """

    def __init__(self, params: SystemParameters, max_short: int = 200, max_long: int = 200):
        if not isinstance(params.short_service, Exponential) or not isinstance(
            params.long_service, Exponential
        ):
            raise TypeError("truncated chain requires exponential short and long sizes")
        if params.rho_l >= 1.0 or params.rho_s >= 2.0 - params.rho_l:
            raise UnstableSystemError(
                f"outside CS-CQ stability region: rho_s={params.rho_s:.4g}, "
                f"rho_l={params.rho_l:.4g}"
            )
        if max_short < 3 or max_long < 2:
            raise ValueError("truncation bounds too small to contain the dynamics")
        self.params = params
        self.max_short = max_short
        self.max_long = max_long
        self._index: dict[tuple[int, int, str], int] = {}
        self._states: list[tuple[int, int, str]] = []
        self._enumerate_states()

    def _enumerate_states(self) -> None:
        def add(state: tuple[int, int, str]) -> None:
            self._index[state] = len(self._states)
            self._states.append(state)

        for n_s in range(self.max_short + 1):
            add((n_s, 0, "-"))
        for n_s in range(self.max_short + 1):
            for n_l in range(1, self.max_long + 1):
                add((n_s, n_l, "L"))
        for n_s in range(2, self.max_short + 1):
            for n_l in range(1, self.max_long + 1):
                add((n_s, n_l, "SS"))

    @property
    def n_states(self) -> int:
        """Number of states in the truncated chain."""
        return len(self._states)

    def _rates(self):
        """Build the (sparse) off-diagonal rate matrix of the truncation."""
        from scipy import sparse

        lam_s, lam_l = self.params.lam_s, self.params.lam_l
        mu_s = self.params.short_service.rate
        mu_l = self.params.long_service.rate
        idx = self._index
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []

        def add(i: int, state: tuple[int, int, str], rate: float) -> None:
            rows.append(i)
            cols.append(idx[state])
            vals.append(rate)

        for i, (n_s, n_l, cfg) in enumerate(self._states):
            if cfg == "-":
                if n_s < self.max_short:
                    add(i, (n_s + 1, 0, "-"), lam_s)
                if n_s >= 1:
                    add(i, (n_s - 1, 0, "-"), min(n_s, 2) * mu_s)
                if n_l < self.max_long:  # long arrival
                    if n_s <= 1:
                        add(i, (n_s, 1, "L"), lam_l)
                    else:
                        add(i, (n_s, 1, "SS"), lam_l)
            elif cfg == "L":
                if n_s < self.max_short:
                    add(i, (n_s + 1, n_l, "L"), lam_s)
                if n_l < self.max_long:
                    add(i, (n_s, n_l + 1, "L"), lam_l)
                if n_s >= 1:
                    add(i, (n_s - 1, n_l, "L"), mu_s)
                if n_l == 1:
                    add(i, (n_s, 0, "-"), mu_l)
                else:
                    add(i, (n_s, n_l - 1, "L"), mu_l)
            else:  # "SS": two shorts in service, longs all waiting
                if n_s < self.max_short:
                    add(i, (n_s + 1, n_l, "SS"), lam_s)
                if n_l < self.max_long:
                    add(i, (n_s, n_l + 1, "SS"), lam_l)
                # First of the two shorts finishes; freed host takes a long.
                add(i, (n_s - 1, n_l, "L"), 2.0 * mu_s)
        n = self.n_states
        return sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()

    def solve(self) -> TruncatedResult:
        """Solve the truncated chain and report means + truncation mass."""
        pi = Ctmc(self._rates(), is_rate_matrix=True).stationary_distribution()
        n_s_vals = np.array([s[0] for s in self._states], dtype=float)
        n_l_vals = np.array([s[1] for s in self._states], dtype=float)
        on_boundary = np.array(
            [s[0] == self.max_short or s[1] == self.max_long for s in self._states]
        )
        mean_ns = float(pi @ n_s_vals)
        mean_nl = float(pi @ n_l_vals)
        lam_s, lam_l = self.params.lam_s, self.params.lam_l
        return TruncatedResult(
            mean_number_short=mean_ns,
            mean_number_long=mean_nl,
            mean_response_time_short=mean_ns / lam_s if lam_s > 0 else float("nan"),
            mean_response_time_long=mean_nl / lam_l if lam_l > 0 else float("nan"),
            truncation_mass=float(pi[on_boundary].sum()),
        )
