"""CS-CQ with phase-type short-job service (the paper's sketched extension).

Section 2.2: "For simplicity in specifying the Markov chain, the service
time for the short job is assumed to be exponential ... although this is
straightforward to generalize using any phase-type (e.g., Coxian)
distribution [15, 11]."  This module performs that generalization.

With short service ``PH(beta, S)`` (``k`` phases, exit vector ``v``), the
chain's phases must carry the service phase of every short in service:

* levels ``n >= 2``: ``Z`` (no longs; two shorts in service, joint phase
  ``(i, j)``; ``k^2`` states), ``BL x i`` / ``BN x i`` (busy-period stage x
  phase of the single short in service), and ``W`` (region 5: long waiting
  while two shorts run; ``k^2`` states).
* level 1: ``Z1(i)``, ``BL x i``, ``BN x i``.
* level 0: ``EMPTY``, ``BL``, ``BN``.

Two paper-style approximations are carried over, plus one new one:

1. busy periods matched on three moments (as published);
2. no dependency between the region-5 sojourn and the following busy
   period (as published);
3. the interval ``E`` during which the extra ``N`` longs of ``B_{N+1}``
   accumulate is the *first completion* of the two in-service shorts
   started from the stationary region-2 joint phase ``eta`` — for
   exponential shorts ``E ~ Exp(2 mu_s)`` exactly (memorylessness) and the
   model reduces to :class:`~repro.core.cs_cq.CsCqAnalysis`; for general
   PH shorts ``eta`` depends on the solution, so we iterate the chain to a
   fixed point (converges in a handful of rounds).

The long jobs again see an M/G/1 with setup; the setup is now the
first-completion time of two PH shorts from ``eta`` (computed exactly as
a Kronecker-sum phase type), mixed with an atom at zero.
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np

from ..busy_periods import (
    DelayBusyPeriod,
    MG1BusyPeriod,
    poisson_during_ph_factorial_moments,
    random_sum_moments,
)
from ..distributions import PhaseType, moments_of_sum
from ..markov import QbdProcess, QbdSolution
from ..queueing import Mg1SetupQueue
from ..robustness import NumericalError, SolverDiagnostics
from .cs_cq import fit_busy_period
from .params import SystemParameters, UnstableSystemError

__all__ = ["CsCqPhAnalysis", "first_completion_of_two"]


def first_completion_of_two(
    short_ph: PhaseType, joint_initial: np.ndarray
) -> PhaseType:
    """PH of the time until the FIRST of two parallel PH services completes.

    The joint phase process lives on ``k^2`` states with generator the
    Kronecker sum ``S (+) S``; either job's exit absorbs.  ``joint_initial``
    is a distribution over ordered phase pairs (row-major ``i * k + j``).
    """
    s_mat = short_ph.T
    k = short_ph.n_phases
    ident = np.eye(k)
    kron_sum = np.kron(s_mat, ident) + np.kron(ident, s_mat)
    joint_initial = np.asarray(joint_initial, dtype=float).reshape(k * k)
    return PhaseType(joint_initial, kron_sum)


class CsCqPhAnalysis:
    """CS-CQ analysis with phase-type short service.

    Parameters
    ----------
    params:
        ``short_service`` may be any distribution with an exact or fitted
        phase-type representation; ``long_service`` is general (moments).
    n_moments:
        Busy-period moments matched (default 3, as in the paper).
    max_fixed_point_iter, fixed_point_tol:
        Controls for the ``eta`` fixed-point iteration (see module doc).
    """

    def __init__(
        self,
        params: SystemParameters,
        n_moments: int = 3,
        max_fixed_point_iter: int = 30,
        fixed_point_tol: float = 1e-10,
    ):
        if params.rho_l >= 1.0:
            raise UnstableSystemError(
                f"CS-CQ long jobs unstable: rho_l = {params.rho_l:.4g} >= 1"
            )
        if params.rho_s >= 2.0 - params.rho_l:
            raise UnstableSystemError(
                f"CS-CQ short jobs unstable: rho_s = {params.rho_s:.4g} >= "
                f"2 - rho_l = {2.0 - params.rho_l:.4g} (Theorem 1)"
            )
        self.params = params
        self.n_moments = n_moments
        self.short_ph = params.short_service.as_phase_type()
        self.k = self.short_ph.n_phases
        self._beta = self.short_ph.alpha
        self._s_mat = self.short_ph.T
        self._v = self.short_ph.exit_rates
        if self._beta.sum() < 1.0 - 1e-9:
            raise ValueError("short service PH must have no atom at zero")

        lam_l = params.lam_l
        self.busy_l = MG1BusyPeriod(lam_l, params.long_service)
        self._ph_l = fit_busy_period(self.busy_l.moments(), n_moments).as_phase_type()
        self._max_iter = max_fixed_point_iter
        self._tol = fixed_point_tol
        self._solve_fixed_point()

    # ------------------------------------------------------------------
    # Fixed point over the region-2 joint phase distribution eta
    # ------------------------------------------------------------------
    def _solve_fixed_point(self) -> None:
        k = self.k
        eta = np.kron(self._beta, self._beta)  # initial guess: fresh pair
        previous_mean = math.inf
        converged = False
        residual = math.inf
        for _ in range(self._max_iter):
            ph_n1 = self._fit_bn1(eta)
            solution = self._build_qbd(ph_n1).solve()
            mean_level = solution.mean_level()
            residual = abs(mean_level - previous_mean)
            eta_next = self._region2_joint(solution)
            converged = residual <= self._tol * max(1.0, mean_level)
            previous_mean = mean_level
            self._ph_n1 = ph_n1
            self._solution = solution
            self._eta = eta_next if eta_next is not None else eta
            if converged:
                break
            if eta_next is None:
                converged = True  # region 2 unreachable (e.g. lam_l == 0): exact
                break
            eta = eta_next
        if not converged:
            from ..robustness import ConvergenceError

            raise ConvergenceError(
                "CS-CQ phase-type fixed point did not converge",
                residual=residual,
                iterations=self._max_iter,
            )

    def _fit_bn1(self, eta: np.ndarray) -> PhaseType:
        """Fit the PH stand-in for B_{N+1} given the entry distribution."""
        lam_l = self.params.lam_l
        x_moms = self.params.long_service.moments(3)
        if lam_l == 0.0:
            return fit_busy_period(x_moms, self.n_moments).as_phase_type()
        interval = first_completion_of_two(self.short_ph, eta)
        fact = poisson_during_ph_factorial_moments(lam_l, interval.moments(3))
        extra = random_sum_moments(fact, x_moms)
        work = moments_of_sum(x_moms, extra)
        delay = DelayBusyPeriod(work, lam_l, self.params.long_service)
        return fit_busy_period(delay.moments(), self.n_moments).as_phase_type()

    def _region2_joint(self, solution: QbdSolution) -> "np.ndarray | None":
        """Conditional joint phase distribution of region 2 (levels >= 2)."""
        z_block = solution.phase_marginal()[: self.k * self.k]
        total = z_block.sum()
        if total <= 0.0:
            return None
        return z_block / total

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------
    def _layout(self, ph_n1: PhaseType):
        k = self.k
        k_l, k_n = self._ph_l.n_phases, ph_n1.n_phases
        z = slice(0, k * k)
        bl = slice(k * k, k * k + k_l * k)
        bn = slice(k * k + k_l * k, k * k + (k_l + k_n) * k)
        wait = slice(k * k + (k_l + k_n) * k, 2 * k * k + (k_l + k_n) * k)
        m = 2 * k * k + (k_l + k_n) * k
        return k_l, k_n, z, bl, bn, wait, m

    def _build_qbd(self, ph_n1: PhaseType) -> QbdProcess:
        lam_s, lam_l = self.params.lam_s, self.params.lam_l
        k = self.k
        beta, s_mat, v = self._beta, self._s_mat, self._v
        s_off = s_mat - np.diag(np.diag(s_mat))
        alpha_l, t_l, exit_l = self._ph_l.alpha, self._ph_l.T, self._ph_l.exit_rates
        alpha_n, t_n, exit_n = ph_n1.alpha, ph_n1.T, ph_n1.exit_rates
        k_l, k_n, z, bl, bn, wait, m = self._layout(ph_n1)
        ident_k = np.eye(k)

        def pair(i: int, j: int) -> int:
            return i * k + j

        # ----- repeating within-level block A1 -----
        a1 = np.zeros((m, m))
        # Z: PH-internal moves of each in-service short; long arrival -> W.
        joint_internal = np.kron(s_off, ident_k) + np.kron(ident_k, s_off)
        a1[z, z] += joint_internal
        a1[z, wait] += lam_l * np.eye(k * k)
        # W: same internal moves (both shorts still being served).
        a1[wait, wait] += joint_internal
        # BL block: busy-period stage x phase of the served short.
        a1[bl, bl] += np.kron(t_l - np.diag(np.diag(t_l)), ident_k)
        a1[bl, bl] += np.kron(np.eye(k_l), s_off)
        # BL exit at level >= 2: freed host starts the next queued short.
        bl_to_z = np.zeros((k_l * k, k * k))
        for p in range(k_l):
            for i in range(k):
                for j2 in range(k):
                    bl_to_z[p * k + i, pair(i, j2)] += exit_l[p] * beta[j2]
        a1[bl, z] += bl_to_z
        # BN block: identical structure with its own PH.
        a1[bn, bn] += np.kron(t_n - np.diag(np.diag(t_n)), ident_k)
        a1[bn, bn] += np.kron(np.eye(k_n), s_off)
        bn_to_z = np.zeros((k_n * k, k * k))
        for q in range(k_n):
            for i in range(k):
                for j2 in range(k):
                    bn_to_z[q * k + i, pair(i, j2)] += exit_n[q] * beta[j2]
        a1[bn, z] += bn_to_z

        # ----- repeating up block -----
        a0 = lam_s * np.eye(m)

        # ----- repeating down block A2 (n >= 3 -> n - 1) -----
        a2 = np.zeros((m, m))
        # Z: one of the two completes; survivor keeps phase, queued starts.
        z_down = np.zeros((k * k, k * k))
        for i in range(k):
            for j in range(k):
                for j2 in range(k):
                    z_down[pair(i, j), pair(j, j2)] += v[i] * beta[j2]
                    z_down[pair(i, j), pair(i, j2)] += v[j] * beta[j2]
        a2[z, z] += z_down
        # BL / BN: the served short completes; next queued short starts.
        a2[bl, bl] += np.kron(np.eye(k_l), np.outer(v, beta))
        a2[bn, bn] += np.kron(np.eye(k_n), np.outer(v, beta))
        # W: first completion -> freed host takes the long; B_{N+1} starts
        # with the surviving short still in service.
        w_down = np.zeros((k * k, k_n * k))
        for i in range(k):
            for j in range(k):
                for q in range(k_n):
                    w_down[pair(i, j), q * k + j] += v[i] * alpha_n[q]
                    w_down[pair(i, j), q * k + i] += v[j] * alpha_n[q]
        a2[wait, bn] += w_down

        # ----- boundary level 0: EMPTY, BL0, BN0 -----
        d0 = 1 + k_l + k_n
        local0 = np.zeros((d0, d0))
        local0[0, 1 : 1 + k_l] = lam_l * alpha_l
        local0[1 : 1 + k_l, 1 : 1 + k_l] += t_l - np.diag(np.diag(t_l))
        local0[1 : 1 + k_l, 0] += exit_l
        local0[1 + k_l :, 1 + k_l :] += t_n - np.diag(np.diag(t_n))
        local0[1 + k_l :, 0] += exit_n

        # ----- boundary level 1: Z1 (k), BL1 (k_l*k), BN1 (k_n*k) -----
        d1 = k + (k_l + k_n) * k
        z1 = slice(0, k)
        bl1 = slice(k, k + k_l * k)
        bn1 = slice(k + k_l * k, d1)
        local1 = np.zeros((d1, d1))
        local1[z1, z1] += s_off
        # Long arrival in region 1: the idle host serves it (B_L starts).
        z1_to_bl1 = np.zeros((k, k_l * k))
        for i in range(k):
            for p in range(k_l):
                z1_to_bl1[i, p * k + i] += lam_l * alpha_l[p]
        local1[z1, bl1] += z1_to_bl1
        local1[bl1, bl1] += np.kron(t_l - np.diag(np.diag(t_l)), ident_k)
        local1[bl1, bl1] += np.kron(np.eye(k_l), s_off)
        bl1_to_z1 = np.zeros((k_l * k, k))
        for p in range(k_l):
            bl1_to_z1[p * k : (p + 1) * k, :] += exit_l[p] * ident_k
        local1[bl1, z1] += bl1_to_z1
        local1[bn1, bn1] += np.kron(t_n - np.diag(np.diag(t_n)), ident_k)
        local1[bn1, bn1] += np.kron(np.eye(k_n), s_off)
        bn1_to_z1 = np.zeros((k_n * k, k))
        for q in range(k_n):
            bn1_to_z1[q * k : (q + 1) * k, :] += exit_n[q] * ident_k
        local1[bn1, z1] += bn1_to_z1

        # ----- up 0 -> 1: the arriving short starts service immediately -----
        up0 = np.zeros((d0, d1))
        up0[0, z1] = lam_s * beta
        for p in range(k_l):
            up0[1 + p, k + p * k : k + (p + 1) * k] = lam_s * beta
        for q in range(k_n):
            up0[1 + k_l + q, k + k_l * k + q * k : k + k_l * k + (q + 1) * k] = (
                lam_s * beta
            )

        # ----- up 1 -> 2 -----
        up1 = np.zeros((d1, m))
        # Z1(i) -> Z(i, new beta): the second host takes the arrival.
        for i in range(k):
            for j2 in range(k):
                up1[i, pair(i, j2)] += lam_s * beta[j2]
        # BL1/BN1: the arrival queues (phase preserved).
        up1[bl1, bl] = lam_s * np.eye(k_l * k)
        up1[bn1, bn] = lam_s * np.eye(k_n * k)

        # ----- down 1 -> 0 -----
        down1 = np.zeros((d1, d0))
        down1[z1, 0] = v
        for p in range(k_l):
            down1[k + p * k : k + (p + 1) * k, 1 + p] = v
        for q in range(k_n):
            down1[k + k_l * k + q * k : k + k_l * k + (q + 1) * k, 1 + k_l + q] = v

        # ----- down 2 -> 1 -----
        down2 = np.zeros((m, d1))
        # Z at level 2: survivor continues alone; no queued short.
        for i in range(k):
            for j in range(k):
                down2[pair(i, j), j] += v[i]
                down2[pair(i, j), i] += v[j]
        # BL/BN at level 2: the served short completes, queued one starts.
        down2[bl, bl1] = np.kron(np.eye(k_l), np.outer(v, beta))
        down2[bn, bn1] = np.kron(np.eye(k_n), np.outer(v, beta))
        # W at level 2: freed host takes the long; survivor keeps serving.
        for i in range(k):
            for j in range(k):
                for q in range(k_n):
                    row = wait.start + pair(i, j)
                    down2[row, k + k_l * k + q * k + j] += v[i] * alpha_n[q]
                    down2[row, k + k_l * k + q * k + i] += v[j] * alpha_n[q]

        return QbdProcess(
            boundary_local=[local0, local1],
            boundary_up=[up0, up1],
            boundary_down=[down1, down2],
            a0=a0,
            a1=a1,
            a2=a2,
        )

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    @property
    def solution(self) -> QbdSolution:
        """Stationary solution at the eta fixed point."""
        return self._solution

    @property
    def solver_diagnostics(self) -> SolverDiagnostics:
        """Diagnostics of the fixed-point QBD solve."""
        return self._solution.diagnostics

    def mean_number_short(self) -> float:
        """Mean number of short jobs in the system."""
        return self._solution.mean_level()

    def mean_response_time_short(self) -> float:
        """Mean short response time (Little's law)."""
        if self.params.lam_s <= 0.0:
            raise ValueError("short response time undefined when lam_s == 0")
        return self.mean_number_short() / self.params.lam_s

    def region_probabilities(self) -> tuple[float, float]:
        """(P(region 1), P(region 2)) — zero longs with a free host vs not."""
        sol = self._solution
        region1 = float(sol.level_vector(0)[0] + sol.level_vector(1)[: self.k].sum())
        region2 = float(sol.phase_marginal()[: self.k * self.k].sum())
        return region1, region2

    def setup_moments(self) -> tuple[float, float]:
        """Setup of the long busy periods: 0, or first completion of the
        two in-service shorts from the region-2 joint phases."""
        region1, region2 = self.region_probabilities()
        total = region1 + region2
        if total <= 0.0:
            raise NumericalError(
                "regions 1 and 2 have zero probability",
                region1=region1,
                region2=region2,
            )
        p_setup = region2 / total
        if p_setup == 0.0:
            return 0.0, 0.0
        interval = first_completion_of_two(self.short_ph, self._eta)
        return p_setup * interval.moment(1), p_setup * interval.moment(2)

    def mean_response_time_long(self) -> float:
        """Mean long response time: M/G/1 with the PH-remainder setup."""
        if self.params.lam_l <= 0.0:
            raise ValueError("long response time undefined when lam_l == 0")
        queue = Mg1SetupQueue(
            self.params.lam_l, self.params.long_service, self.setup_moments()
        )
        return queue.mean_response_time()
