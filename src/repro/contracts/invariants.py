"""The concrete invariant contracts.

Registered at import time (importing :mod:`repro.contracts` is enough).
Grouped by subject kind:

``solution``  — raw :class:`~repro.markov.qbd.QbdSolution` checks:
    normalization, nonnegativity, solver residual bounds, and a
    closed-form-vs-brute-force consistency check of the geometric-tail
    moment algebra.
``analysis``  — policy-level checks: Little's law per job class, region
    probabilities forming a distribution fragment, and short-job flow
    balance through the CS-CQ chain (throughput in = throughput out).
``truncated`` — :class:`~repro.core.cs_cq_truncated.TruncatedResult`
    checks: the truncation must hold negligible boundary mass to be
    trusted as an oracle reference.
``simulation`` — :class:`~repro.simulation.engine.SimulationResult`
    checks: response = waiting + service decomposition against the known
    ``E[X]`` (tolerance scaled by sampling noise), and sanity of the
    summary fields.
``point``     — cross-policy dominance at one load point (the paper's
    Section 3 ordering: CS-CQ beats CS-ID beats Dedicated for shorts,
    and the reverse penalty ordering for longs).
``series``    — monotonicity of mean response time (equivalently mean
    slowdown, since ``E[X]`` is fixed along a sweep) in the swept load.
"""

from __future__ import annotations

import math

import numpy as np

from .registry import ContractResult, _require_finite, contract, rel_diff

__all__ = ["check_monotone_series", "point_dominance_results"]

#: Tolerances, by check character: identities that must hold to round-off
#: get EXACT; cross-representation consistency (closed form vs partial
#: sums) gets CONSISTENCY; anything fed by sampling noise computes its own.
EXACT = 1e-8
CONSISTENCY = 1e-5
PROB_SLACK = 1e-9


# --------------------------------------------------------------------- #
# solution: raw QbdSolution invariants
# --------------------------------------------------------------------- #


@contract(
    "stationary-normalization",
    "solution",
    "total stationary mass (boundary + geometric tail) equals 1",
)
def _normalization(solution) -> ContractResult:
    total = _require_finite(solution.total_mass(), "total stationary mass")
    return ContractResult(
        name="stationary-normalization",
        passed=abs(total - 1.0) <= 1e-6,
        observed=total,
        expected=1.0,
        tolerance=1e-6,
    )


@contract(
    "nonnegative-probabilities",
    "solution",
    "no stationary sub-vector entry is materially negative",
)
def _nonnegative(solution) -> ContractResult:
    vectors = [*solution.boundary_pi, solution.pi_repeat, solution.phase_marginal()]
    lowest = min(float(np.min(v)) for v in vectors if v.size)
    if not math.isfinite(lowest):
        lowest = float("-inf")
    return ContractResult(
        name="nonnegative-probabilities",
        passed=lowest >= -PROB_SLACK,
        observed=lowest,
        expected=0.0,
        tolerance=PROB_SLACK,
    )


@contract(
    "balance-residual",
    "solution",
    "recorded solver residuals stay below the trust bounds",
)
def _balance_residual(solution) -> "list[ContractResult] | None":
    diag = solution.diagnostics
    if diag is None:
        return None
    results = []
    for label, value in (
        ("quadratic", diag.residual),
        ("boundary", diag.boundary_residual),
    ):
        if value is None:
            continue
        value = float(value)
        passed = math.isfinite(value) and value <= 1e-6
        results.append(
            ContractResult(
                name="balance-residual",
                passed=passed,
                observed=value,
                expected=0.0,
                tolerance=1e-6,
                detail=f"{label} residual",
            )
        )
    return results or None


@contract(
    "tail-moment-consistency",
    "solution",
    "closed-form E[level] matches brute-force level-by-level summation",
)
def _tail_moment(solution) -> "ContractResult | None":
    # The closed form is pi_b (I-R)^{-1}/(I-R)^{-2} algebra; the partial
    # sum walks pi_b R^k level by level — an independent route to the same
    # number, which is exactly what catches a mis-solved R or boundary.
    sp_r = float(solution.tail_spectral_radius)
    if sp_r > 0.9995:  # partial sums would need ~1e5 levels; undecidable
        return None
    closed = _require_finite(solution.mean_level(), "closed-form mean level")
    partial = 0.0
    mass = 0.0
    for level, vector in enumerate(solution.boundary_pi):
        contribution = float(vector.sum())
        partial += level * contribution
        mass += contribution
    vector = np.array(solution.pi_repeat, dtype=float)
    level = solution.first_repeating_level
    r = solution.r_matrix
    while mass < 1.0 - 1e-13 and level < 200_000:
        contribution = float(vector.sum())
        partial += level * contribution
        mass += contribution
        vector = vector @ r
        level += 1
    return ContractResult(
        name="tail-moment-consistency",
        passed=rel_diff(partial, closed) <= CONSISTENCY,
        observed=partial,
        expected=closed,
        tolerance=CONSISTENCY,
        detail=f"summed {level} levels, mass {mass:.12f}",
    )


# --------------------------------------------------------------------- #
# analysis: policy-level invariants
# --------------------------------------------------------------------- #


def _littles_law(analysis, params, job_class: str) -> "ContractResult | None":
    lam = params.lam_s if job_class == "short" else params.lam_l
    number_fn = getattr(analysis, f"mean_number_{job_class}", None)
    response_fn = getattr(analysis, f"mean_response_time_{job_class}", None)
    if lam <= 0.0 or number_fn is None or response_fn is None:
        return None
    observed = _require_finite(number_fn(), f"E[N_{job_class}]")
    expected = lam * _require_finite(response_fn(), f"E[T_{job_class}]")
    return ContractResult(
        name=f"littles-law-{job_class}",
        passed=rel_diff(observed, expected) <= EXACT,
        observed=observed,
        expected=expected,
        tolerance=EXACT,
        detail=f"E[N] vs lambda E[T], lambda={lam:g}",
    )


@contract(
    "littles-law-short",
    "analysis",
    "E[N_S] = lambda_S E[T_S] on the analytic result",
)
def _littles_short(analysis, params=None) -> "ContractResult | None":
    params = params if params is not None else analysis.params
    return _littles_law(analysis, params, "short")


@contract(
    "littles-law-long",
    "analysis",
    "E[N_L] = lambda_L E[T_L] on the analytic result",
)
def _littles_long(analysis, params=None) -> "ContractResult | None":
    params = params if params is not None else analysis.params
    return _littles_law(analysis, params, "long")


@contract(
    "region-probability-fragment",
    "analysis",
    "CS-CQ regions 1 and 2 form a probability fragment with a valid mixture",
)
def _region_fragment(analysis, params=None) -> "list[ContractResult] | None":
    if not hasattr(analysis, "region_probabilities") or getattr(
        analysis, "degraded", False
    ):
        return None
    regions = analysis.region_probabilities()
    region1 = _require_finite(regions.region1, "region 1 probability")
    region2 = _require_finite(regions.region2, "region 2 probability")
    p_zero = _require_finite(regions.p_setup_zero, "P(setup = 0)")
    total = region1 + region2
    return [
        ContractResult(
            name="region-probability-fragment",
            passed=(
                region1 >= -PROB_SLACK
                and region2 >= -PROB_SLACK
                and total <= 1.0 + PROB_SLACK
            ),
            observed=total,
            expected=1.0,
            tolerance=PROB_SLACK,
            detail="0 <= P(region 1) + P(region 2) <= 1",
        ),
        ContractResult(
            name="region-probability-fragment",
            passed=-PROB_SLACK <= p_zero <= 1.0 + PROB_SLACK,
            observed=p_zero,
            expected=0.5,
            tolerance=PROB_SLACK,
            detail="P(setup = 0) is a probability",
        ),
    ]


@contract(
    "short-throughput-balance",
    "analysis",
    "short departure rate through the CS-CQ chain equals lambda_S",
)
def _short_throughput(analysis, params=None) -> "ContractResult | None":
    """Flow balance: in steady state shorts leave as fast as they arrive.

    The departure rate is read off the solved chain state by state (how
    many hosts serve shorts in each phase/level), which exercises the
    stationary vector in a way none of the mean-value formulas do.
    """
    params = params if params is not None else analysis.params
    if (
        not hasattr(analysis, "_ph_n1")  # only CS-CQ has the setup phases
        or getattr(analysis, "degraded", False)
        or params.lam_s <= 0.0
    ):
        return None
    solution = analysis.solution
    mu_s = analysis.mu_s
    k_l = analysis._ph_l.n_phases
    k_n = analysis._ph_n1.n_phases
    # Level 1 (boundary): one short in service whatever the phase.
    level1 = float(solution.level_vector(1).sum())
    # Levels >= 2 (repeating): ZERO_L and WAIT serve two shorts, the busy-
    # period phases serve one (the other host works the long busy period).
    marginal = solution.phase_marginal()
    zero_l = float(marginal[0])
    busy = float(marginal[1 : 1 + k_l + k_n].sum())
    wait = float(marginal[-1])
    observed = mu_s * (level1 + 2.0 * (zero_l + wait) + busy)
    return ContractResult(
        name="short-throughput-balance",
        passed=rel_diff(observed, params.lam_s) <= 1e-6,
        observed=observed,
        expected=params.lam_s,
        tolerance=1e-6,
        detail="state-weighted service rate vs arrival rate",
    )


# --------------------------------------------------------------------- #
# truncated: finite-chain reference trustworthiness
# --------------------------------------------------------------------- #


@contract(
    "truncation-mass",
    "truncated",
    "stationary mass on the truncation boundary is negligible",
)
def _truncation_mass(result, tolerance: float = 1e-6) -> ContractResult:
    mass = _require_finite(result.truncation_mass, "truncation mass")
    return ContractResult(
        name="truncation-mass",
        passed=mass <= tolerance,
        observed=mass,
        expected=0.0,
        tolerance=tolerance,
        detail="P(n_s == max_short or n_l == max_long)",
    )


# --------------------------------------------------------------------- #
# simulation: summary sanity + decomposition identities
# --------------------------------------------------------------------- #


def _decomposition(result, params, job_class: str) -> "ContractResult | None":
    n = getattr(result, f"n_measured_{job_class}")
    if n < 100:  # too few jobs for the noise model to mean anything
        return None
    response = _require_finite(
        getattr(result, f"mean_response_{job_class}"), f"E[T_{job_class}]"
    )
    waiting = _require_finite(
        getattr(result, f"mean_waiting_{job_class}"), f"E[W_{job_class}]"
    )
    dist = params.short_service if job_class == "short" else params.long_service
    mean = _require_finite(dist.mean, "service mean")
    if mean <= 0.0:
        return None
    # Per job, response = waiting + service exactly, so the means differ
    # from E[X] only by the sampling error of the measured service draws:
    # ~ cv/sqrt(n) relative, given an 8-sigma allowance.
    m2 = float(dist.moment(2)) if hasattr(dist, "moment") else float("nan")
    cv = math.sqrt(max(m2 - mean * mean, 0.0)) / mean if math.isfinite(m2) else 1.0
    tolerance = max(0.02, 8.0 * cv / math.sqrt(n))
    observed = response - waiting
    return ContractResult(
        name=f"sim-response-decomposition-{job_class}",
        passed=rel_diff(observed, mean) <= tolerance,
        observed=observed,
        expected=mean,
        tolerance=tolerance,
        detail=f"mean response minus mean waiting vs E[X] over {n} jobs",
    )


@contract(
    "sim-response-decomposition-short",
    "simulation",
    "simulated short response minus waiting recovers E[X_S]",
)
def _sim_decomposition_short(result, params=None) -> "ContractResult | None":
    if params is None:
        return None
    return _decomposition(result, params, "short")


@contract(
    "sim-response-decomposition-long",
    "simulation",
    "simulated long response minus waiting recovers E[X_L]",
)
def _sim_decomposition_long(result, params=None) -> "ContractResult | None":
    if params is None:
        return None
    return _decomposition(result, params, "long")


@contract(
    "sim-summary-sane",
    "simulation",
    "simulation summary fields are finite, nonnegative and consistent",
)
def _sim_sane(result, params=None) -> "list[ContractResult]":
    idle = _require_finite(result.frac_long_host_idle, "long-host idle fraction")
    checks = [
        ContractResult(
            name="sim-summary-sane",
            passed=-PROB_SLACK <= idle <= 1.0 + PROB_SLACK,
            observed=idle,
            expected=0.5,
            tolerance=PROB_SLACK,
            detail="long-host idle fraction is a probability",
        )
    ]
    for job_class in ("short", "long"):
        if getattr(result, f"n_measured_{job_class}") == 0:
            continue
        waiting = _require_finite(
            getattr(result, f"mean_waiting_{job_class}"), f"E[W_{job_class}]"
        )
        checks.append(
            ContractResult(
                name="sim-summary-sane",
                passed=waiting >= -1e-12,
                observed=waiting,
                expected=0.0,
                tolerance=1e-12,
                detail=f"mean {job_class} waiting time is nonnegative",
            )
        )
    return checks


# --------------------------------------------------------------------- #
# point: cross-policy dominance at one load point
# --------------------------------------------------------------------- #

_DOMINANCE_SLACK = 1e-6

#: Expected orderings (paper Section 3): lists of labels from best to
#: worst for each job class; NaN (unstable/skipped) entries break the
#: chain at that link without failing it.
_ORDERINGS = {
    "short": ("CS-Central-Q", "CS-Immed-Disp", "Dedicated"),
    "long": ("Dedicated", "CS-Central-Q", "CS-Immed-Disp"),
}


def point_dominance_results(
    values: "dict[str, float]", job_class: str
) -> "list[ContractResult]":
    """Dominance-ordering results for one sweep point's value dict."""
    ordering = _ORDERINGS.get(job_class)
    if ordering is None:
        return []
    results = []
    for better, worse in zip(ordering, ordering[1:]):
        lo = values.get(better)
        hi = values.get(worse)
        if lo is None or hi is None:
            continue
        lo, hi = float(lo), float(hi)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            continue  # a NaN link means a policy was unstable there
        slack = _DOMINANCE_SLACK * max(abs(lo), abs(hi), 1.0)
        results.append(
            ContractResult(
                name=f"dominance-{job_class}",
                passed=lo <= hi + slack,
                observed=lo,
                expected=hi,
                tolerance=slack,
                detail=f"{better} must not exceed {worse} for {job_class} jobs",
            )
        )
    return results


@contract(
    "dominance-short",
    "point",
    "short jobs: CS-CQ <= CS-ID <= Dedicated mean response time",
)
def _dominance_short(values, job_class=None) -> "list[ContractResult] | None":
    if job_class != "short":
        return None
    return point_dominance_results(values, "short") or None


@contract(
    "dominance-long",
    "point",
    "long jobs: Dedicated <= CS-CQ <= CS-ID mean response time",
)
def _dominance_long(values, job_class=None) -> "list[ContractResult] | None":
    if job_class != "long":
        return None
    return point_dominance_results(values, "long") or None


# --------------------------------------------------------------------- #
# series: monotonicity across sweep points
# --------------------------------------------------------------------- #


def check_monotone_series(
    xs, ys, label: str = "", slack: float = 1e-6
) -> "list[ContractResult]":
    """Mean response (slowdown) must be nondecreasing in the swept load.

    With fixed size distributions, heavier load can only slow a work-
    conserving policy down; a decrease between adjacent sweep points
    means at least one of the two solves is wrong.  NaN points (beyond a
    stability boundary, or failed and skipped) break the comparison
    chain without failing it.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    results = []
    previous = None  # (x, y) of the last finite point
    for x, y in zip(xs, ys):
        if not (math.isfinite(x) and math.isfinite(y)):
            previous = None
            continue
        if previous is not None:
            x0, y0 = previous
            allowance = slack * max(abs(y0), abs(y), 1.0)
            if y < y0 - allowance:
                results.append(
                    ContractResult(
                        name="monotone-in-load",
                        passed=False,
                        observed=y,
                        expected=y0,
                        tolerance=allowance,
                        detail=(
                            f"{label} decreased from {y0:.6g} at x={x0:g} "
                            f"to {y:.6g} at x={x:g}"
                        ),
                    )
                )
        previous = (x, y)
    if not results:
        results.append(
            ContractResult(
                name="monotone-in-load",
                passed=True,
                observed=float("nan"),
                expected=float("nan"),
                tolerance=slack,
                detail=label,
            )
        )
    return results


@contract(
    "monotone-in-load",
    "series",
    "mean response time is nondecreasing in the swept load",
)
def _monotone(series, label: str = "", slack: float = 1e-6):
    xs, ys = series
    return check_monotone_series(xs, ys, label=label, slack=slack)
