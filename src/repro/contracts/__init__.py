"""Self-verifying numerics: invariant contracts and a cross-method oracle.

The hardening layer (:mod:`repro.robustness`) catches solves that *fail
loudly* — divergence, ill-conditioning, invalid inputs.  This package
catches the scarier failure: a solve that converges and returns the
wrong answer.  Two mechanisms:

``registry`` / ``invariants``
    A declarative registry of named invariant contracts (Little's law,
    flow balance, normalization, policy dominance, monotonicity in
    load, ...) evaluated against analysis objects, raw QBD solutions,
    simulation summaries, figure points and swept series.  Failures are
    data (:class:`ContractResult`) or, via :func:`enforce`, typed
    :class:`~repro.robustness.ContractViolation` errors.
``oracle`` / ``report``
    A cross-method consistency oracle comparing the CS-CQ QBD analysis,
    the truncated-chain reference and replicated simulation at a point,
    classifying it agree / suspect / inconclusive with adaptive
    simulation escalation, plus the JSON verdict report behind
    ``python -m repro check``.

Contract evaluation in figure sweeps is on by default; set the
``REPRO_NO_CONTRACTS`` environment variable (or pass ``--no-contracts``
to the figure CLI, which sets it) to opt out.  An environment variable —
rather than a task kwarg — keeps sweep-point content hashes stable and
crosses the worker process boundary for free.
"""

import os

# Importing these modules registers every built-in contract.
from . import invariants  # noqa: F401
from . import answers  # noqa: F401
from .invariants import check_monotone_series, point_dominance_results
from .oracle import (
    CLASSIFICATIONS,
    MethodComparison,
    OracleConfig,
    PointVerdict,
    check_point,
    classify_values,
)
from .registry import (
    Contract,
    ContractResult,
    contract,
    contracts_for,
    enforce,
    evaluate,
    rel_diff,
    registered_contracts,
)
from .report import summarize_verdicts, suspects_by_cost, write_check_report

__all__ = [
    "CLASSIFICATIONS",
    "Contract",
    "ContractResult",
    "MethodComparison",
    "OracleConfig",
    "PointVerdict",
    "check_monotone_series",
    "check_point",
    "classify_values",
    "contract",
    "contracts_enabled",
    "contracts_for",
    "enforce",
    "evaluate",
    "point_dominance_results",
    "registered_contracts",
    "rel_diff",
    "summarize_verdicts",
    "suspects_by_cost",
    "write_check_report",
]


def contracts_enabled() -> bool:
    """Whether in-sweep contract hooks are active (default: yes).

    Disabled by setting ``REPRO_NO_CONTRACTS`` to anything non-empty;
    read at call time so tests can flip it per-case.
    """
    return not os.environ.get("REPRO_NO_CONTRACTS")
