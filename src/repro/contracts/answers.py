"""Contracts on service answers: the fidelity tag must be earned.

The query service (:mod:`repro.service`) promises that every answer is
tagged with the fidelity level that *actually produced* its numbers and
that the deadline budget was honored.  These contracts make the promise
checkable — the service evaluates them before releasing an answer, and
the chaos harness enforces them over a whole batch, so a mis-tagged or
deadline-blown answer is a test failure, not a log line.

Subject kind ``"service-answer"``: a
:class:`~repro.service.ServiceAnswer` (or its ``as_dict()`` form — both
are accepted so manifests can be re-checked after the fact).
"""

from __future__ import annotations

import math
from typing import Any

from .registry import ContractResult, contract

__all__ = ["answer_fields"]

#: Slack added to the deadline check: the budget bounds *solver* work,
#: and the final bookkeeping (verdict, manifest row) costs a little more.
DEADLINE_SLACK = 0.25

_FIDELITY_LEVELS = ("exact", "cached", "truncated", "bound")


def answer_fields(subject: Any) -> "dict[str, Any]":
    """Normalize a ServiceAnswer or its dict form into one field dict."""
    if isinstance(subject, dict):
        return subject
    if hasattr(subject, "as_dict"):
        return subject.as_dict()
    raise TypeError(
        f"service-answer contracts need a ServiceAnswer or dict, "
        f"got {type(subject).__name__}"
    )


@contract(
    "answer-fidelity-tag",
    "service-answer",
    "an answered query carries a valid fidelity tag matching the one "
    "rung its attempt log accepted",
)
def _fidelity_tag(subject) -> "list[ContractResult] | None":
    fields = answer_fields(subject)
    if fields.get("status") != "answered":
        return None
    fidelity = fields.get("fidelity")
    valid = fidelity in _FIDELITY_LEVELS
    accepted = [
        a.get("rung")
        for a in fields.get("attempts", ())
        if a.get("outcome") == "accepted"
    ]
    consistent = valid and accepted == [fidelity]
    return [
        ContractResult(
            name="answer-fidelity-tag",
            passed=consistent,
            observed=float(len(accepted)),
            expected=1.0,
            tolerance=0.0,
            detail=(
                f"fidelity={fidelity!r}, accepted rungs={accepted}"
                if not consistent
                else ""
            ),
        )
    ]


@contract(
    "answer-deadline-honored",
    "service-answer",
    "elapsed wall time stays within the deadline budget (plus slack)",
)
def _deadline_honored(subject) -> "ContractResult | None":
    fields = answer_fields(subject)
    deadline = fields.get("deadline")
    if deadline is None:
        return None
    elapsed = float(fields.get("elapsed") or 0.0)
    limit = float(deadline) + DEADLINE_SLACK
    return ContractResult(
        name="answer-deadline-honored",
        passed=elapsed <= limit,
        observed=elapsed,
        expected=float(deadline),
        tolerance=DEADLINE_SLACK,
        detail="" if elapsed <= limit else "query outlived its deadline budget",
    )


@contract(
    "answer-within-bounds",
    "service-answer",
    "every finite reported value lies inside the answer's own certified "
    "coarse bounds",
)
def _within_bounds(subject) -> "list[ContractResult] | None":
    fields = answer_fields(subject)
    if fields.get("status") != "answered":
        return None
    values = fields.get("values") or {}
    bounds = fields.get("bounds") or {}
    results = []
    for policy, value in values.items():
        b = bounds.get(policy)
        if b is None or value is None or not math.isfinite(value):
            continue
        # Mirror the service-side validator's slack (BOUNDS_SLACK): the
        # contract re-checks what validation already guaranteed.
        lower = float(b["lower"]) * 0.95 if b["stable"] else float("inf")
        upper = float(b["upper"]) * 1.05 if b["stable"] else float("-inf")
        ok = bool(b["stable"]) and lower <= value and (
            not math.isfinite(upper) or value <= upper
        )
        results.append(
            ContractResult(
                name="answer-within-bounds",
                passed=ok,
                observed=float(value),
                expected=float(b["upper"]) if b["stable"] else float("nan"),
                tolerance=0.05,
                detail="" if ok else f"{policy} value escapes its certified bounds",
            )
        )
    return results or None
