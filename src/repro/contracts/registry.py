"""Declarative invariant-contract registry.

A *contract* is a named invariant that a result must satisfy — exactly
(Little's law on a chain whose response time IS ``E[N]/lambda`` holds to
round-off) or within a stated tolerance (a simulated service mean matches
``E[X]`` only up to sampling noise).  Contracts are registered once, per
*kind* of subject they apply to:

``"analysis"``
    An analytic policy object (``CsCqAnalysis``, ``CsIdAnalysis``,
    ``DedicatedAnalysis``, ...) together with its ``SystemParameters``.
``"solution"``
    A raw :class:`~repro.markov.qbd.QbdSolution`.
``"simulation"``
    A :class:`~repro.simulation.engine.SimulationResult` summary plus the
    parameters it was driven with.
``"point"``
    The per-policy value dict of one figure sweep point (cross-policy
    dominance checks live here).
``"series"``
    A swept (xs, ys) series (monotonicity checks live here).

Evaluators never raise for a *failing* subject — they return a
:class:`ContractResult` with ``passed=False`` — but malformed inputs
(NaN where a probability belongs, a subject missing a field) surface as
typed :class:`~repro.robustness.ReproError`\\ s, never as bare
``ZeroDivisionError`` / ``AssertionError``.  :func:`enforce` converts
failures into :class:`~repro.robustness.ContractViolation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..robustness import ContractViolation, ReproError, ValidationError

__all__ = [
    "Contract",
    "ContractResult",
    "contract",
    "contracts_for",
    "enforce",
    "evaluate",
    "rel_diff",
    "registered_contracts",
]

#: Floor for relative-difference denominators; keeps the tolerance math
#: well-defined for zero/near-zero reference values (see also
#: ``ConfidenceInterval.relative_half_width``).
_REL_FLOOR = 1e-300


def rel_diff(observed: float, expected: float) -> float:
    """Relative difference ``|observed - expected| / max(|expected|, floor)``.

    Guarded so that zero/denormal references and NaN/inf operands produce
    ``inf`` (undecidable, treated as a failure by any finite tolerance)
    instead of raising.
    """
    observed = float(observed)
    expected = float(expected)
    if not (math.isfinite(observed) and math.isfinite(expected)):
        return float("inf")
    denominator = abs(expected)
    if denominator < _REL_FLOOR:
        # No usable scale: identical-to-roundoff agrees, anything else is
        # undecidable and must fail every finite tolerance.
        return 0.0 if abs(observed - expected) < _REL_FLOOR else float("inf")
    ratio = abs(observed - expected) / denominator
    return ratio if math.isfinite(ratio) else float("inf")


@dataclass(frozen=True)
class ContractResult:
    """Outcome of evaluating one contract on one subject."""

    name: str
    passed: bool
    observed: float
    expected: float
    tolerance: float
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready form (for manifests and verdict reports)."""
        return {
            "name": self.name,
            "passed": self.passed,
            "observed": self.observed,
            "expected": self.expected,
            "tolerance": self.tolerance,
            "detail": self.detail,
        }

    def as_violation(self) -> ContractViolation:
        """The typed error this failure corresponds to."""
        return ContractViolation(
            f"contract {self.name!r} violated"
            + (f": {self.detail}" if self.detail else ""),
            contract=self.name,
            observed=self.observed,
            expected=self.expected,
            tolerance=self.tolerance,
        )


@dataclass(frozen=True)
class Contract:
    """A named invariant applying to one kind of subject.

    ``evaluator(subject, **context)`` returns a :class:`ContractResult`
    (or a list of them, for contracts that check several facets), or
    ``None`` when the contract does not apply to this particular subject
    — e.g. the region-probability contract on a non-CS-CQ analysis.
    """

    name: str
    kind: str
    description: str
    evaluator: Callable[..., "ContractResult | list[ContractResult] | None"] = field(
        repr=False
    )


_REGISTRY: "dict[str, Contract]" = {}


def contract(name: str, kind: str, description: str):
    """Decorator registering an evaluator as a named contract."""

    def decorate(fn):
        if name in _REGISTRY:
            raise ValueError(f"contract {name!r} is already registered")
        _REGISTRY[name] = Contract(
            name=name, kind=kind, description=description, evaluator=fn
        )
        return fn

    return decorate


def registered_contracts() -> "tuple[Contract, ...]":
    """All registered contracts, in registration order."""
    return tuple(_REGISTRY.values())


def contracts_for(kind: str) -> "tuple[Contract, ...]":
    """Contracts applying to one subject kind."""
    return tuple(c for c in _REGISTRY.values() if c.kind == kind)


def evaluate(
    kind: str,
    subject: Any,
    names: "Optional[Iterable[str]]" = None,
    **context: Any,
) -> "list[ContractResult]":
    """Evaluate all (or the named) contracts of ``kind`` on ``subject``.

    Returns the flat list of results; inapplicable contracts contribute
    nothing.  An evaluator that blows up on malformed input is itself a
    contract failure — any :class:`ReproError` it raises is converted to
    a failing result rather than aborting the whole evaluation, so one
    broken invariant cannot hide the others.
    """
    wanted = set(names) if names is not None else None
    results: "list[ContractResult]" = []
    for spec in contracts_for(kind):
        if wanted is not None and spec.name not in wanted:
            continue
        try:
            outcome = spec.evaluator(subject, **context)
        except ReproError as exc:
            results.append(
                ContractResult(
                    name=spec.name,
                    passed=False,
                    observed=float("nan"),
                    expected=float("nan"),
                    tolerance=float("nan"),
                    detail=f"evaluator raised {type(exc).__name__}: {exc.message}",
                )
            )
            continue
        if outcome is None:
            continue
        results.extend(outcome if isinstance(outcome, list) else [outcome])
    return results


def enforce(
    kind: str,
    subject: Any,
    names: "Optional[Iterable[str]]" = None,
    **context: Any,
) -> "list[ContractResult]":
    """Like :func:`evaluate`, but raise on the first failed contract."""
    results = evaluate(kind, subject, names=names, **context)
    for result in results:
        if not result.passed:
            raise result.as_violation()
    return results


def _require_finite(value: Any, what: str) -> float:
    """Coerce a subject field to a finite float, or raise a typed error."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{what} is not a number: {value!r}") from exc
    if not math.isfinite(value):
        raise ValidationError(f"{what} must be finite, got {value}")
    return value
