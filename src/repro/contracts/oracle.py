"""Cross-method consistency oracle with adaptive simulation escalation.

For one parameter point the oracle computes the CS-CQ mean response times
three independent ways — the busy-period-transition QBD analysis, the
brute-force truncated 2D chain (exponential sizes only), and discrete-
event simulation with replication confidence intervals — and classifies
the point:

``agree``
    The analytic pair matches within the modeling tolerance (the QBD
    carries the paper's 3-moment busy-period matching error, so this is
    a *modeling* tolerance, not machine epsilon) and the simulation CI,
    widened by the same tolerance, covers the analytic values.
``suspect``
    Two deterministic methods disagree beyond tolerance, a sufficiently
    tight simulation CI excludes an analytic value, or an invariant
    contract (Little's law, flow balance, normalization, ...) failed.
``inconclusive``
    After exhausting the escalation budget the simulation CI is still
    too wide to decide, and nothing else disagrees.

When the simulation alone cannot decide — its CI is too wide, or tight
but *excluding* an analytic value (finite-horizon transient bias at
heavy load reads low and shrinks as the run lengthens) — the oracle
*escalates*: it doubles the measured and warmup jobs per replication
and reruns, exponentially, up to ``max_escalations`` rounds.
Escalation is skipped when the two deterministic methods already
disagree: no amount of simulation can reconcile those.  Run through the orchestration layer
(``python -m repro check``), each point's escalation loop executes
inside a worker subprocess under the per-point timeout, and finished
verdicts are checkpointed by the PR 2 journal, so a killed or hung
escalation can neither wedge the sweep nor lose completed points.

A deterministic perturbation mode (``repro.orchestration.faults``, mode
``perturb``) multiplies the converged QBD answer by a known factor — a
synthetic silently-wrong solve — so tests and CI can prove the oracle
flags wrong *answers*, not just loud failures.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass

from ..core import CsCqAnalysis, CsCqTruncatedChain, SystemParameters
from ..distributions import Exponential
from ..robustness import scale_tolerance, trust_verdict
from .registry import ContractResult, evaluate, rel_diff

__all__ = [
    "MethodComparison",
    "OracleConfig",
    "PointVerdict",
    "check_point",
    "classify_values",
]

CLASSIFICATIONS = ("agree", "suspect", "inconclusive")


@dataclass(frozen=True)
class OracleConfig:
    """Tolerances and budgets of one oracle run (JSON-serializable)."""

    #: Relative tolerance for method-vs-method comparisons.  Dominated by
    #: the QBD's 3-moment busy-period matching error (~1-2% at moderate
    #: load per the paper's own validation), not by solver precision.
    rel_tolerance: float = 0.05
    #: A simulation CI is "tight enough to decide" when its half-width is
    #: below this fraction of its mean; wider intervals trigger escalation.
    max_rel_half_width: float = 0.10
    n_replications: int = 5
    measured_jobs: int = 20_000
    warmup_jobs: int = 4_000
    #: Escalation rounds; round k simulates ``measured_jobs * 2**k``
    #: (after ``warmup_jobs * 2**k`` warmup) per replication, so the
    #: total budget is bounded by twice the last round.
    max_escalations: int = 4
    #: Truncation bounds of the finite-chain reference.
    max_short: int = 300
    max_long: int = 60
    #: Boundary mass above which the truncated reference is not trusted.
    truncation_mass_tol: float = 1e-6
    level: float = 0.95
    seed: int = 20030703

    def as_dict(self) -> dict:
        """Plain-dict form for task kwargs and reports."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: "dict | None") -> "OracleConfig":
        """Rebuild from :meth:`as_dict` output (unknown keys rejected)."""
        return cls(**data) if data else cls()


@dataclass(frozen=True)
class MethodComparison:
    """Three-way comparison of one job class at one point."""

    job_class: str
    classification: str
    analytic: float
    truncated: float = float("nan")
    sim_mean: float = float("nan")
    sim_half_width: float = float("inf")
    sim_rel_half_width: float = float("inf")
    sim_replications: int = 0
    reasons: "tuple[str, ...]" = ()

    def as_dict(self) -> dict:
        return {**asdict(self), "reasons": list(self.reasons)}


@dataclass(frozen=True)
class PointVerdict:
    """The oracle's verdict for one parameter point."""

    label: str
    rho_s: float
    rho_l: float
    classification: str
    comparisons: "tuple[MethodComparison, ...]"
    contracts: "tuple[ContractResult, ...]" = ()
    escalations: int = 0
    measured_jobs_final: int = 0
    perturbed: bool = False
    degraded: bool = False
    wall_time: float = 0.0
    #: Numerical-trust record of the answer under test: the solver's
    #: verdict and error bound plus the reported-vs-implied audit term
    #: (None only for verdicts deserialized from pre-trust journals).
    trust: "dict | None" = None

    @property
    def contract_failures(self) -> "tuple[ContractResult, ...]":
        """The failed contract results (empty when everything held)."""
        return tuple(r for r in self.contracts if not r.passed)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "rho_s": self.rho_s,
            "rho_l": self.rho_l,
            "classification": self.classification,
            "comparisons": [c.as_dict() for c in self.comparisons],
            "contracts": [c.as_dict() for c in self.contracts],
            "escalations": self.escalations,
            "measured_jobs_final": self.measured_jobs_final,
            "perturbed": self.perturbed,
            "degraded": self.degraded,
            "wall_time": self.wall_time,
            "trust": self.trust,
        }


def classify_values(
    analytic: float,
    truncated: "float | None",
    ci,
    config: OracleConfig,
    trust_bound: "float | None" = None,
) -> "tuple[str, list[str]]":
    """Classify one job class from its three method values.

    ``truncated`` is None when no trusted finite-chain reference exists
    (non-exponential sizes, or excessive truncation mass).  ``ci`` is a
    :class:`~repro.simulation.statistics.ConfidenceInterval` or None.
    ``trust_bound`` is the analytic value's own forward error bound; the
    agreement tolerance is widened by it (never tightened), so a
    near-boundary solve that is honest about carrying fewer digits is not
    condemned for exactly that.
    """
    reasons: "list[str]" = []
    suspect = False
    undecided = False

    if not math.isfinite(analytic):
        return "suspect", ["analytic value is not finite"]

    tolerance = scale_tolerance(config.rel_tolerance, trust_bound)
    if tolerance > config.rel_tolerance:
        reasons.append(
            f"tolerance widened to {tolerance:.3%} by the analytic "
            f"value's error bound {trust_bound:.3g}"
        )

    if truncated is not None:
        difference = rel_diff(analytic, truncated)
        if difference > tolerance:
            suspect = True
            reasons.append(
                f"QBD vs truncated chain disagree by {difference:.3%} "
                f"(> {tolerance:.0%}); deterministic methods "
                "leave no noise excuse"
            )
        else:
            reasons.append(
                f"QBD vs truncated chain agree within {difference:.3%}"
            )

    if ci is not None:
        rel_hw = ci.relative_half_width
        if rel_hw > config.max_rel_half_width:
            undecided = True
            reasons.append(
                f"simulation CI too wide to decide "
                f"(relative half-width {rel_hw:.3f} > "
                f"{config.max_rel_half_width:.3f})"
            )
        else:
            widened = ci.half_width + tolerance * abs(ci.mean)
            gap = abs(analytic - ci.mean)
            if gap > widened:
                suspect = True
                reasons.append(
                    f"analytic value {analytic:.6g} outside the widened "
                    f"simulation interval {ci.mean:.6g} +/- {widened:.6g}"
                )
            else:
                reasons.append(
                    f"analytic value inside the widened simulation interval "
                    f"({gap:.3g} <= {widened:.3g})"
                )

    if suspect:
        return "suspect", reasons
    if undecided:
        return "inconclusive", reasons
    return "agree", reasons


def _sim_cannot_decide(analytic: float, ci, config: OracleConfig) -> bool:
    """True when more simulation could change this class's verdict.

    Either the CI is too wide to decide, or it is tight but excludes the
    analytic value — at heavy load a finite-horizon run reads low
    (initial-transient bias), and that bias shrinks as the horizon
    doubles, so exclusion alone does not yet condemn the analysis.
    """
    if ci.relative_half_width > config.max_rel_half_width:
        return True
    if not math.isfinite(analytic):
        return False
    widened = ci.half_width + config.rel_tolerance * abs(ci.mean)
    return abs(analytic - ci.mean) > widened


def _perturbation_factor(label: str) -> "float | None":
    from ..orchestration import faults

    return faults.perturb_factor(label)


def check_point(
    params: SystemParameters,
    config: "OracleConfig | None" = None,
    label: str = "",
) -> PointVerdict:
    """Run the full oracle at one parameter point.

    Raises typed :class:`~repro.robustness.ReproError` subclasses for
    points where the QBD analysis itself cannot run (outside the
    stability region, invalid inputs); everything that *runs* is
    classified rather than raised.
    """
    config = config or OracleConfig()
    start = time.perf_counter()

    analysis = CsCqAnalysis(params)
    analytic_short = analysis.mean_response_time_short()
    analytic_long = analysis.mean_response_time_long()
    degraded = analysis.degraded

    contracts: "list[ContractResult]" = []
    contracts.extend(evaluate("analysis", analysis, params=params))
    if not degraded:
        contracts.extend(evaluate("solution", analysis.solution))

    # Deterministic perturbation (fault harness mode "perturb"): corrupt
    # the converged QBD answer so the oracle's detection power is testable.
    factor = _perturbation_factor(label)
    perturbed = factor is not None
    if perturbed:
        analytic_short *= factor
        analytic_long *= factor

    # Trust record of the answer under test.  The solver bound covers the
    # honest numerical error of the solve; the audit term re-derives the
    # response times from the solved chain and measures how far the
    # *reported* values drifted from the solution-implied ones — zero for
    # a faithful pipeline, large for a silently corrupted answer (the
    # "perturb" fault above, or any future post-solve bug).  The audit
    # inflates the verdict but never the agreement tolerance: a widened
    # tolerance must excuse conditioning, not corruption.
    solver_diag = analysis.solver_diagnostics
    audit = 0.0
    for reported, implied in (
        (analytic_short, analysis.mean_response_time_short()),
        (analytic_long, analysis.mean_response_time_long()),
    ):
        if math.isfinite(reported) and math.isfinite(implied):
            audit = max(audit, rel_diff(reported, implied))
    solver_bound = solver_diag.error_bound
    trust_bound = None
    if solver_bound is not None or audit > 0.0:
        trust_bound = float(solver_bound or 0.0) + audit
    trust_level = trust_verdict(trust_bound)
    trust_record = {
        "trust": trust_level,
        "error_bound": trust_bound,
        "solver_error_bound": solver_bound,
        "audit_disagreement": audit,
        "condition_estimate": solver_diag.condition_estimate,
        "escalated": solver_diag.escalated,
    }

    truncated_short = truncated_long = float("nan")
    trusted_truncated = False
    exponential_sizes = isinstance(params.short_service, Exponential) and isinstance(
        params.long_service, Exponential
    )
    if exponential_sizes and not degraded:
        reference = CsCqTruncatedChain(
            params, max_short=config.max_short, max_long=config.max_long
        ).solve()
        truncated_short = reference.mean_response_time_short
        truncated_long = reference.mean_response_time_long
        mass_results = evaluate(
            "truncated", reference, tolerance=config.truncation_mass_tol
        )
        contracts.extend(mass_results)
        # An over-massed truncation disqualifies the *reference*, not the
        # answer under test: drop it from the comparison instead of
        # counting its contract failure against the point.
        trusted_truncated = all(r.passed for r in mass_results)
        if not trusted_truncated:
            contracts = [c for c in contracts if c.name != "truncation-mass"]

    # Simulation with adaptive escalation: double the per-replication
    # warmup and measured job counts until the simulation can decide
    # every class or the budget is exhausted.  When the deterministic
    # pair already disagrees the verdict is sealed — skip the doublings.
    from ..simulation import simulate_replications

    deterministic_disagreement = trusted_truncated and (
        rel_diff(analytic_short, truncated_short) > config.rel_tolerance
        or rel_diff(analytic_long, truncated_long) > config.rel_tolerance
    )
    measured = config.measured_jobs
    warmup = config.warmup_jobs
    escalations = 0
    replicated = None
    while True:
        replicated = simulate_replications(
            "cs-cq",
            params,
            n_replications=config.n_replications,
            seed=config.seed + escalations,
            warmup_jobs=warmup,
            measured_jobs=measured,
            level=config.level,
        )
        if deterministic_disagreement or escalations >= config.max_escalations:
            break
        if not (
            _sim_cannot_decide(analytic_short, replicated.response_short, config)
            or _sim_cannot_decide(analytic_long, replicated.response_long, config)
        ):
            break
        escalations += 1
        measured *= 2
        warmup *= 2
    contracts.extend(
        evaluate("simulation", replicated.replications[0], params=params)
    )

    comparisons = []
    for job_class, analytic, truncated, ci in (
        ("short", analytic_short, truncated_short, replicated.response_short),
        ("long", analytic_long, truncated_long, replicated.response_long),
    ):
        classification, reasons = classify_values(
            analytic,
            truncated if trusted_truncated else None,
            ci,
            config,
            trust_bound=solver_bound,
        )
        comparisons.append(
            MethodComparison(
                job_class=job_class,
                classification=classification,
                analytic=analytic,
                truncated=truncated,
                sim_mean=ci.mean,
                sim_half_width=ci.half_width,
                sim_rel_half_width=ci.relative_half_width,
                sim_replications=ci.n,
                reasons=tuple(reasons),
            )
        )

    classes = {c.classification for c in comparisons}
    untrusted = trust_level == "untrusted"
    if "suspect" in classes or untrusted or any(not c.passed for c in contracts):
        overall = "suspect"
    elif "inconclusive" in classes:
        overall = "inconclusive"
    else:
        overall = "agree"

    return PointVerdict(
        label=label,
        rho_s=params.rho_s,
        rho_l=params.rho_l,
        classification=overall,
        comparisons=tuple(comparisons),
        contracts=tuple(contracts),
        escalations=escalations,
        measured_jobs_final=measured,
        perturbed=perturbed,
        degraded=degraded,
        wall_time=time.perf_counter() - start,
        trust=trust_record,
    )
