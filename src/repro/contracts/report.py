"""Verdict reports for ``python -m repro check``.

A check run produces one JSON report under ``results/`` recording, per
parameter point, the oracle classification (agree / suspect /
inconclusive), the three method values with CI bounds, every contract
result, and the escalation budget spent — enough to audit *why* a point
was classified, not just the verdict.  The file is written atomically so
an interrupted run never leaves a truncated report.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from ..robustness.atomic_write import atomic_write_json

__all__ = ["summarize_verdicts", "suspects_by_cost", "write_check_report"]

#: Bump when the report layout changes incompatibly.  Version 2 adds the
#: per-point ``wall_time_s`` field and the cost-sorted ``suspects`` list.
REPORT_VERSION = 2


def _verdict_dict(verdict) -> dict:
    record = verdict.as_dict() if hasattr(verdict, "as_dict") else dict(verdict)
    # Every point carries its cost: agree/suspect verdicts alike, so the
    # report can answer "what did agreement cost" and rank suspects by
    # how expensive re-checking them will be.
    if "wall_time_s" not in record:
        wall = record.get("wall_time")
        record["wall_time_s"] = float(wall) if wall is not None else None
    return record


def summarize_verdicts(verdicts: "Iterable[dict]") -> dict:
    """Per-classification counts plus total escalations for a verdict list."""
    counts = {"agree": 0, "suspect": 0, "inconclusive": 0}
    escalations = 0
    for verdict in verdicts:
        classification = verdict.get("classification", "suspect")
        counts[classification] = counts.get(classification, 0) + 1
        escalations += int(verdict.get("escalations", 0))
    counts["total"] = sum(
        n for key, n in counts.items() if key != "total"
    )
    counts["escalations"] = escalations
    return counts


def write_check_report(
    directory: "str | Path",
    name: str,
    verdicts,
    config: "dict | None" = None,
    extra: "dict | None" = None,
) -> Path:
    """Write ``CHECK_<name>.json`` under ``directory`` and return its path."""
    points = [_verdict_dict(v) for v in verdicts]
    payload = {
        "report": name,
        "version": REPORT_VERSION,
        "config": dict(config) if config else {},
        "summary": summarize_verdicts(points),
        "suspects": suspects_by_cost(points),
        "points": points,
    }
    if extra:
        payload.update(extra)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"CHECK_{name}.json"
    atomic_write_json(path, payload, sort_keys=False)
    return path


def suspects_by_cost(points: "Iterable[dict]") -> list[dict]:
    """Non-agreeing points, most expensive first.

    Sorted descending on ``wall_time_s`` so the triage order matches the
    re-verification budget: the suspect that burned 40 s of escalations
    is both the most interesting and the costliest to recheck blindly.
    """
    suspects = [
        {
            "label": point.get("label"),
            "classification": point.get("classification"),
            "wall_time_s": point.get("wall_time_s"),
        }
        for point in points
        if point.get("classification") != "agree"
    ]
    suspects.sort(key=lambda s: s["wall_time_s"] or 0.0, reverse=True)
    return suspects
