"""Verdict reports for ``python -m repro check``.

A check run produces one JSON report under ``results/`` recording, per
parameter point, the oracle classification (agree / suspect /
inconclusive), the three method values with CI bounds, every contract
result, and the escalation budget spent — enough to audit *why* a point
was classified, not just the verdict.  The file is written atomically so
an interrupted run never leaves a truncated report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..orchestration.checkpoint import atomic_write_text

__all__ = ["summarize_verdicts", "write_check_report"]

#: Bump when the report layout changes incompatibly.
REPORT_VERSION = 1


def _verdict_dict(verdict) -> dict:
    return verdict.as_dict() if hasattr(verdict, "as_dict") else dict(verdict)


def summarize_verdicts(verdicts: "Iterable[dict]") -> dict:
    """Per-classification counts plus total escalations for a verdict list."""
    counts = {"agree": 0, "suspect": 0, "inconclusive": 0}
    escalations = 0
    for verdict in verdicts:
        classification = verdict.get("classification", "suspect")
        counts[classification] = counts.get(classification, 0) + 1
        escalations += int(verdict.get("escalations", 0))
    counts["total"] = sum(
        n for key, n in counts.items() if key != "total"
    )
    counts["escalations"] = escalations
    return counts


def write_check_report(
    directory: "str | Path",
    name: str,
    verdicts,
    config: "dict | None" = None,
    extra: "dict | None" = None,
) -> Path:
    """Write ``CHECK_<name>.json`` under ``directory`` and return its path."""
    points = [_verdict_dict(v) for v in verdicts]
    payload = {
        "report": name,
        "version": REPORT_VERSION,
        "config": dict(config) if config else {},
        "summary": summarize_verdicts(points),
        "points": points,
    }
    if extra:
        payload.update(extra)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"CHECK_{name}.json"
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
