"""Ablation studies for the paper's two key design choices.

1. **Moment-matching order** (Section 2.2, footnote 2): the paper matches
   each busy period on three moments and claims this "provides sufficient
   accuracy", with more moments available if desired.
   :func:`moment_matching_ablation` quantifies the accuracy of 1-, 2- and
   3-moment matching against the exact (generously truncated) 2D chain.
2. **Truncation vs matrix-analytic** (Section 1): truncating the
   2D-infinite chain "is neither sufficiently accurate nor robust ...
   especially at higher traffic intensities".
   :func:`truncation_ablation` shows how the truncated answer creeps
   toward the true one as the long-dimension bound grows, and how much
   state space that costs compared to the QBD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import CsCqAnalysis, CsCqTruncatedChain, SystemParameters
from .base import format_table

__all__ = [
    "MomentAblationRow",
    "TruncationAblationRow",
    "format_moment_ablation",
    "format_truncation_ablation",
    "moment_matching_ablation",
    "truncation_ablation",
]


@dataclass(frozen=True)
class MomentAblationRow:
    """Accuracy of the CS-CQ analysis at one load, per matching order."""

    rho_s: float
    rho_l: float
    exact: float
    matched: dict[int, float]

    def rel_error(self, n_moments: int) -> float:
        """Relative error of the ``n_moments``-matched analysis."""
        return abs(self.matched[n_moments] - self.exact) / self.exact


def moment_matching_ablation(
    rho_s_values: Sequence[float],
    rho_l: float = 0.5,
    max_short: int = 400,
    max_long: int = 100,
) -> list[MomentAblationRow]:
    """Short response time error vs busy-period moments matched (1/2/3).

    Exponential sizes (mean 1) so the generously truncated 2D chain is an
    exact reference.
    """
    rows = []
    for rho_s in rho_s_values:
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        exact = CsCqTruncatedChain(
            params, max_short=max_short, max_long=max_long
        ).solve().mean_response_time_short
        matched = {
            n: CsCqAnalysis(params, n_moments=n).mean_response_time_short()
            for n in (1, 2, 3)
        }
        rows.append(
            MomentAblationRow(rho_s=rho_s, rho_l=rho_l, exact=exact, matched=matched)
        )
    return rows


def format_moment_ablation(rows: Sequence[MomentAblationRow]) -> str:
    """Render the moment-matching ablation as a table."""
    return format_table(
        ["rho_s", "exact E[T_S]", "1-moment err%", "2-moment err%", "3-moment err%"],
        [
            [
                f"{r.rho_s:.2f}",
                r.exact,
                f"{100 * r.rel_error(1):.3f}",
                f"{100 * r.rel_error(2):.3f}",
                f"{100 * r.rel_error(3):.3f}",
            ]
            for r in rows
        ],
    )


@dataclass(frozen=True)
class TruncationAblationRow:
    """Truncated-chain output at one truncation bound."""

    max_long: int
    n_states: int
    mean_response_short: float
    truncation_mass: float


def truncation_ablation(
    params: SystemParameters,
    max_long_values: Sequence[int],
    max_short: int = 250,
) -> list[TruncationAblationRow]:
    """Truncated-chain short response vs the long-dimension bound."""
    rows = []
    for max_long in max_long_values:
        chain = CsCqTruncatedChain(params, max_short=max_short, max_long=max_long)
        result = chain.solve()
        rows.append(
            TruncationAblationRow(
                max_long=max_long,
                n_states=chain.n_states,
                mean_response_short=result.mean_response_time_short,
                truncation_mass=result.truncation_mass,
            )
        )
    return rows


def format_truncation_ablation(
    rows: Sequence[TruncationAblationRow], qbd_value: float, qbd_states: int
) -> str:
    """Render the truncation study next to the QBD reference."""
    body = format_table(
        ["max_long", "states", "E[T_S] (truncated)", "boundary mass"],
        [
            [r.max_long, r.n_states, r.mean_response_short, f"{r.truncation_mass:.2e}"]
            for r in rows
        ],
    )
    return (
        body
        + f"\nQBD (busy-period transitions): E[T_S] = {qbd_value:.4f} "
        + f"using {qbd_states} phases per level"
    )
