"""The paper's analysis-vs-simulation runtime comparison.

Section 4: "for each results graph ..., the simulation portion required
close to an hour to generate, whereas the analysis portion required less
than a second to compute" (Matlab 6 on circa-2002 hardware).  We reproduce
the *ratio* claim: a full figure-panel analytic sweep against a single
simulation point of comparable statistical quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import CsCqAnalysis, SystemParameters
from ..simulation import simulate

__all__ = ["RuntimeComparison", "runtime_comparison"]


@dataclass(frozen=True)
class RuntimeComparison:
    """Wall-clock seconds for the analytic sweep vs one simulation point."""

    analysis_points: int
    analysis_seconds: float
    simulation_points: int
    simulation_seconds: float

    @property
    def speedup_per_point(self) -> float:
        """How many times faster one analytic point is than one simulated point."""
        return (self.simulation_seconds / self.simulation_points) / (
            self.analysis_seconds / self.analysis_points
        )


def runtime_comparison(
    rho_l: float = 0.5,
    n_analysis_points: int = 29,
    measured_jobs: int = 400_000,
) -> RuntimeComparison:
    """Time a Figure-4-style analytic sweep against one simulation run."""
    grid = [0.05 + i * (1.45 / n_analysis_points) for i in range(n_analysis_points)]

    start = time.perf_counter()
    for rho_s in grid:
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        analysis = CsCqAnalysis(params)
        analysis.mean_response_time_short()
        analysis.mean_response_time_long()
    analysis_seconds = time.perf_counter() - start

    params = SystemParameters.from_loads(rho_s=1.0, rho_l=rho_l)
    start = time.perf_counter()
    simulate("cs-cq", params, seed=5, measured_jobs=measured_jobs)
    simulation_seconds = time.perf_counter() - start

    return RuntimeComparison(
        analysis_points=len(grid),
        analysis_seconds=analysis_seconds,
        simulation_points=1,
        simulation_seconds=simulation_seconds,
    )
