"""Tiny experiment framework: series, panels and aligned text rendering.

The paper reports results as figure panels (response time vs load, one
curve per policy).  Each experiment module produces :class:`Panel` objects
holding the same series the paper plots; benchmarks render them with
:func:`format_panel` so the regenerated rows can be compared against the
paper figure by eye and (for the headline values) by the test suite.
Unstable points are reported as NaN, mirroring the truncated curves in the
paper's plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Series", "Panel", "format_panel", "format_table", "render_ascii_chart"]


@dataclass(frozen=True)
class Series:
    """One labelled curve: y(x), NaN where the policy is unstable."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )

    def finite_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Return only the (x, y) pairs where y is finite."""
        mask = np.isfinite(self.y)
        return self.x[mask], self.y[mask]


@dataclass(frozen=True)
class Panel:
    """One figure panel: several series over a common x grid."""

    title: str
    xlabel: str
    ylabel: str
    series: tuple[Series, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        # The renderers (format_panel, render_ascii_chart) index every
        # series by the first series' x grid; a mismatched grid used to
        # surface as an IndexError deep inside formatting.  Reject it here.
        if not self.series:
            raise ValueError(f"panel {self.title!r} needs at least one series")
        base = self.series[0]
        for s in self.series[1:]:
            if len(s.x) != len(base.x) or not np.allclose(s.x, base.x):
                raise ValueError(
                    f"panel {self.title!r}: series {s.label!r} has a different "
                    f"x grid than {base.label!r} ({len(s.x)} vs {len(base.x)} "
                    "points); all series in a panel must share a common x grid"
                )

    def by_label(self, label: str) -> Series:
        """Look up a series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r} in panel {self.title!r}; "
            f"have {[s.label for s in self.series]}"
        )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], float_fmt: str = "{:.4f}"
) -> str:
    """Render rows as an aligned monospace table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if math.isnan(value):
                return "unstable"
            if math.isinf(value):
                return "inf"
            return float_fmt.format(value)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_panel(panel: Panel, float_fmt: str = "{:.4f}", chart: bool = False) -> str:
    """Render a panel as the table of rows the paper's plot encodes.

    With ``chart=True`` an ASCII plot is appended below the table, making
    the regenerated ``results/`` files directly comparable to the paper's
    figures by eye.
    """
    headers = [panel.xlabel] + [s.label for s in panel.series]
    rows = []
    for i, x in enumerate(panel.series[0].x):
        rows.append([f"{x:.3f}"] + [float(s.y[i]) for s in panel.series])
    body = format_table(headers, rows, float_fmt)
    title = f"== {panel.title} ==  ({panel.ylabel})"
    notes = f"\n{panel.notes}" if panel.notes else ""
    plot = f"\n\n{render_ascii_chart(panel)}" if chart else ""
    return f"{title}\n{body}{notes}{plot}"


def render_ascii_chart(
    panel: Panel, width: int = 72, height: int = 20, y_cap_quantile: float = 0.95
) -> str:
    """Draw the panel as a monospace chart (one marker letter per series).

    The y-axis is capped near the ``y_cap_quantile`` of all finite values
    so diverging curves (the truncated "to infinity" curves in the paper's
    plots) don't flatten everything else; points above the cap are drawn
    on the top row.
    """
    finite_chunks = [
        s.y[np.isfinite(s.y)] for s in panel.series if np.isfinite(s.y).any()
    ]
    if not finite_chunks:
        return "(no finite points to plot)"
    finite_values = np.concatenate(finite_chunks)
    y_max = float(np.quantile(finite_values, y_cap_quantile))
    y_min = min(0.0, float(finite_values.min()))
    if y_max <= y_min:
        y_max = y_min + 1.0
    all_x = panel.series[0].x
    x_min, x_max = float(all_x.min()), float(all_x.max())
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "DABCEFG"
    for idx, series in enumerate(panel.series):
        marker = markers[idx % len(markers)]
        for x, y in zip(series.x, series.y):
            if not math.isfinite(y):
                continue
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            frac = (min(y, y_max) - y_min) / (y_max - y_min)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = marker

    y_labels = [f"{y_max:8.2f} |", *([" " * 8 + " |"] * (height - 2)), f"{y_min:8.2f} |"]
    lines = [label + "".join(cells) for label, cells in zip(y_labels, grid)]
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9s} {x_min:<10.2f}{panel.xlabel:^{max(width - 22, 1)}}{x_max:>10.2f}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(panel.series)
    )
    lines.append(" " * 10 + legend + f"   (y capped at ~p{int(100 * y_cap_quantile)})")
    return "\n".join(lines)
