"""Regeneration of the paper's result figures (3, 4, 5 and 6).

Every function returns :class:`~repro.experiments.base.Panel` objects whose
series are exactly the curves of the corresponding paper figure; the
benchmarks print them as tables.  Absolute values come from *our* analysis;
the shapes (who wins, by what factor, where the asymptotes sit) are the
reproduction targets, as the paper's own numbers are read off plots.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    LongHostCycle,
    SystemParameters,
    UnstableSystemError,
    cs_cq_long_response_saturated,
    cs_cq_max_rho_s,
    cs_id_max_rho_s,
    dedicated_max_rho_s,
)
from ..queueing import Mg1Queue
from ..robustness import NearBoundaryWarning, ReproError
from ..workloads import COXIAN_LONG_CASES, EXPONENTIAL_CASES, WorkloadCase
from .base import Panel, Series

__all__ = [
    "figure3_panel",
    "figure4_panels",
    "figure5_panels",
    "figure6_panels",
    "response_time_series",
]

_POLICY_LABELS = ("Dedicated", "CS-Immed-Disp", "CS-Central-Q")


def _safe(value_fn: Callable[[], float]) -> float:
    """Evaluate an analysis, mapping failures to NaN (truncated curve).

    Instability is expected (the curves end at the stability boundary) and
    maps silently to NaN.  Any other typed solver failure — a point where
    even the fallback ladder and graceful degradation gave up — also maps
    to NaN so the sweep completes, but emits a
    :class:`~repro.robustness.NearBoundaryWarning` so it cannot pass
    silently.
    """
    try:
        return value_fn()
    except UnstableSystemError:
        return float("nan")
    except ReproError as exc:
        warnings.warn(
            NearBoundaryWarning(
                f"sweep point skipped ({type(exc).__name__}: {exc}); plotted as NaN"
            ),
            stacklevel=2,
        )
        return float("nan")


def response_time_series(
    case: WorkloadCase,
    rho_s_values: Sequence[float],
    rho_l: float,
    job_class: str,
) -> tuple[Series, Series, Series]:
    """Dedicated / CS-ID / CS-CQ mean response time vs ``rho_s``.

    Short-job series are NaN beyond each policy's stability boundary (the
    truncated curves in the paper's plots).  Long-job series extend across
    the whole range, as in the paper: the long host remains stable for all
    ``rho_s`` under every policy (Dedicated's longs never see the shorts;
    CS-ID's long host is autonomous; CS-CQ's longs see the saturated-setup
    M/G/1 once the shorts overload).
    """
    if job_class not in ("short", "long"):
        raise ValueError(f"job_class must be 'short' or 'long', got {job_class!r}")
    xs = np.asarray(list(rho_s_values), dtype=float)
    dedicated, cs_id, cs_cq = [], [], []
    for rho_s in xs:
        params = case.params(rho_s, rho_l)
        if job_class == "short":
            dedicated.append(_safe(lambda: DedicatedAnalysis(params).mean_response_time_short()))
            cs_id.append(_safe(lambda: CsIdAnalysis(params).mean_response_time_short()))
            cs_cq.append(_safe(lambda: CsCqAnalysis(params).mean_response_time_short()))
        else:
            dedicated.append(
                _safe(lambda: Mg1Queue(params.lam_l, params.long_service).mean_response_time())
            )
            cs_id.append(_safe(lambda: LongHostCycle(params).mean_response_time_long()))
            cs_cq.append(_safe(lambda: _cs_cq_long(params)))
    return (
        Series(_POLICY_LABELS[0], xs, np.array(dedicated)),
        Series(_POLICY_LABELS[1], xs, np.array(cs_id)),
        Series(_POLICY_LABELS[2], xs, np.array(cs_cq)),
    )


def _response_panels(
    cases: Iterable[WorkloadCase],
    rho_l: float,
    rho_s_values: Sequence[float] | None,
    figure_name: str,
) -> list[Panel]:
    panels = []
    for case in cases:
        if rho_s_values is None:
            top = cs_cq_max_rho_s(rho_l)
            xs = np.round(np.arange(0.05, top - 1e-9, 0.05), 10)
        else:
            xs = np.asarray(list(rho_s_values), dtype=float)
        for job_class in ("short", "long"):
            series = response_time_series(case, xs, rho_l, job_class)
            panels.append(
                Panel(
                    title=(
                        f"{figure_name} ({case.name}) "
                        f"{'How shorts gain' if job_class == 'short' else 'How longs suffer'}"
                        f" - {case.label()}, rho_l={rho_l:g}"
                    ),
                    xlabel="rhos",
                    ylabel=f"Mean response time {job_class} jobs",
                    series=series,
                )
            )
    return panels


def figure4_panels(
    rho_l: float = 0.5, rho_s_values: Sequence[float] | None = None
) -> list[Panel]:
    """Figure 4: exponential shorts and longs; 2 rows x 3 cases."""
    return _response_panels(EXPONENTIAL_CASES, rho_l, rho_s_values, "Figure 4")


def figure5_panels(
    rho_l: float = 0.5, rho_s_values: Sequence[float] | None = None
) -> list[Panel]:
    """Figure 5: exponential shorts, Coxian longs with C^2 = 8."""
    return _response_panels(COXIAN_LONG_CASES, rho_l, rho_s_values, "Figure 5")


def figure3_panel(rho_l_values: Sequence[float] | None = None) -> Panel:
    """Figure 3: the stability constraint on ``rho_s`` vs ``rho_l``."""
    if rho_l_values is None:
        rho_l_values = np.round(np.arange(0.0, 1.0, 0.02), 10)
    xs = np.asarray(list(rho_l_values), dtype=float)
    return Panel(
        title="Figure 3: Stability condition on rhos",
        xlabel="rhol",
        ylabel="max rhos",
        series=(
            Series("Dedicated", xs, np.array([dedicated_max_rho_s(r) for r in xs])),
            Series("Immed-Disp", xs, np.array([cs_id_max_rho_s(r) for r in xs])),
            Series("Central-Q", xs, np.array([cs_cq_max_rho_s(r) for r in xs])),
        ),
        notes=(
            "All three boundaries are distribution-free; CS-ID's is the "
            "positive root of rho_s^2 + rho_s*rho_l - rho_s - 1 = 0."
        ),
    )


def figure6_panels(
    rho_s: float = 1.5,
    rho_l_values_short: Sequence[float] | None = None,
    rho_l_values_long: Sequence[float] | None = None,
    cases: Iterable[WorkloadCase] = COXIAN_LONG_CASES,
) -> list[Panel]:
    """Figure 6: response times vs ``rho_l`` at fixed ``rho_s`` (default 1.5).

    Row 1 (shorts): only the cycle-stealing policies are plotted — Dedicated
    is unstable over the whole range since ``rho_s > 1``.  The x range ends
    at the CS-CQ asymptote ``rho_l = 2 - rho_s``.
    Row 2 (longs): all ``rho_l < 1``; where the shorts are overloaded the
    CS-CQ longs see the saturated-setup M/G/1 (every busy period starts
    behind an ``Exp(2 mu_s)`` setup) and the CS-ID long host is autonomous,
    so both curves extend across the full range.
    """
    if rho_l_values_short is None:
        top = 2.0 - rho_s
        rho_l_values_short = np.round(np.arange(0.0, top - 1e-9, 0.025), 10)
    if rho_l_values_long is None:
        rho_l_values_long = np.round(np.arange(0.025, 1.0 - 1e-9, 0.025), 10)

    panels = []
    for case in cases:
        xs = np.asarray(list(rho_l_values_short), dtype=float)
        cs_id_y, cs_cq_y = [], []
        for rho_l in xs:
            params = case.params(rho_s, rho_l)
            cs_id_y.append(_safe(lambda: CsIdAnalysis(params).mean_response_time_short()))
            cs_cq_y.append(_safe(lambda: CsCqAnalysis(params).mean_response_time_short()))
        panels.append(
            Panel(
                title=f"Figure 6 ({case.name}) How shorts gain - {case.label()}, rho_s={rho_s:g}",
                xlabel="rhol",
                ylabel="Mean response time short jobs",
                series=(
                    Series("CS-Immed-Disp", xs, np.array(cs_id_y)),
                    Series("CS-Central-Q", xs, np.array(cs_cq_y)),
                ),
                notes="Dedicated is unstable for the whole range (rho_s > 1).",
            )
        )

        xl = np.asarray(list(rho_l_values_long), dtype=float)
        dedicated_y, cs_id_y, cs_cq_y = [], [], []
        for rho_l in xl:
            params = case.params(rho_s, rho_l)
            dedicated_y.append(
                _safe(lambda: Mg1Queue(params.lam_l, params.long_service).mean_response_time())
            )
            cs_id_y.append(_safe(lambda: LongHostCycle(params).mean_response_time_long()))
            cs_cq_y.append(_safe(lambda: _cs_cq_long(params)))
        panels.append(
            Panel(
                title=f"Figure 6 ({case.name}) How longs suffer - {case.label()}, rho_s={rho_s:g}",
                xlabel="rhol",
                ylabel="Mean response time long jobs",
                series=(
                    Series("Dedicated", xl, np.array(dedicated_y)),
                    Series("CS-Immed-Disp", xl, np.array(cs_id_y)),
                    Series("CS-Central-Q", xl, np.array(cs_cq_y)),
                ),
                notes="Long host is stable for all rho_l < 1 under every policy.",
            )
        )
    return panels


def _cs_cq_long(params: SystemParameters) -> float:
    """CS-CQ long response: full chain when shorts stable, else saturated."""
    if params.rho_s < 2.0 - params.rho_l:
        return CsCqAnalysis(params).mean_response_time_long()
    return cs_cq_long_response_saturated(params)
