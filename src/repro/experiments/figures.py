"""Regeneration of the paper's result figures (3, 4, 5 and 6).

Every function returns :class:`~repro.experiments.base.Panel` objects whose
series are exactly the curves of the corresponding paper figure; the
benchmarks print them as tables.  Absolute values come from *our* analysis;
the shapes (who wins, by what factor, where the asymptotes sit) are the
reproduction targets, as the paper's own numbers are read off plots.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    LongHostCycle,
    SystemParameters,
    UnstableSystemError,
    cs_cq_long_response_saturated,
    cs_cq_max_rho_s,
    cs_id_max_rho_s,
    dedicated_max_rho_s,
)
from ..perf import sweep_cache
from ..queueing import Mg1Queue
from ..telemetry import span
from ..robustness import (
    ContractViolationWarning,
    NearBoundaryWarning,
    ReproError,
    SolverDiagnostics,
)
from ..workloads import COXIAN_LONG_CASES, EXPONENTIAL_CASES, WorkloadCase
from .base import Panel, Series

__all__ = [
    "figure3_panel",
    "figure4_panels",
    "figure5_panels",
    "figure6_panels",
    "response_time_series",
]

_POLICY_LABELS = ("Dedicated", "CS-Immed-Disp", "CS-Central-Q")


def _closed_form_diagnostics() -> SolverDiagnostics:
    """Trust record for values from closed-form formulas (M/G/1 PK, the
    long-host cycle, the saturated-setup queue): no linear solve is
    involved, so the forward error is a handful of rounding operations —
    bounded by unit roundoff, always ``trusted``."""
    return SolverDiagnostics(
        method="closed-form",
        condition_estimate=1.0,
        error_bound=float(np.finfo(float).eps),
        trust="trusted",
    )


def _safe(value_fn: Callable[[], float]) -> float:
    """Evaluate an analysis, mapping failures to NaN (truncated curve).

    Instability is expected (the curves end at the stability boundary) and
    maps silently to NaN.  Any other typed solver failure — a point where
    even the fallback ladder and graceful degradation gave up — also maps
    to NaN so the sweep completes, but emits a
    :class:`~repro.robustness.NearBoundaryWarning` so it cannot pass
    silently.
    """
    try:
        return value_fn()
    except UnstableSystemError:
        return float("nan")
    except ReproError as exc:
        warnings.warn(
            NearBoundaryWarning(
                f"sweep point skipped ({type(exc).__name__}: {exc}); plotted as NaN"
            ),
            stacklevel=2,
        )
        return float("nan")


def _warn_contract_failures(results) -> bool:
    """Emit one ContractViolationWarning per failed contract result.

    In-sweep contract failures warn instead of raising so the sweep
    completes; the worker shim lifts the warning into the ``suspect``
    point status, and in-process callers see it via the warning system.
    """
    failed = [result for result in results if not result.passed]
    for result in failed:
        warnings.warn(
            ContractViolationWarning(
                f"contract {result.name!r} violated"
                + (f" ({result.detail})" if result.detail else "")
                + f": observed {result.observed:.6g}, "
                f"expected {result.expected:.6g}, "
                f"tolerance {result.tolerance:.6g}"
            ),
            stacklevel=3,
        )
    return bool(failed)


def _policy_point_values(
    params: SystemParameters,
    job_class: str,
    with_diagnostics: bool = False,
) -> "tuple[dict[str, float], dict | None]":
    """All three policies' mean response time at one load point.

    The single point of truth for all sweep modes: the in-process loops
    below call it directly, the ``response-point`` orchestration task
    calls it inside worker subprocesses, and the batched backend
    (:mod:`repro.perf.batched`) re-evaluates its fallback points through
    it.  With ``with_diagnostics`` the captured analyses'
    :class:`~repro.robustness.SolverDiagnostics` are returned as
    JSON-ready dicts (for the run manifest).

    Unless contracts are disabled (``REPRO_NO_CONTRACTS`` /
    ``--no-contracts``), the point is checked against the cross-policy
    dominance contracts and each captured analysis against its invariant
    contracts; failures surface as
    :class:`~repro.robustness.ContractViolationWarning`.
    """
    captured: dict[str, object] = {}
    # Diagnostics-only captures: analyses recorded for the trust record in
    # the manifest but deliberately kept out of the contract loop (the
    # long-side CS-CQ chain is already contract-checked when the short row
    # of the same point runs).
    captured_diag: dict[str, object] = {}

    def short_entry(label: str, analysis_cls) -> Callable[[], float]:
        def call() -> float:
            analysis = analysis_cls(params)
            captured[label] = analysis
            return analysis.mean_response_time_short()

        return call

    if job_class == "short":
        values = {
            _POLICY_LABELS[0]: _safe(short_entry(_POLICY_LABELS[0], DedicatedAnalysis)),
            _POLICY_LABELS[1]: _safe(short_entry(_POLICY_LABELS[1], CsIdAnalysis)),
            _POLICY_LABELS[2]: _safe(short_entry(_POLICY_LABELS[2], CsCqAnalysis)),
        }
    else:
        values = {
            _POLICY_LABELS[0]: _safe(
                lambda: Mg1Queue(params.lam_l, params.long_service).mean_response_time()
            ),
            _POLICY_LABELS[1]: _safe(lambda: LongHostCycle(params).mean_response_time_long()),
            _POLICY_LABELS[2]: _safe(lambda: _cs_cq_long(params, capture=captured_diag)),
        }
    from ..contracts import contracts_enabled, evaluate

    if contracts_enabled():
        results = evaluate("point", values, job_class=job_class)
        for analysis in captured.values():
            results.extend(evaluate("analysis", analysis, params=params))
        _warn_contract_failures(results)
    if not with_diagnostics:
        return values, None
    diagnostics = {}
    for source in (captured, captured_diag):
        for label, analysis in source.items():
            diag = getattr(analysis, "solver_diagnostics", None)
            if diag is not None:
                diagnostics.setdefault(label, diag.as_dict())
    # Policies whose value came from a closed-form formula (Dedicated both
    # classes, CS-ID longs, saturated CS-CQ longs) have no solve behind
    # them; they still carry an explicit trust record in the manifest.
    for label, value in values.items():
        if label not in diagnostics and np.isfinite(value):
            diagnostics[label] = _closed_form_diagnostics().as_dict()
    return values, diagnostics or None


def _sweep_policy_values(
    case: WorkloadCase,
    load_pairs: Sequence[tuple[float, float]],
    job_class: str,
    runner=None,
) -> dict[str, np.ndarray]:
    """Per-policy y-arrays over ``(rho_s, rho_l)`` load pairs.

    With a :class:`~repro.orchestration.SweepRunner`, each pair becomes a
    ``response-point`` sweep point executed in a worker subprocess; a
    failed, crashed or timed-out point contributes NaN (same contract as
    the in-process :func:`_safe` path) and the sweep continues.
    """
    from ..perf.batched import batched_enabled

    out = {label: np.full(len(load_pairs), np.nan) for label in _POLICY_LABELS}
    if runner is None:
        if batched_enabled():
            from ..perf.batched import batched_sweep_values

            values, _ = batched_sweep_values(case, load_pairs, job_class)
            return values
        for i, (rho_s, rho_l) in enumerate(load_pairs):
            values, _ = _policy_point_values(case.params(rho_s, rho_l), job_class)
            for label in _POLICY_LABELS:
                out[label][i] = values[label]
        return out

    from dataclasses import asdict

    from ..orchestration.spec import SweepPoint

    if batched_enabled():
        # One worker call solves a whole slab of points batched; slabs are
        # sized so every worker gets one.
        workers = max(1, int(getattr(runner, "workers", 0) or 1))
        slab = -(-len(load_pairs) // workers)
        chunks = [
            (start, [(float(a), float(b)) for a, b in load_pairs[start : start + slab]])
            for start in range(0, len(load_pairs), slab)
        ]
        points = [
            SweepPoint(
                task="response-batch",
                kwargs={
                    "case": asdict(case),
                    "pairs": [[rho_s, rho_l] for rho_s, rho_l in pairs],
                    "job_class": job_class,
                },
                label=f"{case.name}/{job_class}/batch[{start}:{start + len(pairs)}]",
            )
            for start, pairs in chunks
        ]
        for (start, pairs), outcome in zip(chunks, runner.run(points)):
            if outcome is None or not outcome.ok or not isinstance(outcome.value, dict):
                continue  # failed/timeout slab: stays NaN, sweep continues
            rows = outcome.value.get("values", {})
            for label in _POLICY_LABELS:
                row = rows.get(label)
                if row is None:
                    continue
                for offset, value in enumerate(row[: len(pairs)]):
                    if value is not None:
                        out[label][start + offset] = float(value)
        return out

    points = [
        SweepPoint(
            task="response-point",
            kwargs={
                "case": asdict(case),
                "rho_s": float(rho_s),
                "rho_l": float(rho_l),
                "job_class": job_class,
            },
            label=f"{case.name}/{job_class}/rho_s={rho_s:g}/rho_l={rho_l:g}",
        )
        for rho_s, rho_l in load_pairs
    ]
    for i, outcome in enumerate(runner.run(points)):
        if outcome is None or not outcome.ok or not isinstance(outcome.value, dict):
            continue  # failed/timeout point: stays NaN, sweep continues
        values = outcome.value.get("values", {})
        for label in _POLICY_LABELS:
            value = values.get(label)
            if value is not None:
                out[label][i] = float(value)
    return out


def response_time_series(
    case: WorkloadCase,
    rho_s_values: Sequence[float],
    rho_l: float,
    job_class: str,
    runner=None,
) -> tuple[Series, Series, Series]:
    """Dedicated / CS-ID / CS-CQ mean response time vs ``rho_s``.

    Short-job series are NaN beyond each policy's stability boundary (the
    truncated curves in the paper's plots).  Long-job series extend across
    the whole range, as in the paper: the long host remains stable for all
    ``rho_s`` under every policy (Dedicated's longs never see the shorts;
    CS-ID's long host is autonomous; CS-CQ's longs see the saturated-setup
    M/G/1 once the shorts overload).

    Pass a :class:`~repro.orchestration.SweepRunner` as ``runner`` to
    execute the points in checkpointed worker subprocesses.
    """
    if job_class not in ("short", "long"):
        raise ValueError(f"job_class must be 'short' or 'long', got {job_class!r}")
    xs = np.asarray(list(rho_s_values), dtype=float)
    pairs = [(float(rho_s), float(rho_l)) for rho_s in xs]
    with span(
        "experiments.series", case=case.name, job_class=job_class, points=len(pairs)
    ):
        values = _sweep_policy_values(case, pairs, job_class, runner)
    return _row_series(case, xs, job_class, values)


def _row_series(
    case: WorkloadCase, xs: np.ndarray, job_class: str, values: dict
) -> tuple[Series, Series, Series]:
    """Contract-check one row's values and wrap them as plot series."""
    from ..contracts import check_monotone_series, contracts_enabled

    if contracts_enabled():
        # Heavier short load can only slow every policy down; a dip along
        # the sweep means at least one point solved wrong.
        for label in _POLICY_LABELS:
            _warn_contract_failures(
                check_monotone_series(
                    xs, values[label], label=f"{case.name}/{job_class}/{label}"
                )
            )
    return (
        Series(_POLICY_LABELS[0], xs, values[_POLICY_LABELS[0]]),
        Series(_POLICY_LABELS[1], xs, values[_POLICY_LABELS[1]]),
        Series(_POLICY_LABELS[2], xs, values[_POLICY_LABELS[2]]),
    )


def _response_panels(
    cases: Iterable[WorkloadCase],
    rho_l: float,
    rho_s_values: Sequence[float] | None,
    figure_name: str,
    runner=None,
) -> list[Panel]:
    from ..perf.batched import batched_enabled

    # One cache scope per figure: the short- and long-job rows of a case
    # solve the same QBDs, and the busy-period fits are constant along a
    # rho_s sweep, so the scope deduplicates across the whole 2x3 grid.
    panels = []
    with span("experiments.figure", figure=figure_name, rho_l=rho_l), sweep_cache():
        rows = []
        for case in cases:
            if rho_s_values is None:
                top = cs_cq_max_rho_s(rho_l)
                xs = np.round(np.arange(0.05, top - 1e-9, 0.05), 10)
            else:
                xs = np.asarray(list(rho_s_values), dtype=float)
            for job_class in ("short", "long"):
                rows.append((case, xs, job_class))
        if runner is None and batched_enabled():
            # The batched backend pools every row's QBDs into merged
            # tensor solves (one per block shape for the whole figure).
            from ..perf.batched import batched_figure_values

            values_rows = batched_figure_values(
                [
                    (case, [(float(rho_s), float(rho_l)) for rho_s in xs], jc)
                    for case, xs, jc in rows
                ]
            )
            series_rows = [
                _row_series(case, xs, jc, values)
                for (case, xs, jc), values in zip(rows, values_rows)
            ]
        else:
            series_rows = [
                response_time_series(case, xs, rho_l, jc, runner=runner)
                for case, xs, jc in rows
            ]
        for (case, xs, job_class), series in zip(rows, series_rows):
            panels.append(
                Panel(
                    title=(
                        f"{figure_name} ({case.name}) "
                        f"{'How shorts gain' if job_class == 'short' else 'How longs suffer'}"
                        f" - {case.label()}, rho_l={rho_l:g}"
                    ),
                    xlabel="rhos",
                    ylabel=f"Mean response time {job_class} jobs",
                    series=series,
                )
            )
    return panels


def figure4_panels(
    rho_l: float = 0.5, rho_s_values: Sequence[float] | None = None, runner=None
) -> list[Panel]:
    """Figure 4: exponential shorts and longs; 2 rows x 3 cases."""
    return _response_panels(EXPONENTIAL_CASES, rho_l, rho_s_values, "Figure 4", runner)


def figure5_panels(
    rho_l: float = 0.5, rho_s_values: Sequence[float] | None = None, runner=None
) -> list[Panel]:
    """Figure 5: exponential shorts, Coxian longs with C^2 = 8."""
    return _response_panels(COXIAN_LONG_CASES, rho_l, rho_s_values, "Figure 5", runner)


def figure3_panel(rho_l_values: Sequence[float] | None = None) -> Panel:
    """Figure 3: the stability constraint on ``rho_s`` vs ``rho_l``."""
    if rho_l_values is None:
        rho_l_values = np.round(np.arange(0.0, 1.0, 0.02), 10)
    xs = np.asarray(list(rho_l_values), dtype=float)
    return Panel(
        title="Figure 3: Stability condition on rhos",
        xlabel="rhol",
        ylabel="max rhos",
        series=(
            Series("Dedicated", xs, np.array([dedicated_max_rho_s(r) for r in xs])),
            Series("Immed-Disp", xs, np.array([cs_id_max_rho_s(r) for r in xs])),
            Series("Central-Q", xs, np.array([cs_cq_max_rho_s(r) for r in xs])),
        ),
        notes=(
            "All three boundaries are distribution-free; CS-ID's is the "
            "positive root of rho_s^2 + rho_s*rho_l - rho_s - 1 = 0."
        ),
    )


def figure6_panels(
    rho_s: float = 1.5,
    rho_l_values_short: Sequence[float] | None = None,
    rho_l_values_long: Sequence[float] | None = None,
    cases: Iterable[WorkloadCase] = COXIAN_LONG_CASES,
    runner=None,
) -> list[Panel]:
    """Figure 6: response times vs ``rho_l`` at fixed ``rho_s`` (default 1.5).

    Row 1 (shorts): only the cycle-stealing policies are plotted — Dedicated
    is unstable over the whole range since ``rho_s > 1``.  The x range ends
    at the CS-CQ asymptote ``rho_l = 2 - rho_s``.
    Row 2 (longs): all ``rho_l < 1``; where the shorts are overloaded the
    CS-CQ longs see the saturated-setup M/G/1 (every busy period starts
    behind an ``Exp(2 mu_s)`` setup) and the CS-ID long host is autonomous,
    so both curves extend across the full range.
    """
    if rho_l_values_short is None:
        top = 2.0 - rho_s
        rho_l_values_short = np.round(np.arange(0.0, top - 1e-9, 0.025), 10)
    if rho_l_values_long is None:
        rho_l_values_long = np.round(np.arange(0.025, 1.0 - 1e-9, 0.025), 10)

    panels = []
    with span("experiments.figure", figure="Figure 6", rho_s=rho_s), sweep_cache():
        panels.extend(
            _figure6_case_panels(rho_s, rho_l_values_short, rho_l_values_long, cases, runner)
        )
    return panels


def _figure6_case_panels(rho_s, rho_l_values_short, rho_l_values_long, cases, runner):
    from ..perf.batched import batched_enabled

    cases = list(cases)
    xs = np.asarray(list(rho_l_values_short), dtype=float)
    xl = np.asarray(list(rho_l_values_long), dtype=float)
    short_pairs = [(float(rho_s), float(rho_l)) for rho_l in xs]
    long_pairs = [(float(rho_s), float(rho_l)) for rho_l in xl]
    if runner is None and batched_enabled():
        from ..perf.batched import batched_figure_values

        rows = [(case, short_pairs, "short") for case in cases]
        rows += [(case, long_pairs, "long") for case in cases]
        pooled = batched_figure_values(rows)
        values_by_row = {
            (case.name, jc): values
            for (case, _pairs, jc), values in zip(rows, pooled)
        }
    else:
        values_by_row = None

    def _row_values(case, pairs, job_class):
        if values_by_row is not None:
            return values_by_row[(case.name, job_class)]
        return _sweep_policy_values(case, pairs, job_class, runner)

    panels = []
    for case in cases:
        short_values = _row_values(case, short_pairs, "short")
        panels.append(
            Panel(
                title=f"Figure 6 ({case.name}) How shorts gain - {case.label()}, rho_s={rho_s:g}",
                xlabel="rhol",
                ylabel="Mean response time short jobs",
                series=(
                    Series("CS-Immed-Disp", xs, short_values["CS-Immed-Disp"]),
                    Series("CS-Central-Q", xs, short_values["CS-Central-Q"]),
                ),
                notes="Dedicated is unstable for the whole range (rho_s > 1).",
            )
        )

        long_values = _row_values(case, long_pairs, "long")
        panels.append(
            Panel(
                title=f"Figure 6 ({case.name}) How longs suffer - {case.label()}, rho_s={rho_s:g}",
                xlabel="rhol",
                ylabel="Mean response time long jobs",
                series=(
                    Series("Dedicated", xl, long_values["Dedicated"]),
                    Series("CS-Immed-Disp", xl, long_values["CS-Immed-Disp"]),
                    Series("CS-Central-Q", xl, long_values["CS-Central-Q"]),
                ),
                notes="Long host is stable for all rho_l < 1 under every policy.",
            )
        )
    return panels


def _cs_cq_long(params: SystemParameters, capture: dict | None = None) -> float:
    """CS-CQ long response: full chain when shorts stable, else saturated.

    With ``capture``, the chain-backed branch records its analysis under
    the CS-CQ label so the long row's manifest carries the QBD solve's
    trust record (the saturated branch is closed-form and synthesized by
    the caller instead).
    """
    if params.rho_s < 2.0 - params.rho_l:
        analysis = CsCqAnalysis(params)
        if capture is not None:
            capture[_POLICY_LABELS[2]] = analysis
        return analysis.mean_response_time_long()
    return cs_cq_long_response_saturated(params)
