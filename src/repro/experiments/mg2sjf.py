"""Section 6 discussion: cycle stealing vs M/G/2/SJF.

The paper's closing discussion compares the cycle-stealing policies with a
natural non-preemptive alternative — a central queue giving short jobs
priority at *both* hosts — and observes that "M/G/2/SJF sometimes
outperforms our cycle stealing algorithms and sometimes does worse,
depending on rho_s, rho_l, and the job size distributions".  M/G/2/SJF has
no exact analysis, so this study is simulation-vs-simulation (with the
CS-CQ analysis shown alongside as a cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import CsCqAnalysis, UnstableSystemError
from ..simulation import simulate
from ..workloads import WorkloadCase
from .base import format_table

__all__ = ["Mg2SjfRow", "format_mg2sjf_rows", "mg2sjf_comparison"]


@dataclass(frozen=True)
class Mg2SjfRow:
    """One load point of the CS-CQ vs M/G/2/SJF comparison."""

    case: str
    rho_s: float
    rho_l: float
    cs_cq_short: float
    cs_cq_long: float
    sjf_short: float
    sjf_long: float
    cs_cq_short_analytic: float

    @property
    def sjf_wins_short(self) -> bool:
        """True when M/G/2/SJF gives shorts a lower mean response."""
        return self.sjf_short < self.cs_cq_short


def mg2sjf_comparison(
    cases: Sequence[WorkloadCase],
    load_points: Sequence[tuple[float, float]],
    measured_jobs: int = 300_000,
    seed: int = 77,
) -> list[Mg2SjfRow]:
    """Simulate CS-CQ and M/G/2/SJF across the given ``(rho_s, rho_l)`` points."""
    rows = []
    for case in cases:
        for rho_s, rho_l in load_points:
            params = case.params(rho_s, rho_l)
            try:
                analytic = CsCqAnalysis(params).mean_response_time_short()
            except UnstableSystemError:
                continue
            cs = simulate("cs-cq", params, seed=seed, measured_jobs=measured_jobs)
            sjf = simulate("mg2-sjf", params, seed=seed + 1, measured_jobs=measured_jobs)
            rows.append(
                Mg2SjfRow(
                    case=case.name,
                    rho_s=rho_s,
                    rho_l=rho_l,
                    cs_cq_short=cs.mean_response_short,
                    cs_cq_long=cs.mean_response_long,
                    sjf_short=sjf.mean_response_short,
                    sjf_long=sjf.mean_response_long,
                    cs_cq_short_analytic=analytic,
                )
            )
    return rows


def format_mg2sjf_rows(rows: Sequence[Mg2SjfRow]) -> str:
    """Render the comparison plus the paper's sometimes-wins observation."""
    body = format_table(
        [
            "case", "rho_s", "rho_l",
            "CS-CQ T_S (sim)", "SJF T_S (sim)", "short winner",
            "CS-CQ T_L (sim)", "SJF T_L (sim)",
        ],
        [
            [
                r.case,
                f"{r.rho_s:.2f}",
                f"{r.rho_l:.2f}",
                r.cs_cq_short,
                r.sjf_short,
                "M/G/2/SJF" if r.sjf_wins_short else "CS-CQ",
                r.cs_cq_long,
                r.sjf_long,
            ]
            for r in rows
        ],
    )
    wins = sum(r.sjf_wins_short for r in rows)
    return (
        body
        + f"\nM/G/2/SJF wins on shorts at {wins}/{len(rows)} points "
        + "(paper: 'sometimes outperforms ... and sometimes does worse')"
    )
