"""Section 4 validation: known limiting cases and analysis-vs-simulation.

The paper validates the busy-period-transition method two ways:

1. **Known limiting cases** — as one class's traffic intensity approaches
   zero or saturation the system collapses to an M/G/1 queue, an M/G/1
   with setup, or an M/M/2 queue, all of which have exact formulas.  The
   paper reports this validation as "perfect"; :func:`limiting_cases`
   reproduces each comparison.
2. **Simulation** — over a broad grid of loads and size distributions; the
   paper reports analysis-simulation differences "under 2% in almost all
   cases, and never over 5%", the large errors occurring "rarely and only
   at very high load".  :func:`analysis_vs_simulation` regenerates that
   error table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import (
    CsCqAnalysis,
    CsIdAnalysis,
    LongHostCycle,
    SystemParameters,
)
from ..perf import sweep_cache
from ..queueing import Mg1Queue, Mg1SetupQueue, MmcQueue
from ..simulation import simulate
from ..workloads import WorkloadCase
from .base import format_table

__all__ = [
    "LimitingCaseResult",
    "ValidationRow",
    "analysis_vs_simulation",
    "format_validation_rows",
    "limiting_cases",
]


@dataclass(frozen=True)
class LimitingCaseResult:
    """One limiting-case comparison: our analysis vs an exact formula."""

    name: str
    ours: float
    exact: float

    @property
    def rel_error(self) -> float:
        """Relative error of our analysis against the exact value."""
        return abs(self.ours - self.exact) / abs(self.exact)


def limiting_cases(eps: float = 1e-8, sat_eps: float = 1e-3) -> list[LimitingCaseResult]:
    """Compare the analyses against exact results in their limits.

    ``eps`` drives the load-to-zero limits; ``sat_eps`` the distance from
    the short-saturation boundary (the QBD's geometric tail conditioning
    degrades as its spectral radius approaches 1, so this limit is taken
    less aggressively — the setup probability it tests converges much
    faster than the queue length diverges).
    """
    results = []

    # CS-CQ shorts as lam_l -> 0: shorts own both hosts => M/M/2.
    params = SystemParameters.from_loads(rho_s=1.2, rho_l=eps)
    results.append(
        LimitingCaseResult(
            name="CS-CQ shorts, lam_l->0  (exact: M/M/2)",
            ours=CsCqAnalysis(params).mean_response_time_short(),
            exact=MmcQueue(params.lam_s, params.mu_s, 2).mean_response_time(),
        )
    )

    # CS-CQ longs as lam_s -> 0: plain M/G/1 (setup probability vanishes).
    params = SystemParameters.from_loads(rho_s=eps, rho_l=0.7, long_scv=8.0)
    results.append(
        LimitingCaseResult(
            name="CS-CQ longs, lam_s->0  (exact: M/G/1)",
            ours=CsCqAnalysis(params).mean_response_time_long(),
            exact=Mg1Queue(params.lam_l, params.long_service).mean_response_time(),
        )
    )

    # CS-CQ longs as shorts approach saturation: M/G/1 with Exp(2 mu_s)
    # setup at every busy period.
    params = SystemParameters.from_loads(rho_s=1.3 - sat_eps, rho_l=0.7)
    nu = 2.0 * params.mu_s
    results.append(
        LimitingCaseResult(
            name="CS-CQ longs, shorts->saturation  (exact: M/G/1 + Exp(2mu_s) setup)",
            ours=CsCqAnalysis(params).mean_response_time_long(),
            exact=Mg1SetupQueue(
                params.lam_l, params.long_service, (1.0 / nu, 2.0 / nu**2)
            ).mean_response_time(),
        )
    )

    # CS-ID shorts as lam_l -> 0: every short that finds the donor host
    # idle runs there; this is the lam_l=0 cycle, still nontrivial, but as
    # lam_s -> 0 as well both hosts are idle => response = E[X_S].
    params = SystemParameters.from_loads(rho_s=eps, rho_l=eps)
    results.append(
        LimitingCaseResult(
            name="CS-ID shorts, both loads->0  (exact: E[X_S])",
            ours=CsIdAnalysis(params).mean_response_time_short(),
            exact=params.short_service.mean,
        )
    )

    # CS-ID longs as lam_s -> 0: plain M/G/1.
    params = SystemParameters.from_loads(rho_s=eps, rho_l=0.7, long_scv=8.0)
    results.append(
        LimitingCaseResult(
            name="CS-ID longs, lam_s->0  (exact: M/G/1)",
            ours=LongHostCycle(params).mean_response_time_long(),
            exact=Mg1Queue(params.lam_l, params.long_service).mean_response_time(),
        )
    )

    # Dedicated shorts: M/M/1 sanity anchor for the grid.
    params = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
    results.append(
        LimitingCaseResult(
            name="CS-ID longs, lam_s->infty-free check (M/G/1+setup Exp(mu_s) as q->1)",
            ours=LongHostCycle(
                SystemParameters.from_loads(rho_s=1e6, rho_l=0.5)
            ).mean_response_time_long(),
            exact=Mg1SetupQueue(
                0.5,
                params.long_service,
                (1.0 / params.mu_s, 2.0 / params.mu_s**2),
            ).mean_response_time(),
        )
    )
    return results


@dataclass(frozen=True)
class ValidationRow:
    """One analysis-vs-simulation comparison point."""

    case: str
    policy: str
    job_class: str
    rho_s: float
    rho_l: float
    analytic: float
    simulated: float

    @property
    def rel_error(self) -> float:
        """|analysis - simulation| / simulation."""
        return abs(self.analytic - self.simulated) / abs(self.simulated)


def analysis_vs_simulation(
    cases: Sequence[WorkloadCase],
    rho_s_values: Sequence[float],
    rho_l_values: Sequence[float],
    measured_jobs: int = 400_000,
    warmup_jobs: int = 40_000,
    seed: int = 1234,
    runner=None,
) -> list[ValidationRow]:
    """Regenerate the paper's analysis-vs-simulation error study.

    With a :class:`~repro.orchestration.SweepRunner`, each (case, load,
    policy) cell becomes a checkpointed ``validation-point`` executed in a
    worker subprocess — a crashed or hung simulation costs one cell, not
    the whole grid, and an interrupted study resumes.
    """
    if runner is not None:
        return _orchestrated_validation(
            cases, rho_s_values, rho_l_values, measured_jobs, warmup_jobs, seed, runner
        )
    with sweep_cache():
        return _inline_validation(
            cases, rho_s_values, rho_l_values, measured_jobs, warmup_jobs, seed
        )


def _inline_validation(
    cases, rho_s_values, rho_l_values, measured_jobs, warmup_jobs, seed
) -> list[ValidationRow]:
    rows: list[ValidationRow] = []
    for case in cases:
        for rho_l in rho_l_values:
            for rho_s in rho_s_values:
                params = case.params(rho_s, rho_l)
                for policy, analysis_cls in (
                    ("cs-cq", CsCqAnalysis),
                    ("cs-id", CsIdAnalysis),
                ):
                    try:
                        analysis = analysis_cls(params)
                        t_short = analysis.mean_response_time_short()
                        t_long = analysis.mean_response_time_long()
                    except Exception:
                        continue  # outside this policy's stability region
                    sim = simulate(
                        policy,
                        params,
                        seed=seed,
                        warmup_jobs=warmup_jobs,
                        measured_jobs=measured_jobs,
                    )
                    rows.append(
                        ValidationRow(
                            case.name, policy, "short", rho_s, rho_l,
                            t_short, sim.mean_response_short,
                        )
                    )
                    rows.append(
                        ValidationRow(
                            case.name, policy, "long", rho_s, rho_l,
                            t_long, sim.mean_response_long,
                        )
                    )
    return rows


def _orchestrated_validation(
    cases, rho_s_values, rho_l_values, measured_jobs, warmup_jobs, seed, runner
) -> list[ValidationRow]:
    """Run the validation grid through a fault-tolerant sweep runner."""
    from dataclasses import asdict

    from ..orchestration.spec import SweepPoint

    meta, points = [], []
    for case in cases:
        for rho_l in rho_l_values:
            for rho_s in rho_s_values:
                for policy in ("cs-cq", "cs-id"):
                    meta.append((case, policy, float(rho_s), float(rho_l)))
                    points.append(
                        SweepPoint(
                            task="validation-point",
                            kwargs={
                                "case": asdict(case),
                                "policy": policy,
                                "rho_s": float(rho_s),
                                "rho_l": float(rho_l),
                                "measured_jobs": int(measured_jobs),
                                "warmup_jobs": int(warmup_jobs),
                                "seed": int(seed),
                            },
                            label=(
                                f"validation/{case.name}/{policy}/"
                                f"rho_s={rho_s:g}/rho_l={rho_l:g}"
                            ),
                        )
                    )
    rows: list[ValidationRow] = []
    for (case, policy, rho_s, rho_l), outcome in zip(meta, runner.run(points)):
        if outcome is None or not outcome.ok or not isinstance(outcome.value, dict):
            continue  # failed/timed-out cell: dropped, grid continues
        for row in outcome.value.get("rows", []):
            rows.append(
                ValidationRow(
                    case.name, policy, row["job_class"], rho_s, rho_l,
                    row["analytic"], row["simulated"],
                )
            )
    return rows


def format_validation_rows(rows: Sequence[ValidationRow]) -> str:
    """Render the error table plus the paper-style summary line."""
    table = format_table(
        ["case", "policy", "class", "rho_s", "rho_l", "analysis", "simulation", "err%"],
        [
            [
                r.case,
                r.policy,
                r.job_class,
                f"{r.rho_s:.2f}",
                f"{r.rho_l:.2f}",
                r.analytic,
                r.simulated,
                f"{100 * r.rel_error:.2f}",
            ]
            for r in rows
        ],
    )
    if rows:
        errors = [r.rel_error for r in rows]
        summary = (
            f"\nmax error {100 * max(errors):.2f}%, "
            f"{100 * sum(e < 0.02 for e in errors) / len(errors):.0f}% of points under 2% "
            f"(paper: 'under 2% in almost all cases, never over 5%')"
        )
    else:
        summary = ""
    return table + summary
