"""Experiment harness: one runner per paper figure/table plus ablations."""

from .ablations import (
    MomentAblationRow,
    TruncationAblationRow,
    format_moment_ablation,
    format_truncation_ablation,
    moment_matching_ablation,
    truncation_ablation,
)
from .base import Panel, Series, format_panel, format_table
from .figures import (
    figure3_panel,
    figure4_panels,
    figure5_panels,
    figure6_panels,
    response_time_series,
)
from .mg2sjf import Mg2SjfRow, format_mg2sjf_rows, mg2sjf_comparison
from .runtime import RuntimeComparison, runtime_comparison
from .validation import (
    LimitingCaseResult,
    ValidationRow,
    analysis_vs_simulation,
    format_validation_rows,
    limiting_cases,
)

__all__ = [
    "LimitingCaseResult",
    "Mg2SjfRow",
    "MomentAblationRow",
    "Panel",
    "RuntimeComparison",
    "Series",
    "TruncationAblationRow",
    "ValidationRow",
    "analysis_vs_simulation",
    "figure3_panel",
    "figure4_panels",
    "figure5_panels",
    "figure6_panels",
    "format_mg2sjf_rows",
    "format_moment_ablation",
    "format_panel",
    "format_table",
    "format_truncation_ablation",
    "format_validation_rows",
    "limiting_cases",
    "mg2sjf_comparison",
    "moment_matching_ablation",
    "response_time_series",
    "runtime_comparison",
    "truncation_ablation",
]
