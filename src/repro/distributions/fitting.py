"""Moment-matching: build small phase-type distributions from three moments.

This is the approximation step at the heart of the paper (Section 2.2,
footnote 2): every generally-distributed quantity — the long job sizes and,
crucially, the busy-period transition durations ``B_L`` and ``B_{N+1}`` — is
replaced by a Coxian matched on its first three moments.  The paper cites
Osogami & Harchol-Balter's representability conditions for 2-stage Coxians;
for moment triples a 2-stage Coxian cannot hit (low variability), we fall
back to a mixture of two common-order Erlangs (Johnson & Taaffe), which is
still an acyclic phase type and slots into the same QBD machinery.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..perf import cached
from ..robustness import ReproError, ensure_finite_scalar
from ..telemetry import span
from .base import Distribution
from .coxian import Coxian, coxian2
from .exponential import Exponential
from .hyperexponential import Hyperexponential
from .moments import check_feasible_moments, scv_from_moments
from .phase_type import PhaseType

__all__ = [
    "fit_coxian2",
    "fit_mixed_erlang",
    "fit_phase_type",
    "coxian_from_mean_scv",
    "FittingError",
]


class FittingError(ReproError, ValueError):
    """Raised when no representation is found for a moment triple.

    Part of the :class:`~repro.robustness.ReproError` taxonomy (and still a
    ``ValueError`` for backward compatibility).
    """


def _exponential_if_close(m1: float, m2: float, m3: float) -> Optional[Exponential]:
    """Return Exponential(1/m1) when the triple matches one almost exactly."""
    exp_m2 = 2.0 * m1 * m1
    exp_m3 = 6.0 * m1 * m1 * m1
    if math.isclose(m2, exp_m2, rel_tol=1e-9) and math.isclose(m3, exp_m3, rel_tol=1e-9):
        return Exponential(1.0 / m1)
    return None


def fit_coxian2(m1: float, m2: float, m3: float) -> Coxian:
    """Fit a 2-stage Coxian to three raw moments (exact match).

    Writing ``x = 1/mu1``, ``u = p/mu2`` (so the mean is ``x + u``), the
    moment equations reduce to the quadratic::

        (m1^2 - m2/2) x^2 + (m3/6 - m1 m2 / 2) x + (m2^2/4 - m1 m3 / 6) = 0

    A root is admissible when ``0 < x <= m1``, the implied second stage has
    a positive rate, and the continuation probability lies in ``(0, 1]``.

    Raises
    ------
    FittingError
        If no admissible root exists (the triple is outside the 2-stage
        Coxian representability region of Osogami & Harchol-Balter).
    """
    check_feasible_moments(m1, m2, m3)
    exp = _exponential_if_close(m1, m2, m3)
    if exp is not None:
        # Degenerate Coxian: second stage never entered.
        return Coxian([exp.rate, exp.rate], [0.0])

    a = m1 * m1 - m2 / 2.0
    b = m3 / 6.0 - m1 * m2 / 2.0
    c = m2 * m2 / 4.0 - m1 * m3 / 6.0

    if math.isclose(a, 0.0, abs_tol=1e-14 * m1 * m1):
        roots = [] if math.isclose(b, 0.0, abs_tol=1e-300) else [-c / b]
    else:
        disc = b * b - 4.0 * a * c
        if disc < 0.0:
            raise FittingError(
                f"moments ({m1}, {m2}, {m3}) are not 2-stage-Coxian representable "
                f"(negative discriminant {disc})"
            )
        sq = math.sqrt(disc)
        # Numerically stable quadratic roots (avoids catastrophic
        # cancellation when |a| is tiny, i.e. scv close to 1).
        if b >= 0.0:
            q = -(b + sq) / 2.0
        else:
            q = -(b - sq) / 2.0
        roots = [q / a]
        if q != 0.0:
            roots.append(c / q)

    for x in sorted(roots):
        if not 0.0 < x <= m1 * (1.0 + 1e-12):
            continue
        u = m1 - x
        if u <= 1e-14 * m1:
            # p == 0 forces an exponential, which can only be right when the
            # whole triple is exponential-consistent (handled above) — e.g.
            # (1, 2, 8) has scv == 1 but is not Coxian-2 representable.
            continue
        y = (m2 / 2.0 - m1 * x) / u
        if y <= 0.0:
            continue
        p = u / y
        if not 0.0 < p <= 1.0 + 1e-12:
            continue
        return coxian2(1.0 / x, 1.0 / y, min(p, 1.0))

    raise FittingError(
        f"moments ({m1}, {m2}, {m3}) are not 2-stage-Coxian representable"
    )


def fit_mixed_erlang(
    m1: float, m2: float, m3: float, max_order: int = 64
) -> PhaseType:
    """Fit a mixture of two Erlangs of common order to three raw moments.

    For order ``k``, a mixture of ``Erlang(k, 1/x1)`` and ``Erlang(k, 1/x2)``
    has moments ``m_j = [(k+j-1)!/(k-1)!] * E[Z^j]`` where ``Z`` is a
    two-point random variable on the stage means ``x1, x2``.  Matching thus
    reduces to the classical two-atom moment problem for the normalized
    moments.  Increasing ``k`` reaches arbitrarily low variability
    (``scv >= 1/k``); ``k == 1`` recovers the standard three-moment
    hyperexponential fit.
    """
    check_feasible_moments(m1, m2, m3)
    exp = _exponential_if_close(m1, m2, m3)
    if exp is not None:
        return exp.as_phase_type()

    for k in range(1, max_order + 1):
        nu1 = m1 / k
        nu2 = m2 / (k * (k + 1))
        nu3 = m3 / (k * (k + 1) * (k + 2))
        denom = nu2 - nu1 * nu1
        if denom <= 0.0:
            continue  # needs a higher order (variability below 1/k)
        a = (nu3 - nu1 * nu2) / denom
        b = a * nu1 - nu2
        disc = a * a - 4.0 * b
        if disc < 0.0:
            continue
        sq = math.sqrt(disc)
        x1 = (a + sq) / 2.0
        x2 = (a - sq) / 2.0
        if x1 <= 0.0 or x2 <= 0.0 or math.isclose(x1, x2, rel_tol=1e-14):
            continue
        q = (nu1 - x2) / (x1 - x2)
        if not 0.0 <= q <= 1.0:
            continue
        return _erlang_mixture_ph(k, [(q, 1.0 / x1), (1.0 - q, 1.0 / x2)])

    raise FittingError(
        f"no mixed-Erlang representation of order <= {max_order} for "
        f"moments ({m1}, {m2}, {m3})"
    )


def _erlang_mixture_ph(k: int, branches: list[tuple[float, float]]) -> PhaseType:
    """Build the PH for a mixture of Erlang(k, rate) branches."""
    branches = [(w, r) for w, r in branches if w > 1e-15]
    n = k * len(branches)
    T = np.zeros((n, n))
    alpha = np.zeros(n)
    for i, (weight, rate) in enumerate(branches):
        base = i * k
        alpha[base] = weight
        for j in range(k):
            T[base + j, base + j] = -rate
            if j + 1 < k:
                T[base + j, base + j + 1] = rate
    return PhaseType(alpha, T)


def fit_phase_type(m1: float, m2: float, m3: float) -> Distribution:
    """Fit a small acyclic phase-type distribution to three raw moments.

    Tries the paper's 2-stage Coxian first; falls back to a common-order
    Erlang mixture when the triple is outside the Coxian-2 region *or* when
    the Coxian solve loses precision (possible for scv extremely close to
    1, where the defining quadratic degenerates).  The returned
    distribution reproduces all three moments (verified in the test suite
    with hypothesis round-trip properties).

    Inside an active :func:`repro.perf.sweep_cache` scope the fit is
    memoized on the exact moment triple; the fitted distributions are
    immutable, so the cached object is shared.
    """
    return cached(
        "ph-fit", (float(m1), float(m2), float(m3)), lambda: _fit_phase_type(m1, m2, m3)
    )


def _fit_phase_type(m1: float, m2: float, m3: float) -> Distribution:
    def round_trip_ok(dist: Distribution) -> bool:
        return all(
            math.isclose(dist.moment(k), target, rel_tol=1e-7)
            for k, target in ((1, m1), (2, m2), (3, m3))
        )

    with span("fit.phase_type", m1=m1, m2=m2, m3=m3) as fit_span:
        try:
            fitted = fit_coxian2(m1, m2, m3)
            if round_trip_ok(fitted):
                fit_span.set("kind", type(fitted).__name__)
                return fitted
        except FittingError:
            pass
        fitted = fit_mixed_erlang(m1, m2, m3)
        if not round_trip_ok(fitted):
            raise FittingError(
                f"no numerically clean phase-type representation found for "
                f"moments ({m1}, {m2}, {m3})"
            )
        fit_span.set("kind", type(fitted).__name__)
        fit_span.set("fallback", "mixed-erlang")
        return fitted


def coxian_from_mean_scv(mean: float, scv: float) -> Distribution:
    """Two-moment fit used for the paper's "Coxian with C^2 = 8" workloads.

    For ``scv > 1`` this is the textbook 2-stage Coxian with
    ``mu1 = 2/mean``, ``mu2 = 1/(mean * scv)``, ``p = 1/(2 * scv)``
    (the parameterization implied by "Coxian distribution with appropriate
    mean and squared coefficient of variation" in Figures 5-6).  ``scv == 1``
    returns an exponential; ``1/2 <= scv < 1`` still admits the Coxian-2
    formula; lower variability falls back to an Erlang-like fit on an
    implied third moment.
    """
    mean = ensure_finite_scalar(mean, "mean")
    scv = ensure_finite_scalar(scv, "scv")
    if mean <= 0.0:
        raise ValueError(f"mean must be positive, got {mean}")
    if scv <= 0.0:
        raise ValueError(f"scv must be positive, got {scv}")
    if math.isclose(scv, 1.0, rel_tol=1e-12):
        return Exponential(1.0 / mean)
    if scv >= 0.5:
        return coxian2(2.0 / mean, 1.0 / (mean * scv), 1.0 / (2.0 * scv))
    # Low variability: match (mean, scv) with an Erlang-dominant mixture by
    # synthesizing the exponential-like third moment for that scv.
    m2 = (1.0 + scv) * mean * mean
    # Gamma-consistent third moment: E[X^3] = m1^3 (1+scv)(1+2 scv).
    # A finite-but-huge mean overflows the cube; that is a rejected input,
    # not a crash (float pow raises OverflowError, products go inf).
    try:
        m3 = mean**3 * (1.0 + scv) * (1.0 + 2.0 * scv)
    except OverflowError:
        m3 = float("inf")
    if not (math.isfinite(m2) and math.isfinite(m3)):
        raise FittingError(
            f"moments overflow float range for mean={mean}, scv={scv}"
        )
    return fit_mixed_erlang(mean, m2, m3)


def h2_from_mean_scv(mean: float, scv: float) -> Hyperexponential:
    """Balanced-means two-moment hyperexponential (requires ``scv >= 1``)."""
    return Hyperexponential.balanced_means(mean, scv)
