"""Core distribution abstractions.

Every analytic model in this package manipulates nonnegative service-time
distributions through a small common interface: raw moments, the
Laplace-Stieltjes transform (LST), and random sampling.  The paper's method
only ever needs the first three moments and the LST, but the interface
supports arbitrary moment orders so that validation code can cross-check
higher moments too.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

__all__ = ["Distribution", "NotRepresentableError"]


class NotRepresentableError(ValueError):
    """Raised when a distribution cannot be converted to a phase-type form."""


class Distribution(abc.ABC):
    """A nonnegative random variable (a job size / service requirement).

    Subclasses must implement :meth:`moment`, :meth:`laplace` and
    :meth:`sample`.  Everything else (mean, variance, squared coefficient of
    variation, load helpers) is derived.
    """

    @abc.abstractmethod
    def moment(self, k: int) -> float:
        """Return the k-th raw moment ``E[X^k]`` for integer ``k >= 1``."""

    @abc.abstractmethod
    def laplace(self, s: complex) -> complex:
        """Return the Laplace-Stieltjes transform ``E[exp(-s X)]``."""

    @abc.abstractmethod
    def sample(
        self, rng: np.random.Generator, size: Optional[int] = None
    ) -> "np.ndarray | float":
        """Draw i.i.d. samples using the supplied numpy random generator."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Return ``E[X]``."""
        return self.moment(1)

    @property
    def variance(self) -> float:
        """Return ``Var[X]``."""
        m1 = self.moment(1)
        return self.moment(2) - m1 * m1

    @property
    def std(self) -> float:
        """Return the standard deviation."""
        return math.sqrt(max(self.variance, 0.0))

    @property
    def scv(self) -> float:
        """Return the squared coefficient of variation ``Var[X]/E[X]^2``."""
        m1 = self.moment(1)
        if m1 == 0.0:
            raise ZeroDivisionError("scv undefined for a zero-mean distribution")
        return self.variance / (m1 * m1)

    def moments(self, upto: int = 3) -> tuple[float, ...]:
        """Return the tuple ``(E[X], E[X^2], ..., E[X^upto])``."""
        return tuple(self.moment(k) for k in range(1, upto + 1))

    def as_phase_type(self):
        """Return an equivalent :class:`~repro.distributions.PhaseType`.

        Subclasses with an exact phase-type representation override this.
        Others raise :class:`NotRepresentableError`; callers that need a
        phase-type stand-in should fall back to
        :func:`repro.distributions.fitting.fit_phase_type` (three-moment
        matching), which is exactly the paper's approximation step.
        """
        raise NotRepresentableError(
            f"{type(self).__name__} has no exact phase-type representation; "
            "use repro.distributions.fitting.fit_phase_type to approximate it"
        )

    def scaled(self, factor: float) -> "Distribution":
        """Return the distribution of ``factor * X``.

        Used for heterogeneous-host extensions (a host of speed ``s``
        serves a job of nominal size ``X`` in time ``X / s``).  Subclasses
        with exact closed forms override this; the default wraps the
        distribution generically.
        """
        from .scaled import ScaledDistribution

        return ScaledDistribution(self, factor)

    def _check_moment_order(self, k: int) -> None:
        if not isinstance(k, (int, np.integer)) or k < 1:
            raise ValueError(f"moment order must be a positive integer, got {k!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, scv={self.scv:.6g})"
