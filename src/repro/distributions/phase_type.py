"""General (continuous) phase-type distributions.

A phase-type (PH) distribution is the absorption time of a finite CTMC with
initial distribution ``alpha`` over transient phases and sub-generator ``T``.
The paper's machinery represents general service times and busy periods by
small PH (Coxian) distributions, so this class is the common denominator of
the analytic pipeline: moments, LST and sampling all have exact matrix
formulas.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import Distribution

__all__ = ["PhaseType"]


class PhaseType(Distribution):
    """Phase-type distribution ``PH(alpha, T)``.

    Parameters
    ----------
    alpha:
        Initial probability vector over the ``n`` transient phases.  A mass
        ``1 - sum(alpha)`` at absorption (i.e. an atom at zero) is allowed
        but unusual for service times.
    T:
        ``n x n`` sub-generator: negative diagonal, nonnegative off-diagonal,
        row sums ``<= 0`` with the deficit being the absorption (exit) rate.
    """

    def __init__(self, alpha, T):
        alpha = np.asarray(alpha, dtype=float).reshape(-1)
        T = np.asarray(T, dtype=float)
        if T.ndim != 2 or T.shape[0] != T.shape[1]:
            raise ValueError(f"T must be square, got shape {T.shape}")
        if alpha.shape[0] != T.shape[0]:
            raise ValueError(
                f"alpha has {alpha.shape[0]} entries but T is {T.shape[0]}x{T.shape[0]}"
            )
        if np.any(alpha < -1e-12) or alpha.sum() > 1.0 + 1e-9:
            raise ValueError(f"alpha must be a (sub)probability vector, got {alpha}")
        if np.any(np.diag(T) > 0.0):
            raise ValueError("diagonal of T must be nonpositive")
        offdiag = T - np.diag(np.diag(T))
        if np.any(offdiag < -1e-12):
            raise ValueError("off-diagonal entries of T must be nonnegative")
        exit_rates = -T.sum(axis=1)
        if np.any(exit_rates < -1e-9):
            raise ValueError("row sums of T must be nonpositive (valid sub-generator)")
        self.alpha = np.clip(alpha, 0.0, None)
        self.T = T
        self.exit_rates = np.clip(exit_rates, 0.0, None)
        self._n = T.shape[0]
        # Cache (-T)^{-1}, the matrix of expected sojourn times.
        self._U = np.linalg.inv(-T)

    # ------------------------------------------------------------------
    @property
    def n_phases(self) -> int:
        """Return the number of transient phases."""
        return self._n

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        # E[X^k] = k! * alpha * (-T)^{-k} * 1
        vec = np.ones(self._n)
        for _ in range(k):
            vec = self._U @ vec
        return float(math.factorial(k) * (self.alpha @ vec))

    def laplace(self, s: complex) -> complex:
        ident = np.eye(self._n)
        resolvent = np.linalg.solve(s * ident - self.T, self.exit_rates)
        atom_at_zero = 1.0 - self.alpha.sum()
        return complex(self.alpha @ resolvent) + atom_at_zero

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self._sample_one(rng)
        return np.array([self._sample_one(rng) for _ in range(size)])

    def _sample_one(self, rng: np.random.Generator) -> float:
        total = 0.0
        # Choose the starting phase (or immediate absorption).
        u = rng.random()
        cumulative = np.cumsum(self.alpha)
        if u >= (cumulative[-1] if self._n else 0.0):
            return 0.0
        phase = int(np.searchsorted(cumulative, u, side="right"))
        while True:
            rate = -self.T[phase, phase]
            total += rng.exponential(1.0 / rate)
            # Pick the next phase or absorb.
            probs = self.T[phase].copy()
            probs[phase] = 0.0
            exit_prob = self.exit_rates[phase] / rate
            u = rng.random()
            if u < exit_prob:
                return total
            u = (u - exit_prob) * rate
            cumulative_rates = np.cumsum(probs)
            phase = int(np.searchsorted(cumulative_rates, u, side="right"))
            phase = min(phase, self._n - 1)

    def as_phase_type(self) -> "PhaseType":
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseType(n_phases={self._n}, mean={self.mean:.6g}, scv={self.scv:.6g})"
