"""Deterministic, uniform and bounded-Pareto distributions.

These have no exact small phase-type representation; analytic models
approximate them via three-moment fitting (see
:mod:`repro.distributions.fitting`), exactly the substitution the paper makes
for "any general distribution".  The simulator samples them exactly.
"""

from __future__ import annotations

import cmath
import math
from typing import Optional

import numpy as np

from .base import Distribution

__all__ = ["Deterministic", "Uniform", "BoundedPareto", "Lognormal", "Weibull"]


class Deterministic(Distribution):
    """Point mass at ``value`` (e.g. fixed-size batch jobs)."""

    def __init__(self, value: float):
        if value < 0.0:
            raise ValueError(f"value must be nonnegative, got {value}")
        self.value = float(value)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return self.value**k

    def laplace(self, s: complex) -> complex:
        return cmath.exp(-s * self.value)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            return self.value
        return np.full(size, self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deterministic(value={self.value:.6g})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not 0.0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        a, b = self.low, self.high
        return (b ** (k + 1) - a ** (k + 1)) / ((k + 1) * (b - a))

    def laplace(self, s: complex) -> complex:
        if s == 0:
            return 1.0
        a, b = self.low, self.high
        return (cmath.exp(-s * a) - cmath.exp(-s * b)) / (s * (b - a))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.uniform(self.low, self.high, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Uniform(low={self.low:.6g}, high={self.high:.6g})"


class BoundedPareto(Distribution):
    """Bounded Pareto ``BP(low, high, alpha)``.

    The canonical heavy-tailed job-size model for supercomputing workloads
    (Harchol-Balter & Downey; used throughout the task-assignment
    literature that motivates this paper).  Density proportional to
    ``x^{-alpha-1}`` on ``[low, high]``.
    """

    def __init__(self, low: float, high: float, alpha: float):
        if not 0.0 < low < high:
            raise ValueError(f"need 0 < low < high, got low={low}, high={high}")
        if alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.low = float(low)
        self.high = float(high)
        self.alpha = float(alpha)
        self._norm = 1.0 - (low / high) ** alpha

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        a, lo, hi = self.alpha, self.low, self.high
        if math.isclose(k, a):
            return a * lo**a * math.log(hi / lo) / self._norm
        return (a * lo**a / self._norm) * (hi ** (k - a) - lo ** (k - a)) / (k - a)

    def laplace(self, s: complex) -> complex:
        # No elementary closed form; integrate numerically (used only by
        # validation code, never on a hot path).
        from scipy.integrate import quad

        a, lo, hi = self.alpha, self.low, self.high

        def density(x: float) -> float:
            return a * lo**a * x ** (-a - 1.0) / self._norm

        s = complex(s)
        real = quad(lambda x: math.exp(-s.real * x) * math.cos(s.imag * x) * density(x), lo, hi)[0]
        imag = quad(lambda x: -math.exp(-s.real * x) * math.sin(s.imag * x) * density(x), lo, hi)[0]
        return complex(real, imag)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        u = rng.random(size=size)
        a, lo, hi = self.alpha, self.low, self.high
        # Inverse transform of the truncated Pareto CDF.
        return (-(u * hi**a - u * lo**a - hi**a) / (hi**a * lo**a)) ** (-1.0 / a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedPareto(low={self.low:.6g}, high={self.high:.6g}, alpha={self.alpha:.6g})"


class Lognormal(Distribution):
    """Lognormal job sizes (common in measured compute workloads).

    Parameterized by the underlying normal's ``mu`` and ``sigma``; use
    :meth:`from_mean_scv` for the moment parameterization.  Analytic
    models consume it through three-moment fitting, like any general
    distribution in the paper.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_scv(cls, mean: float, scv: float) -> "Lognormal":
        """Match a mean and squared coefficient of variation exactly."""
        if mean <= 0.0 or scv <= 0.0:
            raise ValueError(f"need positive mean and scv, got ({mean}, {scv})")
        sigma2 = math.log(1.0 + scv)
        return cls(math.log(mean) - sigma2 / 2.0, math.sqrt(sigma2))

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return math.exp(k * self.mu + 0.5 * k * k * self.sigma**2)

    def laplace(self, s: complex) -> complex:
        # No closed form; Gauss-Hermite quadrature on the normal scale.
        from numpy.polynomial.hermite_e import hermegauss

        nodes, weights = hermegauss(64)
        values = np.exp(-complex(s) * np.exp(self.mu + self.sigma * nodes))
        return complex((weights * values).sum() / math.sqrt(2.0 * math.pi))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.lognormal(self.mu, self.sigma, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Lognormal(mu={self.mu:.6g}, sigma={self.sigma:.6g})"


class Weibull(Distribution):
    """Weibull job sizes: ``P(X > x) = exp(-(x/scale)^shape)``.

    ``shape < 1`` gives the heavy-ish tails seen in process lifetimes;
    ``shape = 1`` is exponential.
    """

    def __init__(self, shape: float, scale: float):
        if shape <= 0.0 or scale <= 0.0:
            raise ValueError(f"need positive shape and scale, got ({shape}, {scale})")
        self.shape = float(shape)
        self.scale = float(scale)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return self.scale**k * math.gamma(1.0 + k / self.shape)

    def laplace(self, s: complex) -> complex:
        from scipy.integrate import quad

        s = complex(s)

        def survival(x: float) -> float:
            return math.exp(-((x / self.scale) ** self.shape))

        # E[e^{-sX}] = 1 - s * int_0^inf e^{-sx} S(x) dx.
        real = quad(lambda x: math.exp(-s.real * x) * math.cos(s.imag * x) * survival(x), 0, np.inf)[0]
        imag = quad(lambda x: -math.exp(-s.real * x) * math.sin(s.imag * x) * survival(x), 0, np.inf)[0]
        return 1.0 - s * complex(real, imag)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self.scale * rng.weibull(self.shape, size=size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Weibull(shape={self.shape:.6g}, scale={self.scale:.6g})"
