"""Coxian distributions.

A Coxian distribution is a chain of exponential stages traversed in order,
with an exit probability after each stage.  The paper replaces each
busy-period transition of the CS-CQ Markov chain by a 2-stage Coxian matched
on the busy period's first three moments (Figure 2(b)); :class:`Coxian` is
the exact representation of those blocks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .base import Distribution
from .phase_type import PhaseType

__all__ = ["Coxian", "coxian2"]


class Coxian(Distribution):
    """Coxian distribution with stage rates and continuation probabilities.

    Parameters
    ----------
    rates:
        Rate of each exponential stage, ``mu_1, ..., mu_n``.
    continue_probs:
        ``p_1, ..., p_{n-1}``: after finishing stage ``i`` the job proceeds
        to stage ``i+1`` with probability ``p_i`` and completes with
        probability ``1 - p_i``.  After the last stage the job always
        completes.
    """

    def __init__(self, rates: Sequence[float], continue_probs: Sequence[float] = ()):
        rates = [float(r) for r in rates]
        continue_probs = [float(p) for p in continue_probs]
        if not rates:
            raise ValueError("a Coxian needs at least one stage")
        if len(continue_probs) != len(rates) - 1:
            raise ValueError(
                f"expected {len(rates) - 1} continuation probabilities for "
                f"{len(rates)} stages, got {len(continue_probs)}"
            )
        if any(r <= 0.0 for r in rates):
            raise ValueError(f"stage rates must be positive, got {rates}")
        if any(p < 0.0 or p > 1.0 for p in continue_probs):
            raise ValueError(f"continuation probabilities must be in [0,1], got {continue_probs}")
        self.rates = rates
        self.continue_probs = continue_probs
        self._ph = self._build_phase_type()

    def _build_phase_type(self) -> PhaseType:
        n = len(self.rates)
        T = np.zeros((n, n))
        for i, rate in enumerate(self.rates):
            T[i, i] = -rate
            if i + 1 < n:
                T[i, i + 1] = rate * self.continue_probs[i]
        alpha = np.zeros(n)
        alpha[0] = 1.0
        return PhaseType(alpha, T)

    @property
    def n_phases(self) -> int:
        """Return the number of exponential stages."""
        return len(self.rates)

    def moment(self, k: int) -> float:
        return self._ph.moment(k)

    def laplace(self, s: complex) -> complex:
        return self._ph.laplace(s)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is not None:
            # Vectorized: stage sojourns are added while the job is still
            # "alive" per the continuation coin flips.
            total = rng.exponential(1.0 / self.rates[0], size=size)
            alive = np.ones(size, dtype=bool)
            for rate, p in zip(self.rates[1:], self.continue_probs):
                alive &= rng.random(size) < p
                if not alive.any():
                    break
                total[alive] += rng.exponential(1.0 / rate, size=int(alive.sum()))
            return total
        total = 0.0
        for i, rate in enumerate(self.rates):
            total += rng.exponential(1.0 / rate)
            if i < len(self.continue_probs) and rng.random() >= self.continue_probs[i]:
                break
        return total

    def as_phase_type(self) -> PhaseType:
        return self._ph

    def scaled(self, factor: float) -> "Coxian":
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Coxian([r / factor for r in self.rates], self.continue_probs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Coxian(rates={self.rates}, continue_probs={self.continue_probs})"


def coxian2(mu1: float, mu2: float, p: float) -> Coxian:
    """Build the 2-stage Coxian used throughout the paper.

    Stage 1 runs at rate ``mu1``; with probability ``p`` the job continues to
    stage 2 (rate ``mu2``), otherwise it completes.
    """
    return Coxian([mu1, mu2], [p])
