"""Exponential and Erlang distributions."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .base import Distribution
from .phase_type import PhaseType

__all__ = ["Exponential", "Erlang"]


class Exponential(Distribution):
    """Exponential distribution with the given rate (``mean = 1/rate``)."""

    def __init__(self, rate: float):
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Build an exponential with the given mean."""
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(1.0 / mean)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return math.factorial(k) / self.rate**k

    def laplace(self, s: complex) -> complex:
        return self.rate / (self.rate + s)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.exponential(1.0 / self.rate, size=size)

    def as_phase_type(self) -> PhaseType:
        return PhaseType([1.0], [[-self.rate]])

    def scaled(self, factor: float) -> "Exponential":
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Exponential(self.rate / factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Exponential(rate={self.rate:.6g})"


class Erlang(Distribution):
    """Erlang distribution: sum of ``shape`` i.i.d. Exp(``rate``) stages.

    ``scv = 1/shape``, so Erlangs model low-variability job sizes.
    """

    def __init__(self, shape: int, rate: float):
        if not isinstance(shape, (int, np.integer)) or shape < 1:
            raise ValueError(f"shape must be a positive integer, got {shape!r}")
        if rate <= 0.0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.shape = int(shape)
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, shape: int, mean: float) -> "Erlang":
        """Build an Erlang with the given number of stages and overall mean."""
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(shape, shape / mean)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        # E[X^k] = (shape)(shape+1)...(shape+k-1) / rate^k
        value = 1.0
        for j in range(k):
            value *= self.shape + j
        return value / self.rate**k

    def laplace(self, s: complex) -> complex:
        return (self.rate / (self.rate + s)) ** self.shape

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    def as_phase_type(self) -> PhaseType:
        n = self.shape
        T = np.zeros((n, n))
        for i in range(n):
            T[i, i] = -self.rate
            if i + 1 < n:
                T[i, i + 1] = self.rate
        alpha = np.zeros(n)
        alpha[0] = 1.0
        return PhaseType(alpha, T)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Erlang(shape={self.shape}, rate={self.rate:.6g})"
