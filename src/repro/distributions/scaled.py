"""Generic scaling wrapper ``factor * X`` for arbitrary distributions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Distribution

__all__ = ["ScaledDistribution"]


class ScaledDistribution(Distribution):
    """The distribution of ``factor * X`` for a wrapped ``X``.

    All moments, the LST and sampling follow exactly from the wrapped
    distribution (``E[(cX)^k] = c^k E[X^k]``, ``L_{cX}(s) = L_X(c s)``).
    """

    def __init__(self, inner: Distribution, factor: float):
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        # Collapse nested wrappers.
        if isinstance(inner, ScaledDistribution):
            factor *= inner.factor
            inner = inner.inner
        self.inner = inner
        self.factor = float(factor)

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return self.factor**k * self.inner.moment(k)

    def laplace(self, s: complex) -> complex:
        return self.inner.laplace(self.factor * s)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self.factor * self.inner.sample(rng, size)

    def as_phase_type(self):
        ph = self.inner.as_phase_type()
        from .phase_type import PhaseType

        return PhaseType(ph.alpha, ph.T / self.factor)

    def scaled(self, factor: float) -> "ScaledDistribution":
        return ScaledDistribution(self.inner, self.factor * factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScaledDistribution({self.inner!r}, factor={self.factor:.6g})"
