"""Service-time distribution toolkit (moments, transforms, sampling, fitting).

This subpackage is the substrate the paper's analysis stands on: job sizes
are "drawn i.i.d. from any general distribution (which we approximate by a
Coxian distribution)", and the busy-period transitions are matched by
2-stage Coxians on their first three moments.
"""

from .base import Distribution, NotRepresentableError
from .coxian import Coxian, coxian2
from .exponential import Erlang, Exponential
from .fitting import (
    FittingError,
    coxian_from_mean_scv,
    fit_coxian2,
    fit_mixed_erlang,
    fit_phase_type,
    h2_from_mean_scv,
)
from .hyperexponential import Hyperexponential
from .moments import (
    check_feasible_moments,
    moments_close,
    moments_of_mixture,
    moments_of_scaled,
    moments_of_sum,
    scv_from_moments,
)
from .phase_type import PhaseType
from .scaled import ScaledDistribution
from .simple import BoundedPareto, Deterministic, Lognormal, Uniform, Weibull

__all__ = [
    "BoundedPareto",
    "Coxian",
    "Deterministic",
    "Distribution",
    "Erlang",
    "Exponential",
    "FittingError",
    "Hyperexponential",
    "Lognormal",
    "NotRepresentableError",
    "PhaseType",
    "ScaledDistribution",
    "Uniform",
    "Weibull",
    "check_feasible_moments",
    "coxian2",
    "coxian_from_mean_scv",
    "fit_coxian2",
    "fit_mixed_erlang",
    "fit_phase_type",
    "h2_from_mean_scv",
    "moments_close",
    "moments_of_mixture",
    "moments_of_scaled",
    "moments_of_sum",
    "scv_from_moments",
]
