"""Raw-moment helpers shared by the fitting and busy-period code."""

from __future__ import annotations

import math
from typing import Sequence

from ..robustness import ValidationError, ensure_finite_scalar

__all__ = [
    "scv_from_moments",
    "check_feasible_moments",
    "moments_of_sum",
    "moments_of_mixture",
    "moments_of_scaled",
    "moments_close",
]


def scv_from_moments(m1: float, m2: float) -> float:
    """Return the squared coefficient of variation from the first two moments."""
    if m1 <= 0.0:
        raise ValueError(f"first moment must be positive, got {m1}")
    return m2 / (m1 * m1) - 1.0


def check_feasible_moments(m1: float, m2: float, m3: float) -> None:
    """Validate that (m1, m2, m3) can be the moments of a nonnegative r.v.

    Necessary conditions: positivity, ``m2 >= m1**2`` (Jensen) and
    ``m3 * m1 >= m2**2`` (Cauchy-Schwarz applied to ``X^{1/2}, X^{3/2}``).
    """
    m1 = ensure_finite_scalar(m1, "m1")
    m2 = ensure_finite_scalar(m2, "m2")
    m3 = ensure_finite_scalar(m3, "m3")
    if m1 <= 0.0 or m2 <= 0.0 or m3 <= 0.0:
        raise ValidationError(f"moments must be positive, got ({m1}, {m2}, {m3})")
    if m2 < m1 * m1 * (1.0 - 1e-12):
        raise ValidationError(f"infeasible moments: m2={m2} < m1^2={m1 * m1}")
    if m3 * m1 < m2 * m2 * (1.0 - 1e-12):
        raise ValidationError(f"infeasible moments: m3*m1={m3 * m1} < m2^2={m2 * m2}")


def moments_of_sum(a: Sequence[float], b: Sequence[float]) -> tuple[float, float, float]:
    """First three raw moments of ``X + Y`` for independent X, Y.

    ``a`` and ``b`` are ``(m1, m2, m3)`` of X and Y respectively.
    """
    a1, a2, a3 = a
    b1, b2, b3 = b
    s1 = a1 + b1
    s2 = a2 + 2.0 * a1 * b1 + b2
    s3 = a3 + 3.0 * a2 * b1 + 3.0 * a1 * b2 + b3
    return s1, s2, s3


def moments_of_mixture(
    weights: Sequence[float], components: Sequence[Sequence[float]]
) -> tuple[float, float, float]:
    """First three raw moments of a probabilistic mixture."""
    if not math.isclose(sum(weights), 1.0, rel_tol=1e-9):
        raise ValueError(f"mixture weights must sum to 1, got {sum(weights)}")
    out = [0.0, 0.0, 0.0]
    for w, comp in zip(weights, components):
        for j in range(3):
            out[j] += w * comp[j]
    return out[0], out[1], out[2]


def moments_of_scaled(moms: Sequence[float], c: float) -> tuple[float, float, float]:
    """First three raw moments of ``c * X``."""
    m1, m2, m3 = moms
    return c * m1, c * c * m2, c * c * c * m3


def moments_close(
    a: Sequence[float], b: Sequence[float], rel_tol: float = 1e-8
) -> bool:
    """Return True when two moment triples agree to relative tolerance."""
    return all(math.isclose(x, y, rel_tol=rel_tol, abs_tol=1e-12) for x, y in zip(a, b))
