"""Hyperexponential (mixture-of-exponentials) distributions."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .base import Distribution
from .phase_type import PhaseType

__all__ = ["Hyperexponential"]


class Hyperexponential(Distribution):
    """Mixture of exponentials: rate ``rates[i]`` with probability ``probs[i]``.

    Hyperexponentials have ``scv >= 1`` and are the classic model for
    high-variability job sizes (the regime where the Dedicated policy and
    cycle stealing shine, per the paper's introduction).
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[float]):
        probs = [float(p) for p in probs]
        rates = [float(r) for r in rates]
        if len(probs) != len(rates) or not probs:
            raise ValueError("probs and rates must be equal-length, nonempty sequences")
        if any(p < 0.0 for p in probs) or not math.isclose(sum(probs), 1.0, rel_tol=1e-9):
            raise ValueError(f"probs must be nonnegative and sum to 1, got {probs}")
        if any(r <= 0.0 for r in rates):
            raise ValueError(f"rates must be positive, got {rates}")
        self.probs = probs
        self.rates = rates

    @classmethod
    def balanced_means(cls, mean: float, scv: float) -> "Hyperexponential":
        """Two-branch hyperexponential with balanced means matching (mean, scv).

        "Balanced means" (``p1/rate1 == p2/rate2``) is the standard
        two-moment H2 parameterization used in the Harchol-Balter line of
        work for high-variability distributions.  Requires ``scv >= 1``.
        """
        if scv < 1.0:
            raise ValueError(f"balanced-means H2 requires scv >= 1, got {scv}")
        if mean <= 0.0:
            raise ValueError(f"mean must be positive, got {mean}")
        if scv == 1.0:
            return cls([0.5, 0.5], [1.0 / mean, 1.0 / mean])
        root = math.sqrt((scv - 1.0) / (scv + 1.0))
        p1 = 0.5 * (1.0 + root)
        p2 = 1.0 - p1
        rate1 = 2.0 * p1 / mean
        rate2 = 2.0 * p2 / mean
        return cls([p1, p2], [rate1, rate2])

    def moment(self, k: int) -> float:
        self._check_moment_order(k)
        return sum(
            p * math.factorial(k) / r**k for p, r in zip(self.probs, self.rates)
        )

    def laplace(self, s: complex) -> complex:
        return sum(p * r / (r + s) for p, r in zip(self.probs, self.rates))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            branch = rng.choice(len(self.rates), p=self.probs)
            return rng.exponential(1.0 / self.rates[branch])
        branches = rng.choice(len(self.rates), size=size, p=self.probs)
        scales = 1.0 / np.asarray(self.rates)
        return rng.exponential(scales[branches])

    def as_phase_type(self) -> PhaseType:
        n = len(self.rates)
        T = np.diag([-r for r in self.rates])
        return PhaseType(np.asarray(self.probs, dtype=float), T)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hyperexponential(probs={self.probs}, rates={self.rates})"
