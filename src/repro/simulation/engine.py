"""Event-driven simulation core for two-host task-assignment systems.

The paper validated its analysis "against simulation ... performed in C on
a 700MHz Pentium III"; this module is the equivalent substrate, built from
scratch (no simulation library): a binary-heap event calendar, buffered
random variate streams, and a policy hook interface that the concrete
task-assignment policies implement.
"""

from __future__ import annotations

import abc
import heapq
import math
import time
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from ..core.params import SystemParameters
from ..distributions import Distribution, Exponential
from ..telemetry import counter_inc, observe, span, tracing_enabled
from .jobs import Job, JobClass
from .statistics import Welford

__all__ = ["SampleStream", "SimulationResult", "TwoHostSimulation"]

_ARRIVAL_SHORT = 0
_ARRIVAL_LONG = 1
_DEPARTURE = 2
_ARRIVAL_TRACE = 3


class SampleStream:
    """Buffered i.i.d. sampler: amortizes vectorized draws over many events.

    Draws are made in fixed *canonical chunks* of :attr:`CHUNK` samples,
    regardless of the requested ``block`` size.  This makes the emitted
    sequence a pure function of ``(dist, rng state)``: two streams over the
    same generator state yield bit-identical values whatever their
    ``block``, so orchestrated replications stay bit-identical to the
    direct path however the buffering is tuned.  (Vectorized phase-type
    samplers interleave their generator consumption, so per-``block``
    draws would *not* be chunk-invariant; the fixed canonical chunk is
    what pins the stream.  ``tests/test_simulation_engine.py`` seeds this
    property.)

    ``block`` is retained for API compatibility and memory tuning intent,
    but no longer affects which values are emitted.
    """

    #: Canonical refill size; every buffer refill draws exactly this many.
    CHUNK = 8192

    def __init__(
        self, dist: Distribution, rng: np.random.Generator, block: int = CHUNK
    ):
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        self._dist = dist
        self._rng = rng
        self._block = block
        self._buffer = np.empty(0)
        self._pos = 0
        #: Number of canonical-chunk refills performed so far.  Updated
        #: once per CHUNK samples, so keeping it costs nothing per event;
        #: telemetry derives chunk fill rates from it.
        self.refills = 0

    @property
    def drawn(self) -> int:
        """Total samples drawn from the generator (refills x CHUNK)."""
        return self.refills * self.CHUNK

    @property
    def consumed(self) -> int:
        """Samples actually handed out (drawn minus the unread buffer tail)."""
        return self.drawn - (self._buffer.shape[0] - self._pos)

    def next(self) -> float:
        """Return the next sample."""
        pos = self._pos
        buffer = self._buffer
        if pos >= buffer.shape[0]:
            buffer = self._buffer = np.atleast_1d(
                self._dist.sample(self._rng, self.CHUNK)
            )
            self.refills += 1
            pos = 0
        self._pos = pos + 1
        return buffer.item(pos)

    def take(self, n: int) -> np.ndarray:
        """Return the next ``n`` samples as an array (same sequence as
        ``n`` calls to :meth:`next`)."""
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        out = np.empty(n)
        filled = 0
        while filled < n:
            if self._pos >= self._buffer.shape[0]:
                self._buffer = np.atleast_1d(self._dist.sample(self._rng, self.CHUNK))
                self.refills += 1
                self._pos = 0
            chunk = self._buffer[self._pos : self._pos + (n - filled)]
            out[filled : filled + chunk.shape[0]] = chunk
            self._pos += chunk.shape[0]
            filled += chunk.shape[0]
        return out


@dataclass(frozen=True)
class SimulationResult:
    """Aggregates of one simulation run (post-warmup measurements only)."""

    mean_response_short: float
    mean_response_long: float
    n_measured_short: int
    n_measured_long: int
    sim_time: float
    frac_long_host_idle: float
    mean_waiting_short: float
    mean_waiting_long: float
    mean_slowdown_short: float = float("nan")
    """Mean of response/size over short jobs (the task-assignment
    literature's fairness metric; diverges for unbounded-from-below
    sizes such as exponential — meaningful for bounded workloads)."""
    mean_slowdown_long: float = float("nan")
    samples_short: "Optional[np.ndarray]" = None
    """Per-job short response times (only when ``keep_samples=True``)."""
    samples_long: "Optional[np.ndarray]" = None
    """Per-job long response times (only when ``keep_samples=True``)."""

    def percentile_short(self, q: float) -> float:
        """q-th percentile of short response times (needs kept samples)."""
        if self.samples_short is None:
            raise ValueError("run the simulation with keep_samples=True")
        return float(np.percentile(self.samples_short, q))

    def percentile_long(self, q: float) -> float:
        """q-th percentile of long response times (needs kept samples)."""
        if self.samples_long is None:
            raise ValueError("run the simulation with keep_samples=True")
        return float(np.percentile(self.samples_long, q))


class TwoHostSimulation(abc.ABC):
    """Base class: Poisson arrivals of two classes, two hosts, FCFS service.

    Subclasses implement the task-assignment policy through
    :meth:`on_arrival` and :meth:`on_host_free`, using :meth:`start_service`
    to seize a host.  Jobs are non-preemptible, as in the paper.

    Parameters
    ----------
    params:
        Arrival rates and size distributions (ignored when ``trace`` is
        given, except as documentation of the intended model).
    seed:
        Seed (or SeedSequence) for the run's independent random streams.
    warmup_jobs:
        Completions discarded before measurement starts.
    measured_jobs:
        Completions measured after warmup; the run then stops.
    trace:
        Optional iterable of ``(arrival_time, job_class, size)`` triples
        (e.g. from :mod:`repro.workloads.traces`); when given, arrivals
        and sizes are replayed from it instead of being drawn from
        ``params``, and the run ends when the trace (or the measurement
        target) is exhausted.
    host_speeds:
        Relative speed of each host (default homogeneous, the paper's
        model); a job of size ``x`` occupies host ``h`` for
        ``x / host_speeds[h]``.  Implements the heterogeneous-host
        extension the paper's conclusion sketches.
    arrival_processes:
        Optional mapping ``{JobClass: MarkovianArrivalProcess}`` replacing
        the Poisson streams for the given classes — the paper's "can be
        generalized to a MAP" extension, on the simulation side.  Classes
        not in the mapping keep their Poisson stream from ``params``.
    """

    n_hosts = 2

    def __init__(
        self,
        params: SystemParameters,
        seed: "int | np.random.SeedSequence" = 0,
        warmup_jobs: int = 20_000,
        measured_jobs: int = 200_000,
        trace: "Optional[Iterable[tuple[float, JobClass, float]]]" = None,
        host_speeds: tuple[float, float] = (1.0, 1.0),
        arrival_processes: "Optional[dict[JobClass, object]]" = None,
        keep_samples: bool = False,
    ):
        self.keep_samples = keep_samples
        self._samples: dict[JobClass, list[float]] = {
            JobClass.SHORT: [],
            JobClass.LONG: [],
        }
        if len(host_speeds) != self.n_hosts or any(s <= 0.0 for s in host_speeds):
            raise ValueError(f"host_speeds must be {self.n_hosts} positive values")
        self.host_speeds = tuple(float(s) for s in host_speeds)
        self._trace_iter = iter(trace) if trace is not None else None
        arrival_processes = arrival_processes or {}
        has_map_arrivals = bool(arrival_processes)
        if (
            trace is None
            and not has_map_arrivals
            and params.lam_s <= 0.0
            and params.lam_l <= 0.0
        ):
            raise ValueError("at least one arrival rate must be positive")
        self.params = params
        seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        streams = [np.random.default_rng(s) for s in seq.spawn(4)]
        self._arrival_rngs = streams[:2]
        self._map_samplers = {
            job_class: process.interarrival_sampler(
                self._arrival_rngs[0 if job_class is JobClass.SHORT else 1]
            )
            for job_class, process in arrival_processes.items()
        }
        self._size_streams = {
            JobClass.SHORT: SampleStream(params.short_service, streams[2]),
            JobClass.LONG: SampleStream(params.long_service, streams[3]),
        }
        # Preallocated interarrival draw per class: a MAP sampler when one
        # is installed, else a buffered exponential stream over the class's
        # dedicated generator.  ``Exponential.sample`` is a plain
        # ``rng.exponential`` whose chunked draws consume the bitstream
        # identically to scalar calls, so buffering is bit-identical to the
        # historical per-event draw.  None means the class never arrives.
        self._interarrival_draw: dict[JobClass, "object | None"] = {}
        self._sample_streams: list[SampleStream] = list(self._size_streams.values())
        for job_class in (JobClass.SHORT, JobClass.LONG):
            sampler = self._map_samplers.get(job_class)
            if sampler is not None:
                self._interarrival_draw[job_class] = sampler
                continue
            rate = params.lam_s if job_class is JobClass.SHORT else params.lam_l
            if rate <= 0.0:
                self._interarrival_draw[job_class] = None
                continue
            rng = self._arrival_rngs[0 if job_class is JobClass.SHORT else 1]
            stream = SampleStream(Exponential(rate), rng)
            self._sample_streams.append(stream)
            self._interarrival_draw[job_class] = stream.next
        self.warmup_jobs = warmup_jobs
        self.measured_jobs = measured_jobs

        self.now = 0.0
        self._events: list[tuple[float, int, int, Optional[int]]] = []
        self._seq = 0
        self._next_job_id = 0
        self.host_job: list[Optional[Job]] = [None] * self.n_hosts
        self._completed = 0
        self._response = {JobClass.SHORT: Welford(), JobClass.LONG: Welford()}
        self._waiting = {JobClass.SHORT: Welford(), JobClass.LONG: Welford()}
        self._slowdown = {JobClass.SHORT: Welford(), JobClass.LONG: Welford()}
        self._long_host_idle_time = 0.0
        self._last_state_change = 0.0

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_arrival(self, job: Job) -> None:
        """Dispatch or enqueue a newly arrived job."""

    @abc.abstractmethod
    def on_host_free(self, host: int) -> None:
        """Select the next job (if any) for a host that just became free."""

    def long_host_is_idle(self) -> bool:
        """Hook used for the idle-fraction statistic; override per policy.

        Default: host 1 (the designated long host) has no job in service.
        """
        return self.host_job[1] is None

    # ------------------------------------------------------------------
    # Mechanics
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: int, host: Optional[int] = None) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, host))

    def _schedule_arrival(self, job_class: JobClass) -> None:
        draw = self._interarrival_draw[job_class]
        if draw is None:
            return
        kind = _ARRIVAL_SHORT if job_class is JobClass.SHORT else _ARRIVAL_LONG
        self._push(self.now + draw(), kind)

    def _schedule_next_trace_arrival(self) -> None:
        try:
            time, job_class, size = next(self._trace_iter)
        except StopIteration:
            return
        if time < self.now - 1e-12:
            raise ValueError(
                f"trace arrival times must be nondecreasing; got {time} at "
                f"simulated time {self.now}"
            )
        self._pending_trace_job = (JobClass(job_class), float(size))
        self._push(float(time), _ARRIVAL_TRACE)

    def start_service(self, host: int, job: Job) -> None:
        """Seize ``host`` for ``job`` and schedule the end of its service."""
        if self.host_job[host] is not None:
            raise RuntimeError(f"host {host} is already busy")
        self._track_idle_fraction()
        if math.isnan(job.start_time):
            job.start_time = self.now
        self.host_job[host] = job
        self._push(self.now + self.service_time_for(host, job), _DEPARTURE, host)

    def service_time_for(self, host: int, job: Job) -> float:
        """Sojourn the job occupies the host for (override for TAGS-style
        policies that cap service); default is run-to-completion."""
        return job.size / self.host_speeds[host]

    def on_service_end(self, host: int, job: Job) -> bool:
        """Called when a service slice ends; return True if the job is done.

        Policies that kill-and-restart (TAGS) override this, requeue the
        job themselves and return False; the host is freed either way.
        """
        return True

    def _track_idle_fraction(self) -> None:
        if self.long_host_is_idle():
            self._long_host_idle_time += self.now - self._last_state_change
        self._last_state_change = self.now

    def _make_job(self, job_class: JobClass) -> Job:
        self._next_job_id += 1
        return Job(
            job_id=self._next_job_id,
            job_class=job_class,
            arrival_time=self.now,
            size=self._size_streams[job_class].next(),
        )

    def run(self) -> SimulationResult:
        """Run until ``warmup_jobs + measured_jobs`` completions.

        In trace-replay mode the run also ends (earlier) once the trace is
        exhausted and every replayed job has completed.
        """
        start = time.perf_counter()
        with span("simulation.run", policy=type(self).__name__) as run_span:
            result = self._run_loop()
        elapsed = time.perf_counter() - start
        # ``_seq`` counts every scheduled event — an existing counter, so
        # the hot loop carries zero extra bookkeeping for telemetry.
        counter_inc("simulation.runs")
        counter_inc("simulation.events", self._seq)
        observe("simulation.wall_seconds", elapsed)
        if tracing_enabled():
            drawn = sum(s.drawn for s in self._sample_streams)
            consumed = sum(s.consumed for s in self._sample_streams)
            run_span.set("events", self._seq)
            run_span.set("events_per_sec", self._seq / elapsed if elapsed > 0 else None)
            run_span.set("jobs_completed", self._completed)
            run_span.set("sim_time", self.now)
            run_span.set("stream_refills", sum(s.refills for s in self._sample_streams))
            run_span.set("stream_fill_rate", consumed / drawn if drawn else None)
        return result

    def _run_loop(self) -> SimulationResult:
        if self._trace_iter is not None:
            self._schedule_next_trace_arrival()
        else:
            self._schedule_arrival(JobClass.SHORT)
            self._schedule_arrival(JobClass.LONG)
        target = self.warmup_jobs + self.measured_jobs
        # Hot loop: locals beat attribute lookups at ~10^6 events per run.
        events = self._events
        heappop = heapq.heappop
        while self._completed < target:
            if not events:
                if self._trace_iter is not None:
                    break  # trace exhausted and drained
                raise RuntimeError("event queue empty before run completed")
            self.now, _, kind, host = heappop(events)
            if kind == _DEPARTURE:
                self._handle_departure(host)
            elif kind == _ARRIVAL_TRACE:
                job_class, size = self._pending_trace_job
                self._track_idle_fraction()
                self._next_job_id += 1
                job = Job(
                    job_id=self._next_job_id,
                    job_class=job_class,
                    arrival_time=self.now,
                    size=size,
                )
                self.on_arrival(job)
                self._schedule_next_trace_arrival()
            else:
                job_class = JobClass.SHORT if kind == _ARRIVAL_SHORT else JobClass.LONG
                self._track_idle_fraction()
                job = self._make_job(job_class)
                self.on_arrival(job)
                self._schedule_arrival(job_class)
        self._track_idle_fraction()
        return self._result()

    def _handle_departure(self, host: int) -> None:
        self._track_idle_fraction()
        job = self.host_job[host]
        if job is None:
            raise RuntimeError(f"departure from idle host {host}")
        self.host_job[host] = None
        if self.on_service_end(host, job):
            job.completion_time = self.now
            self._completed += 1
            if self._completed > self.warmup_jobs:
                self._response[job.job_class].add(job.response_time)
                self._waiting[job.job_class].add(job.waiting_time)
                if job.size > 0.0:
                    self._slowdown[job.job_class].add(job.response_time / job.size)
                if self.keep_samples:
                    self._samples[job.job_class].append(job.response_time)
        self.on_host_free(host)

    def _result(self) -> SimulationResult:
        return SimulationResult(
            mean_response_short=self._response[JobClass.SHORT].mean,
            mean_response_long=self._response[JobClass.LONG].mean,
            n_measured_short=self._response[JobClass.SHORT].count,
            n_measured_long=self._response[JobClass.LONG].count,
            sim_time=self.now,
            frac_long_host_idle=self._long_host_idle_time / self.now if self.now else 0.0,
            mean_waiting_short=self._waiting[JobClass.SHORT].mean,
            mean_waiting_long=self._waiting[JobClass.LONG].mean,
            mean_slowdown_short=self._slowdown[JobClass.SHORT].mean,
            mean_slowdown_long=self._slowdown[JobClass.LONG].mean,
            samples_short=(
                np.asarray(self._samples[JobClass.SHORT]) if self.keep_samples else None
            ),
            samples_long=(
                np.asarray(self._samples[JobClass.LONG]) if self.keep_samples else None
            ),
        )
