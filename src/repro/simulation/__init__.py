"""Discrete-event simulation substrate (built from scratch).

Provides the engine, per-policy simulators, and replication statistics
used for the paper's Section 4 validation and Section 6 discussion.
"""

from .engine import SampleStream, SimulationResult, TwoHostSimulation
from .jobs import Job, JobClass
from .policies import (
    POLICIES,
    CsCqSimulation,
    CsIdSimulation,
    DedicatedSimulation,
    Mg2SjfSimulation,
    MgkSimulation,
)
from .runner import ReplicatedResult, simulate, simulate_replications, simulate_trace
from .statistics import (
    ConfidenceInterval,
    Welford,
    batch_means_interval,
    replication_interval,
)

__all__ = [
    "POLICIES",
    "ConfidenceInterval",
    "CsCqSimulation",
    "CsIdSimulation",
    "DedicatedSimulation",
    "Job",
    "JobClass",
    "Mg2SjfSimulation",
    "MgkSimulation",
    "ReplicatedResult",
    "SampleStream",
    "SimulationResult",
    "TwoHostSimulation",
    "Welford",
    "batch_means_interval",
    "replication_interval",
    "simulate",
    "simulate_replications",
    "simulate_trace",
]
