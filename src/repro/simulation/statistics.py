"""Online statistics for simulation output analysis.

Simulation accuracy is the paper's Section 4 concern ("simulation accuracy
decreases as the relative traffic intensities approach saturation"); we
quantify it with independent replications and Student-t confidence
intervals, plus Welford accumulators that are numerically stable over long
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from scipy import stats as _scipy_stats

__all__ = [
    "Welford",
    "ConfidenceInterval",
    "batch_means_interval",
    "replication_interval",
]


class Welford:
    """Numerically stable streaming mean/variance accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    def add_many(self, values: Sequence[float]) -> None:
        """Incorporate a batch of observations."""
        for v in values:
            self.add(float(v))

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for < 2 observations)."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float
    level: float = 0.95
    n: int = 0

    @property
    def lower(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to ``|mean|``; ``inf`` for (near-)zero means.

        A zero-mean estimate supports no relative-precision claim at all,
        so the interval reports itself as infinitely wide — a finite
        threshold comparison (e.g. the consistency oracle's escalation
        rule) then treats it as undecided instead of raising
        ``ZeroDivisionError`` or sign-flipping on negative means.  NaN
        means stay NaN (no data is different from zero-mean data).
        """
        if math.isnan(self.mean):
            return float("nan")
        magnitude = abs(self.mean)
        if magnitude < 1e-300:  # zero and denormals: denominator unusable
            return float("inf")
        return self.half_width / magnitude


def replication_interval(
    values: Sequence[float], level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval over independent replication means."""
    n = len(values)
    if n < 2:
        mean = values[0] if n else float("nan")
        return ConfidenceInterval(mean=mean, half_width=float("inf"), level=level, n=n)
    acc = Welford()
    acc.add_many(values)
    t = float(_scipy_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
    return ConfidenceInterval(
        mean=acc.mean, half_width=t * acc.std / math.sqrt(n), level=level, n=n
    )


def batch_means_interval(
    observations: Sequence[float], n_batches: int = 20, level: float = 0.95
) -> ConfidenceInterval:
    """Batch-means confidence interval from one long (warmed-up) run.

    Splits the per-job observations into ``n_batches`` contiguous batches;
    batch means are approximately independent for batches much longer than
    the autocorrelation time, giving a t-interval from a single run — the
    classic single-run alternative to independent replications.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    n = len(observations)
    if n < 2 * n_batches:
        raise ValueError(
            f"{n} observations are too few for {n_batches} batches"
        )
    batch_size = n // n_batches
    means = [
        sum(observations[i * batch_size : (i + 1) * batch_size]) / batch_size
        for i in range(n_batches)
    ]
    return replication_interval(means, level)
