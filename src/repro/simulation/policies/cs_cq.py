"""Simulator for CS-CQ (cycle stealing with central queue).

Paper Figure 1(b) with renamable hosts: all jobs wait in a central queue;
a freed host takes the first long job if one is waiting and no long is in
service (hosts are renamable, so the "long host" is wherever the long
runs, and at most one long is ever in service); otherwise it takes the
first short job; otherwise it idles.  Renaming also means an arriving
short may use *any* idle host, and an arriving long may use an idle host
only when no long is being served.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..engine import TwoHostSimulation
from ..jobs import Job, JobClass

__all__ = ["CsCqSimulation"]


class CsCqSimulation(TwoHostSimulation):
    """Central-queue cycle stealing with renamable hosts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._short_queue = deque()
        self._long_queue = deque()

    def _idle_host(self) -> Optional[int]:
        for host, job in enumerate(self.host_job):
            if job is None:
                return host
        return None

    def _long_in_service(self) -> bool:
        return any(
            job is not None and job.job_class is JobClass.LONG for job in self.host_job
        )

    def long_host_is_idle(self) -> bool:
        """Under renaming: no long is in service and some host is idle."""
        return not self._long_in_service() and self._idle_host() is not None

    def on_arrival(self, job: Job) -> None:
        host = self._idle_host()
        if job.job_class is JobClass.SHORT:
            if host is not None:
                self.start_service(host, job)
            else:
                self._short_queue.append(job)
        else:
            if host is not None and not self._long_in_service():
                self.start_service(host, job)
            else:
                self._long_queue.append(job)

    def on_host_free(self, host: int) -> None:
        if self._long_queue and not self._long_in_service():
            self.start_service(host, self._long_queue.popleft())
        elif self._short_queue:
            self.start_service(host, self._short_queue.popleft())
