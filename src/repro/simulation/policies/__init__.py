"""Simulators for every task-assignment policy discussed in the paper."""

from .cs_cq import CsCqSimulation
from .cs_id import CsIdSimulation
from .dedicated import DedicatedSimulation
from .mg2_sjf import Mg2SjfSimulation
from .mgk import MgkSimulation
from .prior_work import (
    RoundRobinSimulation,
    ShortestQueueSimulation,
    TagsSimulation,
)

POLICIES = {
    "dedicated": DedicatedSimulation,
    "cs-id": CsIdSimulation,
    "cs-cq": CsCqSimulation,
    "mgk": MgkSimulation,
    "mg2-sjf": Mg2SjfSimulation,
    "round-robin": RoundRobinSimulation,
    "shortest-queue": ShortestQueueSimulation,
    "tags": TagsSimulation,
}
"""Registry mapping policy names to simulator classes."""

__all__ = [
    "CsCqSimulation",
    "CsIdSimulation",
    "DedicatedSimulation",
    "Mg2SjfSimulation",
    "MgkSimulation",
    "POLICIES",
    "RoundRobinSimulation",
    "ShortestQueueSimulation",
    "TagsSimulation",
]
