"""Simulator for CS-ID (cycle stealing with immediate dispatch).

Paper Figure 1(a): an arriving short first checks whether the long host is
idle; if so it runs there, otherwise it is dispatched to the short host.
Longs always go to the long host.  FCFS at each host; hosts are *not*
renamable under CS-ID.
"""

from __future__ import annotations

from collections import deque

from ..engine import TwoHostSimulation
from ..jobs import Job, JobClass

__all__ = ["CsIdSimulation"]

_SHORT_HOST = 0
_LONG_HOST = 1


class CsIdSimulation(TwoHostSimulation):
    """Immediate-dispatch cycle stealing."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._short_queue = deque()
        self._long_queue = deque()  # only longs ever wait at the long host

    def on_arrival(self, job: Job) -> None:
        if job.job_class is JobClass.SHORT:
            if self.host_job[_LONG_HOST] is None:
                self.start_service(_LONG_HOST, job)  # steal the idle cycle
            elif self.host_job[_SHORT_HOST] is None:
                self.start_service(_SHORT_HOST, job)
            else:
                self._short_queue.append(job)
        else:
            if self.host_job[_LONG_HOST] is None:
                self.start_service(_LONG_HOST, job)
            else:
                self._long_queue.append(job)

    def on_host_free(self, host: int) -> None:
        if host == _SHORT_HOST:
            if self._short_queue:
                self.start_service(host, self._short_queue.popleft())
        else:
            if self._long_queue:
                self.start_service(host, self._long_queue.popleft())
