"""Simulator for M/G/2/SJF (paper Section 6's discussion comparator).

A central queue holds all jobs; whenever a host frees it takes the job
with the *smallest size* (shortest job first, non-preemptive, both hosts).
The paper argues this policy sometimes beats and sometimes loses to cycle
stealing depending on loads and size distributions — reproduced in
``benchmarks/bench_mg2sjf.py``.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..engine import TwoHostSimulation
from ..jobs import Job

__all__ = ["Mg2SjfSimulation"]


class Mg2SjfSimulation(TwoHostSimulation):
    """Non-preemptive shortest-job-first over a central queue and two hosts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._heap: list[tuple[float, int, Job]] = []

    def _idle_host(self) -> Optional[int]:
        for host, job in enumerate(self.host_job):
            if job is None:
                return host
        return None

    def on_arrival(self, job: Job) -> None:
        host = self._idle_host()
        if host is not None:
            # A host is idle only when the queue is empty (work conserving),
            # so the arriving job is trivially the "shortest waiting" one.
            self.start_service(host, job)
        else:
            heapq.heappush(self._heap, (job.size, job.job_id, job))

    def on_host_free(self, host: int) -> None:
        if self._heap:
            _, _, job = heapq.heappop(self._heap)
            self.start_service(host, job)
