"""The prior task-assignment policies surveyed in the paper's introduction.

* **Round-Robin** — "by far the most common ... simple, but it neither
  maximizes utilization of the hosts, nor minimizes mean response time."
* **Shortest-Queue** — dispatch to the host with the fewest jobs; good
  under exponential sizes, poor under high variability [23, 5].
* **TAGS** (Task Assignment by Guessing Size, [7]) — sizes unknown: every
  job starts at host 1; if it exceeds the cutoff it is killed and
  restarted from scratch at host 2.  "Works almost as well [as Dedicated]
  when job sizes have high variability."

All three are class-blind (they ignore the short/long designation), so
they can be compared with Dedicated/M/G/k/cycle stealing on the same
two-class workloads.
"""

from __future__ import annotations

from collections import deque

from ..engine import TwoHostSimulation
from ..jobs import Job

__all__ = ["RoundRobinSimulation", "ShortestQueueSimulation", "TagsSimulation"]


class RoundRobinSimulation(TwoHostSimulation):
    """Alternate hosts for successive arrivals; FCFS per host."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues = (deque(), deque())
        self._next_host = 0

    def on_arrival(self, job: Job) -> None:
        host = self._next_host
        self._next_host = 1 - self._next_host
        if self.host_job[host] is None:
            self.start_service(host, job)
        else:
            self._queues[host].append(job)

    def on_host_free(self, host: int) -> None:
        if self._queues[host]:
            self.start_service(host, self._queues[host].popleft())


class ShortestQueueSimulation(TwoHostSimulation):
    """Dispatch each arrival to the host with fewer jobs (ties -> host 0)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues = (deque(), deque())

    def _jobs_at(self, host: int) -> int:
        return len(self._queues[host]) + (self.host_job[host] is not None)

    def on_arrival(self, job: Job) -> None:
        host = 0 if self._jobs_at(0) <= self._jobs_at(1) else 1
        if self.host_job[host] is None:
            self.start_service(host, job)
        else:
            self._queues[host].append(job)

    def on_host_free(self, host: int) -> None:
        if self._queues[host]:
            self.start_service(host, self._queues[host].popleft())


class TagsSimulation(TwoHostSimulation):
    """TAGS with two hosts: run up to ``cutoff`` at host 0, else restart at
    host 1 (non-preemptive kill-and-restart; work done at host 0 is lost).

    Parameters
    ----------
    cutoff:
        The size guess separating "short enough for host 0" from "restart
        at host 1".  In practice chosen to balance the hosts' loads.
    """

    def __init__(self, *args, cutoff: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if cutoff <= 0.0:
            raise ValueError(f"cutoff must be positive, got {cutoff}")
        self.cutoff = float(cutoff)
        self._queues = (deque(), deque())

    def on_arrival(self, job: Job) -> None:
        if self.host_job[0] is None:
            self.start_service(0, job)
        else:
            self._queues[0].append(job)

    def service_time_for(self, host: int, job: Job) -> float:
        if host == 0:
            return min(job.size, self.cutoff) / self.host_speeds[0]
        return job.size / self.host_speeds[1]

    def on_service_end(self, host: int, job: Job) -> bool:
        if host == 0 and job.size > self.cutoff:
            # Killed at the cutoff; restarts from scratch at host 1.
            if self.host_job[1] is None:
                self.start_service(1, job)
            else:
                self._queues[1].append(job)
            return False
        return True

    def on_host_free(self, host: int) -> None:
        if self._queues[host]:
            self.start_service(host, self._queues[host].popleft())
