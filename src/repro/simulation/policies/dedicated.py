"""Simulator for the Dedicated policy: class-segregated FCFS hosts."""

from __future__ import annotations

from collections import deque

from ..engine import TwoHostSimulation
from ..jobs import Job, JobClass

__all__ = ["DedicatedSimulation"]

_SHORT_HOST = 0
_LONG_HOST = 1


class DedicatedSimulation(TwoHostSimulation):
    """Shorts always to host 0, longs always to host 1; FCFS per host."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queues = (deque(), deque())

    def _host_for(self, job: Job) -> int:
        return _SHORT_HOST if job.job_class is JobClass.SHORT else _LONG_HOST

    def on_arrival(self, job: Job) -> None:
        host = self._host_for(job)
        if self.host_job[host] is None:
            self.start_service(host, job)
        else:
            self._queues[host].append(job)

    def on_host_free(self, host: int) -> None:
        if self._queues[host]:
            self.start_service(host, self._queues[host].popleft())
