"""Simulator for the M/G/k policy: one central FCFS queue, any free host.

Provably identical to Least-Work-Remaining (paper Section 1); with
exponential sizes and ``lam_l -> 0`` this is the M/M/2 limiting case used
in Section 4's validation.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..engine import TwoHostSimulation
from ..jobs import Job

__all__ = ["MgkSimulation"]


class MgkSimulation(TwoHostSimulation):
    """Central FCFS queue served by both hosts, blind to job class."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._queue = deque()

    def _idle_host(self) -> Optional[int]:
        for host, job in enumerate(self.host_job):
            if job is None:
                return host
        return None

    def on_arrival(self, job: Job) -> None:
        host = self._idle_host()
        if host is not None:
            self.start_service(host, job)
        else:
            self._queue.append(job)

    def on_host_free(self, host: int) -> None:
        if self._queue:
            self.start_service(host, self._queue.popleft())
