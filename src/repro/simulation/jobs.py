"""Job records used by the discrete-event simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["JobClass", "Job"]


class JobClass(Enum):
    """The two job classes of the paper's model."""

    SHORT = "short"
    LONG = "long"


@dataclass(slots=True)
class Job:
    """A single job flowing through a simulated system."""

    job_id: int
    job_class: JobClass
    arrival_time: float
    size: float
    start_time: float = field(default=float("nan"))
    completion_time: float = field(default=float("nan"))

    @property
    def response_time(self) -> float:
        """Time from arrival to completion."""
        return self.completion_time - self.arrival_time

    @property
    def waiting_time(self) -> float:
        """Time from arrival to start of service."""
        return self.start_time - self.arrival_time
