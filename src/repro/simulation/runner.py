"""High-level simulation runner: replications and confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

import numpy as np

from ..core.params import SystemParameters
from .engine import SimulationResult, TwoHostSimulation
from .policies import POLICIES
from .statistics import ConfidenceInterval, replication_interval

__all__ = ["ReplicatedResult", "simulate", "simulate_replications", "simulate_trace"]


def _resolve(policy: "str | Type[TwoHostSimulation]") -> Type[TwoHostSimulation]:
    if isinstance(policy, str):
        try:
            return POLICIES[policy]
        except KeyError:
            raise ValueError(
                f"unknown policy {policy!r}; known: {sorted(POLICIES)}"
            ) from None
    return policy


@dataclass(frozen=True)
class ReplicatedResult:
    """Confidence intervals over independent simulation replications."""

    response_short: ConfidenceInterval
    response_long: ConfidenceInterval
    frac_long_host_idle: ConfidenceInterval
    replications: tuple[SimulationResult, ...]


def simulate(
    policy: "str | Type[TwoHostSimulation]",
    params: SystemParameters,
    seed: int = 0,
    warmup_jobs: int = 20_000,
    measured_jobs: int = 200_000,
    host_speeds: tuple[float, float] = (1.0, 1.0),
    keep_samples: bool = False,
) -> SimulationResult:
    """Run one simulation of ``policy`` (by name or class)."""
    cls = _resolve(policy)
    return cls(
        params,
        seed=seed,
        warmup_jobs=warmup_jobs,
        measured_jobs=measured_jobs,
        host_speeds=host_speeds,
        keep_samples=keep_samples,
    ).run()


def simulate_trace(
    policy: "str | Type[TwoHostSimulation]",
    trace,
    warmup_jobs: int = 0,
    seed: int = 0,
) -> SimulationResult:
    """Replay a workload trace through a policy simulator.

    ``trace`` is either a :class:`repro.workloads.SyntheticTrace` or any
    iterable of ``(arrival_time, job_class, size)`` triples.  Replay is
    deterministic given the trace; ``seed`` only matters for policies with
    internal randomness (none of the built-ins have any).
    """
    cls = _resolve(policy)
    triples = trace.iter_jobs() if hasattr(trace, "iter_jobs") else trace
    triples = list(triples)
    if not triples:
        raise ValueError("trace is empty")
    # A nominal params object documenting the empirical rates; the engine
    # replays the trace and never samples from it.
    from ..distributions import Exponential
    from .jobs import JobClass

    span = max(t for t, _, _ in triples) or 1.0
    n_short = sum(1 for _, c, _ in triples if JobClass(c) is JobClass.SHORT)
    n_long = len(triples) - n_short
    params = SystemParameters(
        lam_s=n_short / span,
        lam_l=n_long / span,
        short_service=Exponential(1.0),
        long_service=Exponential(1.0),
    )
    sim = cls(
        params,
        seed=seed,
        warmup_jobs=warmup_jobs,
        measured_jobs=len(triples),
        trace=triples,
    )
    return sim.run()


def simulate_replications(
    policy: "str | Type[TwoHostSimulation]",
    params: SystemParameters,
    n_replications: int = 5,
    seed: int = 0,
    warmup_jobs: int = 20_000,
    measured_jobs: int = 200_000,
    level: float = 0.95,
    runner=None,
) -> ReplicatedResult:
    """Run independent replications and aggregate t-based intervals.

    With a :class:`~repro.orchestration.SweepRunner`, each replication is
    a checkpointed ``replication-point`` in a worker subprocess (seeded
    identically to the direct path, so both agree bit-for-bit); a crashed
    or timed-out replication is dropped from the intervals instead of
    killing the batch, and an interrupted batch resumes.
    """
    if n_replications < 1:
        raise ValueError(f"need at least one replication, got {n_replications}")
    cls = _resolve(policy)
    if runner is not None:
        results = _orchestrated_replications(
            cls, params, n_replications, seed, warmup_jobs, measured_jobs, runner
        )
    else:
        seeds = np.random.SeedSequence(seed).spawn(n_replications)
        results = tuple(
            cls(params, seed=s, warmup_jobs=warmup_jobs, measured_jobs=measured_jobs).run()
            for s in seeds
        )
    return ReplicatedResult(
        response_short=replication_interval(
            [r.mean_response_short for r in results], level
        ),
        response_long=replication_interval(
            [r.mean_response_long for r in results], level
        ),
        frac_long_host_idle=replication_interval(
            [r.frac_long_host_idle for r in results], level
        ),
        replications=results,
    )


def _orchestrated_replications(
    cls: Type[TwoHostSimulation],
    params: SystemParameters,
    n_replications: int,
    seed: int,
    warmup_jobs: int,
    measured_jobs: int,
    runner,
) -> "tuple[SimulationResult, ...]":
    """Fan the replications out through a fault-tolerant sweep runner."""
    import base64
    import pickle

    from ..orchestration.spec import SweepPoint

    names = [name for name, policy_cls in POLICIES.items() if policy_cls is cls]
    if not names:
        raise ValueError(
            "orchestrated replications need a registered policy name; "
            f"known: {sorted(POLICIES)}"
        )
    name = names[0]
    params_b64 = base64.b64encode(pickle.dumps(params)).decode("ascii")
    points = [
        SweepPoint(
            task="replication-point",
            kwargs={
                "policy": name,
                "params_b64": params_b64,
                "seed_root": int(seed),
                "index": i,
                "n_replications": int(n_replications),
                "warmup_jobs": int(warmup_jobs),
                "measured_jobs": int(measured_jobs),
            },
            label=f"replication/{name}/seed={seed}/{i + 1}of{n_replications}",
        )
        for i in range(n_replications)
    ]
    results = []
    for outcome in runner.run(points):
        if outcome is None or not outcome.ok or not isinstance(outcome.value, dict):
            continue  # crashed/hung replication: dropped from the intervals
        results.append(pickle.loads(base64.b64decode(outcome.value["result_b64"])))
    if not results:
        raise RuntimeError(
            "every replication failed or timed out under the orchestrated runner"
        )
    return tuple(results)
