"""Synthetic supercomputing-center traces (Table 1 motivation).

The paper's architectural model is motivated by run-to-completion
distributed servers (Xolas, Pleiades, the PSC/NASA Cray J90/C90 clusters).
Their job-size distributions are famously heavy tailed — "many short jobs
and just a few very long jobs".  This module generates synthetic traces
with exactly that character: Poisson arrivals and bounded-Pareto sizes,
split into short/long classes by a size cutoff the way duration-limited
queue classes (0-30 min, 30 min-2 h, ...) split real submissions.

These traces drive the `supercomputing_center` example and let users run
the policies on workloads resembling the systems in Table 1 rather than
the stylized exponential cases of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions import BoundedPareto

__all__ = ["SyntheticTrace", "TraceSpec", "generate_trace", "split_by_cutoff"]


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of a synthetic heavy-tailed workload trace."""

    arrival_rate: float = 1.0
    pareto_alpha: float = 1.1
    """Tail exponent; ~1.1 fits measured supercomputing size distributions."""
    min_size: float = 0.01
    max_size: float = 1000.0
    cutoff: float = 1.0
    """Jobs with size <= cutoff are classified "short" (duration-limit queue)."""

    def size_distribution(self) -> BoundedPareto:
        """The bounded-Pareto job-size distribution of this spec."""
        return BoundedPareto(self.min_size, self.max_size, self.pareto_alpha)


@dataclass(frozen=True)
class SyntheticTrace:
    """A generated trace: arrival instants, sizes and class labels."""

    arrival_times: np.ndarray
    sizes: np.ndarray
    is_short: np.ndarray

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the trace."""
        return len(self.sizes)

    def iter_jobs(self):
        """Yield ``(arrival_time, job_class, size)`` triples for replay.

        The triples plug directly into
        :func:`repro.simulation.simulate_trace`.
        """
        from ..simulation.jobs import JobClass

        for time, size, short in zip(self.arrival_times, self.sizes, self.is_short):
            yield float(time), (JobClass.SHORT if short else JobClass.LONG), float(size)

    @property
    def load_short(self) -> float:
        """Empirical short-job load (work per unit time)."""
        span = float(self.arrival_times[-1]) if self.n_jobs else 0.0
        return float(self.sizes[self.is_short].sum()) / span if span else 0.0

    @property
    def load_long(self) -> float:
        """Empirical long-job load (work per unit time)."""
        span = float(self.arrival_times[-1]) if self.n_jobs else 0.0
        return float(self.sizes[~self.is_short].sum()) / span if span else 0.0


def generate_trace(
    spec: TraceSpec, n_jobs: int, rng: np.random.Generator
) -> SyntheticTrace:
    """Generate ``n_jobs`` Poisson arrivals with bounded-Pareto sizes."""
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be positive, got {n_jobs}")
    inter = rng.exponential(1.0 / spec.arrival_rate, size=n_jobs)
    sizes = np.asarray(spec.size_distribution().sample(rng, n_jobs))
    return SyntheticTrace(
        arrival_times=np.cumsum(inter),
        sizes=sizes,
        is_short=sizes <= spec.cutoff,
    )


def split_by_cutoff(trace: SyntheticTrace) -> tuple[dict, dict]:
    """Summarize the short and long sub-populations of a trace.

    Returns two dicts with keys ``n``, ``mean``, ``scv`` — handy for
    choosing analytic stand-ins for a measured trace.
    """

    def summary(mask: np.ndarray) -> dict:
        sizes = trace.sizes[mask]
        if len(sizes) == 0:
            return {"n": 0, "mean": float("nan"), "scv": float("nan")}
        mean = float(sizes.mean())
        var = float(sizes.var())
        return {"n": int(mask.sum()), "mean": mean, "scv": var / mean**2 if mean else float("nan")}

    return summary(trace.is_short), summary(~trace.is_short)
