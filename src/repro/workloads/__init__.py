"""Workload models: the paper's figure cases and synthetic HPC traces."""

from .arrival_processes import MarkovianArrivalProcess, PoissonProcess, mmpp2
from .scenarios import (
    COXIAN_LONG_CASES,
    EXPONENTIAL_CASES,
    LONG_SCV_HIGH,
    case_by_name,
)
from .spec import WorkloadCase
from .traces import SyntheticTrace, TraceSpec, generate_trace, split_by_cutoff

__all__ = [
    "COXIAN_LONG_CASES",
    "EXPONENTIAL_CASES",
    "LONG_SCV_HIGH",
    "MarkovianArrivalProcess",
    "PoissonProcess",
    "SyntheticTrace",
    "TraceSpec",
    "WorkloadCase",
    "case_by_name",
    "generate_trace",
    "mmpp2",
    "split_by_cutoff",
]
