"""Workload specifications: size statistics independent of load.

A :class:`WorkloadCase` captures "shorts 1, longs 10, longs Coxian C^2=8"
style descriptions (the column/figure headers of the paper) and turns them
into :class:`~repro.core.SystemParameters` at any load point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import SystemParameters

__all__ = ["WorkloadCase"]


@dataclass(frozen=True)
class WorkloadCase:
    """Mean sizes and variabilities of the two job classes."""

    name: str
    mean_short: float = 1.0
    mean_long: float = 1.0
    short_scv: float = 1.0
    long_scv: float = 1.0

    def params(self, rho_s: float, rho_l: float) -> SystemParameters:
        """System parameters at the given per-host loads."""
        return SystemParameters.from_loads(
            rho_s=rho_s,
            rho_l=rho_l,
            mean_short=self.mean_short,
            mean_long=self.mean_long,
            short_scv=self.short_scv,
            long_scv=self.long_scv,
        )

    def label(self) -> str:
        """Human-readable description used in experiment output."""
        parts = [
            f"shorts mean {self.mean_short:g}"
            + ("" if self.short_scv == 1.0 else f" (C2={self.short_scv:g})"),
            f"longs mean {self.mean_long:g}"
            + ("" if self.long_scv == 1.0 else f" (C2={self.long_scv:g})"),
        ]
        return ", ".join(parts)
