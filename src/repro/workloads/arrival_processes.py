"""Arrival processes beyond Poisson: MAPs and MMPPs.

The paper notes its Poisson assumption "can be generalized to a MAP
(Markovian Arrival Process)".  This module implements MAPs for the
*simulation* side of that generalization, enabling burstiness-sensitivity
studies of cycle stealing (see ``bench_map_sensitivity``); the analytic
chain remains Poisson, as published.

A MAP is a CTMC with two rate matrices: ``D0`` holds phase transitions
without arrivals (and the negative diagonal), ``D1`` holds transitions
that emit an arrival.  ``D0 + D1`` is the generator of the phase process.
A 1-phase MAP with ``D0 = [[-lam]]``, ``D1 = [[lam]]`` is the Poisson
process, which the test suite uses as an exactness anchor.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["MarkovianArrivalProcess", "PoissonProcess", "mmpp2"]


class MarkovianArrivalProcess:
    """A Markovian Arrival Process ``MAP(D0, D1)``.

    Parameters
    ----------
    d0:
        Phase transitions without arrivals; strictly negative diagonal.
    d1:
        Nonnegative arrival-emitting transitions.  ``D0 + D1`` must have
        zero row sums.
    """

    def __init__(self, d0, d1):
        d0 = np.asarray(d0, dtype=float)
        d1 = np.asarray(d1, dtype=float)
        if d0.shape != d1.shape or d0.ndim != 2 or d0.shape[0] != d0.shape[1]:
            raise ValueError(
                f"D0 and D1 must be equal square matrices, got {d0.shape}, {d1.shape}"
            )
        if np.any(d1 < 0.0):
            raise ValueError("D1 must be nonnegative")
        off_d0 = d0 - np.diag(np.diag(d0))
        if np.any(off_d0 < 0.0):
            raise ValueError("off-diagonal of D0 must be nonnegative")
        if np.any(np.diag(d0) >= 0.0):
            raise ValueError("diagonal of D0 must be strictly negative")
        row_sums = (d0 + d1).sum(axis=1)
        if np.any(np.abs(row_sums) > 1e-9 * (1 + np.abs(d0).max())):
            raise ValueError("D0 + D1 must have zero row sums (a generator)")
        self.d0 = d0
        self.d1 = d1
        self.n_phases = d0.shape[0]

    @property
    def phase_stationary(self) -> np.ndarray:
        """Stationary distribution of the phase process ``D0 + D1``."""
        from ..markov import Ctmc

        return Ctmc(self.d0 + self.d1).stationary_distribution()

    @property
    def rate(self) -> float:
        """Long-run arrival rate ``pi D1 1``."""
        return float(self.phase_stationary @ self.d1.sum(axis=1))

    def interarrival_sampler(self, rng: np.random.Generator) -> Callable[[], float]:
        """Return a stateful callable producing successive interarrival times.

        The phase starts from the time-stationary distribution of the phase
        process; each call simulates the CTMC until the next ``D1`` event.
        """
        state = int(rng.choice(self.n_phases, p=self.phase_stationary))
        hold_rates = -np.diag(self.d0)
        # Per-phase event decomposition: with prob p_arrival the exponential
        # event is an arrival (some D1 entry), else a silent D0 move.
        d1_row_sums = self.d1.sum(axis=1)
        d0_off = self.d0 - np.diag(np.diag(self.d0))
        d0_row_sums = d0_off.sum(axis=1)

        def next_interarrival() -> float:
            nonlocal state
            elapsed = 0.0
            while True:
                total = hold_rates[state]
                elapsed += rng.exponential(1.0 / total)
                if rng.random() * total < d1_row_sums[state]:
                    # Arrival: pick the destination phase from D1.
                    probs = self.d1[state] / d1_row_sums[state]
                    state = int(rng.choice(self.n_phases, p=probs))
                    return elapsed
                # Silent phase change from D0 (if any off-diagonal mass).
                if d0_row_sums[state] > 0.0:
                    probs = d0_off[state] / d0_row_sums[state]
                    state = int(rng.choice(self.n_phases, p=probs))

        return next_interarrival

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkovianArrivalProcess(n_phases={self.n_phases}, rate={self.rate:.6g})"


def PoissonProcess(rate: float) -> MarkovianArrivalProcess:
    """The Poisson process as a 1-phase MAP (exactness anchor)."""
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate}")
    return MarkovianArrivalProcess([[-rate]], [[rate]])


def mmpp2(
    rate_high: float, rate_low: float, switch_to_low: float, switch_to_high: float
) -> MarkovianArrivalProcess:
    """Two-state Markov-modulated Poisson process (the classic bursty MAP).

    Arrivals are Poisson at ``rate_high`` or ``rate_low`` depending on a
    background phase that flips at the given switching rates.  With
    ``rate_high == rate_low`` this degenerates to a Poisson process.
    """
    if min(rate_high, rate_low) < 0.0 or max(rate_high, rate_low) <= 0.0:
        raise ValueError("modulated rates must be nonnegative, one positive")
    if switch_to_low <= 0.0 or switch_to_high <= 0.0:
        raise ValueError("switching rates must be positive")
    d0 = np.array(
        [
            [-(rate_high + switch_to_low), switch_to_low],
            [switch_to_high, -(rate_low + switch_to_high)],
        ]
    )
    d1 = np.diag([rate_high, rate_low])
    return MarkovianArrivalProcess(d0, d1)
