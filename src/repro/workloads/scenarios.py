"""The paper's workload cases.

Figures 4-6 use three mean-size cases — (a) shorts 1 / longs 1
(indistinguishable), (b) shorts 1 / longs 10 (shorts shorter), and the
pathological (c) shorts 10 / longs 1 (shorts *longer* than longs) — with
exponential sizes (Figure 4) or longs drawn from a Coxian with squared
coefficient of variation 8 (Figures 5-6).
"""

from __future__ import annotations

from .spec import WorkloadCase

__all__ = [
    "EXPONENTIAL_CASES",
    "COXIAN_LONG_CASES",
    "LONG_SCV_HIGH",
    "case_by_name",
]

LONG_SCV_HIGH = 8.0
"""Squared coefficient of variation of the "high variability" long jobs."""

EXPONENTIAL_CASES = (
    WorkloadCase(name="a", mean_short=1.0, mean_long=1.0),
    WorkloadCase(name="b", mean_short=1.0, mean_long=10.0),
    WorkloadCase(name="c", mean_short=10.0, mean_long=1.0),
)
"""Figure 4: exponential shorts and longs, the paper's cases (a)-(c)."""

COXIAN_LONG_CASES = (
    WorkloadCase(name="a", mean_short=1.0, mean_long=1.0, long_scv=LONG_SCV_HIGH),
    WorkloadCase(name="b", mean_short=1.0, mean_long=10.0, long_scv=LONG_SCV_HIGH),
    WorkloadCase(name="c", mean_short=10.0, mean_long=1.0, long_scv=LONG_SCV_HIGH),
)
"""Figures 5-6: exponential shorts, Coxian longs with C^2 = 8."""


def case_by_name(name: str, coxian_longs: bool = False) -> WorkloadCase:
    """Look up a paper case ("a", "b" or "c")."""
    cases = COXIAN_LONG_CASES if coxian_longs else EXPONENTIAL_CASES
    for case in cases:
        if case.name == name:
            return case
    raise KeyError(f"unknown case {name!r}; expected one of 'a', 'b', 'c'")
