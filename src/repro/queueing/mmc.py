"""The M/M/c queue (Erlang-C), used for the M/M/2 limiting case.

As ``lam_l -> 0`` the CS-CQ system with exponential shorts approaches an
M/M/2 of short jobs (shorts have both hosts to themselves); Section 4 uses
that as one of the known limiting cases.
"""

from __future__ import annotations

import math

__all__ = ["MmcQueue"]


class MmcQueue:
    """M/M/c FCFS queue with arrival rate ``lam``, per-server rate ``mu``."""

    def __init__(self, lam: float, mu: float, c: int):
        if lam < 0.0 or mu <= 0.0:
            raise ValueError(f"need lam >= 0 and mu > 0, got lam={lam}, mu={mu}")
        if not isinstance(c, int) or c < 1:
            raise ValueError(f"c must be a positive integer, got {c!r}")
        self.lam = float(lam)
        self.mu = float(mu)
        self.c = c
        self.offered_load = self.lam / self.mu
        self.rho = self.offered_load / c
        if self.rho >= 1.0:
            raise ValueError(f"unstable M/M/{c}: rho = {self.rho:.4g} >= 1")

    def prob_empty(self) -> float:
        """Return ``P(N = 0)``."""
        a, c = self.offered_load, self.c
        total = sum(a**k / math.factorial(k) for k in range(c))
        total += a**c / (math.factorial(c) * (1.0 - self.rho))
        return 1.0 / total

    def erlang_c(self) -> float:
        """Probability an arrival must wait (all servers busy)."""
        a, c = self.offered_load, self.c
        return (a**c / (math.factorial(c) * (1.0 - self.rho))) * self.prob_empty()

    def mean_waiting_time(self) -> float:
        """Return ``E[W] = C(c, a) / (c mu - lam)``."""
        return self.erlang_c() / (self.c * self.mu - self.lam)

    def mean_response_time(self) -> float:
        """Return ``E[T] = 1/mu + E[W]``."""
        return 1.0 / self.mu + self.mean_waiting_time()

    def mean_number_in_system(self) -> float:
        """Little's law: ``E[N] = lam E[T]``."""
        return self.lam * self.mean_response_time()

    def waiting_time_cdf(self, t: float) -> float:
        """``P(W <= t) = 1 - C(c, a) e^{-(c mu - lam) t}`` (exact)."""
        if t < 0.0:
            return 0.0
        return 1.0 - self.erlang_c() * math.exp(-(self.c * self.mu - self.lam) * t)
