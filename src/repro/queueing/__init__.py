"""Classical queueing formulas used as baselines and limiting-case checks."""

from .mg1 import Mg1Queue
from .mg1_setup import Mg1SetupQueue, mixture_setup_moments
from .mm1 import Mm1Queue
from .mmc import MmcQueue

__all__ = [
    "Mg1Queue",
    "Mg1SetupQueue",
    "Mm1Queue",
    "MmcQueue",
    "mixture_setup_moments",
]
