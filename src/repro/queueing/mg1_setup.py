"""The M/G/1 queue with setup time (Takagi, *Queueing Analysis* vol. 1).

The paper computes the response time of long jobs as "the response time for
an M/G/1 queue with setup time I", where the setup is incurred by the first
job of each busy period.  The mean waiting time is::

    E[W] = lam E[X^2] / (2 (1 - rho))  +  (2 E[I] + lam E[I^2]) / (2 (1 + lam E[I]))

For both CS-CQ and CS-ID the setup is a mixture of an atom at zero (the
busy-period-starting long found a free host) and a positive component (it
had to wait for a short job in service to finish).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..distributions import Distribution

__all__ = ["Mg1SetupQueue", "mixture_setup_moments"]


def mixture_setup_moments(
    p_zero: float, positive_part: Distribution
) -> tuple[float, float]:
    """First two moments of ``I = 0`` w.p. ``p_zero`` else ``positive_part``."""
    if not 0.0 <= p_zero <= 1.0:
        raise ValueError(f"p_zero must be a probability, got {p_zero}")
    q = 1.0 - p_zero
    return q * positive_part.moment(1), q * positive_part.moment(2)


class Mg1SetupQueue:
    """M/G/1 with a setup time paid by the first job of each busy period.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    service:
        Service-time distribution.
    setup_moments:
        ``(E[I], E[I^2])`` of the setup time (may include an atom at zero).
    setup_lst:
        Optional transform ``s -> E[exp(-s I)]`` of the setup.  When given,
        the full waiting/response *distributions* become available via the
        level-crossing transform (see :meth:`waiting_time_lst`).
    """

    def __init__(
        self,
        lam: float,
        service: Distribution,
        setup_moments: Sequence[float],
        setup_lst: Optional[Callable[[complex], complex]] = None,
    ):
        self._setup_lst = setup_lst
        if lam < 0.0:
            raise ValueError(f"arrival rate must be nonnegative, got {lam}")
        self.lam = float(lam)
        self.service = service
        self.setup_m1, self.setup_m2 = (float(m) for m in setup_moments)
        if self.setup_m1 < 0.0 or self.setup_m2 < 0.0:
            raise ValueError("setup moments must be nonnegative")
        if self.setup_m1 > 0.0 and self.setup_m2 < self.setup_m1**2 * (1 - 1e-9):
            raise ValueError(
                f"infeasible setup moments ({self.setup_m1}, {self.setup_m2})"
            )
        self.rho = self.lam * service.mean
        if self.rho >= 1.0:
            raise ValueError(f"unstable M/G/1: rho = {self.rho:.4g} >= 1")

    def mean_waiting_time(self) -> float:
        """Takagi's decomposition (see module docstring)."""
        pk = self.lam * self.service.moment(2) / (2.0 * (1.0 - self.rho))
        if self.setup_m1 == 0.0 and self.setup_m2 == 0.0:
            return pk
        setup = (2.0 * self.setup_m1 + self.lam * self.setup_m2) / (
            2.0 * (1.0 + self.lam * self.setup_m1)
        )
        return pk + setup

    def mean_response_time(self) -> float:
        """Return ``E[T] = E[X] + E[W]``."""
        return self.service.mean + self.mean_waiting_time()

    def mean_number_in_system(self) -> float:
        """Little's law: ``E[N] = lam E[T]``."""
        return self.lam * self.mean_response_time()

    # ------------------------------------------------------------------
    # Distributional results (need the setup transform)
    # ------------------------------------------------------------------
    @property
    def prob_no_wait(self) -> float:
        """P(arriving customer finds the system empty of work):
        ``p0 = (1 - rho) / (1 + lam E[I])`` (level-crossing normalization).
        Note the empty-finding customer still waits its setup ``I``."""
        return (1.0 - self.rho) / (1.0 + self.lam * self.setup_m1)

    def waiting_time_lst(self, s: complex) -> complex:
        """Transform of the FCFS waiting time, from level crossing.

        Modeling the setup as an exceptional first service ``I + X`` of
        each busy period, the stationary workload density solves the
        level-crossing equation, giving (``p0`` as above)::

            W~(s) = p0 I~(s) + lam p0 (1 - I~(s) X~(s)) / (s - lam (1 - X~(s)))

        With ``I = 0`` this is Pollaczek-Khinchine (asserted in tests).
        """
        if self._setup_lst is None:
            raise ValueError(
                "waiting-time distribution needs setup_lst; only the first "
                "two setup moments were supplied"
            )
        if s == 0:
            return 1.0
        setup = self._setup_lst(s)
        service = self.service.laplace(s)
        p0 = self.prob_no_wait
        return p0 * setup + self.lam * p0 * (1.0 - setup * service) / (
            s - self.lam * (1.0 - service)
        )

    def waiting_time_cdf(self, t: float) -> float:
        """``P(W <= t)`` by numerical inversion.

        ``t == 0`` returns the atom ``P(W = 0) = p0 * P(I = 0)``, read off
        the transform's ``s -> infinity`` limit.
        """
        if t < 0.0:
            return 0.0
        if t == 0.0:
            return float(self.waiting_time_lst(1e12).real)
        from ..transforms import cdf_from_lst

        return cdf_from_lst(self.waiting_time_lst, t)

    def response_time_lst(self, s: complex) -> complex:
        """Transform of ``T = W + X`` (waiting independent of own service)."""
        return self.waiting_time_lst(s) * self.service.laplace(s)

    def response_time_cdf(self, t: float) -> float:
        """``P(T <= t)`` by numerical inversion."""
        if t <= 0.0:
            return 0.0
        from ..transforms import cdf_from_lst

        return cdf_from_lst(self.response_time_lst, t)
