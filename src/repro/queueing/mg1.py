"""The M/G/1 queue: Pollaczek-Khinchine mean formulas."""

from __future__ import annotations

from ..busy_periods import MG1BusyPeriod
from ..distributions import Distribution

__all__ = ["Mg1Queue"]


class Mg1Queue:
    """M/G/1 FCFS queue with Poisson(``lam``) arrivals and service ``X``.

    This is the Dedicated baseline's host model, and (with ``lam -> 0`` or
    saturation) one of the paper's Section 4 limiting-case validators.
    """

    def __init__(self, lam: float, service: Distribution):
        if lam < 0.0:
            raise ValueError(f"arrival rate must be nonnegative, got {lam}")
        self.lam = float(lam)
        self.service = service
        self.rho = self.lam * service.mean
        if self.rho >= 1.0:
            raise ValueError(f"unstable M/G/1: rho = {self.rho:.4g} >= 1")

    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine: ``E[W] = lam E[X^2] / (2 (1 - rho))``."""
        return self.lam * self.service.moment(2) / (2.0 * (1.0 - self.rho))

    def mean_response_time(self) -> float:
        """Return ``E[T] = E[X] + E[W]``."""
        return self.service.mean + self.mean_waiting_time()

    def mean_number_in_system(self) -> float:
        """Little's law: ``E[N] = lam E[T]``."""
        return self.lam * self.mean_response_time()

    def mean_number_in_queue(self) -> float:
        """Return ``E[N_Q] = lam E[W]``."""
        return self.lam * self.mean_waiting_time()

    def busy_period(self) -> MG1BusyPeriod:
        """Return the busy-period object for this queue."""
        return MG1BusyPeriod(self.lam, self.service)

    def prob_idle(self) -> float:
        """Return ``P(N = 0) = 1 - rho``."""
        return 1.0 - self.rho

    def waiting_time_lst(self, s: complex) -> complex:
        """Pollaczek-Khinchine transform of the FCFS waiting time.

        ``W~(s) = (1 - rho) s / (s - lam (1 - X~(s)))``.
        """
        if s == 0:
            return 1.0
        return (1.0 - self.rho) * s / (s - self.lam * (1.0 - self.service.laplace(s)))

    def waiting_time_cdf(self, t: float) -> float:
        """``P(W <= t)`` by numerical inversion of the P-K transform."""
        if t < 0.0:
            return 0.0
        if t == 0.0:
            return 1.0 - self.rho  # P(no wait) = P(server idle), PASTA
        from ..transforms import cdf_from_lst

        return cdf_from_lst(self.waiting_time_lst, t)

    def response_time_lst(self, s: complex) -> complex:
        """Transform of the response time ``T = W + X`` (independent parts)."""
        return self.waiting_time_lst(s) * self.service.laplace(s)

    def response_time_cdf(self, t: float) -> float:
        """``P(T <= t)`` by numerical inversion."""
        if t <= 0.0:
            return 0.0
        from ..transforms import cdf_from_lst

        return cdf_from_lst(self.response_time_lst, t)
