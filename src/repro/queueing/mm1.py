"""The M/M/1 queue (exact closed forms)."""

from __future__ import annotations

import math

__all__ = ["Mm1Queue"]


class Mm1Queue:
    """M/M/1 FCFS queue with arrival rate ``lam`` and service rate ``mu``."""

    def __init__(self, lam: float, mu: float):
        if lam < 0.0 or mu <= 0.0:
            raise ValueError(f"need lam >= 0 and mu > 0, got lam={lam}, mu={mu}")
        self.lam = float(lam)
        self.mu = float(mu)
        self.rho = self.lam / self.mu
        if self.rho >= 1.0:
            raise ValueError(f"unstable M/M/1: rho = {self.rho:.4g} >= 1")

    def mean_number_in_system(self) -> float:
        """Return ``E[N] = rho / (1 - rho)``."""
        return self.rho / (1.0 - self.rho)

    def mean_response_time(self) -> float:
        """Return ``E[T] = 1 / (mu - lam)``."""
        return 1.0 / (self.mu - self.lam)

    def mean_waiting_time(self) -> float:
        """Return ``E[W] = rho / (mu - lam)``."""
        return self.rho / (self.mu - self.lam)

    def prob_n(self, n: int) -> float:
        """Return ``P(N = n) = (1 - rho) rho^n``."""
        if n < 0:
            raise ValueError(f"n must be nonnegative, got {n}")
        return (1.0 - self.rho) * self.rho**n

    def waiting_time_cdf(self, t: float) -> float:
        """``P(W <= t) = 1 - rho e^{-(mu - lam) t}`` (exact)."""
        if t < 0.0:
            return 0.0
        return 1.0 - self.rho * math.exp(-(self.mu - self.lam) * t)

    def response_time_cdf(self, t: float) -> float:
        """``P(T <= t)``; the M/M/1 response time is ``Exp(mu - lam)``."""
        if t < 0.0:
            return 0.0
        return 1.0 - math.exp(-(self.mu - self.lam) * t)
