"""Built-in sweep tasks: the worker-side halves of the experiment stack.

Every task is a plain top-level function taking JSON-serializable keyword
arguments and returning JSON-serializable data — the contract that lets a
point be shipped to a worker subprocess, content-hashed into the
checkpoint journal, and resumed byte-identically later.  The experiment
entry points (``repro.experiments.figures``, ``repro.experiments
.validation``, ``repro.simulation.runner``) build the matching
:class:`~repro.orchestration.spec.SweepPoint` objects.

Tasks may return a ``"diagnostics"`` key (per-policy
:meth:`~repro.robustness.SolverDiagnostics.as_dict` payloads) and a
``"degraded"`` flag; the worker shim lifts both into the point outcome.
"""

from __future__ import annotations

import base64
import pickle
import time

from .spec import register_task

__all__ = [
    "demo_point",
    "oracle_point",
    "replication_point",
    "response_batch",
    "response_point",
    "validation_point",
]


@register_task("demo-point")
def demo_point(x: float, sleep: float = 0.0) -> dict:
    """Trivial task (y = x^2) used by tests, docs and smoke runs."""
    if sleep:
        time.sleep(sleep)
    return {"values": {"y": float(x) * float(x)}}


@register_task("response-point")
def response_point(case: dict, rho_s: float, rho_l: float, job_class: str) -> dict:
    """One figure sweep point: all three policies at one load point.

    ``case`` is a :class:`~repro.workloads.WorkloadCase` as a field dict.
    Values are NaN beyond a policy's stability boundary, exactly as in the
    in-process sweep; solver diagnostics ride along for the manifest.
    """
    from ..experiments.figures import _policy_point_values
    from ..workloads import WorkloadCase

    params = WorkloadCase(**case).params(rho_s, rho_l)
    values, diagnostics = _policy_point_values(
        params, job_class, with_diagnostics=True
    )
    return {"values": values, "diagnostics": diagnostics}


@register_task("response-batch")
def response_batch(case: dict, pairs: list, job_class: str) -> dict:
    """One figure sweep *slab*: a whole run of load points solved batched.

    The batched backend (:mod:`repro.perf.batched`) stacks every point's
    QBD blocks into tensors, solves them with batched LAPACK calls and
    evaluates the response-time formulas vectorized over the slab; points
    its fast path cannot finish bit-faithfully are re-evaluated through
    the per-point path, so values, NaN semantics, warnings and contract
    checks match ``response-point`` exactly.  Returns per-policy value
    *lists* aligned with ``pairs``.
    """
    from ..perf.batched import batched_sweep_values
    from ..workloads import WorkloadCase

    workload = WorkloadCase(**case)
    load_pairs = [(float(rho_s), float(rho_l)) for rho_s, rho_l in pairs]
    values, diags = batched_sweep_values(
        workload, load_pairs, job_class, with_diagnostics=True
    )
    diagnostics = {
        str(i): diag for i, diag in enumerate(diags or []) if diag
    }
    return {
        "values": {label: [float(v) for v in row] for label, row in values.items()},
        "diagnostics": diagnostics or None,
    }


@register_task("validation-point")
def validation_point(
    case: dict,
    policy: str,
    rho_s: float,
    rho_l: float,
    measured_jobs: int,
    warmup_jobs: int,
    seed: int,
) -> dict:
    """One analysis-vs-simulation comparison (short and long rows).

    Returns ``{"rows": []}`` outside the policy's stability region,
    mirroring the in-process sweep's skip.
    """
    from ..core import CsCqAnalysis, CsIdAnalysis
    from ..simulation import simulate
    from ..workloads import WorkloadCase

    params = WorkloadCase(**case).params(rho_s, rho_l)
    analysis_cls = {"cs-cq": CsCqAnalysis, "cs-id": CsIdAnalysis}[policy]
    try:
        analysis = analysis_cls(params)
        t_short = analysis.mean_response_time_short()
        t_long = analysis.mean_response_time_long()
    except Exception:
        return {"rows": []}  # outside this policy's stability region
    sim = simulate(
        policy, params, seed=seed, warmup_jobs=warmup_jobs, measured_jobs=measured_jobs
    )
    return {
        "rows": [
            {
                "job_class": "short",
                "analytic": t_short,
                "simulated": sim.mean_response_short,
            },
            {
                "job_class": "long",
                "analytic": t_long,
                "simulated": sim.mean_response_long,
            },
        ]
    }


@register_task("oracle-point")
def oracle_point(case: dict, rho_s: float, rho_l: float, config: dict) -> dict:
    """One cross-method consistency verdict (``python -m repro check``).

    Runs the full oracle — QBD analysis, truncated-chain reference,
    replicated simulation with adaptive escalation, invariant contracts —
    and returns the verdict dict.  A ``suspect`` classification sets the
    ``suspect`` flag so the worker shim and the run manifest record the
    point as questionable; ``inconclusive`` maps to ``degraded`` (the
    value is not wrong, just undecided within the escalation budget).
    """
    from ..contracts import OracleConfig, check_point
    from ..workloads import WorkloadCase

    workload = WorkloadCase(**case)
    params = workload.params(rho_s, rho_l)
    # Recompute the label the driver used so perturb faults match it.
    label = f"oracle {workload.name} rho_s={rho_s:g} rho_l={rho_l:g}"
    verdict = check_point(params, OracleConfig.from_dict(config), label=label)
    return {
        **verdict.as_dict(),
        "suspect": verdict.classification == "suspect",
        "degraded": verdict.degraded or verdict.classification == "inconclusive",
    }


@register_task("replication-point")
def replication_point(
    policy: str,
    params_b64: str,
    seed_root: int,
    index: int,
    n_replications: int,
    warmup_jobs: int,
    measured_jobs: int,
) -> dict:
    """One independent simulation replication.

    The replication's seed is child ``index`` of
    ``SeedSequence(seed_root).spawn(n_replications)`` — identical to the
    in-process path, so orchestrated and direct runs agree bit-for-bit.
    The full :class:`~repro.simulation.engine.SimulationResult` is carried
    back pickled so confidence-interval aggregation loses nothing.
    """
    import numpy as np

    from ..simulation.runner import _resolve

    params = pickle.loads(base64.b64decode(params_b64))
    seed = np.random.SeedSequence(seed_root).spawn(n_replications)[index]
    result = _resolve(policy)(
        params, seed=seed, warmup_jobs=warmup_jobs, measured_jobs=measured_jobs
    ).run()
    return {
        "mean_response_short": result.mean_response_short,
        "mean_response_long": result.mean_response_long,
        "frac_long_host_idle": result.frac_long_host_idle,
        "result_b64": base64.b64encode(pickle.dumps(result)).decode("ascii"),
    }
