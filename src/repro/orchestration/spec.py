"""Sweep-point specifications and the task registry.

A sweep is a list of :class:`SweepPoint` objects.  Each point names a
*task* (a registered callable or a ``"module:function"`` dotted path) and
carries JSON-serializable keyword arguments; the pair is content-hashed
into a stable :attr:`SweepPoint.key` that the checkpoint journal uses to
recognize already-completed points across interrupted runs.  Keeping the
spec declarative (a name plus plain data, never a closure) is what lets a
point cross the process boundary to a worker and survive on disk.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "SCHEMA_VERSION",
    "SweepPoint",
    "canonical_spec_json",
    "point_key",
    "register_task",
    "resolve_task",
]

#: Version tag of the solver/result schema, folded into every point key.
#: Bump it whenever a solver change makes previously checkpointed results
#: non-comparable (different numerics, changed result fields, ...): every
#: journal entry written under the old tag then stops matching, so a
#: ``--resume`` recomputes instead of silently mixing old and new results.
SCHEMA_VERSION = 2

_TASKS: dict[str, Callable[..., Any]] = {}


def register_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a callable under ``name`` for sweep points.

    Registered names are resolvable in worker subprocesses: with the
    default fork start method the registry is inherited; under spawn the
    built-in tasks re-register when :mod:`repro.orchestration.tasks` is
    imported by :func:`resolve_task`.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        _TASKS[name] = fn
        return fn

    return decorate


def resolve_task(name: str) -> Callable[..., Any]:
    """Look up a task by registered name or ``"module:function"`` path."""
    if name in _TASKS:
        return _TASKS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        module = importlib.import_module(module_name)
        fn = getattr(module, attr, None)
        if not callable(fn):
            raise KeyError(f"{name!r} does not resolve to a callable")
        return fn
    # The built-in tasks register themselves on import; load them lazily so
    # importing the orchestration package never drags in the experiment
    # stack (which itself builds SweepPoints).
    from . import tasks  # noqa: F401

    if name in _TASKS:
        return _TASKS[name]
    raise KeyError(
        f"unknown task {name!r}; registered: {sorted(_TASKS)} "
        "(or use a 'module:function' path)"
    )


def canonical_spec_json(task: str, kwargs: dict) -> str:
    """Canonical JSON of a point spec (sorted keys, no whitespace).

    Includes :data:`SCHEMA_VERSION`, so checkpoints written before a
    schema/solver bump stop matching and are recomputed on resume.
    """
    return json.dumps(
        {"schema": SCHEMA_VERSION, "task": task, "kwargs": kwargs},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )


def point_key(task: str, kwargs: dict) -> str:
    """Stable content hash of a point spec, the journal/checkpoint key."""
    digest = hashlib.sha256(canonical_spec_json(task, kwargs).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class SweepPoint:
    """One unit of sweep work: a task name plus serializable kwargs.

    ``label`` is purely cosmetic (progress lines, manifests, fault-
    injection matching); identity is the content hash of ``(task, kwargs)``.
    """

    task: str
    kwargs: dict = field(default_factory=dict)
    label: str = ""

    @property
    def key(self) -> str:
        """Content hash identifying this point in the checkpoint journal."""
        return point_key(self.task, self.kwargs)

    def as_spec(self) -> dict:
        """Plain-dict form shipped to the worker subprocess."""
        return {"task": self.task, "kwargs": dict(self.kwargs), "label": self.label}
