"""Crash-safe experiment orchestration: checkpointed, resumable sweeps.

PR 1 hardened the solvers; this package hardens the *campaigns* that use
them.  Every figure sweep, validation grid and replication batch can run
through a :class:`SweepRunner` that

- executes each point in a worker subprocess (a hung solve or an OOM
  kills one point, not the sweep),
- enforces a per-point timeout by reaping the hung worker while sibling
  points keep computing,
- journals every completed point to a crash-safe JSONL checkpoint
  (atomic tmp + ``os.replace`` writes) keyed by a content hash of the
  point spec, so ``resume`` restarts a killed sweep where it stopped,
- records a per-run manifest (statuses, solver-ladder outcomes, wall
  times, seeds, package version) next to the results, and
- is testable under deterministic fault injection (:mod:`.faults`):
  designated points can hang, crash the worker, raise typed numerical
  errors, or abort the driver mid-sweep.

See ``docs/orchestration.md`` for the journal/manifest formats and the
fault-injection knobs.
"""

from .checkpoint import CheckpointJournal, atomic_write_text
from .deadline import DeadlineBudget
from .faults import InjectedAbortError, inject_faults
from .manifest import RunManifest
from .runner import PointOutcome, SweepRunner
from .spec import SCHEMA_VERSION, SweepPoint, point_key, register_task, resolve_task

__all__ = [
    "CheckpointJournal",
    "DeadlineBudget",
    "SCHEMA_VERSION",
    "InjectedAbortError",
    "PointOutcome",
    "RunManifest",
    "SweepPoint",
    "SweepRunner",
    "atomic_write_text",
    "inject_faults",
    "point_key",
    "register_task",
    "resolve_task",
]
