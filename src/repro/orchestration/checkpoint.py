"""Crash-safe checkpoint journal for sweep runs.

The journal is a JSONL file: one record per completed sweep point, keyed
by the content hash of the point spec (:func:`~repro.orchestration.spec
.point_key`).  Every write goes through :func:`atomic_write_text` — a
temp file in the same directory followed by ``os.replace`` — so the file
on disk is always a complete, parseable journal: a crash or SIGKILL at
any instant loses at most the points that were still in flight, never
the journal itself.

Loading tolerates torn or corrupt lines (e.g. a journal written by a
pre-atomic tool, a disk-full truncation, or a mid-write crash tearing the
final line): bad lines are skipped **loudly** — a
:class:`~repro.robustness.CorruptJournalWarning` names the file and line
numbers, and the ``checkpoint.torn_lines`` telemetry counter records how
many were dropped — good records are kept, and the next flush rewrites a
clean file.  A ``--resume`` therefore recomputes the torn points instead
of aborting the run.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Iterator

# Re-exported for backward compatibility: the atomic writer grew more
# users (manifests, bench records, oracle reports, telemetry traces) and
# now lives in repro.robustness.atomic_write.
from ..robustness.atomic_write import atomic_write_jsonl, atomic_write_text
from ..robustness.errors import CorruptJournalWarning
from ..telemetry import counter_inc

__all__ = ["CheckpointJournal", "atomic_write_text"]


class CheckpointJournal:
    """Journal of completed sweep points, persisted after every record.

    Records are plain dicts with at least a ``"key"`` field; the last
    record for a key wins (a retried point overwrites its old outcome).
    """

    def __init__(self, path: "Path | str"):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        #: Torn/corrupt lines skipped while loading (0 for a clean journal).
        self.torn_lines = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        torn: "list[int]" = []
        for lineno, line in enumerate(self.path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn/corrupt line (classically: a mid-write crash
                # truncating the final line): skip it, keep the rest.
                torn.append(lineno)
                continue
            if isinstance(record, dict) and "key" in record:
                self._records[record["key"]] = record
        if torn:
            self.torn_lines = len(torn)
            counter_inc("checkpoint.torn_lines", len(torn))
            warnings.warn(
                CorruptJournalWarning(
                    f"checkpoint journal {self.path} had {len(torn)} torn/corrupt "
                    f"line(s) (line {', '.join(map(str, torn))}); skipped — the "
                    f"affected point(s) will be recomputed on resume"
                ),
                stacklevel=3,
            )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records.values())

    def get(self, key: str) -> "dict | None":
        """The journaled record for a point key, or None."""
        return self._records.get(key)

    def record(self, record: dict) -> None:
        """Add (or overwrite) one record and persist the journal atomically."""
        if "key" not in record:
            raise ValueError("journal records need a 'key' field")
        self._records[record["key"]] = record
        self.flush()

    def flush(self) -> None:
        """Rewrite the journal file atomically from the in-memory records."""
        atomic_write_jsonl(self.path, self._records.values())

    def reset(self) -> None:
        """Drop all records and delete the journal file (fresh run)."""
        self._records.clear()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
