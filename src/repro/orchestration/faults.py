"""Deterministic fault injection for the sweep runner.

The point of the orchestration layer is surviving hung solves, crashed
workers and interrupted drivers — behavior that is impossible to test
honestly without *causing* those failures on demand.  This module injects
them deterministically, driven by environment variables so the faults
cross the process boundary into worker subprocesses unchanged:

``REPRO_FAULT_POINTS``
    Semicolon-separated ``mode:substring`` entries.  A worker executing a
    point whose label contains ``substring`` triggers ``mode``:

    - ``crash``      the worker process dies immediately via ``os._exit``
                     (exit code :data:`CRASH_EXIT_CODE`), simulating a
                     segfault/OOM-kill;
    - ``hang``       the worker sleeps for ``REPRO_FAULT_HANG_SECONDS``
                     (default 3600) *before* running the task, simulating
                     a stuck matrix solve — the per-point timeout must
                     reap it;
    - ``numerical``  the worker raises
                     :class:`~repro.robustness.NumericalError` with
                     ``injected=True`` context, exercising the typed
                     error path across the process boundary;
    - ``perturb``    no fault at execution time — instead the consistency
                     oracle (:mod:`repro.contracts.oracle`) multiplies the
                     converged QBD answer at this point by
                     ``REPRO_FAULT_PERTURB_FACTOR`` (default 1.5),
                     simulating a *silently wrong* solve that only
                     cross-method checking can catch.

``REPRO_FAULT_ABORT_AFTER``
    Integer ``N``: the *runner* (driver process) raises
    :class:`InjectedAbortError` after N points complete in the current
    run, simulating a mid-sweep driver crash.  Completed points are
    already in the checkpoint journal, so ``resume`` must pick up from
    there.

Tests use the :func:`inject_faults` context manager rather than setting
the variables by hand.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

from ..robustness import NumericalError

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_ABORT_AFTER",
    "ENV_HANG_SECONDS",
    "ENV_PERTURB_FACTOR",
    "ENV_POINTS",
    "InjectedAbortError",
    "abort_after",
    "fault_for",
    "inject_faults",
    "maybe_trigger",
    "parse_fault_spec",
    "perturb_factor",
]

ENV_POINTS = "REPRO_FAULT_POINTS"
ENV_ABORT_AFTER = "REPRO_FAULT_ABORT_AFTER"
ENV_HANG_SECONDS = "REPRO_FAULT_HANG_SECONDS"
ENV_PERTURB_FACTOR = "REPRO_FAULT_PERTURB_FACTOR"

CRASH_EXIT_CODE = 23
"""Exit code of an injected worker crash (distinguishable from real ones)."""

_MODES = ("crash", "hang", "numerical", "perturb")


class InjectedAbortError(RuntimeError):
    """The runner aborted mid-sweep because a fault injection told it to.

    Simulates the driver process dying at an arbitrary point of a sweep;
    everything already journaled must survive for ``resume``.
    """


def parse_fault_spec(text: str) -> tuple[tuple[str, str], ...]:
    """Parse ``"mode:substring;mode:substring"`` into (mode, substring) pairs."""
    entries = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        mode, sep, substring = chunk.partition(":")
        mode = mode.strip()
        if not sep or mode not in _MODES or not substring:
            raise ValueError(
                f"bad fault entry {chunk!r}; expected 'mode:label-substring' "
                f"with mode in {_MODES}"
            )
        entries.append((mode, substring))
    return tuple(entries)


def fault_for(label: str) -> "str | None":
    """Return the injected fault mode for a point label, if any."""
    text = os.environ.get(ENV_POINTS, "")
    if not text:
        return None
    for mode, substring in parse_fault_spec(text):
        if substring in label:
            return mode
    return None


def hang_seconds() -> float:
    """How long an injected hang sleeps (override via env for tests)."""
    return float(os.environ.get(ENV_HANG_SECONDS, "3600"))


def abort_after() -> "int | None":
    """Number of completed points after which the runner must abort."""
    text = os.environ.get(ENV_ABORT_AFTER, "")
    return int(text) if text else None


def perturb_factor(label: str) -> "float | None":
    """Multiplicative corruption factor for this point label, if injected.

    Returns None unless the label matches a ``perturb`` fault entry.  The
    oracle applies the factor to the converged analytic answer; nothing
    else reads it, so a perturb entry is a no-op for plain sweeps.
    """
    if fault_for(label) != "perturb":
        return None
    return float(os.environ.get(ENV_PERTURB_FACTOR, "1.5"))


def maybe_trigger(label: str) -> None:
    """Trigger the injected fault for this point label, if one matches.

    Called by the worker before executing a task.  ``crash`` never
    returns; ``hang`` returns after the (long) sleep, so a sweep without
    a timeout eventually completes the point instead of deadlocking.
    ``perturb`` is deliberately not triggered here — it corrupts the
    oracle's analytic values (see :func:`perturb_factor`), not the task.
    """
    mode = fault_for(label)
    if mode is None or mode == "perturb":
        return
    if mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if mode == "hang":
        time.sleep(hang_seconds())
        return
    raise NumericalError(
        f"injected numerical fault at point {label!r}", injected=True
    )


@contextmanager
def inject_faults(
    crash: Sequence[str] = (),
    hang: Sequence[str] = (),
    numerical: Sequence[str] = (),
    perturb: Sequence[str] = (),
    abort_after: "int | None" = None,
    hang_seconds: "float | None" = None,
    perturb_factor: "float | None" = None,
) -> Iterator[None]:
    """Set the fault-injection environment for the enclosed block.

    Workers forked/spawned inside the block inherit the faults; the
    previous environment is restored on exit no matter what.
    """
    entries = [
        *(f"crash:{s}" for s in crash),
        *(f"hang:{s}" for s in hang),
        *(f"numerical:{s}" for s in numerical),
        *(f"perturb:{s}" for s in perturb),
    ]
    updates: dict[str, "str | None"] = {
        ENV_POINTS: ";".join(entries) if entries else None,
        ENV_ABORT_AFTER: str(abort_after) if abort_after is not None else None,
        ENV_HANG_SECONDS: str(hang_seconds) if hang_seconds is not None else None,
        ENV_PERTURB_FACTOR: (
            str(perturb_factor) if perturb_factor is not None else None
        ),
    }
    saved = {name: os.environ.get(name) for name in updates}
    try:
        for name, value in updates.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
