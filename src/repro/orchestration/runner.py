"""Fault-tolerant sweep runner: process isolation, timeouts, resume.

:class:`SweepRunner` executes sweep points in worker subprocesses so that
a hung matrix solve, an out-of-memory simulation, or an outright crash at
one parameter point cannot take down the sweep: the offending point is
classified (``failed`` / ``timeout``), its result becomes NaN in the
assembled figure, and every sibling point completes normally.  Completed
points stream into a :class:`~repro.orchestration.checkpoint
.CheckpointJournal`, so an interrupted sweep — Ctrl-C, SIGTERM, a driver
crash — loses at most the points that were in flight and resumes with
``resume=True`` instead of restarting.

Each of the ``workers`` slots owns a single-process
:class:`~concurrent.futures.ProcessPoolExecutor`.  One process per slot
(rather than one shared pool) is what makes per-point timeouts real: a
deadline miss kills *that slot's* worker process and replaces it, while
the other slots keep computing.  A shared pool cannot kill one hung task
without breaking every in-flight future.

Classification of a point:

``ok``
    The task returned normally.
``degraded``
    The task returned, but under graceful degradation — it emitted a
    :class:`~repro.robustness.NearBoundaryWarning` or its solver
    diagnostics carry ``degraded=True`` (PR 1's truncated-chain ladder).
``suspect``
    The task returned a value, but an invariant contract failed or the
    consistency oracle flagged it — it emitted a
    :class:`~repro.robustness.ContractViolationWarning` or set a truthy
    ``suspect`` key in its value dict.  The value is still usable (it
    plots, it journals); the manifest records that it is questionable.
``failed``
    The task raised (typed :class:`~repro.robustness.ReproError` context
    is carried back across the process boundary) or the worker process
    died (``WorkerCrashed``).
``timeout``
    The per-point deadline expired; the worker was killed and replaced.
    Also the classification of points shed because the *run-level*
    deadline budget expired before they could start.

A slot whose worker crashed or timed out is not resubmitted to
immediately: it backs off (exponential + decorrelated jitter via
:class:`~repro.robustness.BackoffPolicy`, reset on the next success) so a
persistently dying worker — a machine swapping itself to death, a chaos
fault — cannot hot-loop the respawn path while sibling slots do useful
work.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Any, Iterable, Optional

import json
import multiprocessing

from ..perf import clear_cache_scope, sweep_cache
from ..robustness import (
    BackoffPolicy,
    ContractViolationWarning,
    NearBoundaryWarning,
    ReproError,
)
from ..telemetry import (
    counter_inc,
    current_collector,
    current_span_id,
    registry,
    span,
    trace_scope,
    tracing_enabled,
)
from . import faults
from .checkpoint import CheckpointJournal
from .deadline import DeadlineBudget
from .manifest import RunManifest
from .spec import SweepPoint, resolve_task

__all__ = ["PointOutcome", "SweepRunner"]

STATUSES = ("ok", "degraded", "suspect", "failed", "timeout")


@dataclass(frozen=True)
class PointOutcome:
    """What happened to one sweep point."""

    point: SweepPoint
    status: str
    value: Any = None
    error: "dict | None" = None
    diagnostics: "dict | None" = None
    wall_time: float = 0.0
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """True when the point produced a usable value (ok/degraded/suspect)."""
        return self.status in ("ok", "degraded", "suspect")


def _jsonable(obj: Any) -> Any:
    """Best-effort conversion of error context to JSON-serializable data."""
    try:
        json.dumps(obj)
        return obj
    except (TypeError, ValueError):
        if isinstance(obj, dict):
            return {str(k): _jsonable(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_jsonable(v) for v in obj]
        return repr(obj)


def _error_payload(exc: BaseException) -> dict:
    """Typed-error context, flattened for the trip back to the driver."""
    return {
        "type": type(exc).__name__,
        "message": getattr(exc, "message", None) or str(exc),
        "context": _jsonable(getattr(exc, "context", {}) or {}),
    }


def _execute_point(spec: dict, ship_telemetry: bool = False) -> dict:
    """Run one point inside a worker; classify everything it can throw.

    Returns a plain payload dict (never raises for task-level failures)
    so that :class:`~repro.robustness.ReproError` context and
    :class:`~repro.robustness.SolverDiagnostics` survive the process
    boundary without relying on exception pickling.

    With ``ship_telemetry`` (set by the pool path, where the point runs
    in a subprocess) the worker's metrics delta and — when ``REPRO_TRACE``
    is on — its span records ride back inside the payload under a
    ``"telemetry"`` key, which the driver strips and merges before
    journaling, so journal records stay byte-compatible with PR 2.
    """
    if not ship_telemetry:
        return _run_point(spec)
    # Reset the process-wide registry so the shipped snapshot is this
    # point's delta (slot processes are reused across points), and trace
    # into a fresh scope so the driver can rebase the records onto its
    # own timeline.  Failures here must never fail the point.
    try:
        registry().reset()
        # A fork-started worker inherits the driver's open sweep_cache
        # scope through the copied ContextVar; drop it so the per-point
        # scope below is really per-point (and publishes its stats).
        clear_cache_scope()
    except Exception:  # pragma: no cover - defensive
        pass
    spans = None
    if tracing_enabled():
        with trace_scope("worker-point") as collector:
            payload = _run_point(spec)
        spans = collector.records()
    else:
        payload = _run_point(spec)
    try:
        telemetry: dict = {"metrics": registry().snapshot()}
        if spans:
            telemetry["spans"] = spans
        payload["telemetry"] = telemetry
    except Exception:  # pragma: no cover - defensive
        pass
    return payload


def _run_point(spec: dict) -> dict:
    with span(
        "orchestration.task", task=spec.get("task", ""), label=spec.get("label", "")
    ) as task_span:
        payload = _classify_point(spec)
        task_span.set("status", payload.get("status"))
    return payload


def _classify_point(spec: dict) -> dict:
    label = spec.get("label", "")
    start = time.perf_counter()
    try:
        faults.maybe_trigger(label)  # may crash/hang/raise on demand
        fn = resolve_task(spec["task"])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Per-point cache scope: a point's sub-results (busy-period
            # moments, PH fits, QBD solves) are often shared between the
            # policies evaluated within that point.  Scoped per point, not
            # per worker, so long-lived workers cannot accumulate state.
            # When REPRO_STORE is set (the driver's --store exports it
            # before workers start), sweep_cache() attaches the persistent
            # store, so points deduplicate across processes and runs too.
            with sweep_cache():
                value = fn(**spec["kwargs"])
    except ReproError as exc:
        return {
            "status": "failed",
            "value": None,
            "error": _error_payload(exc),
            "wall_time": time.perf_counter() - start,
        }
    except Exception as exc:  # noqa: BLE001 - isolation layer must catch all
        return {
            "status": "failed",
            "value": None,
            "error": _error_payload(exc),
            "wall_time": time.perf_counter() - start,
        }
    degraded = any(isinstance(w.message, NearBoundaryWarning) for w in caught)
    suspect = any(isinstance(w.message, ContractViolationWarning) for w in caught)
    diagnostics = None
    if isinstance(value, dict):
        value = dict(value)
        diagnostics = value.pop("diagnostics", None)
        degraded = bool(value.pop("degraded", False)) or degraded
        suspect = bool(value.pop("suspect", False)) or suspect
        if diagnostics:
            degraded = degraded or any(
                isinstance(d, dict) and d.get("degraded") for d in diagnostics.values()
            )
    # Suspicion outranks degradation: a degraded-but-consistent point is
    # expected near the boundary, a contract-violating one never is.
    if suspect:
        status = "suspect"
    elif degraded:
        status = "degraded"
    else:
        status = "ok"
    return {
        "status": status,
        "value": value,
        "diagnostics": _jsonable(diagnostics) if diagnostics else None,
        "wall_time": time.perf_counter() - start,
    }


class _WorkerSlot:
    """One worker process (wrapped in a single-process executor).

    The slot's process is reused across points; it is killed and lazily
    replaced when a point times out or the process dies.
    """

    def __init__(self, mp_context):
        self._mp_context = mp_context
        self._executor: "ProcessPoolExecutor | None" = None
        self.item: "tuple[int, SweepPoint] | None" = None
        self.future = None
        self.deadline: "float | None" = None
        self.submitted_at: "float | None" = None
        #: Consecutive crash/timeout count; drives the respawn backoff.
        self.failures: int = 0
        #: Monotonic instant before which this slot takes no new work.
        self.not_before: float = 0.0
        #: Last backoff delay (feeds the decorrelated-jitter recurrence).
        self.last_backoff: "float | None" = None

    @property
    def busy(self) -> bool:
        return self.future is not None

    def submit(self, index: int, point: SweepPoint, timeout: "float | None") -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=1, mp_context=self._mp_context
            )
        self.item = (index, point)
        # Snapshot the clock *before* handing the item to the executor: the
        # pool's management thread can dispatch it (and the worker can start
        # the point) while this thread is descheduled between submit() and a
        # later perf_counter() call, which would put the telemetry envelope's
        # start after the worker's own span records begin.
        self.submitted_at = time.perf_counter()
        self.future = self._executor.submit(_execute_point, point.as_spec(), True)
        self.deadline = None if timeout is None else time.monotonic() + timeout

    def clear(self) -> None:
        self.item = None
        self.future = None
        self.deadline = None
        self.submitted_at = None

    def kill(self) -> None:
        """Forcibly stop this slot's worker process and discard the pool."""
        executor, self._executor = self._executor, None
        self.clear()
        if executor is None:
            return
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except OSError:
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=2.0)
            if process.is_alive():
                try:
                    process.kill()
                except OSError:
                    pass
                process.join(timeout=2.0)

    def shutdown(self) -> None:
        """Graceful shutdown of an idle slot."""
        executor, self._executor = self._executor, None
        self.clear()
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


class SweepRunner:
    """Checkpointed, process-isolated executor for sweep points.

    Parameters
    ----------
    workers:
        Worker subprocesses.  ``0`` runs points inline in the driver
        process — no isolation and no timeout enforcement, but the same
        classification, journaling and resume semantics (handy for
        debugging and cheap tests).
    timeout:
        Per-point wall-clock budget in seconds; a point that exceeds it
        is classified ``timeout``, its worker is killed and replaced,
        and the sweep continues.  ``None`` disables reaping.
    journal_path:
        Location of the JSONL checkpoint journal.  Without one, nothing
        is checkpointed (and ``resume`` has no effect).
    manifest_path:
        Location of the run manifest; written at the end of every
        :meth:`run` call and on interruption.
    resume:
        Reuse journaled outcomes: points whose journal record is ``ok``
        or ``degraded`` are returned without recomputation (marked
        ``resumed``); ``failed`` / ``timeout`` points are retried unless
        ``retry_failed_on_resume=False``.  When False, an existing
        journal at ``journal_path`` is discarded.
    mp_context:
        A multiprocessing context or start-method name; defaults to
        ``fork`` where available (cheap workers), else ``spawn``.
    deadline:
        Optional wall-clock budget in seconds for each :meth:`run` call.
        When it expires, points that have not started are classified
        ``timeout`` (error type ``RunDeadlineExceeded``) without running,
        in-flight workers are killed and their points classified the same
        way, and the manifest records ``interrupted="deadline"`` — the
        run *completes with every point accounted for* instead of being
        aborted.
    respawn_backoff:
        :class:`~repro.robustness.BackoffPolicy` spacing a slot's worker
        respawns after crashes/timeouts (consecutive failures grow the
        delay; any success resets it).  ``None`` restores the pre-backoff
        immediate-respawn behavior.
    """

    def __init__(
        self,
        workers: int = 1,
        timeout: "float | None" = None,
        journal_path: "Path | str | None" = None,
        manifest_path: "Path | str | None" = None,
        resume: bool = False,
        run_name: str = "sweep",
        mp_context=None,
        poll_interval: float = 0.05,
        retry_failed_on_resume: bool = True,
        deadline: "float | None" = None,
        respawn_backoff: "BackoffPolicy | None" = BackoffPolicy(
            base=0.1, cap=5.0, max_attempts=1_000_000
        ),
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.workers = workers
        self.timeout = timeout
        self.deadline = deadline
        self.respawn_backoff = respawn_backoff
        # Seeded: backoff delays are jittered but reproducible per runner.
        self._respawn_rng = Random(0x5EED)
        self.resume = resume
        self.run_name = run_name
        self.poll_interval = poll_interval
        self.retry_failed_on_resume = retry_failed_on_resume
        if mp_context is None or isinstance(mp_context, str):
            method = mp_context or (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            mp_context = multiprocessing.get_context(method)
        self._mp_context = mp_context
        self.journal = CheckpointJournal(journal_path) if journal_path else None
        if self.journal is not None and not resume:
            self.journal.reset()
        self.manifest = (
            RunManifest(
                name=run_name,
                path=manifest_path,
                workers=workers,
                timeout=timeout,
                resume=resume,
            )
            if manifest_path
            else None
        )
        self._completed_this_run = 0
        self._signal: "int | None" = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def run(self, points: Iterable[SweepPoint]) -> "list[PointOutcome]":
        """Execute the points, returning outcomes in input order.

        May be called repeatedly on one runner (e.g. once per figure
        series); the journal and manifest accumulate across calls.
        """
        points = list(points)
        with span(
            "orchestration.sweep", run=self.run_name, points=len(points)
        ) as sweep_span:
            outcomes = self._dispatch(points)
            sweep_span.set("completed", self._completed_this_run)
        return outcomes

    def _dispatch(self, points: "list[SweepPoint]") -> "list[PointOutcome]":
        outcomes: "list[Optional[PointOutcome]]" = [None] * len(points)
        queue: "deque[tuple[int, SweepPoint]]" = deque()
        for index, point in enumerate(points):
            record = self._resumable_record(point)
            if record is not None:
                outcome = PointOutcome(
                    point=point,
                    status=record["status"],
                    value=record.get("value"),
                    error=record.get("error"),
                    diagnostics=record.get("diagnostics"),
                    wall_time=record.get("wall_time", 0.0),
                    resumed=True,
                )
                outcomes[index] = outcome
                if self.manifest is not None:
                    self.manifest.add_point(outcome)
            else:
                queue.append((index, point))
        budget = DeadlineBudget(self.deadline) if self.deadline is not None else None
        if self.workers == 0:
            return self._run_inline(queue, outcomes, budget)
        return self._run_pool(queue, outcomes, budget)

    def summary(self) -> str:
        """One-line status summary of everything run so far."""
        if self.manifest is not None:
            counts = self.manifest.as_dict()["counts"]
        else:
            counts = {"total": self._completed_this_run}
        parts = [f"{counts.get('total', 0)} points"]
        parts += [
            f"{counts[k]} {k}"
            for k in ("ok", "degraded", "suspect", "failed", "timeout", "resumed")
            if counts.get(k)
        ]
        return f"[sweep {self.run_name}] " + ", ".join(parts)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resumable_record(self, point: SweepPoint) -> "dict | None":
        if not self.resume or self.journal is None:
            return None
        record = self.journal.get(point.key)
        if record is None:
            return None
        if record.get("status") in ("ok", "degraded") or not self.retry_failed_on_resume:
            return record
        return None  # failed/timeout: retry on resume

    def _complete(
        self,
        index: int,
        point: SweepPoint,
        payload: dict,
        outcomes: "list[Optional[PointOutcome]]",
    ) -> PointOutcome:
        outcome = PointOutcome(
            point=point,
            status=payload["status"],
            value=payload.get("value"),
            error=payload.get("error"),
            diagnostics=payload.get("diagnostics"),
            wall_time=payload.get("wall_time", 0.0),
        )
        outcomes[index] = outcome
        if self.journal is not None:
            self.journal.record(
                {
                    "key": point.key,
                    "label": point.label,
                    "task": point.task,
                    "kwargs": point.kwargs,
                    "status": outcome.status,
                    "value": outcome.value,
                    "error": outcome.error,
                    "diagnostics": outcome.diagnostics,
                    "wall_time": outcome.wall_time,
                }
            )
        if self.manifest is not None:
            self.manifest.add_point(outcome)
        self._completed_this_run += 1
        return outcome

    def _check_injected_abort(self, abort_at: "int | None") -> None:
        if abort_at is not None and self._completed_this_run >= abort_at:
            if self.manifest is not None:
                self.manifest.interrupted = "injected-abort"
            raise faults.InjectedAbortError(
                f"injected abort after {self._completed_this_run} completed points"
            )

    def _absorb_telemetry(
        self,
        telemetry: "dict | None",
        point: SweepPoint,
        outcome: PointOutcome,
        submitted_at: "float | None",
    ) -> None:
        """Fold a worker's shipped telemetry into the driver's registry/trace.

        Metrics merge additively into the process-wide registry.  Span
        records are grafted under a synthetic ``orchestration.point``
        envelope spanning [submit, completion] on the driver's timeline
        (the worker's collector has its own epoch, so its records are
        rebased to start at the submit instant).  Telemetry problems are
        swallowed: they must never affect sweep results.
        """
        if not telemetry:
            return
        try:
            metrics = telemetry.get("metrics")
            if metrics:
                registry().merge(metrics)
        except Exception:
            pass
        try:
            spans = telemetry.get("spans")
            if not spans or not tracing_enabled():
                return
            collector = current_collector()
            if collector is None:
                return
            end = collector.now()
            start = end
            if submitted_at is not None:
                start = min(max(0.0, submitted_at - collector.epoch), end)
            # The adopted records are rebased to begin at ``start``; make the
            # envelope long enough to contain their full extent even if the
            # observed submit->absorb window came out shorter (scheduling
            # jitter around either clock snapshot must not produce a child
            # that outlives its parent).
            starts = [r.get("start") for r in spans if r.get("start") is not None]
            ends = [r.get("end") for r in spans if r.get("end") is not None]
            if starts and ends:
                end = max(end, start + (max(ends) - min(starts)))
            point_id = collector.add_complete(
                "orchestration.point",
                start,
                end,
                {"label": point.label, "status": outcome.status},
                parent=current_span_id(),
            )
            collector.adopt(spans, point_id, at=start)
        except Exception:
            pass

    def _write_manifest(self) -> None:
        if self.manifest is not None:
            try:
                snapshot = registry().snapshot()
                if any(snapshot.values()):
                    self.manifest.metrics = snapshot
            except Exception:
                pass
            self.manifest.write()

    def _deadline_payload(self, budget: DeadlineBudget) -> dict:
        """Outcome payload for a point shed by the run-level deadline."""
        return {
            "status": "timeout",
            "value": None,
            "error": {
                "type": "RunDeadlineExceeded",
                "message": (
                    f"run deadline of {self.deadline:g}s expired before this "
                    "point could complete; shed without (finishing) computing"
                ),
                "context": {"deadline": self.deadline, "elapsed": budget.elapsed()},
            },
            "wall_time": 0.0,
        }

    def _shed_remaining(self, queue, outcomes, budget: DeadlineBudget) -> None:
        """Classify every not-yet-started point as deadline-shed."""
        if self.manifest is not None:
            self.manifest.interrupted = "deadline"
        while queue:
            index, point = queue.popleft()
            self._complete(index, point, self._deadline_payload(budget), outcomes)

    def _apply_respawn_backoff(self, slot: "_WorkerSlot") -> None:
        """Space out this slot's next submission after a crash/timeout."""
        slot.failures += 1
        if self.respawn_backoff is None:
            return
        delay = self.respawn_backoff.delay(
            slot.failures, slot.last_backoff, self._respawn_rng
        )
        slot.last_backoff = delay
        slot.not_before = time.monotonic() + delay
        counter_inc("orchestration.respawn.backoff")

    def _run_inline(self, queue, outcomes, budget=None) -> "list[PointOutcome]":
        abort_at = faults.abort_after()
        try:
            while queue:
                if budget is not None and budget.expired:
                    self._shed_remaining(queue, outcomes, budget)
                    break
                index, point = queue.popleft()
                payload = _execute_point(point.as_spec())
                self._complete(index, point, payload, outcomes)
                self._check_injected_abort(abort_at)
        finally:
            self._write_manifest()
        return outcomes

    def _run_pool(self, queue, outcomes, budget=None) -> "list[PointOutcome]":
        slots = [_WorkerSlot(self._mp_context) for _ in range(self.workers)]
        abort_at = faults.abort_after()
        previous_handlers = self._install_signal_handlers()
        try:
            while queue or any(slot.busy for slot in slots):
                self._raise_if_signaled()
                if budget is not None and budget.expired:
                    # Shed the queue, then reap in-flight workers: every
                    # point ends classified, nothing keeps running past
                    # the budget.
                    self._shed_remaining(queue, outcomes, budget)
                    for slot in slots:
                        if slot.busy:
                            index, point = slot.item
                            slot.kill()
                            self._complete(
                                index, point, self._deadline_payload(budget), outcomes
                            )
                    break
                now = time.monotonic()
                for slot in slots:
                    if not slot.busy and queue and now >= slot.not_before:
                        index, point = queue.popleft()
                        slot.submit(index, point, self.timeout)
                busy = [slot for slot in slots if slot.busy]
                if not busy:
                    # Every idle slot is backing off (or the queue drained
                    # between checks): sleep instead of spinning.
                    time.sleep(self.poll_interval)
                    continue
                wait(
                    [slot.future for slot in busy],
                    timeout=self.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for slot in busy:
                    if slot.future is None:
                        continue
                    if slot.future.done():
                        index, point = slot.item
                        submitted_at = slot.submitted_at
                        payload = self._collect_payload(slot)
                        error_type = (payload.get("error") or {}).get("type")
                        if error_type == "WorkerCrashed":
                            self._apply_respawn_backoff(slot)
                        else:
                            slot.failures = 0
                            slot.last_backoff = None
                            slot.not_before = 0.0
                        telemetry = payload.pop("telemetry", None)
                        outcome = self._complete(index, point, payload, outcomes)
                        self._absorb_telemetry(telemetry, point, outcome, submitted_at)
                    elif slot.deadline is not None and now >= slot.deadline:
                        index, point = slot.item
                        slot.kill()  # reap the hung worker; siblings keep going
                        self._apply_respawn_backoff(slot)
                        self._complete(
                            index,
                            point,
                            {
                                "status": "timeout",
                                "value": None,
                                "error": {
                                    "type": "PointTimeout",
                                    "message": (
                                        f"point exceeded the {self.timeout:g}s "
                                        "budget and its worker was killed"
                                    ),
                                    "context": {"timeout": self.timeout},
                                },
                                "wall_time": self.timeout,
                            },
                            outcomes,
                        )
                    self._check_injected_abort(abort_at)
        except BaseException:
            for slot in slots:
                slot.kill()
            raise
        else:
            for slot in slots:
                slot.shutdown()
        finally:
            self._restore_signal_handlers(previous_handlers)
            self._write_manifest()
        return outcomes

    def _collect_payload(self, slot: _WorkerSlot) -> dict:
        future = slot.future
        try:
            payload = future.result()
        except BrokenExecutor:
            # The worker process died mid-task (crash, OOM kill, ...): the
            # pool is broken, so discard it; the slot rebuilds on next use.
            slot.kill()
            return {
                "status": "failed",
                "value": None,
                "error": {
                    "type": "WorkerCrashed",
                    "message": (
                        "worker process died before returning a result "
                        "(crash / out-of-memory / external kill)"
                    ),
                    "context": {},
                },
                "wall_time": 0.0,
            }
        except Exception as exc:  # pragma: no cover - defensive
            slot.clear()
            return {
                "status": "failed",
                "value": None,
                "error": _error_payload(exc),
                "wall_time": 0.0,
            }
        slot.clear()
        return payload

    # Signal handling: the handlers only set a flag; the run loop turns it
    # into an orderly teardown (journal is already flushed per point) and
    # re-raises so the process exits with the conventional status.

    def _on_signal(self, signum, _frame) -> None:
        self._signal = signum

    def _raise_if_signaled(self) -> None:
        if self._signal is None:
            return
        signum = self._signal
        self._signal = None
        if self.manifest is not None:
            try:
                name = signal.Signals(signum).name
            except ValueError:  # pragma: no cover
                name = str(signum)
            self.manifest.interrupted = name
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    def _install_signal_handlers(self):
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return previous

    def _restore_signal_handlers(self, previous) -> None:
        if not previous:
            return
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
