"""Per-run manifest: what happened to every point of a sweep.

The manifest is the run's flight recorder, written (atomically) next to
the results as ``results/<name>.manifest.json``: per-point statuses,
whether the point was resumed from the checkpoint journal, wall times,
solver-ladder outcomes distilled from PR 1's
:class:`~repro.robustness.SolverDiagnostics`, seeds where the point spec
carries one, the package version, and whether the run was interrupted
(signal name or injected abort).  Unlike the journal it is not used for
resuming — it exists so a finished (or killed) run can be audited after
the fact.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING

from .. import __version__
from ..robustness.atomic_write import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runner import PointOutcome

__all__ = ["RunManifest"]

_STATUSES = ("ok", "degraded", "suspect", "failed", "timeout")


def _diagnostics_summary(diagnostics: "dict | None") -> "dict | None":
    """Distill per-policy SolverDiagnostics dicts into ladder outcomes."""
    if not isinstance(diagnostics, dict):
        return None
    summary = {}
    for name, diag in diagnostics.items():
        if isinstance(diag, dict) and "method" in diag:
            summary[name] = {
                "method": diag.get("method"),
                "degraded": bool(diag.get("degraded", False)),
                "rungs_tried": len(diag.get("rungs", []) or []),
                "trust": diag.get("trust"),
                "error_bound": diag.get("error_bound"),
            }
    return summary or None


class RunManifest:
    """Accumulates point records for one run and writes them atomically."""

    def __init__(
        self,
        name: str,
        path: "Path | str",
        workers: int,
        timeout: "float | None",
        resume: bool,
    ):
        self.name = name
        self.path = Path(path)
        self.workers = workers
        self.timeout = timeout
        self.resume = resume
        self.interrupted: "str | None" = None
        self.points: list[dict] = []
        #: Merged telemetry snapshot (driver + all worker registries),
        #: attached by the runner just before the final write.
        self.metrics: "dict | None" = None
        self._started_unix = time.time()
        self._started_mono = time.monotonic()

    def add_point(self, outcome: "PointOutcome") -> None:
        """Record one point outcome (fresh or resumed from the journal)."""
        kwargs = outcome.point.kwargs
        entry = {
            "label": outcome.point.label,
            "key": outcome.point.key,
            "task": outcome.point.task,
            "status": outcome.status,
            "resumed": outcome.resumed,
            "wall_time": outcome.wall_time,
        }
        if outcome.error is not None:
            entry["error"] = outcome.error
        ladder = _diagnostics_summary(outcome.diagnostics)
        if ladder is not None:
            entry["ladder"] = ladder
        seed = kwargs.get("seed", kwargs.get("seed_root"))
        if seed is not None:
            entry["seed"] = seed
        self.points.append(entry)

    def as_dict(self) -> dict:
        """The full manifest document."""
        counts = {status: 0 for status in _STATUSES}
        resumed = 0
        for point in self.points:
            counts[point["status"]] = counts.get(point["status"], 0) + 1
            resumed += point["resumed"]
        document = {
            "name": self.name,
            "version": __version__,
            "started_unix": self._started_unix,
            "elapsed_seconds": time.monotonic() - self._started_mono,
            "workers": self.workers,
            "timeout": self.timeout,
            "resume": self.resume,
            "interrupted": self.interrupted,
            "counts": {**counts, "resumed": resumed, "total": len(self.points)},
            "points": self.points,
        }
        if self.metrics is not None:
            document["metrics"] = self.metrics
        return document

    def write(self) -> None:
        """Persist the manifest atomically (safe to call repeatedly)."""
        atomic_write_json(self.path, self.as_dict())
