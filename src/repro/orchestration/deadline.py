"""Deadline budgets: wall-clock allowances that propagate downward.

A :class:`DeadlineBudget` is started once (when a query is admitted, or a
run begins) and then *threaded through* the layers below: each stage asks
``remaining()`` and converts the answer into whatever timeout mechanism it
has — a per-rung ``asyncio.wait_for`` in the query service, a per-point
worker timeout in the sweep runner, a reduced truncation size in an
approximate solve.  This turns one user-facing promise ("answer within
2 s") into consistent solver-level behavior instead of each layer
guessing its own budget.

Stdlib-only and clock-injectable so tests step time instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from ..robustness.errors import DeadlineExceededError

__all__ = ["DeadlineBudget"]


class DeadlineBudget:
    """A started wall-clock budget with monotonic accounting.

    Parameters
    ----------
    budget:
        Total allowance in seconds; ``None`` means unlimited (every
        query/run gets a budget object so call sites stay uniform).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        budget: "float | None",
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget is not None and budget <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget}")
        self.budget = budget
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        """Seconds spent since the budget started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left (``inf`` for an unlimited budget, floored at 0)."""
        if self.budget is None:
            return float("inf")
        return max(0.0, self.budget - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the budget is used up (never, when unlimited)."""
        return self.remaining() <= 0.0

    def require(self, needed: float, stage: str = "") -> float:
        """Assert at least ``needed`` seconds remain; return the remainder.

        Raises a typed :class:`~repro.robustness.DeadlineExceededError`
        (with budget/elapsed/stage context) otherwise — the caller either
        degrades to a cheaper answer source or rejects the work, but it
        must not *start* something it cannot afford to finish.
        """
        remaining = self.remaining()
        if remaining < needed:
            raise DeadlineExceededError(
                f"deadline budget exhausted{f' before {stage}' if stage else ''}",
                budget=self.budget,
                elapsed=self.elapsed(),
                needed=needed,
                stage=stage or None,
            )
        return remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.budget is None:
            return "DeadlineBudget(unlimited)"
        return (
            f"DeadlineBudget({self.budget:g}s, "
            f"remaining {self.remaining():g}s)"
        )
