"""Command-line interface: ``python -m repro <command>``.

Commands
--------
analyze    Mean response times of all policies at one load point.
simulate   Run one discrete-event simulation.
figure     Regenerate a paper figure (3, 4, 5 or 6) as text tables.
stability  Print the Theorem 1 stability boundaries.
validate   Run the Section 4 limiting-case validation.
bench      Time the hot-path benchmarks; record/compare BENCH_<name>.json.
check      Cross-method consistency oracle; write results/CHECK_<name>.json.
trust      Summarize numerical-trust verdicts recorded in a results dir.
trace      Render/inspect/diff a TRACE_<name>.jsonl produced with --trace.
serve      Answer a scenario-query batch with graceful degradation.
store      Administer the persistent result store (stats / fsck / gc).

Tracing: pass ``--trace`` to ``figure`` or ``check`` (or set
``REPRO_TRACE=1`` for any command) to record a span trace of the run;
it is exported as ``TRACE_<name>.jsonl`` next to the checkpoint journal
(see docs/observability.md).

Persistent store: pass ``--store`` to ``figure``, ``bench``, ``check``
or ``serve`` (or set ``REPRO_STORE=1`` / ``REPRO_STORE=<dir>`` for any
command) to persist cached solver results across runs under
``results/store/``; see docs/performance.md and docs/robustness.md §9.
"""

from __future__ import annotations

import argparse
import sys


def _add_load_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rho-s", type=float, required=True, help="short-job load")
    parser.add_argument("--rho-l", type=float, required=True, help="long-job load")
    parser.add_argument("--mean-short", type=float, default=1.0)
    parser.add_argument("--mean-long", type=float, default=1.0)
    parser.add_argument("--short-scv", type=float, default=1.0)
    parser.add_argument("--long-scv", type=float, default=1.0)


def _params(args):
    from .core import SystemParameters

    return SystemParameters.from_loads(
        rho_s=args.rho_s,
        rho_l=args.rho_l,
        mean_short=args.mean_short,
        mean_long=args.mean_long,
        short_scv=args.short_scv,
        long_scv=args.long_scv,
    )


def cmd_analyze(args) -> int:
    from .core import (
        CsCqAnalysis,
        CsCqPhAnalysis,
        CsIdAnalysis,
        CsIdPhAnalysis,
        DedicatedAnalysis,
        UnstableSystemError,
    )
    from .distributions import Exponential

    params = _params(args)
    print(params.describe())
    print(f"\n{'policy':12s} {'E[T_short]':>12s} {'E[T_long]':>12s}")
    exponential_shorts = isinstance(params.short_service, Exponential)
    rows = [("Dedicated", DedicatedAnalysis)]
    if exponential_shorts:
        rows += [("CS-ID", CsIdAnalysis), ("CS-CQ", CsCqAnalysis)]
    else:
        rows += [("CS-ID", CsIdPhAnalysis), ("CS-CQ", CsCqPhAnalysis)]
    diagnostics_blocks = []
    for name, cls in rows:
        try:
            analysis = cls(params)
            print(
                f"{name:12s} {analysis.mean_response_time_short():12.4f} "
                f"{analysis.mean_response_time_long():12.4f}"
            )
            if args.diagnostics:
                solver = getattr(analysis, "solver_diagnostics", None)
                if solver is not None:
                    diagnostics_blocks.append((name, solver))
        except UnstableSystemError as exc:
            print(f"{name:12s} {'unstable':>12s}  ({exc})")
    for name, solver in diagnostics_blocks:
        print(f"\n{name} solver diagnostics:")
        print(solver.summary(indent="  "))
    if not exponential_shorts:
        print(
            "\n(non-exponential shorts: using the phase-type generalizations "
            "of the CS-ID and CS-CQ chains)"
        )
    return 0


def cmd_simulate(args) -> int:
    from .simulation import simulate

    params = _params(args)
    result = simulate(
        args.policy,
        params,
        seed=args.seed,
        warmup_jobs=args.warmup,
        measured_jobs=args.jobs,
    )
    print(params.describe())
    print(f"policy: {args.policy}, measured jobs: {args.jobs}, seed: {args.seed}")
    print(f"E[T_short] = {result.mean_response_short:.4f} "
          f"({result.n_measured_short} jobs)")
    print(f"E[T_long]  = {result.mean_response_long:.4f} "
          f"({result.n_measured_long} jobs)")
    print(f"long-host idle fraction = {result.frac_long_host_idle:.4f}")
    return 0


def cmd_figure(args) -> int:
    import os

    if args.no_contracts:
        # Env var rather than plumbing a flag: it crosses the worker
        # process boundary and leaves sweep-point content hashes stable.
        os.environ["REPRO_NO_CONTRACTS"] = "1"

    from .experiments import (
        figure3_panel,
        figure4_panels,
        figure5_panels,
        figure6_panels,
        format_panel,
    )

    grid = None
    if args.grid:
        grid = [float(token) for token in args.grid.split(",") if token.strip()]

    # Figures 4-6 sweep real solver/simulation work, so they run through the
    # fault-tolerant orchestration layer: worker subprocesses, per-point
    # timeouts, and a checkpoint journal + manifest under --checkpoint-dir.
    # Figure 3 is closed-form stability algebra and stays in-process.
    runner = None
    if args.number in (4, 5, 6):
        from pathlib import Path

        from .orchestration import SweepRunner

        checkpoint_dir = Path(args.checkpoint_dir)
        run_name = args.name or f"figure{args.number}"
        runner = SweepRunner(
            workers=args.workers,
            timeout=args.timeout,
            journal_path=checkpoint_dir / f"{run_name}.journal.jsonl",
            manifest_path=checkpoint_dir / f"{run_name}.manifest.json",
            resume=args.resume,
            run_name=run_name,
        )

    if args.number == 3:
        panels = [figure3_panel(grid)]
    elif args.number == 4:
        panels = figure4_panels(rho_s_values=grid, runner=runner)
    elif args.number == 5:
        panels = figure5_panels(rho_s_values=grid, runner=runner)
    else:
        panels = figure6_panels(
            rho_l_values_short=grid, rho_l_values_long=grid, runner=runner
        )
    print("\n\n".join(format_panel(panel) for panel in panels))
    if runner is not None:
        # stderr, so resumed and fresh runs produce byte-identical stdout.
        print(runner.summary(), file=sys.stderr)
    return 0


def cmd_check(args) -> int:
    """Cross-method consistency oracle over a load grid (see docs/robustness.md)."""
    from dataclasses import asdict
    from pathlib import Path

    from .contracts import OracleConfig, summarize_verdicts, write_check_report
    from .core import cs_cq_max_rho_s
    from .orchestration import SweepRunner
    from .orchestration.spec import SweepPoint
    from .workloads import case_by_name

    case = case_by_name(args.case)
    rho_l = args.rho_l
    if args.grid:
        pairs = [
            (float(token), rho_l)
            for token in args.grid.split(",")
            if token.strip()
        ]
    elif args.quick:
        # Three figure-4 loads — light, moderate, and near-boundary (90%
        # of the CS-CQ stability limit 2 - rho_l) — plus one heavy-long
        # row at rho_l = 0.98 where the trust layer widens the agreement
        # tolerance by the solve's own error bound (docs/robustness.md
        # §10); CI exercises the trust-scaled oracle through it.
        pairs = [
            (0.3, rho_l),
            (0.9, rho_l),
            (round(0.9 * cs_cq_max_rho_s(rho_l), 10), rho_l),
            (round(0.9 * cs_cq_max_rho_s(0.98), 10), 0.98),
        ]
    else:
        top = cs_cq_max_rho_s(rho_l)
        pairs = [
            (round(fraction * top, 10), rho_l)
            for fraction in (0.2, 0.4, 0.6, 0.8, 0.9)
        ]

    config = OracleConfig(
        rel_tolerance=args.rel_tolerance,
        n_replications=args.replications,
        measured_jobs=args.jobs,
        max_escalations=args.max_escalations,
        seed=args.seed,
    )
    run_name = args.name or ("check-quick" if args.quick else "check")
    checkpoint_dir = Path(args.checkpoint_dir)
    runner = SweepRunner(
        workers=args.workers,
        timeout=args.timeout,
        journal_path=checkpoint_dir / f"{run_name}.journal.jsonl",
        manifest_path=checkpoint_dir / f"{run_name}.manifest.json",
        resume=args.resume,
        run_name=run_name,
    )
    points = [
        SweepPoint(
            task="oracle-point",
            kwargs={
                "case": asdict(case),
                "rho_s": float(rho_s),
                "rho_l": float(rho_l_point),
                "config": config.as_dict(),
            },
            # Must match the label oracle_point recomputes, so perturbation
            # fault entries target the same point in driver and worker.
            label=f"oracle {case.name} rho_s={rho_s:g} rho_l={rho_l_point:g}",
        )
        for rho_s, rho_l_point in pairs
    ]

    verdicts = []
    for point, outcome in zip(points, runner.run(points)):
        if outcome is not None and outcome.ok and isinstance(outcome.value, dict):
            verdict = dict(outcome.value)
        else:
            verdict = {
                "label": point.label,
                "rho_s": point.kwargs["rho_s"],
                "rho_l": point.kwargs["rho_l"],
                "classification": "error",
                "error": outcome.error if outcome is not None else None,
            }
        verdict["status"] = outcome.status if outcome is not None else "skipped"
        # The runner's measurement covers the point's whole escalation
        # ladder; the report ranks suspects by it (suspects_by_cost).
        if outcome is not None:
            verdict["wall_time_s"] = float(outcome.wall_time)
        verdicts.append(verdict)
        comparisons = verdict.get("comparisons") or []
        detail = ", ".join(
            f"{c['job_class']}: qbd={c['analytic']:.4g} sim={c['sim_mean']:.4g} "
            f"(+/-{c['sim_half_width']:.2g})"
            for c in comparisons
        )
        escalated = verdict.get("escalations", 0)
        trust = verdict.get("trust") or {}
        trust_note = ""
        if trust.get("trust"):
            bound = trust.get("error_bound")
            trust_note = f" [trust: {trust['trust']}" + (
                f", bound {bound:.3g}]" if isinstance(bound, float) else "]"
            )
        print(
            f"[{verdict['classification']:>12s}] {verdict['label']}"
            + (f" — {detail}" if detail else "")
            + (f" [escalated x{escalated}]" if escalated else "")
            + trust_note
        )

    report_path = write_check_report(
        args.out,
        run_name,
        verdicts,
        config=config.as_dict(),
        extra={
            "case": asdict(case),
            "grid": [[float(s), float(l)] for s, l in pairs],
        },
    )
    counts = summarize_verdicts(verdicts)
    print(runner.summary(), file=sys.stderr)
    print(
        f"[check {run_name}] {counts['total']} points: "
        f"{counts.get('agree', 0)} agree, {counts.get('suspect', 0)} suspect, "
        f"{counts.get('inconclusive', 0)} inconclusive"
        + (f", {counts['error']} error" if counts.get("error") else "")
        + f"; {counts['escalations']} escalations -> {report_path}"
    )
    bad = counts.get("suspect", 0) + counts.get("error", 0)
    return 1 if bad else 0


def _scan_trust_records(root) -> "list[dict]":
    """Collect every trust verdict a results directory carries.

    Three producers annotate results with trust records: run manifests
    (``<name>.manifest.json`` — per-point, per-policy ladder rows),
    oracle reports (``CHECK_<name>.json`` — per-verdict records), and
    store entry headers (``store/`` — audited by ``store fsck --trust``
    rather than here).
    """
    import json

    records: "list[dict]" = []
    for path in sorted(root.glob("*.manifest.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        for point in document.get("points") or []:
            for policy, row in (point.get("ladder") or {}).items():
                if not isinstance(row, dict) or row.get("trust") is None:
                    continue
                records.append(
                    {
                        "source": path.name,
                        "label": f"{point.get('label', '?')}/{policy}",
                        "trust": row["trust"],
                        "error_bound": row.get("error_bound"),
                    }
                )
    for path in sorted(root.glob("CHECK_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        for point in document.get("points") or []:
            trust = point.get("trust")
            if not isinstance(trust, dict) or not trust.get("trust"):
                continue
            records.append(
                {
                    "source": path.name,
                    "label": point.get("label", "?"),
                    "trust": trust["trust"],
                    "error_bound": trust.get("error_bound"),
                    "escalated": bool(trust.get("escalated", False)),
                }
            )
    return records


def cmd_trust(args) -> int:
    """Summarize numerical-trust verdicts across a results directory."""
    import json
    import math
    from pathlib import Path

    from .robustness import TRUST_LEVELS

    root = Path(args.dir)
    records = _scan_trust_records(root)
    counts = {level: 0 for level in TRUST_LEVELS}
    worst_bound = 0.0
    for record in records:
        counts[record["trust"]] = counts.get(record["trust"], 0) + 1
        bound = record.get("error_bound")
        if isinstance(bound, (int, float)) and math.isfinite(bound):
            worst_bound = max(worst_bound, float(bound))
    report = {
        "root": str(root),
        "records": len(records),
        "counts": counts,
        "worst_finite_bound": worst_bound if records else None,
        "flagged": [r for r in records if r["trust"] != "trusted"],
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"[trust {root}] {len(records)} verdicts: "
            + ", ".join(f"{counts[level]} {level}" for level in TRUST_LEVELS)
            + (
                f"; worst finite bound {worst_bound:.3g}"
                if records
                else ""
            )
        )
        for record in report["flagged"]:
            bound = record.get("error_bound")
            print(
                f"  {record['trust'].upper():>9s} {record['label']} "
                f"({record['source']}): bound "
                + (
                    f"{bound:.3g}"
                    if isinstance(bound, (int, float))
                    else str(bound)
                )
            )
    if args.fail_on is not None:
        bad = counts.get("untrusted", 0)
        if args.fail_on == "suspect":
            bad += counts.get("suspect", 0)
        if bad:
            return 1
    return 0


def cmd_trace(args) -> int:
    """Render, integrity-check, or diff span traces (docs/observability.md)."""
    from .telemetry import check_trace, diff_traces, load_trace, render_trace

    _, records = load_trace(args.trace_file)
    if args.diff:
        _, other = load_trace(args.diff)
        print(diff_traces(records, other))
        return 0
    print(render_trace(records, top=args.top, max_depth=args.depth))
    if args.check:
        problems = check_trace(records)
        if problems:
            print()
            for problem in problems:
                print(f"[trace-check] {problem}")
            return 1
        print("\n[trace-check] ok: no integrity problems")
    return 0


def cmd_store(args) -> int:
    """Administer the persistent result store (docs/robustness.md §9)."""
    import json

    from .perf.store import DEFAULT_STORE_ROOT, ResultStore, store_from_env

    if args.dir:
        store = ResultStore(args.dir)
    else:
        store = store_from_env() or ResultStore(DEFAULT_STORE_ROOT)

    if args.store_command == "stats":
        report = store.disk_stats()
        if args.json:
            print(json.dumps(report, indent=2))
            return 0
        print(f"store: {report['root']}")
        print(
            f"  {report['entries']} entries, {report['bytes']} bytes, "
            f"{report['quarantined']} quarantined, "
            f"{report['tmp_files']} stale tmp files"
        )
        for ns, row in sorted(report["by_namespace"].items()):
            print(f"  {ns:18s} {row['entries']:6d} entries {row['bytes']:10d} bytes")
        return 0

    if args.store_command == "fsck":
        report = store.fsck(trust_budget=args.trust)
        flagged = report.get("trust_flagged", [])
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(
                f"[fsck {report['root']}] {report['checked']} entries checked, "
                f"{report['ok']} ok, {len(report['corrupt'])} corrupt"
                + (
                    f", {len(report['tmp_files'])} stale tmp files"
                    if report["tmp_files"]
                    else ""
                )
                + (
                    f", {len(flagged)} over trust budget {args.trust:g}"
                    if args.trust is not None
                    else ""
                )
            )
            for entry in report["corrupt"]:
                print(
                    f"  CORRUPT {entry['path']}: {entry['reason']}"
                    + (
                        f" -> quarantined to {entry['quarantined_to']}"
                        if entry["quarantined_to"]
                        else ""
                    )
                )
            for entry in flagged:
                bound = entry["error_bound"]
                print(
                    f"  TRUST {entry['path']}: {entry['trust']}, error bound "
                    + (f"{bound:.3g}" if isinstance(bound, float) else str(bound))
                    + (" (escalated)" if entry["escalated"] else "")
                )
        return 1 if report["corrupt"] or flagged else 0

    # gc
    max_age = args.max_age_days * 86400.0 if args.max_age_days is not None else None
    report = store.gc(max_bytes=args.max_bytes, max_age=max_age)
    if args.json:
        print(json.dumps(report, indent=2))
    elif report.get("locked"):
        print(f"[gc {report['root']}] another collector holds the lock; nothing done")
    else:
        print(
            f"[gc {report['root']}] evicted {report['evicted']} entries "
            f"({report['freed_bytes']} bytes), removed "
            f"{report['stale_tmp_removed']} stale tmp files"
        )
    return 0


def cmd_stability(args) -> int:
    from .core import cs_cq_max_rho_s, cs_id_max_rho_s, dedicated_max_rho_s

    print(f"{'rho_l':>6s} {'Dedicated':>10s} {'CS-ID':>10s} {'CS-CQ':>10s}")
    steps = max(args.steps, 2)
    for i in range(steps):
        rho_l = i / steps
        print(
            f"{rho_l:6.3f} {dedicated_max_rho_s(rho_l):10.4f} "
            f"{cs_id_max_rho_s(rho_l):10.4f} {cs_cq_max_rho_s(rho_l):10.4f}"
        )
    return 0


def cmd_validate(_args) -> int:
    from .experiments import limiting_cases

    failures = 0
    for result in limiting_cases():
        status = "ok" if result.rel_error < 1e-3 else "FAIL"
        failures += status == "FAIL"
        print(
            f"[{status:4s}] {result.name}: ours={result.ours:.6g} "
            f"exact={result.exact:.6g} (rel err {result.rel_error:.2e})"
        )
    return 1 if failures else 0


def cmd_bench(args) -> int:
    from .perf import bench as perf_bench

    names = args.names or sorted(perf_bench.BENCHMARKS)
    unknown = [n for n in names if n not in perf_bench.BENCHMARKS]
    if unknown:
        print(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(perf_bench.BENCHMARKS))}",
            file=sys.stderr,
        )
        return 2
    failures = 0
    if args.compare is not None:
        # Unparseable baseline files are unpairable by construction; fail
        # before timing anything rather than silently gating against a
        # subset of the committed records.
        _, unparseable = perf_bench.discover_records(args.compare)
        for path in unparseable:
            print(
                f"unpairable baseline record {path} (expected "
                "BENCH_<name>[.<variant>][.quick].json)",
                file=sys.stderr,
            )
            failures += 1
    for name in names:
        record = perf_bench.run_benchmark(name, quick=args.quick, repeat=args.repeat)
        payload = record.as_dict()
        baseline = None
        if args.compare is not None:
            baseline = perf_bench.load_baseline(
                name, args.quick, args.compare, variant=record.variant
            )
            if baseline is not None:
                # Fold the trajectory into the record itself, so the JSON
                # is self-contained: what was measured, against what, and
                # the resulting speedup.
                payload["baseline"] = {
                    "wall_time": baseline["wall_time"],
                    "calibration": baseline.get("calibration"),
                    "recorded": baseline.get("recorded"),
                    "source": str(args.compare),
                }
                payload["speedup_vs_baseline"] = (
                    baseline["wall_time"] / record.wall_time
                )
                if record.calibration and baseline.get("calibration"):
                    # Machine-speed-corrected speedup, same normalization
                    # as the regression gate (see compare_records).
                    payload["speedup_vs_baseline_normalized"] = (
                        baseline["wall_time"] / baseline["calibration"]
                    ) / (record.wall_time / record.calibration)
        path = perf_bench.write_bench_json(payload, args.out)
        cache = payload["cache"] or {}
        solver = payload.get("solver") or {}
        fallbacks = solver.get("batched_fallbacks")
        print(
            f"[bench {name}{' --quick' if args.quick else ''}] "
            f"wall {record.wall_time:.4g}s (best of {args.repeat}), "
            f"cache hit rate {cache.get('hit_rate', 0.0):.0%} "
            f"({cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses)"
            + (
                f", {fallbacks} batched fallback(s)"
                if fallbacks is not None
                else ""
            )
            + f" -> {path}"
        )
        if args.compare is not None:
            if baseline is None:
                # A missing baseline is a gate failure, not a skip: a
                # renamed or never-committed anchor would otherwise turn
                # the regression gate off silently.
                print(
                    f"  UNPAIRED: no baseline for {name} in {args.compare} "
                    f"(expected {perf_bench.record_filename(name, record.variant, args.quick)}"
                    + (
                        f" or {perf_bench.record_filename(name, None, args.quick)}"
                        if record.variant
                        else ""
                    )
                    + "); commit the new record as its baseline, or pass "
                    "--allow-missing-baseline to bootstrap"
                )
                failures += not args.allow_missing_baseline
                continue
            ok, message = perf_bench.compare_records(
                payload, baseline, tolerance=args.tolerance
            )
            print(f"  {'ok' if ok else 'REGRESSION'}: {message}")
            failures += not ok
    return 1 if failures else 0


def cmd_serve(args) -> int:
    import json
    from pathlib import Path

    from .service import QueryService, ScenarioQuery

    raw = json.loads(Path(args.batch).read_text())
    if isinstance(raw, dict):
        raw = raw.get("queries", raw.get("batch"))
    if not isinstance(raw, list):
        print(
            f"{args.batch}: expected a JSON list of queries "
            "(or an object with a 'queries' list)",
            file=sys.stderr,
        )
        return 2
    try:
        queries = [ScenarioQuery.from_dict(entry) for entry in raw]
    except (TypeError, ValueError) as exc:
        print(f"{args.batch}: {exc}", file=sys.stderr)
        return 2

    with QueryService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline=args.default_deadline,
        name=args.name,
    ) as service:
        answers = service.run_batch(queries)
        manifest = service.build_manifest(answers)
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"SERVICE_{args.name}.json"
        from .robustness import atomic_write_json

        atomic_write_json(path, manifest)

    for answer in answers:
        if answer.answered:
            verdict = answer.verdict or {}
            meets = ",".join(verdict.get("meets", [])) or "-"
            print(
                f"[{answer.fidelity:>9s}] {answer.label}: "
                f"meets={meets} ({answer.elapsed:.3f}s"
                f"{f', {answer.retries} retries' if answer.retries else ''})"
            )
        else:
            err = (answer.error or {}).get("type", "rejected")
            print(f"[ rejected] {answer.label}: {err}")
    totals = manifest["totals"]
    print(
        f"{totals['submitted']} submitted: {totals['answered']} answered "
        f"({totals['degraded']} degraded), {totals['shed']} shed, "
        f"{totals['rejected']} rejected, {totals['retried']} retries, "
        f"{totals['tripped']} breaker trips -> {path}"
    )
    if args.check:
        problems = _check_service_run(queries, answers, manifest)
        for problem in problems:
            print(f"[FAIL] {problem}", file=sys.stderr)
        if problems:
            return 1
        print("[ok] no lost queries; fidelity tags and counters consistent")
    return 0


def _check_service_run(queries, answers, manifest) -> "list[str]":
    """The ``--check`` gate: survival + honesty assertions for CI smoke."""
    from .contracts import evaluate

    problems = []
    if len(answers) != len(queries):
        problems.append(
            f"lost queries: {len(queries)} submitted, {len(answers)} accounted for"
        )
    for answer in answers:
        for result in evaluate("service-answer", answer):
            if not result.passed:
                problems.append(f"{answer.label}: contract {result.name}: {result.detail}")
    totals = manifest["totals"]
    telemetry = manifest["telemetry"]
    for short, counter in (
        ("submitted", "service.submitted"),
        ("answered", "service.answered"),
        ("shed", "service.shed"),
        ("rejected", "service.rejected"),
        ("degraded", "service.degraded"),
        ("retried", "service.retried"),
    ):
        if totals[short] != telemetry.get(counter, 0):
            problems.append(
                f"manifest totals[{short}]={totals[short]} disagrees with "
                f"telemetry {counter}={telemetry.get(counter, 0)}"
            )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cycle stealing under central queue (ICDCS 2003) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analytic response times at one point")
    _add_load_args(p_analyze)
    p_analyze.add_argument(
        "--diagnostics",
        action="store_true",
        help="print per-policy solver diagnostics (method, fallback rungs, "
        "residuals, sp(R), cond(I-R), wall time)",
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_sim = sub.add_parser("simulate", help="simulate one policy at one point")
    _add_load_args(p_sim)
    p_sim.add_argument(
        "--policy",
        default="cs-cq",
        choices=[
            "dedicated", "cs-id", "cs-cq", "mgk", "mg2-sjf",
            "round-robin", "shortest-queue", "tags",
        ],
    )
    p_sim.add_argument("--jobs", type=int, default=200_000)
    p_sim.add_argument("--warmup", type=int, default=20_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=cmd_simulate)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=(3, 4, 5, 6))
    p_fig.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker subprocesses for the sweep (0 = in-process, no isolation)",
    )
    p_fig.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds; a hung point is killed and "
        "plotted as NaN while the sweep continues",
    )
    p_fig.add_argument(
        "--resume",
        action="store_true",
        help="skip points already recorded in the checkpoint journal "
        "(failed/timed-out points are retried)",
    )
    p_fig.add_argument(
        "--checkpoint-dir",
        default="results",
        help="directory for the checkpoint journal and run manifest",
    )
    p_fig.add_argument(
        "--name",
        default=None,
        help="run name for <name>.journal.jsonl / <name>.manifest.json "
        "(default: figure<N>)",
    )
    p_fig.add_argument(
        "--grid",
        default=None,
        help="comma-separated sweep grid override (rho_s values for figures "
        "4/5, rho_l values for figures 3/6); handy for smoke tests",
    )
    p_fig.add_argument(
        "--no-contracts",
        action="store_true",
        help="skip in-sweep invariant-contract evaluation (sets "
        "REPRO_NO_CONTRACTS for this run, including worker subprocesses)",
    )
    p_fig.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace of the run (sets REPRO_TRACE for this run, "
        "including worker subprocesses) and export it as TRACE_<name>.jsonl "
        "under --checkpoint-dir",
    )
    _add_store_flag(p_fig)
    _add_batched_flag(p_fig)
    p_fig.set_defaults(func=cmd_figure)

    p_check = sub.add_parser(
        "check",
        help="cross-method consistency oracle (QBD vs truncated chain vs "
        "simulation); write results/CHECK_<name>.json, exit 1 on suspects",
    )
    p_check.add_argument("--rho-l", type=float, default=0.5, help="long-job load")
    p_check.add_argument(
        "--case",
        default="a",
        help="workload case name (a/b/c, exponential sizes; default a)",
    )
    p_check.add_argument(
        "--grid",
        default=None,
        help="comma-separated rho_s values (default: fractions of the "
        "stability limit; see --quick)",
    )
    p_check.add_argument(
        "--quick",
        action="store_true",
        help="3-point smoke grid: rho_s = 0.3, 0.9 and 90%% of the CS-CQ "
        "stability limit (the CI oracle-smoke variant)",
    )
    p_check.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker subprocesses (0 = in-process, no isolation)",
    )
    p_check.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (a point's whole escalation "
        "ladder runs under it)",
    )
    p_check.add_argument("--resume", action="store_true")
    p_check.add_argument("--checkpoint-dir", default="results")
    p_check.add_argument(
        "--name",
        default=None,
        help="run name for the journal/manifest/report "
        "(default: check, or check-quick with --quick)",
    )
    p_check.add_argument(
        "--out", default="results", help="directory for CHECK_<name>.json"
    )
    p_check.add_argument(
        "--rel-tolerance",
        type=float,
        default=0.05,
        help="relative tolerance for method agreement (default 0.05, the "
        "QBD's busy-period matching error budget)",
    )
    p_check.add_argument(
        "--jobs",
        type=int,
        default=20_000,
        help="measured jobs per replication before escalation (default 20000)",
    )
    p_check.add_argument(
        "--replications", type=int, default=5, help="simulation replications"
    )
    p_check.add_argument(
        "--max-escalations",
        type=int,
        default=4,
        help="job-doubling rounds allowed before a wide CI is declared "
        "inconclusive (default 4)",
    )
    p_check.add_argument("--seed", type=int, default=20030703)
    p_check.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace of the run and export it as "
        "TRACE_<name>.jsonl under --checkpoint-dir",
    )
    _add_store_flag(p_check)
    p_check.set_defaults(func=cmd_check)

    p_trust = sub.add_parser(
        "trust",
        help="summarize numerical-trust verdicts recorded in a results "
        "directory (run manifests and CHECK_<name>.json reports); "
        "--fail-on gates CI on suspect/untrusted points",
    )
    p_trust.add_argument(
        "--dir",
        default="results",
        help="results directory to scan (default: results)",
    )
    p_trust.add_argument(
        "--fail-on",
        choices=("suspect", "untrusted"),
        default=None,
        help="exit 1 when any verdict is at or below this level",
    )
    p_trust.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_trust.set_defaults(func=cmd_trust)

    p_trace = sub.add_parser(
        "trace",
        help="render a TRACE_<name>.jsonl as a span tree; --check for "
        "integrity problems, --diff to compare two traces",
    )
    p_trace.add_argument("trace_file", help="path to a TRACE_*.jsonl file")
    p_trace.add_argument(
        "--top", type=int, default=5, help="slowest-span entries to list (default 5)"
    )
    p_trace.add_argument(
        "--depth", type=int, default=None, help="maximum tree depth to render"
    )
    p_trace.add_argument(
        "--diff",
        default=None,
        metavar="OTHER",
        help="second trace: print a per-span-name self-time diff "
        "(this file -> OTHER) instead of the tree",
    )
    p_trace.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any span has negative self-time, a negative "
        "duration, a missing parent, or was never closed",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_stab = sub.add_parser("stability", help="Theorem 1 boundaries")
    p_stab.add_argument("--steps", type=int, default=20)
    p_stab.set_defaults(func=cmd_stability)

    p_val = sub.add_parser("validate", help="limiting-case validation")
    p_val.set_defaults(func=cmd_validate)

    p_bench = sub.add_parser(
        "bench", help="time the hot paths; write results/BENCH_<name>.json"
    )
    p_bench.add_argument(
        "names",
        nargs="*",
        help="benchmarks to run (default: all; see docs/performance.md)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced grids/job counts (the CI smoke variant; separate "
        "BENCH_<name>.quick.json records)",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=3, help="timing repeats; best is recorded"
    )
    p_bench.add_argument(
        "--out", default="results", help="directory for BENCH_<name>.json output"
    )
    p_bench.add_argument(
        "--compare",
        default=None,
        metavar="DIR",
        help="baseline directory (e.g. benchmarks/baselines); exit 1 on a "
        "regression beyond --tolerance",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="relative regression tolerance for --compare (default 0.30)",
    )
    p_bench.add_argument(
        "--allow-missing-baseline",
        action="store_true",
        help="with --compare, treat a missing baseline record as a note "
        "instead of a gate failure (for bootstrapping new benchmarks or "
        "variants)",
    )
    _add_store_flag(p_bench)
    _add_batched_flag(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="answer a batch of scenario queries with deadline budgets and "
        "graceful fidelity degradation; write results/SERVICE_<name>.json",
    )
    p_serve.add_argument(
        "--batch",
        required=True,
        metavar="FILE",
        help="JSON file: a list of query objects (rho_s, rho_l, case, "
        "threshold, deadline, label), or {'queries': [...]}",
    )
    p_serve.add_argument(
        "--workers", type=int, default=4, help="solver threads (default 4)"
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admission limit; queries beyond it are shed (default 16)",
    )
    p_serve.add_argument(
        "--default-deadline",
        type=float,
        default=5.0,
        help="budget in seconds for queries without their own (default 5)",
    )
    p_serve.add_argument(
        "--out", default="results", help="directory for SERVICE_<name>.json"
    )
    p_serve.add_argument("--name", default="service", help="manifest name")
    p_serve.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every query is answered-or-rejected, fidelity "
        "tags pass the service-answer contracts, and manifest totals match "
        "the telemetry counters (the CI smoke gate)",
    )
    _add_store_flag(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_store = sub.add_parser(
        "store",
        help="administer the persistent result store "
        "(results/store/ or REPRO_STORE/--dir)",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_stats = store_sub.add_parser(
        "stats", help="entry/byte counts per namespace, quarantine count"
    )
    p_store_fsck = store_sub.add_parser(
        "fsck",
        help="verify every entry (checksums, schema, contracts); "
        "quarantine failures; exit 1 if any entry was corrupt",
    )
    p_store_fsck.add_argument(
        "--trust",
        type=float,
        default=None,
        metavar="BUDGET",
        help="additionally flag intact entries whose recorded numerical "
        "error bound exceeds BUDGET (or carries no finite bound); flagged "
        "entries also fail the exit code",
    )
    p_store_gc = store_sub.add_parser(
        "gc",
        help="evict entries by size/age bound (LRU by last-access time "
        "recorded in each entry header) and sweep stale tmp files",
    )
    p_store_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="evict least-recently-used entries until the store fits",
    )
    p_store_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict entries not accessed within this many days",
    )
    for p in (p_store_stats, p_store_fsck, p_store_gc):
        p.add_argument(
            "--dir",
            default=None,
            help="store root (default: REPRO_STORE if set to a path, "
            "else results/store)",
        )
        p.add_argument(
            "--json", action="store_true", help="machine-readable report"
        )
    p_store.set_defaults(func=cmd_store)

    args = parser.parse_args(argv)
    return _dispatch(args)


def _add_store_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        action="store_true",
        help="persist cached solver results across runs (sets REPRO_STORE "
        "for this run, including worker subprocesses; store root is "
        "results/store, or set REPRO_STORE=<dir> instead)",
    )


def _add_batched_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batched",
        action="store_true",
        help="solve whole sweep rows with stacked (batched) LAPACK calls "
        "instead of per-point Python loops (sets REPRO_BATCHED for this "
        "run, including worker subprocesses); results are identical to "
        "the scalar path — see docs/performance.md",
    )


def _trace_run_name(args) -> str:
    """Run name for the TRACE_<name>.jsonl export (mirrors each command's
    journal/manifest naming so the trace lands next to them)."""
    name = getattr(args, "name", None)
    if name:
        return name
    if args.command == "figure":
        return f"figure{args.number}"
    if args.command == "check":
        return "check-quick" if getattr(args, "quick", False) else "check"
    return args.command


def _dispatch(args) -> int:
    """Run the selected command, under a root ``cli.<command>`` span when
    tracing is requested (``--trace``) or pre-enabled (``REPRO_TRACE=1``)."""
    import os

    from .perf.store import STORE_ENV_VAR, store_from_env
    from .telemetry import TRACE_ENV_VAR, tracing_enabled

    from .perf.batched import BATCHED_ENV_VAR, batched_enabled

    store_overridden = False
    prior_store_env = os.environ.get(STORE_ENV_VAR)
    if getattr(args, "store", False) and store_from_env() is None:
        # Env var rather than plumbing a flag: it crosses the worker
        # process boundary (fork and spawn) like REPRO_NO_CONTRACTS, so
        # orchestration workers join the same store.  An *enabling*
        # REPRO_STORE (possibly a path override) wins over the flag; a
        # disabled/empty one is overridden — the user asked for --store.
        os.environ[STORE_ENV_VAR] = "1"
        store_overridden = True
    batched_overridden = False
    prior_batched_env = os.environ.get(BATCHED_ENV_VAR)
    if getattr(args, "batched", False) and not batched_enabled():
        # Same env-var pattern as --store: crosses the worker boundary so
        # orchestration workers run the batched backend too.
        os.environ[BATCHED_ENV_VAR] = "1"
        batched_overridden = True
    try:
        return _dispatch_traced(args)
    finally:
        # A --store/--batched run must not leak its env into later
        # in-process main() calls (tests, notebooks).
        if store_overridden:
            if prior_store_env is None:
                os.environ.pop(STORE_ENV_VAR, None)
            else:
                os.environ[STORE_ENV_VAR] = prior_store_env
        if batched_overridden:
            if prior_batched_env is None:
                os.environ.pop(BATCHED_ENV_VAR, None)
            else:
                os.environ[BATCHED_ENV_VAR] = prior_batched_env


def _dispatch_traced(args) -> int:
    import os

    from .telemetry import TRACE_ENV_VAR, tracing_enabled

    env_was_set = TRACE_ENV_VAR in os.environ
    if getattr(args, "trace", False):
        # Env var rather than plumbing a flag: it crosses the worker
        # process boundary (fork and spawn) like REPRO_NO_CONTRACTS.
        os.environ[TRACE_ENV_VAR] = "1"
    if args.command == "trace" or not (
        getattr(args, "trace", False) or tracing_enabled()
    ):
        return args.func(args)

    from pathlib import Path

    from .telemetry import disable_tracing, enable_tracing, span

    run_name = _trace_run_name(args)
    out_dir = Path(
        getattr(args, "checkpoint_dir", None) or getattr(args, "out", None) or "results"
    )
    collector = enable_tracing(run_name)
    try:
        with span(f"cli.{args.command}", run=run_name):
            code = args.func(args)
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = collector.export(out_dir / f"TRACE_{run_name}.jsonl")
            # stderr, so traced and untraced runs produce identical stdout.
            print(f"[trace] wrote {path}", file=sys.stderr)
        except OSError as exc:
            print(f"[trace] export failed: {exc}", file=sys.stderr)
    finally:
        # A --trace run must not leak tracing into later in-process main()
        # calls (tests, notebooks): drop the env var and the enabled flag
        # again unless the caller had REPRO_TRACE set before we started.
        if getattr(args, "trace", False) and not env_was_set:
            os.environ.pop(TRACE_ENV_VAR, None)
            disable_tracing()
    return code


if __name__ == "__main__":
    sys.exit(main())
