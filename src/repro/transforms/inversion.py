"""Numerical Laplace-transform inversion (Abate-Whitt Euler method).

The queueing results in this package are naturally expressed as
Laplace-Stieltjes transforms (the Pollaczek-Khinchine waiting-time
transform, busy-period transforms, ...).  The Euler algorithm of Abate &
Whitt ("Numerical inversion of Laplace transforms of probability
distributions", ORSA J. Computing 1995) turns those transforms into CDF
values with ~1e-8 accuracy for smooth distributions, which lets the test
suite check *distributions*, not just means, against simulation.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
from scipy.special import comb

__all__ = ["invert_transform", "cdf_from_lst"]


def invert_transform(
    transform: Callable[[complex], complex],
    t: float,
    m_euler: int = 11,
    n_terms: int = 38,
    a_decay: float = 18.4,
) -> float:
    """Invert the Laplace transform of a real function at ``t > 0``.

    Parameters
    ----------
    transform:
        The ordinary Laplace transform ``F(s) = int_0^inf e^{-st} f(t) dt``.
    t:
        Evaluation point (must be positive).
    m_euler, n_terms, a_decay:
        Euler-averaging order, series length, and discretization-error
        control (Abate-Whitt defaults give ~1e-8 discretization error).
    """
    if t <= 0.0:
        raise ValueError(f"inversion point must be positive, got {t}")
    half_a = a_decay / (2.0 * t)
    pi_over_t = math.pi / t
    # Partial sums of the alternating series.
    total = 0.5 * complex(transform(complex(half_a, 0.0))).real
    partial_sums = []
    running = total
    for k in range(1, n_terms + m_euler + 1):
        term = (-1.0) ** k * complex(
            transform(complex(half_a, k * pi_over_t))
        ).real
        running += term
        partial_sums.append(running)
    # Euler (binomial) averaging of the last m_euler+1 partial sums.
    weights = np.array([comb(m_euler, j, exact=True) for j in range(m_euler + 1)])
    tail = np.array(partial_sums[n_terms - 1 : n_terms + m_euler])
    euler_avg = float(weights @ tail) / 2.0**m_euler
    return math.exp(a_decay / 2.0) / t * euler_avg


def cdf_from_lst(lst: Callable[[complex], complex], t: float, **kwargs) -> float:
    """CDF of a nonnegative random variable from its LST.

    Uses ``L{F}(s) = E[e^{-sX}] / s`` and clamps the inversion result to
    ``[0, 1]`` (the numerical error is ~1e-8 for smooth F).
    """

    def transform(s: complex) -> complex:
        return lst(s) / s

    value = invert_transform(transform, t, **kwargs)
    return min(max(value, 0.0), 1.0)
