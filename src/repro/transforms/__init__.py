"""Laplace-transform machinery: numerical inversion for distributions."""

from .inversion import cdf_from_lst, invert_transform

__all__ = ["cdf_from_lst", "invert_transform"]
