"""Busy-period durations for the paper's busy-period transitions.

Implements ``B_L`` (single-job M/G/1 busy period), delay busy periods
started by general work, and the paper's ``B_{N+1}``, all with exact
first-three-moment formulas plus numeric transform evaluation.
"""

from .delay_busy import DelayBusyPeriod
from .mg1_busy import MG1BusyPeriod
from .moment_algebra import (
    delay_busy_period_moments,
    mg1_busy_period_moments,
    poisson_during_exponential_factorial_moments,
    poisson_during_ph_factorial_moments,
    random_sum_moments,
)
from .nplus1 import NPlusOneBusyPeriod, initial_work_moments_nplus1
from .numeric import moments_from_laplace

__all__ = [
    "DelayBusyPeriod",
    "MG1BusyPeriod",
    "NPlusOneBusyPeriod",
    "delay_busy_period_moments",
    "initial_work_moments_nplus1",
    "mg1_busy_period_moments",
    "moments_from_laplace",
    "poisson_during_exponential_factorial_moments",
    "poisson_during_ph_factorial_moments",
    "random_sum_moments",
]
