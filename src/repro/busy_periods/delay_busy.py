"""Busy periods started by general initial work ("delay busy periods")."""

from __future__ import annotations

from typing import Callable, Sequence

from ..distributions import Distribution, fit_phase_type
from .mg1_busy import MG1BusyPeriod
from .moment_algebra import Moments, delay_busy_period_moments

__all__ = ["DelayBusyPeriod"]


class DelayBusyPeriod:
    """Busy period started by initial work ``W`` in an M/G/1 with rate ``lam``.

    The transform is ``B_W~(s) = W~(sigma(s))`` with
    ``sigma(s) = s + lam (1 - B~(s))``; the moments come from the
    third-order chain rule in :mod:`repro.busy_periods.moment_algebra`.

    Parameters
    ----------
    initial_work_moments:
        ``(E[W], E[W^2], E[W^3])`` of the initial work.
    lam:
        Arrival rate of the jobs that may extend the busy period.
    service:
        Their service-time distribution.
    initial_work_laplace:
        Optional callable ``s -> W~(s)`` enabling :meth:`laplace`.
    """

    def __init__(
        self,
        initial_work_moments: Sequence[float],
        lam: float,
        service: Distribution,
        initial_work_laplace: Callable[[float], float] | None = None,
    ):
        self.initial_work_moments = tuple(float(m) for m in initial_work_moments)
        self.lam = float(lam)
        self.service = service
        self._w_laplace = initial_work_laplace
        self._single = MG1BusyPeriod(lam, service) if lam > 0.0 else None

    def moments(self) -> Moments:
        """Return ``(E[B_W], E[B_W^2], E[B_W^3])``."""
        if self.lam == 0.0:
            return self.initial_work_moments
        return delay_busy_period_moments(
            self.initial_work_moments, self.lam, self.service.moments(3)
        )

    @property
    def mean(self) -> float:
        """Return ``E[B_W] = E[W]/(1-rho)``."""
        return self.moments()[0]

    def laplace(self, s: float) -> float:
        """Evaluate ``B_W~(s)`` (requires ``initial_work_laplace``)."""
        if self._w_laplace is None:
            raise ValueError("no initial-work transform supplied")
        if self.lam == 0.0:
            return float(self._w_laplace(s))
        sigma = s + self.lam * (1.0 - self._single.laplace(s))
        return float(self._w_laplace(sigma))

    def as_phase_type(self):
        """Three-moment phase-type stand-in (the paper's Coxian matching)."""
        return fit_phase_type(*self.moments())
