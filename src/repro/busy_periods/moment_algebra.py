"""Third-order moment algebra for busy-period transforms.

The paper (Section 2.3) specifies the busy-period transitions through
Laplace transforms and states that "the moments ... can be obtained from the
transform".  This module does exactly that, symbolically rather than
numerically: every operation the transforms are built from — independent
sums, random (mixed-Poisson) sums, and composition with the M/G/1
busy-period substitution ``sigma(s) = s + lambda (1 - B~(s))`` — has an
exact rule for the first three raw moments (a third-order Faa di Bruno
expansion).  Numerical transform differentiation is kept in the test suite
as a cross-check only.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "mg1_busy_period_moments",
    "delay_busy_period_moments",
    "random_sum_moments",
    "poisson_during_exponential_factorial_moments",
    "poisson_during_ph_factorial_moments",
]

Moments = tuple[float, float, float]


def mg1_busy_period_moments(lam: float, service_moments: Sequence[float]) -> Moments:
    """First three moments of the standard M/G/1 busy period.

    The busy period ``B`` started by a single job of size ``X`` in an M/G/1
    queue with arrival rate ``lam`` satisfies
    ``B~(s) = X~(s + lam - lam B~(s))``; implicit differentiation yields the
    closed forms below (``rho = lam E[X] < 1`` required)::

        E[B]   = E[X]   / (1-rho)
        E[B^2] = E[X^2] / (1-rho)^3
        E[B^3] = E[X^3] / (1-rho)^4  +  3 lam E[X^2]^2 / (1-rho)^5
    """
    m1, m2, m3 = service_moments
    rho = lam * m1
    if rho >= 1.0:
        raise ValueError(f"busy period infinite: rho = {rho} >= 1")
    one = 1.0 - rho
    b1 = m1 / one
    b2 = m2 / one**3
    b3 = m3 / one**4 + 3.0 * lam * m2 * m2 / one**5
    return b1, b2, b3


def delay_busy_period_moments(
    initial_work_moments: Sequence[float],
    lam: float,
    service_moments: Sequence[float],
) -> Moments:
    """Moments of a busy period started by general initial work ``W``.

    This is the "delay busy period": ``B_W~(s) = W~(sigma(s))`` with
    ``sigma(s) = s + lam (1 - B~(s))`` where ``B`` is the single-job busy
    period of the M/G/1 with rate ``lam`` and the given service moments.
    Third-order chain rule (Faa di Bruno)::

        E[B_W]   = w1 s1
        E[B_W^2] = w2 s1^2 + w1 lam E[B^2]
        E[B_W^3] = w3 s1^3 + 3 w2 s1 lam E[B^2] + w1 lam E[B^3]

    with ``s1 = sigma'(0) = 1/(1-rho)``.
    """
    w1, w2, w3 = initial_work_moments
    b1, b2, b3 = mg1_busy_period_moments(lam, service_moments)
    s1 = 1.0 + lam * b1  # = 1 / (1 - rho)
    lam_b2 = lam * b2  # = -sigma''(0)
    lam_b3 = lam * b3  # = sigma'''(0)
    out1 = w1 * s1
    out2 = w2 * s1 * s1 + w1 * lam_b2
    out3 = w3 * s1**3 + 3.0 * w2 * s1 * lam_b2 + w1 * lam_b3
    return out1, out2, out3


def random_sum_moments(
    factorial_moments: Sequence[float], summand_moments: Sequence[float]
) -> Moments:
    """Moments of ``S = X_1 + ... + X_N`` with ``N`` independent of the X's.

    ``factorial_moments`` are ``E[N], E[N(N-1)], E[N(N-1)(N-2)]``.
    """
    f1, f2, f3 = factorial_moments
    m1, m2, m3 = summand_moments
    s1 = f1 * m1
    s2 = f1 * m2 + f2 * m1 * m1
    s3 = f1 * m3 + 3.0 * f2 * m1 * m2 + f3 * m1**3
    return s1, s2, s3


def poisson_during_exponential_factorial_moments(lam: float, nu: float) -> Moments:
    """Factorial moments of ``N`` = Poisson(lam) arrivals during ``Exp(nu)``.

    ``N`` is then geometric-like with ``E[N^(k)] = lam^k E[E^k] = k! (lam/nu)^k``.
    """
    if nu <= 0.0:
        raise ValueError(f"exponential rate must be positive, got {nu}")
    r = lam / nu
    return r, 2.0 * r * r, 6.0 * r**3


def poisson_during_ph_factorial_moments(
    lam: float, interval_moments: Sequence[float]
) -> Moments:
    """Factorial moments of Poisson(lam) arrivals during a general interval.

    ``E[N(N-1)...(N-k+1)] = lam^k E[T^k]`` for any interval ``T``
    independent of the Poisson process.
    """
    t1, t2, t3 = interval_moments
    return lam * t1, lam * lam * t2, lam**3 * t3


def moments_look_valid(moms: Sequence[float]) -> bool:
    """Sanity-check a triple: positive and Jensen/Cauchy-Schwarz consistent."""
    m1, m2, m3 = moms
    if not (m1 > 0.0 and m2 > 0.0 and m3 > 0.0):
        return False
    if any(math.isinf(m) or math.isnan(m) for m in moms):
        return False
    return m2 >= m1 * m1 * (1.0 - 1e-9) and m3 * m1 >= m2 * m2 * (1.0 - 1e-9)
