"""Numerical moment extraction from Laplace transforms (validation aid).

The closed-form busy-period moments in :mod:`repro.busy_periods` are
cross-checked against direct numerical differentiation of the transforms.
We use high-order central finite differences on ``f(s) = L(s)`` at ``s = h``
scaled to the distribution's mean, which is accurate enough (1e-6 relative)
to catch any algebra mistake in the closed forms.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["moments_from_laplace"]


def moments_from_laplace(
    laplace: Callable[[float], float],
    upto: int = 3,
    scale: float = 1.0,
    rel_step: float = 1e-3,
) -> tuple[float, ...]:
    """Estimate raw moments by finite-difference differentiation of an LST.

    ``E[X^k] = (-1)^k d^k/ds^k L(s) |_{s=0}``.  We evaluate the transform on
    a symmetric stencil around 0 with spacing ``h = rel_step * scale`` —
    transforms of interest here are analytic at 0 (all moments finite), so
    evaluating at small negative ``s`` is legitimate.

    Parameters
    ----------
    laplace:
        Callable returning the transform value at a real point.
    upto:
        Highest moment order (supported: 1..4).
    scale:
        Characteristic scale (e.g. the mean); the step is relative to it.
    """
    if upto < 1 or upto > 4:
        raise ValueError(f"upto must be in 1..4, got {upto}")
    h = rel_step * scale
    # 9-point stencil values.
    offsets = np.arange(-4, 5)
    values = np.array([float(laplace(k * h)) for k in offsets])

    # Central finite-difference coefficient tables (8th/6th order accurate).
    coeffs = {
        1: np.array([1 / 280, -4 / 105, 1 / 5, -4 / 5, 0, 4 / 5, -1 / 5, 4 / 105, -1 / 280]),
        2: np.array(
            [-1 / 560, 8 / 315, -1 / 5, 8 / 5, -205 / 72, 8 / 5, -1 / 5, 8 / 315, -1 / 560]
        ),
        3: np.array(
            [-7 / 240, 3 / 10, -169 / 120, 61 / 30, 0, -61 / 30, 169 / 120, -3 / 10, 7 / 240]
        ),
        4: np.array(
            [7 / 240, -2 / 5, 169 / 60, -122 / 15, 91 / 8, -122 / 15, 169 / 60, -2 / 5, 7 / 240]
        ),
    }
    out = []
    for k in range(1, upto + 1):
        deriv = float(coeffs[k] @ values) / h**k
        out.append((-1.0) ** k * deriv)
    return tuple(out)
