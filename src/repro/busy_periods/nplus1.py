"""The busy period ``B_{N+1}`` (paper Table 2 / Section 2.3).

``B_{N+1}`` is "a busy period consisting of only long jobs, and started by
work whose size is the sum of ``N + 1`` long jobs", where ``N`` is the
number of long arrivals during ``E ~ Exp(2 mu_S)`` — the time (in region 5)
until one of the two short jobs in service completes and frees a host for
the waiting long job.

Transform (paper Section 2.3, with ``sigma(s) = s + lam_l (1 - B_L~(s))``)::

    B_{N+1}~(s) = X_L~(sigma(s)) * E~(lam_l (1 - X_L~(sigma(s))))

where for ``E ~ Exp(nu)``, ``E~(z) = nu / (nu + z)``.  The moments below
are derived exactly from this transform via the random-sum and
delay-busy-period moment rules.
"""

from __future__ import annotations

from ..distributions import Distribution, fit_phase_type
from ..perf import cached
from ..robustness import NumericalError
from ..telemetry import span
from .delay_busy import DelayBusyPeriod
from .mg1_busy import MG1BusyPeriod
from .moment_algebra import (
    Moments,
    moments_look_valid,
    poisson_during_exponential_factorial_moments,
    random_sum_moments,
)

__all__ = ["NPlusOneBusyPeriod", "initial_work_moments_nplus1"]


def initial_work_moments_nplus1(
    lam_l: float, long_service: Distribution, freeing_rate: float
) -> Moments:
    """Moments of ``W = X_L + sum_{i=1}^{N} X_L^{(i)}``.

    ``N`` = Poisson(``lam_l``) arrivals during ``Exp(freeing_rate)``; all
    job sizes i.i.d. and independent of ``N``.
    """
    x_moms = long_service.moments(3)
    fact = poisson_during_exponential_factorial_moments(lam_l, freeing_rate)
    s_moms = random_sum_moments(fact, x_moms)
    # W = X + S_N with X independent of (N, summands).
    from ..distributions import moments_of_sum

    return moments_of_sum(x_moms, s_moms)


class NPlusOneBusyPeriod:
    """The paper's ``B_{N+1}`` busy-period transition duration.

    Parameters
    ----------
    lam_l:
        Arrival rate of long jobs.
    long_service:
        Long job size distribution ``X_L``.
    freeing_rate:
        Rate of the exponential interval ``E`` during which the extra ``N``
        longs accumulate.  For CS-CQ region 5 this is ``2 mu_S`` (first of
        two shorts in service to finish); the CS-ID analysis reuses this
        class with ``mu_S``.
    """

    def __init__(self, lam_l: float, long_service: Distribution, freeing_rate: float):
        if freeing_rate <= 0.0:
            raise ValueError(f"freeing_rate must be positive, got {freeing_rate}")
        self.lam_l = float(lam_l)
        self.long_service = long_service
        self.freeing_rate = float(freeing_rate)
        self.rho_l = self.lam_l * long_service.mean
        if self.rho_l >= 1.0:
            raise ValueError(f"busy period infinite: rho_l = {self.rho_l:.4g} >= 1")
        self._single = MG1BusyPeriod(lam_l, long_service) if lam_l > 0.0 else None

    def initial_work_moments(self) -> Moments:
        """Moments of the work that starts the busy period."""
        if self.lam_l == 0.0:
            return self.long_service.moments(3)
        return initial_work_moments_nplus1(
            self.lam_l, self.long_service, self.freeing_rate
        )

    def moments(self) -> Moments:
        """Return ``(E[B_{N+1}], E[B_{N+1}^2], E[B_{N+1}^3])``.

        Memoized under an active :func:`repro.perf.sweep_cache` scope,
        keyed on ``(lam_l, freeing_rate)`` and the exact long-service
        moment triple (the only inputs of the derivation).
        """
        if self.lam_l == 0.0:
            return self.initial_work_moments()
        key = (
            "nplus1",
            self.lam_l,
            self.freeing_rate,
            tuple(self.long_service.moments(3)),
        )
        return cached("busy-moments", key, self._moments_uncached)

    def _moments_uncached(self) -> Moments:
        with span(
            "busy.nplus1.moments",
            lam_l=self.lam_l,
            freeing_rate=self.freeing_rate,
            rho_l=self.rho_l,
        ):
            w_moms = self.initial_work_moments()
            delay = DelayBusyPeriod(w_moms, self.lam_l, self.long_service)
            moms = delay.moments()
            if not moments_look_valid(moms):
                raise NumericalError(
                    f"derived B_(N+1) moments look infeasible: {moms}",
                    moments=tuple(moms),
                )
            return moms

    @property
    def mean(self) -> float:
        """Return ``E[B_{N+1}]``."""
        return self.moments()[0]

    def laplace(self, s: float) -> float:
        """Evaluate the transform of ``B_{N+1}`` at real ``s >= 0``."""
        if self.lam_l == 0.0:
            return float(self.long_service.laplace(s).real)
        sigma = s + self.lam_l * (1.0 - self._single.laplace(s))
        x_sigma = float(self.long_service.laplace(sigma).real)
        nu = self.freeing_rate
        e_part = nu / (nu + self.lam_l * (1.0 - x_sigma))
        return x_sigma * e_part

    def as_phase_type(self):
        """Three-moment phase-type stand-in (the paper's Coxian matching)."""
        return fit_phase_type(*self.moments())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NPlusOneBusyPeriod(lam_l={self.lam_l:.6g}, "
            f"freeing_rate={self.freeing_rate:.6g}, rho_l={self.rho_l:.6g})"
        )
