"""The M/G/1 busy period ``B_L`` (paper Table 2 / Section 2.3).

``B_L`` is "a busy period consisting of only long jobs, and started by a
single long job".  Both the closed-form moments and a numeric transform
evaluator (via the Kendall functional equation) are provided; the latter is
used for validation and for plugging the busy period into transform-level
computations.
"""

from __future__ import annotations

from typing import Sequence

from ..distributions import Distribution, fit_phase_type
from ..perf import cached
from ..telemetry import span
from .moment_algebra import Moments, mg1_busy_period_moments

__all__ = ["MG1BusyPeriod"]


class MG1BusyPeriod:
    """Busy period of an M/G/1 queue with arrival rate ``lam`` and service ``X``.

    Parameters
    ----------
    lam:
        Poisson arrival rate of the (long) jobs.
    service:
        Service-time distribution of the jobs making up the busy period.
    """

    def __init__(self, lam: float, service: Distribution):
        if lam < 0.0:
            raise ValueError(f"arrival rate must be nonnegative, got {lam}")
        self.lam = float(lam)
        self.service = service
        self.rho = self.lam * service.mean
        if self.rho >= 1.0:
            raise ValueError(
                f"busy period is infinite: rho = {self.rho:.4g} >= 1"
            )

    def moments(self) -> Moments:
        """Return ``(E[B], E[B^2], E[B^3])`` in closed form.

        Memoized under an active :func:`repro.perf.sweep_cache` scope,
        keyed on ``lam`` and the exact service-moment triple (the only
        inputs of the closed form).
        """
        if self.lam == 0.0:
            return self.service.moments(3)
        x_moms = self.service.moments(3)

        def compute() -> Moments:
            with span("busy.mg1.moments", lam=self.lam, rho=self.rho):
                return mg1_busy_period_moments(self.lam, x_moms)

        return cached("busy-moments", ("mg1", self.lam, tuple(x_moms)), compute)

    @property
    def mean(self) -> float:
        """Return ``E[B] = E[X]/(1-rho)``."""
        return self.moments()[0]

    def laplace(self, s: float, tol: float = 1e-13, max_iter: int = 100000) -> float:
        """Evaluate ``B~(s)`` by iterating the Kendall functional equation.

        ``B~(s) = X~(s + lam - lam B~(s))`` has a unique fixed point in
        ``[0, 1]`` for real ``s >= 0``; successive substitution starting from
        0 converges monotonically.  Small negative ``s`` (within the region
        of analyticity, used by the finite-difference validator) also
        converges to the analytic continuation when ``rho < 1``.
        """
        b = 0.0
        for _ in range(max_iter):
            nxt = float(self.service.laplace(s + self.lam - self.lam * b).real)
            if abs(nxt - b) < tol:
                return nxt
            b = nxt
        return b

    def laplace_complex(
        self, s: complex, tol: float = 1e-12, max_iter: int = 100000
    ) -> complex:
        """Evaluate ``B~(s)`` for complex ``s`` with ``Re(s) > 0``.

        The Kendall fixed point is contractive on the unit disk for
        ``Re(s) > 0``; needed by the Laplace-inversion-based CDF.
        """
        b = 0.0 + 0.0j
        for _ in range(max_iter):
            nxt = complex(self.service.laplace(s + self.lam - self.lam * b))
            if abs(nxt - b) < tol:
                return nxt
            b = nxt
        return b

    def cdf(self, t: float) -> float:
        """``P(B <= t)`` by numerical inversion of the Kendall transform.

        A distribution-level result the paper never needs (it matches
        moments), used here to quantify how much of the busy period's
        shape the three-moment Coxian captures.
        """
        if t <= 0.0:
            return 0.0
        from ..transforms import cdf_from_lst

        return cdf_from_lst(self.laplace_complex, t)

    def as_phase_type(self):
        """Three-moment phase-type stand-in (the paper's Coxian matching)."""
        return fit_phase_type(*self.moments())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MG1BusyPeriod(lam={self.lam:.6g}, rho={self.rho:.6g})"
