"""Unified telemetry: structured tracing, metrics, convergence introspection.

Three pieces, all stdlib-only (safe to import from ``repro.perf`` and
other import-light packages):

``tracer``
    ``with span("qbd.r_matrix") as sp:`` context managers recording
    nested wall time and attributes into a per-process collector, with
    JSONL export under ``results/TRACE_*.jsonl``.  Off by default —
    disabled mode is a single dict lookup (verified by the bench gate);
    enable with ``REPRO_TRACE=1`` or the CLI ``--trace`` flag.  Spans
    degrade gracefully (never raise), so telemetry cannot fail a sweep.
``metrics``
    A process-wide registry of counters, gauges, and fixed-bucket
    histograms.  Always on (updates are per-solve, never per-event).
    The orchestration runner snapshots worker registries across the
    subprocess boundary, merges them driver-side, and writes the merged
    snapshot into the run manifest.
``render``
    ``python -m repro trace`` backend: terminal span tree with
    self/total times, top-k slowest spans, non-converged fixpoint flags,
    integrity checks (negative self-time, unclosed parents), and
    per-stage diffs between two traces.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from .metrics import (
    DEFAULT_TIME_EDGES,
    Histogram,
    MetricsRegistry,
    counter_inc,
    gauge_set,
    observe,
    registry,
)
from .render import (
    build_tree,
    check_trace,
    coverage_fraction,
    diff_traces,
    flag_convergence,
    load_trace,
    render_trace,
    self_times,
    top_spans,
)
from .tracer import (
    TRACE_ENV_VAR,
    IterationTrace,
    TraceCollector,
    current_collector,
    current_span_id,
    disable_tracing,
    enable_tracing,
    set_span_attribute,
    span,
    trace_scope,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "IterationTrace",
    "MetricsRegistry",
    "TRACE_ENV_VAR",
    "TraceCollector",
    "build_tree",
    "check_trace",
    "counter_inc",
    "coverage_fraction",
    "current_collector",
    "current_span_id",
    "diff_traces",
    "disable_tracing",
    "enable_tracing",
    "flag_convergence",
    "gauge_set",
    "load_trace",
    "observe",
    "registry",
    "render_trace",
    "self_times",
    "set_span_attribute",
    "span",
    "top_spans",
    "trace_scope",
    "tracing_enabled",
]
