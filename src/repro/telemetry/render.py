"""Trace rendering: terminal tree, top-k self-time, integrity checks, diffs.

Consumes the JSONL files written by :meth:`TraceCollector.export` (one
header line, then one span record per line).  Self-time is computed as
``total - measure(union of child intervals)`` — the *union*, not the sum,
because a driver-side ``orchestration.point`` envelope can contain spans
from workers that genuinely ran concurrently; summing overlapping
children would manufacture negative self-time where none exists.  A
genuinely negative self-time (a child extending past its parent) is an
instrumentation bug and is what ``--check`` flags.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "build_tree",
    "check_trace",
    "coverage_fraction",
    "diff_traces",
    "flag_convergence",
    "load_trace",
    "render_trace",
    "self_times",
    "top_spans",
]


def load_trace(path: "Path | str") -> tuple[dict, list[dict]]:
    """Read a trace file; returns ``(header, records)``.

    Tolerates torn/corrupt lines the same way the checkpoint journal
    does: bad lines are skipped.  A missing header yields ``{}``.
    """
    header: dict = {}
    records: list[dict] = []
    for i, line in enumerate(Path(path).read_text().splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(obj, dict):
            continue
        if i == 0 and "format" in obj and "id" not in obj:
            header = obj
        elif "name" in obj and "start" in obj:
            records.append(obj)
    return header, records


def build_tree(records: list[dict]) -> tuple[list[dict], dict[int, list[dict]]]:
    """Return ``(roots, children)`` with children sorted by start time.

    A record whose parent id is missing from the trace (e.g. the parent
    was torn away) is treated as a root rather than dropped.
    """
    by_id = {r["id"]: r for r in records if "id" in r}
    roots: list[dict] = []
    children: dict[int, list[dict]] = {}
    for record in records:
        parent = record.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    key = lambda r: (r.get("start") or 0.0)  # noqa: E731
    roots.sort(key=key)
    for kids in children.values():
        kids.sort(key=key)
    return roots, children


def _duration(record: dict) -> Optional[float]:
    start, end = record.get("start"), record.get("end")
    if start is None or end is None:
        return None
    return float(end) - float(start)


def _union_measure(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    merged = 0.0
    current: Optional[tuple[float, float]] = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if current is None:
            current = (start, end)
        elif start <= current[1]:
            current = (current[0], max(current[1], end))
        else:
            merged += current[1] - current[0]
            current = (start, end)
    if current is not None:
        merged += current[1] - current[0]
    return merged


def self_times(records: list[dict]) -> dict[int, Optional[float]]:
    """Per-span self-time: total minus the union of child intervals.

    Children are clipped to the parent's bounds first, so a child
    overrunning its parent shows up as *zero* remaining self-time here
    and as an explicit integrity problem in :func:`check_trace` — not as
    a nonsense negative number.  Unclosed spans map to ``None``.
    """
    _, children = build_tree(records)
    result: dict[int, Optional[float]] = {}
    for record in records:
        total = _duration(record)
        if total is None:
            result[record["id"]] = None
            continue
        start, end = float(record["start"]), float(record["end"])
        intervals = []
        for child in children.get(record["id"], ()):
            c_start = child.get("start")
            c_end = child.get("end")
            if c_start is None or c_end is None:
                continue
            clipped = (max(float(c_start), start), min(float(c_end), end))
            intervals.append(clipped)
        result[record["id"]] = total - _union_measure(intervals)
    return result


def _raw_self_times(records: list[dict]) -> dict[int, Optional[float]]:
    """Self-time *without* clipping children — negative values reveal
    children that extend outside their parent (used by check_trace)."""
    _, children = build_tree(records)
    result: dict[int, Optional[float]] = {}
    for record in records:
        total = _duration(record)
        if total is None:
            result[record["id"]] = None
            continue
        intervals = [
            (float(c["start"]), float(c["end"]))
            for c in children.get(record["id"], ())
            if c.get("start") is not None and c.get("end") is not None
        ]
        result[record["id"]] = total - _union_measure(intervals)
    return result


def coverage_fraction(records: list[dict]) -> Optional[float]:
    """Fraction of root wall time covered by instrumented descendants.

    The acceptance bar for a traced sweep: the union of all non-root
    spans, clipped to the root intervals, divided by the union of root
    intervals.  ``None`` when there is no closed root span.
    """
    roots, _ = build_tree(records)
    root_ids = {r["id"] for r in roots}
    root_intervals = [
        (float(r["start"]), float(r["end"]))
        for r in roots
        if r.get("start") is not None and r.get("end") is not None
    ]
    root_measure = _union_measure(root_intervals)
    if root_measure <= 0.0:
        return None
    covered = []
    for record in records:
        if record["id"] in root_ids:
            continue
        if record.get("start") is None or record.get("end") is None:
            continue
        start, end = float(record["start"]), float(record["end"])
        for r_start, r_end in root_intervals:
            lo, hi = max(start, r_start), min(end, r_end)
            if hi > lo:
                covered.append((lo, hi))
    return _union_measure(covered) / root_measure


def check_trace(records: list[dict]) -> list[str]:
    """Integrity problems: unclosed spans, negative self-time, orphans.

    Returns human-readable problem strings (empty list == clean trace).
    This is the CI ``trace-smoke`` gate.
    """
    problems: list[str] = []
    by_id = {r["id"]: r for r in records if "id" in r}
    for record in records:
        label = f"span #{record.get('id')} {record.get('name', '?')!r}"
        if record.get("end") is None:
            problems.append(f"{label}: never closed (unclosed parent)")
            continue
        duration = _duration(record)
        if duration is not None and duration < 0.0:
            problems.append(f"{label}: negative duration {duration:.3g}s")
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            problems.append(f"{label}: references missing parent #{parent}")
    for span_id, self_time in _raw_self_times(records).items():
        if self_time is not None and self_time < -1e-9:
            record = by_id[span_id]
            problems.append(
                f"span #{span_id} {record.get('name', '?')!r}: negative "
                f"self-time {self_time:.3g}s (children extend outside parent)"
            )
    return problems


def flag_convergence(records: list[dict]) -> list[dict]:
    """Spans marking non-converged / rejected fixpoint iterations.

    A span is flagged when its attributes carry ``accepted: false`` (a
    fallback-ladder rung that missed its tolerance) or an ``error``.
    """
    flagged = []
    for record in records:
        attrs = record.get("attrs") or {}
        if attrs.get("accepted") is False or "error" in attrs:
            flagged.append(record)
    return flagged


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "   open"
    if value < 1e-3:
        return f"{value * 1e6:6.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:6.1f}ms"
    return f"{value:6.2f}s "


def _attr_preview(attrs: dict, limit: int = 4) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, dict):
            continue  # iteration traces etc. are too wide for the tree
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            text = str(value)
            if len(text) > 32:
                text = text[:29] + "..."
            parts.append(f"{key}={text}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


def render_trace(
    records: list[dict],
    top: int = 5,
    max_depth: Optional[int] = None,
) -> str:
    """Terminal tree with self/total times, then top-k and flag reports."""
    roots, children = build_tree(records)
    selfs = self_times(records)
    lines: list[str] = []
    lines.append(f"{'total':>9} {'self':>9}  span")

    def walk(record: dict, prefix: str, is_last: bool, depth: int) -> None:
        total = _duration(record)
        self_time = selfs.get(record["id"])
        connector = "" if not prefix and depth == 0 else ("└─ " if is_last else "├─ ")
        attrs = _attr_preview(record.get("attrs") or {})
        lines.append(
            f"{_fmt_seconds(total):>9} {_fmt_seconds(self_time):>9}  "
            f"{prefix}{connector}{record.get('name', '?')}"
            + (f"  [{attrs}]" if attrs else "")
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        kids = children.get(record["id"], [])
        for i, child in enumerate(kids):
            extension = "" if not prefix and depth == 0 else ("   " if is_last else "│  ")
            walk(child, prefix + extension, i == len(kids) - 1, depth + 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1, 0)

    slowest = top_spans(records, top)
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} spans by self-time:")
        for record, self_time in slowest:
            attrs = _attr_preview(record.get("attrs") or {})
            lines.append(
                f"  {_fmt_seconds(self_time)}  {record.get('name', '?')}"
                + (f"  [{attrs}]" if attrs else "")
            )

    flagged = flag_convergence(records)
    if flagged:
        lines.append("")
        lines.append(f"{len(flagged)} span(s) flagged (non-converged or errored):")
        for record in flagged:
            attrs = record.get("attrs") or {}
            reason = attrs.get("error") or (
                f"rejected, residual {attrs.get('residual')}"
                if attrs.get("accepted") is False
                else "flagged"
            )
            lines.append(f"  {record.get('name', '?')}: {reason}")

    coverage = coverage_fraction(records)
    if coverage is not None:
        lines.append("")
        lines.append(f"instrumented coverage: {coverage * 100.0:.1f}% of root wall time")
    return "\n".join(lines)


def top_spans(records: list[dict], k: int) -> list[tuple[dict, float]]:
    """The ``k`` spans with the largest self-time, descending."""
    selfs = self_times(records)
    by_id = {r["id"]: r for r in records if "id" in r}
    ranked = sorted(
        ((by_id[sid], st) for sid, st in selfs.items() if st is not None),
        key=lambda pair: pair[1],
        reverse=True,
    )
    return ranked[: max(0, k)]


def _aggregate_by_name(records: list[dict]) -> dict[str, tuple[int, float]]:
    """Per span-name ``(count, total self seconds)``."""
    selfs = self_times(records)
    by_id = {r["id"]: r for r in records if "id" in r}
    out: dict[str, tuple[int, float]] = {}
    for span_id, self_time in selfs.items():
        if self_time is None:
            continue
        name = by_id[span_id].get("name", "?")
        count, total = out.get(name, (0, 0.0))
        out[name] = (count + 1, total + self_time)
    return out


def diff_traces(a_records: list[dict], b_records: list[dict]) -> str:
    """Per-stage attribution diff between two traces (bench-gate helper).

    Aggregates self-time by span name in each trace and reports the
    delta, sorted by absolute change — "the 30% bench regression is all
    in ``qbd.rung.successive-substitution``" in one table.
    """
    a_agg = _aggregate_by_name(a_records)
    b_agg = _aggregate_by_name(b_records)
    names = sorted(set(a_agg) | set(b_agg))
    rows = []
    for name in names:
        a_count, a_total = a_agg.get(name, (0, 0.0))
        b_count, b_total = b_agg.get(name, (0, 0.0))
        delta = b_total - a_total
        ratio = (b_total / a_total) if a_total > 0.0 else None
        rows.append((abs(delta), name, a_count, a_total, b_count, b_total, delta, ratio))
    rows.sort(reverse=True)
    width = max([len(name) for name in names] + [len("span")])
    lines = [
        f"{'span':<{width}}  {'A count':>7} {'A self':>9}  "
        f"{'B count':>7} {'B self':>9}  {'delta':>9}  {'B/A':>6}"
    ]
    for _, name, a_count, a_total, b_count, b_total, delta, ratio in rows:
        ratio_text = "   new" if ratio is None else f"{ratio:6.2f}"
        lines.append(
            f"{name:<{width}}  {a_count:>7} {_fmt_seconds(a_total):>9}  "
            f"{b_count:>7} {_fmt_seconds(b_total):>9}  "
            f"{_fmt_seconds(delta):>9}  {ratio_text}"
        )
    a_sum = sum(total for _, total in a_agg.values())
    b_sum = sum(total for _, total in b_agg.values())
    lines.append("")
    overall = f"{b_sum / a_sum:.2f}x" if a_sum > 0.0 else "n/a"
    lines.append(
        f"total self-time: A {_fmt_seconds(a_sum).strip()} -> "
        f"B {_fmt_seconds(b_sum).strip()} ({overall})"
    )
    return "\n".join(lines)
