"""Zero-dependency span tracer for the QBD pipeline.

Design constraints (ISSUE 5):

* **Disabled is free.**  Tracing is off by default; ``span(...)`` then
  costs one dict lookup and returns a shared no-op context manager.  The
  hot path (simulation event loop, R-matrix inner iterations) is never
  instrumented per-event — only per-run/per-solve, with per-iteration
  residuals collected behind an explicit :func:`tracing_enabled` guard.
* **Telemetry can never fail a sweep.**  Every mutating operation is
  wrapped so a broken attribute value or a detached collector degrades
  to silence, not an exception in the solver.
* **Cross-process friendly.**  Enablement travels through the
  ``REPRO_TRACE`` environment variable (it crosses the worker-subprocess
  boundary under both fork and spawn start methods, like
  ``REPRO_NO_CONTRACTS``).  Span records are plain dicts with times
  relative to a per-process collector epoch, so the orchestration driver
  can adopt a worker's records by rebasing them onto its own timeline
  (:meth:`TraceCollector.adopt`).

Stdlib-only on purpose: ``repro.perf`` and ``repro.distributions`` must
be able to import this module without dragging in numpy/scipy.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

__all__ = [
    "TRACE_ENV_VAR",
    "IterationTrace",
    "TraceCollector",
    "current_collector",
    "current_span_id",
    "disable_tracing",
    "enable_tracing",
    "set_span_attribute",
    "span",
    "trace_scope",
    "tracing_enabled",
]

#: Environment variable that switches tracing on (any value but ""/"0").
TRACE_ENV_VAR = "REPRO_TRACE"


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV_VAR, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


class TraceCollector:
    """Accumulates span records for one process (or one scope).

    Records are plain dicts::

        {"id": int, "parent": int | None, "name": str,
         "start": float, "end": float | None, "attrs": dict}

    ``start``/``end`` are seconds relative to :attr:`epoch` (a
    ``perf_counter`` snapshot taken at construction).  ``end is None``
    marks a span that was never closed — exporters keep such records so
    ``repro trace --check`` can flag them.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.epoch = time.perf_counter()
        self._records: list[dict] = []
        self._open: dict[int, dict] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    # -- timeline ---------------------------------------------------------

    def now(self) -> float:
        """Seconds since this collector's epoch."""
        return time.perf_counter() - self.epoch

    # -- span lifecycle ---------------------------------------------------

    def start(self, name: str, attrs: dict, parent: Optional[int]) -> dict:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "start": self.now(),
            "end": None,
            "attrs": attrs,
        }
        with self._lock:
            self._open[span_id] = record
        return record

    def finish(self, record: dict) -> None:
        record["end"] = self.now()
        with self._lock:
            self._open.pop(record["id"], None)
            self._records.append(record)

    def add_complete(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Optional[dict] = None,
        parent: Optional[int] = None,
    ) -> int:
        """Record an already-finished span (driver-side point envelopes)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._records.append(
                {
                    "id": span_id,
                    "parent": parent,
                    "name": name,
                    "start": float(start),
                    "end": float(end),
                    "attrs": dict(attrs or {}),
                }
            )
        return span_id

    def adopt(
        self, records: list[dict], parent: Optional[int], at: Optional[float] = None
    ) -> None:
        """Graft span records from another collector under ``parent``.

        Ids are renumbered into this collector's sequence; times are
        shifted so the earliest adopted root lands at ``at`` (default:
        keep this collector's clock — only meaningful when both sides
        share an epoch, which workers do not, so callers pass ``at``).
        """
        if not records:
            return
        starts = [r.get("start") for r in records if r.get("start") is not None]
        offset = 0.0
        if at is not None and starts:
            offset = float(at) - min(starts)
        id_map: dict[Any, int] = {}
        with self._lock:
            for record in records:
                id_map[record.get("id")] = self._next_id
                self._next_id += 1
            known = set(id_map)
            for record in records:
                old_parent = record.get("parent")
                new_parent = id_map[old_parent] if old_parent in known else parent
                adopted = {
                    "id": id_map[record.get("id")],
                    "parent": new_parent,
                    "name": record.get("name", "?"),
                    "start": _shift(record.get("start"), offset),
                    "end": _shift(record.get("end"), offset),
                    "attrs": dict(record.get("attrs") or {}),
                }
                self._records.append(adopted)

    # -- access / export --------------------------------------------------

    def records(self) -> list[dict]:
        """All records: finished first, then still-open ones (end=None)."""
        with self._lock:
            return [dict(r) for r in self._records] + [
                dict(r) for r in self._open.values()
            ]

    def export(self, path: "os.PathLike | str") -> str:
        """Write the trace as JSONL (header line + one record per line)."""
        from ..robustness.atomic_write import atomic_write_jsonl

        header = {
            "trace": self.name,
            "format": "repro-trace-v1",
            "pid": os.getpid(),
            "unix_time": time.time(),
        }
        atomic_write_jsonl(path, [header] + self.records())
        return str(path)


def _shift(value: Optional[float], offset: float) -> Optional[float]:
    return None if value is None else float(value) + offset


# -- module state ---------------------------------------------------------
#
# ``_STATE`` is a plain dict on purpose: the disabled-mode fast path in
# ``span()`` is exactly one dict lookup (the acceptance criterion).

_STATE: dict = {
    "enabled": _env_enabled(),
    "collector": None,
}

_CURRENT_SPAN: "ContextVar[dict | None]" = ContextVar(
    "repro_current_span", default=None
)


def tracing_enabled() -> bool:
    """True when span collection is active in this process."""
    return _STATE["enabled"]


def current_collector() -> Optional[TraceCollector]:
    """The active collector (created lazily on first use when enabled)."""
    if not _STATE["enabled"]:
        return None
    collector = _STATE["collector"]
    if collector is None:
        collector = TraceCollector()
        _STATE["collector"] = collector
    return collector


def enable_tracing(name: str = "trace") -> TraceCollector:
    """Switch tracing on with a fresh collector; returns the collector."""
    collector = TraceCollector(name)
    _STATE["collector"] = collector
    _STATE["enabled"] = True
    return collector


def disable_tracing() -> Optional[TraceCollector]:
    """Switch tracing off; returns the detached collector (if any)."""
    collector = _STATE["collector"]
    _STATE["enabled"] = False
    _STATE["collector"] = None
    return collector


@contextmanager
def trace_scope(name: str = "trace") -> Iterator[TraceCollector]:
    """Temporarily trace into a fresh collector (tests, worker processes).

    Restores the previous enabled/collector state on exit, so a scope
    can nest inside a disabled *or* an already-tracing process without
    leaking records across the boundary.
    """
    previous = (_STATE["enabled"], _STATE["collector"])
    token = _CURRENT_SPAN.set(None)
    collector = enable_tracing(name)
    try:
        yield collector
    finally:
        _STATE["enabled"], _STATE["collector"] = previous
        _CURRENT_SPAN.reset(token)


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class _Span:
    """Live span: context manager bound to one collector record."""

    __slots__ = ("_name", "_attrs", "_record", "_token")

    def __init__(self, name: str, attrs: dict):
        self._name = name
        self._attrs = attrs
        self._record: Optional[dict] = None
        self._token = None

    def __enter__(self) -> "_Span":
        try:
            collector = current_collector()
            if collector is not None:
                parent = _CURRENT_SPAN.get()
                self._record = collector.start(
                    self._name,
                    self._attrs,
                    parent["id"] if parent is not None else None,
                )
                self._token = _CURRENT_SPAN.set(self._record)
        except Exception:
            self._record = None
            self._token = None
        return self

    def set(self, key: str, value: Any) -> "_Span":
        """Attach/overwrite one attribute on this span (chainable)."""
        try:
            if self._record is not None:
                self._record["attrs"][key] = value
        except Exception:
            pass
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        try:
            if self._token is not None:
                _CURRENT_SPAN.reset(self._token)
                self._token = None
            if self._record is not None:
                if exc_type is not None:
                    self._record["attrs"].setdefault("error", exc_type.__name__)
                collector = _STATE["collector"]
                if collector is not None:
                    collector.finish(self._record)
                self._record = None
        except Exception:
            pass
        return False


def span(name: str, **attrs: Any) -> "_Span | _NoopSpan":
    """Open a named span (``with span("qbd.r_matrix", tol=1e-13) as sp:``).

    Disabled mode is a single dict lookup returning a shared no-op
    object; enabled mode records nesting via a contextvar stack (correct
    across threads and asyncio tasks).  Exceptions propagate through the
    ``with`` block untouched — the span records the exception type in an
    ``error`` attribute and closes.
    """
    if not _STATE["enabled"]:
        return _NOOP
    return _Span(name, attrs)


def current_span_id() -> Optional[int]:
    """Id of the innermost active span, or None (used by the runner to
    graft adopted worker spans under the sweep span)."""
    if not _STATE["enabled"]:
        return None
    try:
        record = _CURRENT_SPAN.get()
        return None if record is None else record["id"]
    except Exception:
        return None


def set_span_attribute(key: str, value: Any) -> None:
    """Attach an attribute to the innermost active span (no-op otherwise).

    Lets deep code (cache-scope exit, solver inner loops) annotate the
    span that happens to be open without threading span objects through
    call signatures.
    """
    if not _STATE["enabled"]:
        return
    try:
        record = _CURRENT_SPAN.get()
        if record is not None:
            record["attrs"][key] = value
    except Exception:
        pass


class IterationTrace:
    """Bounded per-iteration convergence recorder (stride decimation).

    Successive substitution can legitimately run hundreds of thousands of
    iterations near the stability boundary; storing every residual would
    bloat traces.  This keeps at most ``limit`` samples by doubling the
    sampling stride whenever the buffer fills (so early iterations stay
    dense, the tail is subsampled) and always reports the final value.
    """

    __slots__ = ("limit", "stride", "_seen", "_points", "_last")

    def __init__(self, limit: int = 256):
        if limit < 2:
            raise ValueError(f"IterationTrace limit must be >= 2, got {limit}")
        self.limit = int(limit)
        self.stride = 1
        self._seen = 0
        self._points: list[tuple[int, float]] = []
        self._last: Optional[tuple[int, float]] = None

    def record(self, value: float) -> None:
        """Record the residual of the next iteration (1-based internally)."""
        self._seen += 1
        self._last = (self._seen, float(value))
        if (self._seen - 1) % self.stride:
            return
        if len(self._points) >= self.limit:
            self._points = self._points[::2]
            self.stride *= 2
            if (self._seen - 1) % self.stride:
                return
        self._points.append(self._last)

    def __len__(self) -> int:
        return self._seen

    def as_dict(self) -> dict:
        """JSON-ready summary: sampled (iteration, residual) series."""
        points = list(self._points)
        if self._last is not None and (not points or points[-1][0] != self._last[0]):
            points.append(self._last)
        return {
            "iterations": self._seen,
            "stride": self.stride,
            "sampled_iterations": [i for i, _ in points],
            "residuals": [v for _, v in points],
        }
