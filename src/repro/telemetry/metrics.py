"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Unlike spans (off by default), metrics are always on: every update is a
couple of dict operations at per-solve/per-run frequency, never inside a
per-event or per-iteration loop, so the disabled-overhead budget of the
tracer is untouched.

The registry is designed to cross the orchestration worker boundary:
:meth:`MetricsRegistry.snapshot` produces a plain-dict form that rides
back on the worker payload, and :meth:`MetricsRegistry.merge` folds it
into the driver's registry (counters add, gauges last-write-wins,
histograms add bucket counts — edges must match).  The merged snapshot
lands in the run manifest.

Stdlib-only, same as the tracer.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Sequence

__all__ = [
    "DEFAULT_TIME_EDGES",
    "Histogram",
    "MetricsRegistry",
    "counter_inc",
    "gauge_set",
    "observe",
    "registry",
]

#: Default bucket edges (seconds) for wall-time histograms: log-spaced
#: from 1 ms to 1 min, wide enough for a cached hit and a near-boundary
#: substitution solve alike.
DEFAULT_TIME_EDGES: tuple[float, ...] = (
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
    60.0,
)


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values <= ``edges[i]``.

    The final bucket (index ``len(edges)``) is the overflow bucket.
    """

    __slots__ = ("edges", "counts", "total", "count", "min", "max")

    def __init__(self, edges: Sequence[float]):
        edges_t = tuple(float(e) for e in edges)
        if not edges_t:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges_t) != sorted(set(edges_t)):
            raise ValueError(f"bucket edges must be strictly increasing: {edges_t}")
        self.edges = edges_t
        self.counts = [0] * (len(edges_t) + 1)
        self.total = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1  # edge values land low
        self.total += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, other: dict) -> None:
        """Fold a snapshot dict of another histogram into this one."""
        edges = tuple(float(e) for e in other.get("edges", ()))
        if edges != self.edges:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{edges} vs {self.edges}"
            )
        counts = other.get("counts", [])
        if len(counts) != len(self.counts):
            raise ValueError("histogram snapshot has wrong bucket count")
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.total += float(other.get("sum", 0.0))
        self.count += int(other.get("count", 0))
        for bound, pick in (("min", min), ("max", max)):
            theirs = other.get(bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(
                    self,
                    bound,
                    float(theirs) if ours is None else pick(ours, float(theirs)),
                )


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- updates ----------------------------------------------------------

    def counter_inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(amount)

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, edges: Sequence[float] = DEFAULT_TIME_EDGES
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges)
            hist.observe(value)

    # -- reads ------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[dict]:
        with self._lock:
            hist = self._histograms.get(name)
            return None if hist is None else hist.as_dict()

    def snapshot(self) -> dict:
        """Plain-dict form: picklable, JSON-ready, mergeable."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.as_dict() for name, hist in self._histograms.items()
                },
            }

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    # -- lifecycle --------------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters add, gauges last-write-wins, histograms add
        bucket counts (edges must match)."""
        if not isinstance(snapshot, dict):
            raise TypeError(f"expected snapshot dict, got {type(snapshot).__name__}")
        with self._lock:
            for name, value in (snapshot.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + float(value)
            for name, value in (snapshot.get("gauges") or {}).items():
                self._gauges[name] = float(value)
            for name, data in (snapshot.get("histograms") or {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(
                        data.get("edges", DEFAULT_TIME_EDGES)
                    )
                hist.merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry (workers reset it per point and ship
    their delta back to the driver)."""
    return _REGISTRY


def counter_inc(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the process-wide registry."""
    _REGISTRY.counter_inc(name, amount)


def gauge_set(name: str, value: float) -> None:
    """Set a gauge on the process-wide registry."""
    _REGISTRY.gauge_set(name, value)


def observe(
    name: str, value: float, edges: Sequence[float] = DEFAULT_TIME_EDGES
) -> None:
    """Observe a histogram sample on the process-wide registry."""
    _REGISTRY.observe(name, value, edges)
