"""Numerical trust: condition-aware forward error bounds for QBD results.

The paper's hardest regimes — ``rho_s, rho_l -> 1``, where cycle stealing
matters most — are exactly where the boundary linear systems and the
``I - R`` resolvents go ill-conditioned, and a float64 fixpoint can
degrade *silently*: the fallback ladder accepts a residual, the mass
check passes, and the number is still only good to a few digits.  This
module attaches a machine-checkable verdict to every exact solve:

``trusted``
    The composed first-order forward error bound is below
    :data:`TRUSTED_MAX`; the value carries full float64 accuracy for any
    downstream comparison.
``suspect``
    The bound is material but not fatal.  The solver reacts by running
    the precision-escalation rung (:func:`newton_polish_r` +
    :func:`refined_solve`) and keeps the escalated result only when the
    bound actually shrinks.
``untrusted``
    The bound exceeds :data:`UNTRUSTED_MIN` — the leading digits are in
    doubt.  The oracle widens its agreement tolerance accordingly, the
    query service refuses to serve the value at the exact rung, and the
    store's ``fsck --trust`` flags persisted entries.

The bound composes per point as

    ``bound = cond(B) * (res_B / scale_B + u)
            + K_TAIL * cond(I - R) * (res_R / scale_R + u)``

where ``B`` is the boundary system, ``res_*`` the accepted residuals,
``u`` float64 unit roundoff, and ``K_TAIL`` accounts for the response-
time formulas applying ``(I - R)^{-1}`` up to the third power.  This is
classic backward-error-times-condition-number reasoning (Higham 2002,
ch. 7): cheap, first-order, and deliberately *pessimistic* — a verdict
may cry wolf, it must never stay silent.

Everything here is elementwise numpy over an optional leading stack
axis: the scalar solver calls with single matrices, the batched backend
(:mod:`repro.perf.batched`) with ``(N, n, n)`` stacks, and both run the
*identical* arithmetic (same fixed sweep count, same per-slice LAPACK
dispatch), so scalar and batched verdicts are bit-identical by
construction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "K_TAIL",
    "TRUSTED_MAX",
    "UNTRUSTED_MIN",
    "TRUST_LEVELS",
    "compose_bound",
    "condest_1",
    "newton_polish_r",
    "refined_solve",
    "trust_verdict",
    "trust_verdicts",
    "scale_tolerance",
]

#: Verdict levels, ordered from best to worst.
TRUST_LEVELS = ("trusted", "suspect", "untrusted")

#: Bound at or below which a point is ``trusted``.  Interior sweep points
#: compose to ~1e-12; near-boundary (rho within ~1% of the stability
#: edge) points reach 1e-8..1e-5 through cond(I - R) ~ 1/(1 - sp(R)).
TRUSTED_MAX = 1e-7

#: Bound above which a point is ``untrusted`` (leading digits in doubt).
UNTRUSTED_MIN = 1e-2

#: How many powers of ``(I - R)^{-1}`` the moment formulas stack
#: (``second_moment_level`` uses the cube), amplifying the tail error.
K_TAIL = 3.0

#: Unit roundoff of the working precision.
_UNIT_ROUNDOFF = float(np.finfo(float).eps)

#: Fixed Hager/Higham sweep count.  The classical estimator early-exits
#: per matrix once the estimate stops growing; a *fixed* count with a
#: running max is equally valid (the estimate is monotone nondecreasing)
#: and keeps the scalar and batched paths on the identical arithmetic.
_CONDEST_SWEEPS = 4


def _solve_stack(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-slice ``solve(a[i], b[i])`` with singular slices -> +inf rows.

    Batched ``np.linalg.solve`` raises if *any* slice is singular, which
    would poison the healthy slices of a stack; fall back to a per-slice
    loop so a singular system degrades to an infinite condition estimate
    for that slice only.
    """
    try:
        return np.linalg.solve(a, b[..., None])[..., 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(b)
        for i in range(a.shape[0]):
            try:
                out[i] = np.linalg.solve(a[i], b[i][..., None])[..., 0]
            except np.linalg.LinAlgError:
                out[i] = np.inf
        return out


def condest_1(a: np.ndarray) -> "float | np.ndarray":
    """LAPACK-style 1-norm condition estimate (Hager/Higham power sweeps).

    Accepts one ``(n, n)`` matrix or an ``(N, n, n)`` stack; returns a
    float or an ``(N,)`` array.  Cost is ``2 * _CONDEST_SWEEPS`` linear
    solves per slice — O(n^3) once for the factorization-equivalent work
    versus the O(n^3) SVD behind ``np.linalg.cond``, but with a tiny
    constant at the block sizes QBD chains produce.  Non-finite inputs
    and singular slices estimate to ``inf``.
    """
    a = np.asarray(a, dtype=float)
    squeeze = a.ndim == 2
    if squeeze:
        a = a[None]
    n_pts, n = a.shape[0], a.shape[-1]
    finite = np.isfinite(a).all(axis=(1, 2))
    norm_a = np.where(finite, np.abs(a).sum(axis=1).max(axis=-1), np.inf)
    a_safe = np.where(finite[:, None, None], a, np.eye(n))
    at = np.ascontiguousarray(np.swapaxes(a_safe, 1, 2))
    x = np.full((n_pts, n), 1.0 / n)
    est = np.zeros(n_pts)
    rows = np.arange(n_pts)
    for _ in range(_CONDEST_SWEEPS):
        y = _solve_stack(a_safe, x)
        est = np.maximum(est, np.abs(y).sum(axis=-1))
        s = np.where(y >= 0.0, 1.0, -1.0)
        z = _solve_stack(at, s)
        with np.errstate(invalid="ignore"):
            j = np.nanargmax(np.where(np.isfinite(z), np.abs(z), -1.0), axis=-1)
        x = np.zeros((n_pts, n))
        x[rows, j] = 1.0
    with np.errstate(invalid="ignore", over="ignore"):
        cond = norm_a * est
    cond = np.where(np.isnan(cond), np.inf, cond)
    return float(cond[0]) if squeeze else cond


def compose_bound(
    cond_boundary: "float | np.ndarray",
    boundary_residual: "float | np.ndarray",
    boundary_scale: "float | np.ndarray",
    cond_i_minus_r: "float | np.ndarray",
    r_residual: "float | np.ndarray",
    r_scale: "float | np.ndarray",
) -> "float | np.ndarray":
    """First-order forward error bound through the QBD pipeline.

    Elementwise over stacks; NaN inputs (an unsolved slice) compose to
    ``inf`` so they can never masquerade as trusted.
    """
    cond_b = np.asarray(cond_boundary, dtype=float)
    cond_ir = np.asarray(cond_i_minus_r, dtype=float)
    res_b = np.asarray(boundary_residual, dtype=float) / np.asarray(
        boundary_scale, dtype=float
    )
    res_r = np.asarray(r_residual, dtype=float) / np.asarray(r_scale, dtype=float)
    with np.errstate(invalid="ignore", over="ignore"):
        bound = cond_b * (res_b + _UNIT_ROUNDOFF) + K_TAIL * cond_ir * (
            res_r + _UNIT_ROUNDOFF
        )
    bound = np.where(np.isnan(bound), np.inf, bound)
    return float(bound) if bound.ndim == 0 else bound


def trust_verdict(bound: Optional[float]) -> str:
    """Map one error bound to ``trusted`` / ``suspect`` / ``untrusted``.

    ``None`` and non-finite bounds are ``untrusted``: no bound is not the
    same as a small bound.
    """
    if bound is None or not np.isfinite(bound):
        return "untrusted"
    if bound <= TRUSTED_MAX:
        return "trusted"
    if bound <= UNTRUSTED_MIN:
        return "suspect"
    return "untrusted"


def trust_verdicts(bounds: np.ndarray) -> "list[str]":
    """Vector form of :func:`trust_verdict` (bit-identical thresholds)."""
    return [trust_verdict(float(b)) for b in np.asarray(bounds, dtype=float)]


def scale_tolerance(base_tolerance: float, bound: Optional[float]) -> float:
    """Agreement tolerance sized by the numerical trust of the exact value.

    The cross-method oracle compares an exact QBD answer against
    independent references; demanding agreement tighter than the exact
    value's own error bound turns numerical mush into false alarms,
    while a fixed tolerance wastes sensitivity on well-conditioned
    points.  Returns ``base + bound`` (never *tightens* below the
    configured base); an unknown or non-finite bound falls back to the
    base unchanged — the verdict, not the tolerance, carries that alarm.
    """
    if bound is None or not np.isfinite(bound) or bound <= 0.0:
        return float(base_tolerance)
    return float(base_tolerance) + float(bound)


def newton_polish_r(
    r: np.ndarray, a0: np.ndarray, a1: np.ndarray, a2: np.ndarray
) -> "tuple[np.ndarray, float, bool]":
    """One Newton step on ``F(R) = A0 + R A1 + R^2 A2``.

    Solves the linearization ``Delta (A1 + R A2) + R Delta A2 = -F(R)``
    exactly via its Kronecker form (m^2 x m^2 — tiny at QBD block sizes)
    and keeps the step only if the quadratic residual strictly drops.

    Returns ``(r, residual, improved)`` — the original iterate and its
    residual when the step is rejected or the linearization is singular,
    so callers never regress.
    """
    m = r.shape[0]
    f = a0 + r @ a1 + r @ r @ a2
    res_before = float(np.abs(f).max())
    lhs = np.kron((a1 + r @ a2).T, np.eye(m)) + np.kron(a2.T, r)
    try:
        vec_delta = np.linalg.solve(lhs, -f.reshape(-1, order="F"))
    except np.linalg.LinAlgError:
        return r, res_before, False
    delta = vec_delta.reshape((m, m), order="F")
    polished = r + delta
    res_after = float(np.abs(a0 + polished @ a1 + polished @ polished @ a2).max())
    if np.isfinite(res_after) and res_after < res_before:
        return polished, res_after, True
    return r, res_before, False


def refined_solve(
    a: np.ndarray, b: np.ndarray, iterations: int = 2
) -> "tuple[np.ndarray, bool]":
    """Compensated linear solve: iterative refinement with an extended-
    precision residual.

    Each pass computes ``r = b - A x`` in ``np.longdouble`` (the platform's
    extended precision where available; plain float64 where not — the
    refinement still helps through the re-solve) and corrects ``x`` with a
    float64 solve.  Returns ``(x, ok)``; ``ok`` is False when the system
    is singular and the caller should keep its original solution.
    """
    try:
        x = np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return b.copy(), False
    a_ld = a.astype(np.longdouble)
    b_ld = b.astype(np.longdouble)
    for _ in range(iterations):
        residual = b_ld - a_ld @ x.astype(np.longdouble)
        try:
            correction = np.linalg.solve(a, residual.astype(float))
        except np.linalg.LinAlgError:
            break
        x = x + correction
    return x, True
