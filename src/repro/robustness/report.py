"""Solver diagnostics: what actually happened inside a matrix-analytic solve.

Attached to every :class:`~repro.markov.qbd.QbdSolution` and surfaced on
the CS-CQ / CS-ID analysis objects and the CLI's ``--diagnostics`` flag,
so that "the figure looks right" can be backed by "the solve converged on
the first rung with residual 3e-15 and cond(I - R) = 2e3".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .retry import RungAttempt

__all__ = ["SolverDiagnostics"]


@dataclass(frozen=True)
class SolverDiagnostics:
    """Machine-readable record of one QBD (or fallback) solve.

    Attributes
    ----------
    method:
        The accepted solver rung (``"logarithmic-reduction"``,
        ``"successive-substitution"``, ...) or ``"truncated-fallback"``
        when the exact solve was abandoned for the finite-level chain.
    rungs:
        Every fallback-ladder attempt, in order, including the accepted one.
    residual:
        Defining residual of the accepted result (quadratic residual of R
        for QBD solves; boundary balance residual for the linear stage).
    spectral_radius:
        ``sp(R)`` — the chain's effective utilization; response times
        diverge as it approaches 1.
    condition_i_minus_r:
        ``cond(I - R)``; large values mean the geometric-tail sums carry
        reduced accuracy.
    boundary_residual:
        Balance residual of the finite boundary linear solve, when one ran.
    iterations:
        True iteration count of the accepted solver rung (None when the
        rung does not iterate or the solve was resolved from cache).
    wall_time:
        Seconds spent in the solve (R-matrix ladder + boundary stage).
    cache_hit:
        True when the result was returned from an active sweep cache
        (:mod:`repro.perf`) instead of being recomputed.  Cached results
        are bit-identical to recomputed ones; the flag exists so sweeps
        remain observable under caching.
    degraded:
        True when the result came from a graceful-degradation path (e.g.
        the truncated finite-level solver) rather than the exact analysis.
    notes:
        Free-form annotations (e.g. why degradation triggered).
    condition_estimate:
        1-norm condition estimate of the worst linear stage behind this
        result (boundary system vs ``I - R``), from
        :func:`~repro.robustness.trust.condest_1`.
    error_bound:
        Composed first-order forward error bound
        (:func:`~repro.robustness.trust.compose_bound`); the input to the
        trust verdict.
    trust:
        ``"trusted"`` / ``"suspect"`` / ``"untrusted"`` per
        :func:`~repro.robustness.trust.trust_verdict`; None for solves
        predating the trust layer (deserialized old payloads).
    escalated:
        True when the precision-escalation rung (Newton polish of R +
        compensated boundary re-solve) ran and its result was accepted.
    error_bound_before_escalation:
        The bound that triggered escalation, kept for the audit trail
        (None when escalation never ran or was rejected).
    """

    method: str
    rungs: tuple[RungAttempt, ...] = ()
    residual: Optional[float] = None
    spectral_radius: Optional[float] = None
    condition_i_minus_r: Optional[float] = None
    boundary_residual: Optional[float] = None
    iterations: Optional[int] = None
    wall_time: Optional[float] = None
    cache_hit: bool = False
    degraded: bool = False
    notes: tuple[str, ...] = field(default_factory=tuple)
    condition_estimate: Optional[float] = None
    error_bound: Optional[float] = None
    trust: Optional[str] = None
    escalated: bool = False
    error_bound_before_escalation: Optional[float] = None

    @property
    def rung_iterations(self) -> dict:
        """Per-rung iteration counts, in ladder order.

        ``iterations`` alone only reports the *winning* rung's count; when
        the ladder fell through (logarithmic reduction exhausted its budget,
        substitution then converged) the work spent on rejected rungs was
        invisible in machine-readable form.  Keys are rung names (unique
        within a ladder); values may be None for non-iterating rungs.
        """
        return {attempt.name: attempt.iterations for attempt in self.rungs}

    def as_dict(self) -> dict:
        """Flat dict form (rungs rendered as strings) for logs and tables."""
        return {
            "method": self.method,
            "rungs": [attempt.describe() for attempt in self.rungs],
            "rung_iterations": self.rung_iterations,
            "residual": self.residual,
            "spectral_radius": self.spectral_radius,
            "condition_i_minus_r": self.condition_i_minus_r,
            "boundary_residual": self.boundary_residual,
            "iterations": self.iterations,
            "wall_time": self.wall_time,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "notes": list(self.notes),
            "condition_estimate": self.condition_estimate,
            "error_bound": self.error_bound,
            "trust": self.trust,
            "escalated": self.escalated,
            "error_bound_before_escalation": self.error_bound_before_escalation,
        }

    def summary(self, indent: str = "") -> str:
        """Multi-line human-readable report (used by ``--diagnostics``)."""

        def fmt(value: Optional[float]) -> str:
            return "n/a" if value is None else f"{value:.3g}"

        lines = [
            f"{indent}method: {self.method}"
            + (" (degraded accuracy)" if self.degraded else "")
            + (" (cache hit)" if self.cache_hit else ""),
            f"{indent}residual: {fmt(self.residual)}   "
            f"sp(R): {fmt(self.spectral_radius)}   "
            f"cond(I-R): {fmt(self.condition_i_minus_r)}",
            f"{indent}boundary residual: {fmt(self.boundary_residual)}   "
            f"iterations: {self.iterations if self.iterations is not None else 'n/a'}   "
            f"wall time: {fmt(self.wall_time)}s",
            f"{indent}trust: {self.trust or 'n/a'}   "
            f"error bound: {fmt(self.error_bound)}   "
            f"cond estimate: {fmt(self.condition_estimate)}"
            + (" (escalated)" if self.escalated else ""),
        ]
        for attempt in self.rungs:
            lines.append(f"{indent}  rung {attempt.describe()}")
        for note in self.notes:
            lines.append(f"{indent}  note: {note}")
        return "\n".join(lines)
