"""Atomic file writers shared by every ``results/`` producer.

Checkpoint journals, run manifests, bench records, oracle reports, and
telemetry traces all share the same durability requirement: the file on
disk must always be a complete, parseable artifact — a crash or SIGKILL
mid-write loses at most the write in flight, never the file.  The recipe
is the classic tmp-file-in-same-directory + fsync + ``os.replace``; this
module is its single home (it previously lived in
``orchestration.checkpoint`` and was imported from there by every other
writer).

Intentionally stdlib-only: importing this module must not pull numpy, so
import-light packages (``repro.perf``, ``repro.telemetry``) can use it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "atomic_write_jsonl",
    "fsync_directory",
]

#: Fsync used on the parent directory after the rename.  Module-level and
#: injectable so tests can observe/deny it without touching a real disk;
#: production code never reassigns it.
_fsync = os.fsync


def fsync_directory(directory: "Path | str") -> None:
    """Fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic with respect to *crashes of
    this process*, but the new directory entry itself lives in the parent
    directory's data — until that is flushed, a power cut can roll the
    rename back (leaving the *old* file, or on first write, no file).
    Checkpoints, manifests and reports are exactly the artifacts a
    machine reboot must not lose, so the writers below call this after
    every replace.

    Platforms/filesystems that refuse ``open(O_RDONLY)`` + ``fsync`` on
    directories (some network mounts, Windows) degrade gracefully: the
    rename still happened, only the power-loss guarantee is weakened.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        _fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: "Path | str", data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temp file lives in the target's directory so the final rename
    never crosses a filesystem boundary; it is fsynced before the replace
    so a crash cannot leave a shorter-than-written file behind, and the
    parent directory is fsynced after it so the rename itself survives
    power loss (see :func:`fsync_directory`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        try:
            handle = os.fdopen(fd, "wb")
        except BaseException:
            # ``os.fdopen`` failing leaves the raw descriptor orphaned:
            # the ``with`` below never runs, so close it here or it leaks
            # for the life of the process.
            os.close(fd)
            raise
        with handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: "Path | str", text: str) -> None:
    """Write ``text`` to ``path`` atomically, UTF-8 encoded.

    See :func:`atomic_write_bytes` for the durability recipe.
    """
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(
    path: "Path | str",
    payload: Any,
    *,
    indent: "int | None" = 2,
    sort_keys: bool = False,
) -> None:
    """Serialize ``payload`` as JSON and write it atomically.

    Non-JSON values (numpy scalars that survived ``as_dict``, exceptions
    in notes, ...) degrade to ``repr`` rather than failing the write —
    an artifact with a stringified field beats no artifact at all.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys, default=repr)
    atomic_write_text(path, text + "\n")


def atomic_write_jsonl(path: "Path | str", records: Iterable[Any]) -> None:
    """Write an iterable of records as one-JSON-object-per-line, atomically."""
    lines = [json.dumps(record, sort_keys=True, default=repr) for record in records]
    atomic_write_text(path, "".join(line + "\n" for line in lines))
