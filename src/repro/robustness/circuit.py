"""Keyed circuit breaker guarding expensive operations.

A breaker watches an operation per *key* (the query service keys by
parameter region, so a pathological corner of the load plane cannot keep
burning solver budget while healthy regions are starved).  Per key it is
a classic three-state machine:

``closed``
    Normal operation.  Failures are counted; ``failure_threshold``
    *consecutive* failures trip the breaker open.  Any success resets
    the count.
``open``
    The guarded operation is skipped: :meth:`CircuitBreaker.allow`
    returns False (or :meth:`check` raises :class:`CircuitOpenError`
    with a ``retry_after`` hint) until ``cooldown`` seconds have passed.
``half-open``
    After the cooldown, exactly one probe call is admitted.  Success
    closes the breaker; failure re-opens it for another cooldown.

Thread-safe: the query service trips and queries breakers from an event
loop and a thread pool concurrently.  The clock is injectable so tests
can step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable

from ..telemetry import counter_inc
from .errors import CircuitOpenError

__all__ = ["CircuitBreaker"]


class _Breaker:
    """State for one key (internal; all access under the owner's lock)."""

    __slots__ = ("failures", "opened_at", "state", "trips")

    def __init__(self) -> None:
        self.failures = 0
        self.trips = 0
        self.state = "closed"
        self.opened_at = 0.0


class CircuitBreaker:
    """Consecutive-failure circuit breaker, partitioned by key.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (per key) that trip the breaker open.
    cooldown:
        Seconds an open breaker waits before admitting a half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: "dict[Hashable, _Breaker]" = {}

    # -- state transitions ------------------------------------------------ #

    def allow(self, key: Hashable) -> bool:
        """Whether the guarded operation may run for ``key`` right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits this call as the probe; while half-open,
        further calls are refused until the probe reports back.
        """
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None or breaker.state == "closed":
                return True
            if breaker.state == "half-open":
                return False  # one probe already in flight
            if self._clock() - breaker.opened_at >= self.cooldown:
                breaker.state = "half-open"
                return True
            return False

    def check(self, key: Hashable) -> None:
        """Like :meth:`allow`, but raise :class:`CircuitOpenError` on refusal."""
        if self.allow(key):
            return
        with self._lock:
            breaker = self._breakers[key]
            remaining = max(0.0, self.cooldown - (self._clock() - breaker.opened_at))
            failures = breaker.failures
        raise CircuitOpenError(
            f"circuit open for {key!r}",
            key=repr(key),
            failures=failures,
            retry_after=remaining,
        )

    def record_success(self, key: Hashable) -> None:
        """Report a successful guarded call: close and reset the breaker."""
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return
            breaker.failures = 0
            breaker.state = "closed"

    def record_failure(self, key: Hashable) -> None:
        """Report a failed guarded call; may trip the breaker open."""
        tripped = False
        with self._lock:
            breaker = self._breakers.setdefault(key, _Breaker())
            breaker.failures += 1
            if breaker.state == "half-open" or (
                breaker.state == "closed"
                and breaker.failures >= self.failure_threshold
            ):
                breaker.state = "open"
                breaker.opened_at = self._clock()
                breaker.trips += 1
                tripped = True
        if tripped:
            counter_inc("circuit.tripped")

    # -- introspection ---------------------------------------------------- #

    def state(self, key: Hashable) -> str:
        """Current state for ``key``: ``closed`` / ``open`` / ``half-open``.

        Reported lazily: an open breaker past its cooldown reads as
        ``half-open`` (the next :meth:`allow` would admit a probe).
        """
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return "closed"
            if (
                breaker.state == "open"
                and self._clock() - breaker.opened_at >= self.cooldown
            ):
                return "half-open"
            return breaker.state

    def trip_count(self) -> int:
        """Total number of open transitions across all keys."""
        with self._lock:
            return sum(b.trips for b in self._breakers.values())

    def snapshot(self) -> "dict[str, Any]":
        """JSON-ready summary for manifests: per-key state and trip counts."""
        with self._lock:
            return {
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "trips": sum(b.trips for b in self._breakers.values()),
                "keys": {
                    repr(key): {
                        "state": breaker.state,
                        "failures": breaker.failures,
                        "trips": breaker.trips,
                    }
                    for key, breaker in sorted(
                        self._breakers.items(), key=lambda kv: repr(kv[0])
                    )
                },
            }
