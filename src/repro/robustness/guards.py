"""Reusable numerical guards for matrices and scalars entering the solvers.

Silent NaN/inf propagation is the classic failure mode of matrix-analytic
code near the stability boundary: one infeasible busy-period moment turns
into a NaN rate block, the QBD "solves", and the figure shows garbage.
These guards reject bad values at the door with :class:`ValidationError`
(carrying the offending entry) instead of letting them reach LAPACK.
"""

from __future__ import annotations

import warnings
from typing import Any, Optional

import numpy as np

from .errors import IllConditionedError, NearBoundaryWarning, ValidationError

__all__ = [
    "ensure_finite_scalar",
    "ensure_nonnegative_scalar",
    "ensure_finite_array",
    "ensure_rate_block",
    "ensure_no_material_negatives",
    "condition_number",
    "spectral_radius",
    "check_conditioning",
]

#: cond(I - R) above this warns NearBoundaryWarning (accuracy degrading).
CONDITION_WARN = 1e8
#: cond(I - R) above this raises IllConditionedError (result untrustworthy).
CONDITION_ERROR = 1e13


def ensure_finite_scalar(value: Any, name: str) -> float:
    """Return ``value`` as a float, rejecting NaN/inf."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not np.isfinite(out):
        raise ValidationError(f"{name} must be finite, got {out}", value=out)
    return out


def ensure_nonnegative_scalar(value: Any, name: str) -> float:
    """Return ``value`` as a finite nonnegative float."""
    out = ensure_finite_scalar(value, name)
    if out < 0.0:
        raise ValidationError(f"{name} must be nonnegative, got {out}", value=out)
    return out


def ensure_finite_array(arr: Any, name: str) -> np.ndarray:
    """Return ``arr`` as a float ndarray, rejecting any NaN/inf entry."""
    out = np.asarray(arr, dtype=float)
    if not np.all(np.isfinite(out)):
        bad = np.argwhere(~np.isfinite(out))
        first = tuple(int(i) for i in bad[0])
        raise ValidationError(
            f"{name} contains {bad.shape[0]} non-finite entries "
            f"(first at index {first})",
            n_bad=int(bad.shape[0]),
        )
    return out


def ensure_rate_block(m: Any, name: str) -> np.ndarray:
    """Validate a nonnegative 2D rate block (finite, 2D, elementwise >= 0)."""
    arr = np.asarray(m, dtype=float)
    if arr.ndim == 2 and arr.size:
        # Fast accept: two scalar reductions instead of the full boolean
        # temporaries below.  A NaN poisons min() (NaN >= 0 is False) and
        # an inf fails isfinite(max()), so anything invalid falls through
        # to the slow path, which re-checks in the original order and
        # raises with the original diagnostics.
        if float(arr.min()) >= 0.0 and np.isfinite(float(arr.max())):
            return arr
    arr = ensure_finite_array(arr, name)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a 2D matrix, got ndim={arr.ndim}")
    if np.any(arr < 0.0):
        worst = float(arr.min())
        raise ValidationError(
            f"{name} must be elementwise nonnegative (rate block)", value=worst
        )
    return arr


def ensure_no_material_negatives(
    vec: np.ndarray, name: str, tol: float = 1e-9, **context: Any
) -> np.ndarray:
    """Reject vectors whose negative entries exceed ``tol`` after scaling.

    Probability vectors from least-squares solves legitimately carry
    ``-1e-16``-size noise; entries below ``-tol`` (relative to the largest
    magnitude) mean the solve failed and clipping would mask it.  Returns
    the vector clipped at zero when it passes.
    """
    scale = max(1.0, float(np.abs(vec).max())) if vec.size else 1.0
    most_negative = float(vec.min()) if vec.size else 0.0
    if most_negative < -tol * scale:
        raise ValidationError(
            f"{name} has materially negative entries",
            most_negative=most_negative,
            tolerance=tol * scale,
            **context,
        )
    return np.clip(vec, 0.0, None)


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number; ``inf`` for singular matrices."""
    try:
        return float(np.linalg.cond(matrix))
    except np.linalg.LinAlgError:
        return float("inf")


def spectral_radius(matrix: np.ndarray) -> float:
    """``max |eig|`` of a square matrix."""
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def check_conditioning(
    matrix: np.ndarray,
    name: str,
    warn_threshold: float = CONDITION_WARN,
    error_threshold: float = CONDITION_ERROR,
    spectral_radius_hint: Optional[float] = None,
) -> float:
    """Return ``cond(matrix)``; warn above ``warn_threshold``, raise above
    ``error_threshold``.

    Used on ``I - R`` before inverting it: as ``sp(R) -> 1`` near the
    stability boundary, ``cond(I - R) ~ 1/(1 - sp(R))`` and every moment
    derived from the inverse loses digits.
    """
    cond = condition_number(matrix)
    if not np.isfinite(cond) or cond > error_threshold:
        raise IllConditionedError(
            f"{name} is too ill-conditioned to invert reliably",
            condition_number=cond,
            spectral_radius=spectral_radius_hint,
        )
    if cond > warn_threshold:
        warnings.warn(
            NearBoundaryWarning(
                f"{name} is ill-conditioned (cond ~ {cond:.3g}); results near "
                "the stability boundary carry reduced accuracy"
            ),
            stacklevel=2,
        )
    return cond
