"""Structured exception taxonomy for the analytic stack.

Every failure a solver can produce is a :class:`ReproError` subclass that
carries *machine-readable context* — the final residual, the iteration
count, the condition number, the spectral radius — so that callers
(figure sweeps, the CLI, tests) can distinguish "the model is unstable"
from "the solver gave up" from "the arithmetic is untrustworthy" without
parsing message strings.

Hierarchy::

    ReproError(Exception)
    ├── ValidationError(ReproError, ValueError)       bad inputs (NaN/inf/negative)
    ├── UnstableSystemError(ReproError, ValueError)   outside the stability region
    ├── NumericalError(ReproError, ArithmeticError)   a solve went numerically wrong
    │   ├── ConvergenceError                          an iteration failed to converge
    │   ├── IllConditionedError                       a matrix is too ill-conditioned
    │   └── ContractViolation                         a result broke a declared invariant
    ├── SerializationError(ReproError, TypeError)     a value cannot round-trip the store codec
    ├── StoreCorruptionError(ReproError)              a persistent store entry failed verification
    └── ServiceError(ReproError)                      the query service could not serve at full fidelity
        ├── ServiceOverloadError                      admission queue full; carries retry_after
        ├── DeadlineExceededError                     a deadline budget ran out
        ├── CircuitOpenError                          a circuit breaker is open for this region
        └── RetryExhaustedError                       retry_with_backoff gave up; carries attempt log

    NearBoundaryWarning(UserWarning)                  degraded accuracy near rho_s -> 2 - rho_l
    ContractViolationWarning(UserWarning)             a sweep point broke an invariant contract
    CorruptJournalWarning(UserWarning)                a checkpoint journal had torn/corrupt lines

The dual bases (``ValueError`` / ``ArithmeticError``) keep the taxonomy
backward compatible: code written against the pre-hardening exceptions
keeps working, while new code can catch the whole family via
``except ReproError``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ValidationError",
    "UnstableSystemError",
    "NumericalError",
    "ConvergenceError",
    "IllConditionedError",
    "ContractViolation",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "SerializationError",
    "StoreCorruptionError",
    "NearBoundaryWarning",
    "ContractViolationWarning",
    "CorruptJournalWarning",
]


def _format_context(context: dict[str, Any]) -> str:
    parts = []
    for key, value in context.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value!r}")
    return ", ".join(parts)


class ReproError(Exception):
    """Base class of every typed failure raised by the analytic stack.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    **context:
        Arbitrary machine-readable fields (``residual``, ``iterations``,
        ``condition_number``, ``spectral_radius``, ...).  ``None`` values
        are dropped; everything else is stored on :attr:`context` and
        appended to the rendered message.
    """

    def __init__(self, message: str, **context: Any):
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}
        rendered = message
        if self.context:
            rendered = f"{message} [{_format_context(self.context)}]"
        super().__init__(rendered)

    # Convenience accessors for the canonical context fields; return None
    # when the raising site did not populate them.
    @property
    def residual(self) -> Any:
        """Final residual of the failed solve, if recorded."""
        return self.context.get("residual")

    @property
    def iterations(self) -> Any:
        """Iteration count at failure, if recorded."""
        return self.context.get("iterations")

    @property
    def condition_number(self) -> Any:
        """Condition number that triggered the failure, if recorded."""
        return self.context.get("condition_number")

    @property
    def spectral_radius(self) -> Any:
        """Spectral radius (e.g. ``sp(R)``) at failure, if recorded."""
        return self.context.get("spectral_radius")


class ValidationError(ReproError, ValueError):
    """An input failed a guard: NaN/inf entries, negative rates, bad shape."""


class UnstableSystemError(ReproError, ValueError):
    """Raised when a policy is asked to analyze a load outside its stability region.

    Re-parented under :class:`ReproError` (historically a plain
    ``ValueError`` defined in :mod:`repro.core.params`, which still
    re-exports it).
    """


class NumericalError(ReproError, ArithmeticError):
    """A numerical computation produced an untrustworthy or degenerate result."""


class ConvergenceError(NumericalError):
    """An iterative solve (R-matrix, stationary distribution, fixed point)
    failed to reach its tolerance — including after a full fallback ladder."""


class IllConditionedError(NumericalError):
    """A linear-algebra step involves a matrix too ill-conditioned to trust
    (typically ``I - R`` as ``sp(R) -> 1`` near the stability boundary)."""


class ContractViolation(NumericalError):
    """A *converged* result broke a declared invariant contract.

    This is the error for silently-wrong answers: the solver reported
    success, but the numbers violate something that must hold exactly or
    within a stated tolerance (Little's law, normalization, flow balance,
    policy dominance, ...).  The canonical context fields are
    ``contract`` (the registry name), ``observed``, ``expected`` and
    ``tolerance``; use the convenience properties to read them.
    """

    @property
    def contract(self) -> Any:
        """Registry name of the violated contract."""
        return self.context.get("contract")

    @property
    def observed(self) -> Any:
        """Observed value that broke the contract."""
        return self.context.get("observed")

    @property
    def expected(self) -> Any:
        """Expected value (or bound) the contract demanded."""
        return self.context.get("expected")

    @property
    def tolerance(self) -> Any:
        """Tolerance the comparison was allowed."""
        return self.context.get("tolerance")


class SerializationError(ReproError, TypeError):
    """A value cannot be encoded for (or decoded from) the persistent store.

    Raised by the :mod:`repro.perf.codec` when asked to serialize a type
    outside its closed registry, or to decode a tag it does not know.  On
    the write path this means the value simply is not persisted (the
    in-memory cache still works); on the read path it is wrapped in a
    :class:`StoreCorruptionError` — an undecodable payload that passed its
    checksum is schema drift, which the store treats as corruption.
    """


class StoreCorruptionError(ReproError):
    """A persistent store entry failed integrity verification.

    Raised on *any* mismatch between an on-disk entry and its
    self-describing header: bad magic, unknown schema version, namespace
    or key-digest mismatch, payload length or sha256 checksum mismatch,
    an undecodable payload, or a deserialized QBD solution that no longer
    passes its invariant contracts.  The raising site has already
    quarantined the entry; the cache layer catches this error and falls
    through to recompute-and-rewrite, so corruption can cost time but
    never change a figure value.

    Canonical context fields: ``path`` (the offending entry), ``reason``
    (which check failed), ``expected`` / ``observed`` (the mismatched
    digests or counts, where meaningful).
    """

    @property
    def path(self) -> Any:
        """Filesystem path of the corrupt entry, if recorded."""
        return self.context.get("path")

    @property
    def reason(self) -> Any:
        """Which verification step failed, if recorded."""
        return self.context.get("reason")


class ServiceError(ReproError):
    """The query service could not serve a request at full fidelity.

    Base class of the graceful-degradation failure modes: shedding under
    overload, deadline exhaustion, an open circuit breaker, a retry loop
    that gave up.  These are *service-level* conditions — the underlying
    numerics may be perfectly healthy — so they hang off :class:`ReproError`
    directly rather than :class:`NumericalError`.
    """


class ServiceOverloadError(ServiceError):
    """The admission queue is full; the query was shed, not lost.

    Carries a ``retry_after`` hint (seconds): the service's estimate of
    when capacity will free up, computed from the current backlog and the
    observed per-query service time.  Clients honoring the hint implement
    cooperative backpressure instead of a thundering-herd retry.
    """

    @property
    def retry_after(self) -> Any:
        """Suggested client back-off before resubmitting, in seconds."""
        return self.context.get("retry_after")


class DeadlineExceededError(ServiceError):
    """A deadline budget ran out before the work could complete.

    Canonical context fields: ``budget`` (the total allowance, seconds),
    ``elapsed`` (how much was spent) and ``stage`` (what was being
    attempted when the budget expired).
    """

    @property
    def budget(self) -> Any:
        """Total deadline budget in seconds, if recorded."""
        return self.context.get("budget")

    @property
    def elapsed(self) -> Any:
        """Seconds actually spent when the deadline fired, if recorded."""
        return self.context.get("elapsed")


class CircuitOpenError(ServiceError):
    """A circuit breaker is open: the guarded operation is being skipped.

    Canonical context fields: ``key`` (the breaker partition, e.g. a
    parameter-region bucket), ``failures`` (consecutive failures that
    tripped it) and ``retry_after`` (seconds until the half-open probe).
    """

    @property
    def retry_after(self) -> Any:
        """Seconds until the breaker admits a half-open probe, if recorded."""
        return self.context.get("retry_after")


class RetryExhaustedError(ServiceError):
    """A :func:`~repro.robustness.retry_with_backoff` loop gave up.

    Carries the full attempt log (one entry per try: error type/message
    and the backoff slept before the next try) so callers can audit what
    was tried without re-running the failure.  ``__cause__`` is the last
    underlying exception.
    """

    @property
    def attempts(self) -> Any:
        """Tuple of per-attempt records ``{attempt, error, delay}``."""
        return self.context.get("attempts")


class NearBoundaryWarning(UserWarning):
    """The system is close enough to the stability boundary that results are
    degraded: either a fallback solver produced them (truncated chain) or
    conditioning checks flag reduced accuracy.  Carries no context dict —
    use the warning message; typed context lives on the errors."""


class ContractViolationWarning(UserWarning):
    """A sweep point's result broke an invariant contract.

    Sweeps must complete end-to-end, so in-sweep contract evaluation warns
    instead of raising; the orchestration layer turns this warning into
    the ``suspect`` point classification (alongside ok/degraded/failed/
    timeout) so the run manifest records exactly which points are
    questionable.  Typed detail lives on the corresponding
    :class:`ContractViolation` where one was raised and caught.
    """


class CorruptJournalWarning(UserWarning):
    """A checkpoint journal contained torn or corrupt lines on load.

    A mid-write crash (power loss, SIGKILL during a pre-atomic append)
    can leave a truncated final JSONL line; skipping it and resuming from
    the intact records is the correct recovery, but it must not happen
    silently — the warning (and the ``checkpoint.torn_lines`` telemetry
    counter) record that some journaled work will be recomputed.
    """
