"""Structured exception taxonomy for the analytic stack.

Every failure a solver can produce is a :class:`ReproError` subclass that
carries *machine-readable context* — the final residual, the iteration
count, the condition number, the spectral radius — so that callers
(figure sweeps, the CLI, tests) can distinguish "the model is unstable"
from "the solver gave up" from "the arithmetic is untrustworthy" without
parsing message strings.

Hierarchy::

    ReproError(Exception)
    ├── ValidationError(ReproError, ValueError)       bad inputs (NaN/inf/negative)
    ├── UnstableSystemError(ReproError, ValueError)   outside the stability region
    └── NumericalError(ReproError, ArithmeticError)   a solve went numerically wrong
        ├── ConvergenceError                          an iteration failed to converge
        ├── IllConditionedError                       a matrix is too ill-conditioned
        └── ContractViolation                         a result broke a declared invariant

    NearBoundaryWarning(UserWarning)                  degraded accuracy near rho_s -> 2 - rho_l
    ContractViolationWarning(UserWarning)             a sweep point broke an invariant contract

The dual bases (``ValueError`` / ``ArithmeticError``) keep the taxonomy
backward compatible: code written against the pre-hardening exceptions
keeps working, while new code can catch the whole family via
``except ReproError``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ValidationError",
    "UnstableSystemError",
    "NumericalError",
    "ConvergenceError",
    "IllConditionedError",
    "ContractViolation",
    "NearBoundaryWarning",
    "ContractViolationWarning",
]


def _format_context(context: dict[str, Any]) -> str:
    parts = []
    for key, value in context.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        else:
            parts.append(f"{key}={value!r}")
    return ", ".join(parts)


class ReproError(Exception):
    """Base class of every typed failure raised by the analytic stack.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    **context:
        Arbitrary machine-readable fields (``residual``, ``iterations``,
        ``condition_number``, ``spectral_radius``, ...).  ``None`` values
        are dropped; everything else is stored on :attr:`context` and
        appended to the rendered message.
    """

    def __init__(self, message: str, **context: Any):
        self.message = message
        self.context = {k: v for k, v in context.items() if v is not None}
        rendered = message
        if self.context:
            rendered = f"{message} [{_format_context(self.context)}]"
        super().__init__(rendered)

    # Convenience accessors for the canonical context fields; return None
    # when the raising site did not populate them.
    @property
    def residual(self) -> Any:
        """Final residual of the failed solve, if recorded."""
        return self.context.get("residual")

    @property
    def iterations(self) -> Any:
        """Iteration count at failure, if recorded."""
        return self.context.get("iterations")

    @property
    def condition_number(self) -> Any:
        """Condition number that triggered the failure, if recorded."""
        return self.context.get("condition_number")

    @property
    def spectral_radius(self) -> Any:
        """Spectral radius (e.g. ``sp(R)``) at failure, if recorded."""
        return self.context.get("spectral_radius")


class ValidationError(ReproError, ValueError):
    """An input failed a guard: NaN/inf entries, negative rates, bad shape."""


class UnstableSystemError(ReproError, ValueError):
    """Raised when a policy is asked to analyze a load outside its stability region.

    Re-parented under :class:`ReproError` (historically a plain
    ``ValueError`` defined in :mod:`repro.core.params`, which still
    re-exports it).
    """


class NumericalError(ReproError, ArithmeticError):
    """A numerical computation produced an untrustworthy or degenerate result."""


class ConvergenceError(NumericalError):
    """An iterative solve (R-matrix, stationary distribution, fixed point)
    failed to reach its tolerance — including after a full fallback ladder."""


class IllConditionedError(NumericalError):
    """A linear-algebra step involves a matrix too ill-conditioned to trust
    (typically ``I - R`` as ``sp(R) -> 1`` near the stability boundary)."""


class ContractViolation(NumericalError):
    """A *converged* result broke a declared invariant contract.

    This is the error for silently-wrong answers: the solver reported
    success, but the numbers violate something that must hold exactly or
    within a stated tolerance (Little's law, normalization, flow balance,
    policy dominance, ...).  The canonical context fields are
    ``contract`` (the registry name), ``observed``, ``expected`` and
    ``tolerance``; use the convenience properties to read them.
    """

    @property
    def contract(self) -> Any:
        """Registry name of the violated contract."""
        return self.context.get("contract")

    @property
    def observed(self) -> Any:
        """Observed value that broke the contract."""
        return self.context.get("observed")

    @property
    def expected(self) -> Any:
        """Expected value (or bound) the contract demanded."""
        return self.context.get("expected")

    @property
    def tolerance(self) -> Any:
        """Tolerance the comparison was allowed."""
        return self.context.get("tolerance")


class NearBoundaryWarning(UserWarning):
    """The system is close enough to the stability boundary that results are
    degraded: either a fallback solver produced them (truncated chain) or
    conditioning checks flag reduced accuracy.  Carries no context dict —
    use the warning message; typed context lives on the errors."""


class ContractViolationWarning(UserWarning):
    """A sweep point's result broke an invariant contract.

    Sweeps must complete end-to-end, so in-sweep contract evaluation warns
    instead of raising; the orchestration layer turns this warning into
    the ``suspect`` point classification (alongside ok/degraded/failed/
    timeout) so the run manifest records exactly which points are
    questionable.  Typed detail lives on the corresponding
    :class:`ContractViolation` where one was raised and caught.
    """
