"""Fallback ladders and retry-with-backoff.

Two retry disciplines live here, for two different failure shapes:

* **Fallback ladders** (:func:`run_fallback_ladder`) handle *deterministic*
  failures: if a solver variant diverged once it will diverge again, so
  the only useful move is a *different* variant.  A ladder is an ordered
  sequence of :class:`Rung`\\ s — solver variants from fastest/preferred to
  slowest/most robust — tried in turn, with every attempt recorded and a
  :class:`ConvergenceError` carrying the full attempt log when no rung
  produces an acceptable result.

* **Retry with backoff** (:func:`retry_with_backoff`) handles *transient*
  failures: a crashed worker process, a racing file write, an injected
  chaos fault.  The same operation is retried after an exponentially
  growing, jittered delay (:class:`BackoffPolicy`, decorrelated jitter by
  default so synchronized retries de-synchronize), up to an attempt cap;
  a typed :class:`RetryExhaustedError` carrying the attempt log is raised
  when the cap is hit.

Both replace ad-hoc inline retries with structures that are *observable*:
the attempt logs ride along on diagnostics/errors so callers can report
exactly what was tried.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Optional, Sequence, Tuple, Type, TypeVar

import numpy as np

from ..telemetry import counter_inc, span
from .errors import ConvergenceError, ReproError, RetryExhaustedError

__all__ = [
    "BackoffPolicy",
    "Rung",
    "RungAttempt",
    "RungResult",
    "retry_with_backoff",
    "run_fallback_ladder",
]

T = TypeVar("T")

#: What a rung's solver returns: (value, residual, iterations).
RungResult = Tuple[T, float, Optional[int]]


@dataclass(frozen=True)
class Rung:
    """One rung of a fallback ladder.

    Attributes
    ----------
    name:
        Identifier recorded in diagnostics (e.g. ``"logarithmic-reduction"``).
    solve:
        Zero-argument callable returning ``(value, residual, iterations)``.
        May raise; the exception is recorded and the ladder moves on.
    max_residual:
        Acceptance threshold — the rung's result is used iff
        ``residual <= max_residual``.
    """

    name: str
    solve: Callable[[], RungResult]
    max_residual: float


@dataclass(frozen=True)
class RungAttempt:
    """Record of one rung attempt (success or failure)."""

    name: str
    accepted: bool
    residual: Optional[float] = None
    iterations: Optional[int] = None
    error: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.error is not None:
            return f"{self.name}: raised {self.error}"
        status = "accepted" if self.accepted else "rejected"
        iters = f", {self.iterations} iters" if self.iterations is not None else ""
        return f"{self.name}: {status} (residual {self.residual:.3g}{iters})"


def run_fallback_ladder(
    rungs: Sequence[Rung],
    description: str,
) -> tuple[T, tuple[RungAttempt, ...]]:
    """Try ``rungs`` in order; return the first acceptable result.

    Returns
    -------
    (value, attempts):
        ``value`` from the first rung whose residual met its threshold;
        ``attempts`` records every rung tried up to and including it.

    Raises
    ------
    ConvergenceError
        When every rung fails or misses its tolerance.  The error context
        carries the best residual achieved and the per-rung attempt log.
    """
    if not rungs:
        raise ValueError("fallback ladder needs at least one rung")
    attempts: list[RungAttempt] = []
    for rung in rungs:
        # One span per rung attempt: the per-iteration convergence trace
        # recorded inside rung.solve() (via set_span_attribute) lands on
        # this span, and the renderer flags rungs with accepted=False.
        with span("solver.rung." + rung.name) as rung_span:
            try:
                value, residual, iterations = rung.solve()
            except ReproError as exc:
                attempt = RungAttempt(
                    rung.name,
                    accepted=False,
                    residual=exc.residual,
                    iterations=exc.iterations,
                    error=f"{type(exc).__name__}: {exc.message}",
                )
            except (ArithmeticError, ValueError, np.linalg.LinAlgError) as exc:
                attempt = RungAttempt(
                    rung.name,
                    accepted=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                attempt = RungAttempt(
                    rung.name,
                    # bool(): residual is often a numpy scalar, and np.False_
                    # fails the renderer's ``attrs.get("accepted") is False``
                    # flag check (and renders as ``np.False_``).
                    accepted=bool(residual <= rung.max_residual),
                    residual=residual,
                    iterations=iterations,
                )
            rung_span.set("accepted", attempt.accepted)
            rung_span.set("residual", attempt.residual)
            rung_span.set("iterations", attempt.iterations)
            if attempt.error is not None:
                rung_span.set("error", attempt.error)
        attempts.append(attempt)
        if attempt.accepted:
            return value, tuple(attempts)
    residuals = [a.residual for a in attempts if a.residual is not None]
    raise ConvergenceError(
        f"{description}: all {len(rungs)} fallback rungs exhausted "
        f"({'; '.join(a.describe() for a in attempts)})",
        residual=min(residuals) if residuals else None,
        rungs_tried=len(attempts),
    )


# --------------------------------------------------------------------------- #
# Retry with backoff (transient failures)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with decorrelated jitter.

    ``delay(attempt, previous, rng)`` returns the sleep before retry
    number ``attempt`` (1-based).  With ``jitter="decorrelated"`` (the
    default, after the classic AWS architecture-blog analysis) each delay
    is drawn uniformly from ``[base, 3 * previous_delay]`` and capped,
    which both spreads simultaneous retriers apart and still grows
    roughly exponentially.  ``jitter="none"`` gives the deterministic
    ``base * factor**(attempt-1)`` schedule (used by tests and by callers
    that need reproducible timing).

    Attributes
    ----------
    base:
        First (and minimum) delay, seconds.
    cap:
        Upper bound on any single delay, seconds.
    factor:
        Growth rate of the deterministic schedule.
    max_attempts:
        Total tries allowed (the first call counts as attempt 1).
    jitter:
        ``"decorrelated"`` or ``"none"``.
    """

    base: float = 0.05
    cap: float = 2.0
    factor: float = 2.0
    max_attempts: int = 4
    jitter: str = "decorrelated"

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < self.base:
            raise ValueError(
                f"need 0 <= base <= cap, got base={self.base}, cap={self.cap}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.jitter not in ("decorrelated", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def delay(
        self, attempt: int, previous: "float | None" = None, rng: "Random | None" = None
    ) -> float:
        """Sleep before retry ``attempt`` (1-based), given the previous delay."""
        if self.jitter == "none":
            return min(self.cap, self.base * self.factor ** max(0, attempt - 1))
        rng = rng or _MODULE_RNG
        previous = self.base if previous is None else max(self.base, previous)
        return min(self.cap, rng.uniform(self.base, 3.0 * previous))


#: Fallback RNG for decorrelated jitter when the caller passes none.
_MODULE_RNG = Random()


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    policy: "BackoffPolicy | None" = None,
    retry_on: "Type[BaseException] | tuple[Type[BaseException], ...]" = Exception,
    description: str = "operation",
    rng: "Random | None" = None,
    sleep: Callable[[float], None] = time.sleep,
    give_up_after: "float | None" = None,
    on_retry: "Callable[[int, BaseException, float], None] | None" = None,
) -> T:
    """Call ``fn`` until it succeeds, sleeping with backoff between tries.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is passed through.
    policy:
        The :class:`BackoffPolicy` (default: 4 attempts, decorrelated
        jitter from 50 ms capped at 2 s).
    retry_on:
        Exception class(es) treated as transient.  Anything else
        propagates immediately — a :class:`ValidationError` will not
        become less invalid on retry.
    description:
        Used in the error message and telemetry.
    rng, sleep:
        Injectable randomness and clock for deterministic tests.
    give_up_after:
        Optional wall-clock budget in seconds (measured from the first
        call): when the next backoff would overrun it, fail immediately
        instead of sleeping — deadline-carrying callers (the query
        service) must not burn their budget asleep.
    on_retry:
        Optional hook called as ``on_retry(attempt, error, delay)`` just
        before each backoff sleep.

    Raises
    ------
    RetryExhaustedError
        When ``max_attempts`` are used up (or the ``give_up_after``
        budget cannot fit another backoff).  Carries the per-attempt log
        in ``context["attempts"]``; ``__cause__`` is the last error.
    """
    policy = policy or BackoffPolicy()
    attempts: "list[dict[str, Any]]" = []
    started = time.monotonic()
    previous_delay: "float | None" = None
    last_error: "BaseException | None" = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last_error = exc
            record: "dict[str, Any]" = {
                "attempt": attempt,
                "error": f"{type(exc).__name__}: {exc}",
            }
            attempts.append(record)
            if attempt >= policy.max_attempts:
                break
            delay = policy.delay(attempt, previous_delay, rng)
            if give_up_after is not None and (
                time.monotonic() - started + delay > give_up_after
            ):
                record["gave_up"] = "deadline"
                break
            record["delay"] = delay
            previous_delay = delay
            counter_inc("retry.backoff")
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    raise RetryExhaustedError(
        f"{description}: gave up after {len(attempts)} attempt(s)",
        attempts=tuple(attempts),
        max_attempts=policy.max_attempts,
    ) from last_error
