"""Declarative fallback ladders for iterative solvers.

A ladder is an ordered sequence of :class:`Rung`\\ s — solver variants from
fastest/preferred to slowest/most robust.  :func:`run_fallback_ladder`
tries each in turn, records every attempt (accepted or not, with residual
and iteration count), and raises a :class:`ConvergenceError` carrying the
full attempt log when no rung produces an acceptable result.

This replaces ad-hoc inline fallbacks (the old ``solve_r_matrix`` silently
retried successive substitution) with a structure that is *observable*:
the attempt log rides along on :class:`~repro.robustness.report.SolverDiagnostics`
so a figure sweep can report exactly which points needed which rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..telemetry import span
from .errors import ConvergenceError, ReproError

__all__ = ["Rung", "RungAttempt", "RungResult", "run_fallback_ladder"]

T = TypeVar("T")

#: What a rung's solver returns: (value, residual, iterations).
RungResult = Tuple[T, float, Optional[int]]


@dataclass(frozen=True)
class Rung:
    """One rung of a fallback ladder.

    Attributes
    ----------
    name:
        Identifier recorded in diagnostics (e.g. ``"logarithmic-reduction"``).
    solve:
        Zero-argument callable returning ``(value, residual, iterations)``.
        May raise; the exception is recorded and the ladder moves on.
    max_residual:
        Acceptance threshold — the rung's result is used iff
        ``residual <= max_residual``.
    """

    name: str
    solve: Callable[[], RungResult]
    max_residual: float


@dataclass(frozen=True)
class RungAttempt:
    """Record of one rung attempt (success or failure)."""

    name: str
    accepted: bool
    residual: Optional[float] = None
    iterations: Optional[int] = None
    error: Optional[str] = None

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.error is not None:
            return f"{self.name}: raised {self.error}"
        status = "accepted" if self.accepted else "rejected"
        iters = f", {self.iterations} iters" if self.iterations is not None else ""
        return f"{self.name}: {status} (residual {self.residual:.3g}{iters})"


def run_fallback_ladder(
    rungs: Sequence[Rung],
    description: str,
) -> tuple[T, tuple[RungAttempt, ...]]:
    """Try ``rungs`` in order; return the first acceptable result.

    Returns
    -------
    (value, attempts):
        ``value`` from the first rung whose residual met its threshold;
        ``attempts`` records every rung tried up to and including it.

    Raises
    ------
    ConvergenceError
        When every rung fails or misses its tolerance.  The error context
        carries the best residual achieved and the per-rung attempt log.
    """
    if not rungs:
        raise ValueError("fallback ladder needs at least one rung")
    attempts: list[RungAttempt] = []
    for rung in rungs:
        # One span per rung attempt: the per-iteration convergence trace
        # recorded inside rung.solve() (via set_span_attribute) lands on
        # this span, and the renderer flags rungs with accepted=False.
        with span("solver.rung." + rung.name) as rung_span:
            try:
                value, residual, iterations = rung.solve()
            except ReproError as exc:
                attempt = RungAttempt(
                    rung.name,
                    accepted=False,
                    residual=exc.residual,
                    iterations=exc.iterations,
                    error=f"{type(exc).__name__}: {exc.message}",
                )
            except (ArithmeticError, ValueError, np.linalg.LinAlgError) as exc:
                attempt = RungAttempt(
                    rung.name,
                    accepted=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                attempt = RungAttempt(
                    rung.name,
                    # bool(): residual is often a numpy scalar, and np.False_
                    # fails the renderer's ``attrs.get("accepted") is False``
                    # flag check (and renders as ``np.False_``).
                    accepted=bool(residual <= rung.max_residual),
                    residual=residual,
                    iterations=iterations,
                )
            rung_span.set("accepted", attempt.accepted)
            rung_span.set("residual", attempt.residual)
            rung_span.set("iterations", attempt.iterations)
            if attempt.error is not None:
                rung_span.set("error", attempt.error)
        attempts.append(attempt)
        if attempt.accepted:
            return value, tuple(attempts)
    residuals = [a.residual for a in attempts if a.residual is not None]
    raise ConvergenceError(
        f"{description}: all {len(rungs)} fallback rungs exhausted "
        f"({'; '.join(a.describe() for a in attempts)})",
        residual=min(residuals) if residuals else None,
        rungs_tried=len(attempts),
    )
