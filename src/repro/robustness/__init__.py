"""Solver hardening: error taxonomy, input guards, fallback ladders, reports.

The paper's headline figures live exactly where matrix-analytic machinery
is most fragile: as ``rho_s -> 2 - rho_l`` the QBD spectral radius
approaches 1 and ``(I - R)^{-1}`` becomes ill-conditioned.  This package
makes every failure along that path *typed and observable*:

``errors``
    A structured exception taxonomy rooted at :class:`ReproError`, each
    exception carrying machine-readable context (residual, iterations,
    condition number, spectral radius).
``guards``
    Reusable finite/nonnegativity/conditioning checks applied to every
    matrix entering the QBD solver and every scalar entering
    :class:`~repro.core.params.SystemParameters`.
``retry``
    A declarative fallback ladder: ordered solver rungs tried in turn,
    every attempt recorded, a :class:`ConvergenceError` with the full
    attempt log when the ladder is exhausted.  Plus
    :func:`retry_with_backoff` for *transient* faults (crashed workers,
    chaos injections): exponential backoff with decorrelated jitter, an
    attempt cap, and a :class:`RetryExhaustedError` carrying the log.
``circuit``
    A keyed :class:`CircuitBreaker` (closed / open / half-open) so a
    persistently failing parameter region stops consuming solver budget;
    the query service trips it per region bucket.
``report``
    :class:`SolverDiagnostics` — what actually happened inside a solve
    (method, rungs tried, residuals, ``sp(R)``, ``cond(I - R)``, wall
    time), attached to every :class:`~repro.markov.qbd.QbdSolution`.
``atomic_write``
    Crash-safe tmp-file+``os.replace`` writers shared by every
    ``results/`` artifact producer (journals, manifests, bench records,
    oracle reports, telemetry traces).
"""

from .atomic_write import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_jsonl,
    atomic_write_text,
    fsync_directory,
)
from .circuit import CircuitBreaker
from .errors import (
    CircuitOpenError,
    ContractViolation,
    ContractViolationWarning,
    ConvergenceError,
    CorruptJournalWarning,
    DeadlineExceededError,
    IllConditionedError,
    NearBoundaryWarning,
    NumericalError,
    ReproError,
    RetryExhaustedError,
    SerializationError,
    ServiceError,
    ServiceOverloadError,
    StoreCorruptionError,
    UnstableSystemError,
    ValidationError,
)
from .guards import (
    condition_number,
    check_conditioning,
    ensure_finite_array,
    ensure_finite_scalar,
    ensure_no_material_negatives,
    ensure_nonnegative_scalar,
    ensure_rate_block,
    spectral_radius,
)
from .report import SolverDiagnostics
from .trust import (
    K_TAIL,
    TRUST_LEVELS,
    TRUSTED_MAX,
    UNTRUSTED_MIN,
    compose_bound,
    condest_1,
    newton_polish_r,
    refined_solve,
    scale_tolerance,
    trust_verdict,
    trust_verdicts,
)
from .retry import (
    BackoffPolicy,
    Rung,
    RungAttempt,
    retry_with_backoff,
    run_fallback_ladder,
)

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "K_TAIL",
    "TRUST_LEVELS",
    "TRUSTED_MAX",
    "UNTRUSTED_MIN",
    "compose_bound",
    "condest_1",
    "newton_polish_r",
    "refined_solve",
    "scale_tolerance",
    "trust_verdict",
    "trust_verdicts",
    "CircuitOpenError",
    "ContractViolation",
    "ContractViolationWarning",
    "ConvergenceError",
    "CorruptJournalWarning",
    "DeadlineExceededError",
    "IllConditionedError",
    "NearBoundaryWarning",
    "NumericalError",
    "ReproError",
    "RetryExhaustedError",
    "Rung",
    "RungAttempt",
    "SerializationError",
    "ServiceError",
    "ServiceOverloadError",
    "SolverDiagnostics",
    "StoreCorruptionError",
    "UnstableSystemError",
    "ValidationError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_jsonl",
    "atomic_write_text",
    "check_conditioning",
    "condition_number",
    "ensure_finite_array",
    "ensure_finite_scalar",
    "ensure_no_material_negatives",
    "ensure_nonnegative_scalar",
    "ensure_rate_block",
    "fsync_directory",
    "retry_with_backoff",
    "run_fallback_ladder",
    "spectral_radius",
]
