"""Markov-chain machinery: finite CTMCs and matrix-analytic QBD solving."""

from .ctmc import Ctmc, build_generator
from .qbd import (
    QbdProcess,
    QbdSolution,
    cached_solution,
    solve_g_matrix,
    solve_r_matrix,
    solve_r_matrix_with_diagnostics,
)

__all__ = [
    "Ctmc",
    "QbdProcess",
    "QbdSolution",
    "build_generator",
    "cached_solution",
    "solve_g_matrix",
    "solve_r_matrix",
    "solve_r_matrix_with_diagnostics",
]
