"""Quasi-birth-death (QBD) processes with matrix-analytic solution.

This is the paper's Section 2.4 machinery: the CS-CQ chain is "infinite in
only 1D", with a level (number of short jobs) and a small phase set; "the
repeating portion is represented as powers of a matrix R, which can be
added, as one adds a geometric series".

The solver supports an irregular boundary (levels whose phase sets differ
from the repeating portion — e.g. the paper's chain has no region-5 states
at levels 0 and 1) followed by a level-independent repeating portion
``(A0, A1, A2)``.  ``R`` is computed by logarithmic reduction
(Latouche & Ramaswami) on the uniformized chain, with a successive
substitution fallback, and is always verified against its defining
quadratic residual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["QbdProcess", "QbdSolution", "solve_r_matrix", "solve_g_matrix"]


def _as_matrix(m, name: str) -> np.ndarray:
    arr = np.asarray(m, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2D matrix, got ndim={arr.ndim}")
    if np.any(arr < 0.0):
        raise ValueError(f"{name} must be elementwise nonnegative (rate block)")
    return arr


def solve_r_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> np.ndarray:
    """Minimal nonnegative solution of ``A0 + R A1 + R^2 A2 = 0``.

    ``A0/A1/A2`` are the up/local/down generator blocks of the repeating
    portion (``A1`` carries the negative diagonal).  Uses logarithmic
    reduction on the uniformized chain; verified by its quadratic residual.
    """
    g = solve_g_matrix(a0, a1, a2, tol=tol, max_iter=max_iter)
    # R = A0 * (-(A1 + A0 G))^{-1}  (continuous-time identity).
    u = a1 + a0 @ g
    r = a0 @ np.linalg.inv(-u)
    residual = np.abs(a0 + r @ a1 + r @ r @ a2).max()
    scale = max(np.abs(a0).max(), np.abs(a1).max(), np.abs(a2).max(), 1.0)
    if residual > 1e-8 * scale:
        # Fall back to successive substitution, which is slower but very
        # robust: R_{k+1} = -(A0 + R_k^2 A2) A1^{-1}.
        r = _solve_r_substitution(a0, a1, a2, tol=tol)
        residual = np.abs(a0 + r @ a1 + r @ r @ a2).max()
        if residual > 1e-7 * scale:
            raise ArithmeticError(
                f"R-matrix iteration failed to converge (residual {residual:.3g})"
            )
    return r


def _solve_r_substitution(
    a0: np.ndarray, a1: np.ndarray, a2: np.ndarray, tol: float, max_iter: int = 500000
) -> np.ndarray:
    a1_inv = np.linalg.inv(a1)
    r = np.zeros_like(a0)
    for _ in range(max_iter):
        nxt = -(a0 + r @ r @ a2) @ a1_inv
        if np.abs(nxt - r).max() < tol:
            return nxt
        r = nxt
    return r


def solve_g_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> np.ndarray:
    """Compute G (first-passage to the level below) by logarithmic reduction."""
    theta = np.abs(np.diag(a1)).max()
    if theta <= 0.0:
        raise ValueError("A1 has a zero diagonal; not a valid generator block")
    theta *= 1.0 + 1e-9
    n = a1.shape[0]
    ident = np.eye(n)
    # Uniformized (discrete) blocks.
    d0 = a0 / theta
    d1 = ident + a1 / theta
    d2 = a2 / theta

    inv = np.linalg.inv(ident - d1)
    h = inv @ d0  # "up" kernel
    low = inv @ d2  # "down" kernel
    g = low.copy()
    t = h.copy()
    for _ in range(max_iter):
        u = h @ low + low @ h
        m = np.linalg.inv(ident - u)
        h2 = m @ (h @ h)
        low2 = m @ (low @ low)
        g = g + t @ low2
        t = t @ h2
        h, low = h2, low2
        if np.abs(t).max() < tol:
            break
    return g


@dataclass
class QbdSolution:
    """Stationary solution of a :class:`QbdProcess`.

    Attributes
    ----------
    boundary_pi:
        List of stationary probability vectors for levels ``0..b-1``.
    pi_repeat:
        Vector for level ``b`` (the first repeating level); levels ``b+k``
        follow as ``pi_repeat @ R^k``.
    r_matrix:
        The rate matrix of the geometric tail.
    """

    boundary_pi: list[np.ndarray]
    pi_repeat: np.ndarray
    r_matrix: np.ndarray
    first_repeating_level: int
    _i_minus_r_inv: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.r_matrix.shape[0]
        self._i_minus_r_inv = np.linalg.inv(np.eye(n) - self.r_matrix)

    def level_probability(self, n: int) -> float:
        """Return ``P(level == n)``."""
        return float(self.level_vector(n).sum())

    def level_vector(self, n: int) -> np.ndarray:
        """Return the stationary sub-vector of level ``n``."""
        b = self.first_repeating_level
        if n < 0:
            raise ValueError(f"level must be nonnegative, got {n}")
        if n < b:
            return self.boundary_pi[n]
        return self.pi_repeat @ np.linalg.matrix_power(self.r_matrix, n - b)

    def phase_marginal(self) -> np.ndarray:
        """Return the marginal over repeating phases, ``sum_{n>=b} pi_n``."""
        return self.pi_repeat @ self._i_minus_r_inv

    def tail_mass(self) -> float:
        """Return ``P(level >= first repeating level)``."""
        return float(self.phase_marginal().sum())

    def mean_level(self) -> float:
        """Return ``E[level]``."""
        b = self.first_repeating_level
        total = sum(i * float(v.sum()) for i, v in enumerate(self.boundary_pi))
        inv = self._i_minus_r_inv
        r = self.r_matrix
        ones = np.ones(r.shape[0])
        # sum_{k>=0} (b + k) pi_b R^k = b pi_b (I-R)^{-1} + pi_b R (I-R)^{-2}
        total += b * float(self.pi_repeat @ inv @ ones)
        total += float(self.pi_repeat @ r @ inv @ inv @ ones)
        return total

    def second_moment_level(self) -> float:
        """Return ``E[level^2]``."""
        b = self.first_repeating_level
        total = sum(i * i * float(v.sum()) for i, v in enumerate(self.boundary_pi))
        inv = self._i_minus_r_inv
        r = self.r_matrix
        ones = np.ones(r.shape[0])
        s0 = float(self.pi_repeat @ inv @ ones)
        s1 = float(self.pi_repeat @ r @ inv @ inv @ ones)
        # sum k^2 R^k = R (I + R) (I - R)^{-3}
        s2 = float(self.pi_repeat @ r @ (np.eye(r.shape[0]) + r) @ inv @ inv @ inv @ ones)
        total += b * b * s0 + 2.0 * b * s1 + s2
        return total

    def total_mass(self) -> float:
        """Return the total probability mass (should be 1)."""
        return sum(float(v.sum()) for v in self.boundary_pi) + self.tail_mass()


class QbdProcess:
    """A level-independent QBD with an irregular boundary.

    Levels ``0..b-1`` ("boundary") may have arbitrary phase counts; levels
    ``b, b+1, ...`` share the repeating blocks.  All blocks are supplied as
    *nonnegative rate blocks*; diagonals are derived internally so that the
    full generator has zero row sums.

    Parameters
    ----------
    boundary_local:
        ``boundary_local[i]`` — within-level rates of boundary level ``i``
        (square, diagonal ignored), for ``i = 0..b-1``.
    boundary_up:
        ``boundary_up[i]`` — rates level ``i -> i+1`` for ``i = 0..b-1``
        (the last maps boundary phases into the repeating phase set).
    boundary_down:
        ``boundary_down[i]`` — rates level ``i+1 -> i`` for ``i = 0..b-1``
        (the last maps repeating phases down into boundary level ``b-1``).
    a0, a1, a2:
        Repeating up/local/down rate blocks (``a1`` diagonal ignored).  The
        down block out of level ``b`` is ``boundary_down[b-1]``; its row
        sums may differ from ``a2``'s, which is handled exactly.
    """

    def __init__(
        self,
        boundary_local: Sequence[np.ndarray],
        boundary_up: Sequence[np.ndarray],
        boundary_down: Sequence[np.ndarray],
        a0: np.ndarray,
        a1: np.ndarray,
        a2: np.ndarray,
    ):
        self.b = len(boundary_local)
        if len(boundary_up) != self.b or len(boundary_down) != self.b:
            raise ValueError(
                f"need as many up/down blocks as boundary levels: "
                f"{len(boundary_up)=}, {len(boundary_down)=}, expected {self.b}"
            )
        self.boundary_local = [_as_matrix(m, f"boundary_local[{i}]") for i, m in enumerate(boundary_local)]
        self.boundary_up = [_as_matrix(m, f"boundary_up[{i}]") for i, m in enumerate(boundary_up)]
        self.boundary_down = [_as_matrix(m, f"boundary_down[{i}]") for i, m in enumerate(boundary_down)]
        self.a0 = _as_matrix(a0, "a0")
        self.a1 = _as_matrix(a1, "a1")
        self.a2 = _as_matrix(a2, "a2")
        self.m = self.a1.shape[0]
        self._validate_shapes()

    def _validate_shapes(self) -> None:
        dims = [m.shape[0] for m in self.boundary_local] + [self.m]
        for i in range(self.b):
            if self.boundary_local[i].shape != (dims[i], dims[i]):
                raise ValueError(f"boundary_local[{i}] must be {dims[i]}x{dims[i]}")
            if self.boundary_up[i].shape != (dims[i], dims[i + 1]):
                raise ValueError(
                    f"boundary_up[{i}] must be {dims[i]}x{dims[i + 1]}, "
                    f"got {self.boundary_up[i].shape}"
                )
            if self.boundary_down[i].shape != (dims[i + 1], dims[i]):
                raise ValueError(
                    f"boundary_down[{i}] must be {dims[i + 1]}x{dims[i]}, "
                    f"got {self.boundary_down[i].shape}"
                )
        for name, mat in (("a0", self.a0), ("a1", self.a1), ("a2", self.a2)):
            if mat.shape != (self.m, self.m):
                raise ValueError(f"{name} must be {self.m}x{self.m}, got {mat.shape}")

    # ------------------------------------------------------------------
    def _with_diagonal(self, local: np.ndarray, out_rates: np.ndarray) -> np.ndarray:
        """Return the local block with its proper negative diagonal."""
        block = local.copy()
        np.fill_diagonal(block, 0.0)
        np.fill_diagonal(block, -(block.sum(axis=1) + out_rates))
        return block

    def solve(self) -> QbdSolution:
        """Compute the stationary distribution (matrix-geometric form)."""
        b, m = self.b, self.m
        a1_full = self._with_diagonal(self.a1, self.a0.sum(axis=1) + self.a2.sum(axis=1))
        r = solve_r_matrix(self.a0, a1_full, self.a2)

        if b == 0:
            # Level 0 is already repeating with no level below: local block
            # has only A0 leaving it.
            a1_level0 = self._with_diagonal(self.a1, self.a0.sum(axis=1))
            pi0 = _solve_boundary_single(a1_level0 + r @ self.a2, r)
            return QbdSolution([], pi0, r, 0)

        dims = [mat.shape[0] for mat in self.boundary_local] + [m]
        offsets = np.concatenate([[0], np.cumsum(dims)])
        total_dim = offsets[-1]

        # Assemble the finite linear system for levels 0..b.
        big = np.zeros((total_dim, total_dim))

        def put(i: int, j: int, block: np.ndarray) -> None:
            big[offsets[i] : offsets[i] + dims[i], offsets[j] : offsets[j] + dims[j]] += block

        for i in range(b):
            down_rates = (
                self.boundary_down[i - 1].sum(axis=1) if i > 0 else np.zeros(dims[0])
            )
            local = self._with_diagonal(
                self.boundary_local[i],
                self.boundary_up[i].sum(axis=1) + down_rates,
            )
            put(i, i, local)
            put(i, i + 1, self.boundary_up[i])
        for i in range(b):
            put(i + 1, i, self.boundary_down[i])
        # Level b local: diagonal accounts for its actual down block and A0.
        local_b = self._with_diagonal(
            self.a1, self.a0.sum(axis=1) + self.boundary_down[b - 1].sum(axis=1)
        )
        put(b, b, local_b + r @ self.a2)

        # pi @ big = 0 with normalization sum(boundary) + pi_b (I-R)^{-1} 1 = 1.
        i_minus_r_inv = np.linalg.inv(np.eye(m) - r)
        a = np.vstack([big.T, np.zeros((1, total_dim))])
        norm_row = np.ones(total_dim)
        norm_row[offsets[b] :] = i_minus_r_inv.sum(axis=1)
        a[-1] = norm_row
        rhs = np.zeros(total_dim + 1)
        rhs[-1] = 1.0
        pi, *_ = np.linalg.lstsq(a, rhs, rcond=None)

        residual = np.abs(pi @ big).max()
        scale = max(1.0, np.abs(big).max())
        if residual > 1e-7 * scale:
            raise ArithmeticError(
                f"QBD boundary solve failed: balance residual {residual:.3g}"
            )
        pi = np.clip(pi, 0.0, None)

        boundary_pi = [pi[offsets[i] : offsets[i] + dims[i]] for i in range(b)]
        pi_b = pi[offsets[b] :]
        solution = QbdSolution(boundary_pi, pi_b, r, b)
        total = solution.total_mass()
        if not 0.999999 < total < 1.000001:
            raise ArithmeticError(f"QBD normalization failed: total mass {total}")
        return solution


def _solve_boundary_single(local_plus_ra2: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Solve the no-boundary case: pi0 (A1 + R A2) = 0 with geometric norm."""
    m = r.shape[0]
    a = np.vstack([local_plus_ra2.T, np.linalg.inv(np.eye(m) - r).sum(axis=1)[None, :]])
    rhs = np.zeros(m + 1)
    rhs[-1] = 1.0
    pi0, *_ = np.linalg.lstsq(a, rhs, rcond=None)
    return np.clip(pi0, 0.0, None)
