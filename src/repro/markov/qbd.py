"""Quasi-birth-death (QBD) processes with matrix-analytic solution.

This is the paper's Section 2.4 machinery: the CS-CQ chain is "infinite in
only 1D", with a level (number of short jobs) and a small phase set; "the
repeating portion is represented as powers of a matrix R, which can be
added, as one adds a geometric series".

The solver supports an irregular boundary (levels whose phase sets differ
from the repeating portion — e.g. the paper's chain has no region-5 states
at levels 0 and 1) followed by a level-independent repeating portion
``(A0, A1, A2)``.

Hardening (see :mod:`repro.robustness`): ``R`` is computed through a
declarative fallback ladder — logarithmic reduction (Latouche & Ramaswami)
on the uniformized chain, then successive substitution, then a
re-uniformized logarithmic reduction with tightened tolerance — with every
rung's attempt recorded on the :class:`SolverDiagnostics` attached to the
returned :class:`QbdSolution`.  All failure paths raise typed
:class:`~repro.robustness.ReproError` subclasses carrying residuals,
iteration counts, condition numbers and spectral radii.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from ..perf import active_cache
from ..telemetry import (
    IterationTrace,
    counter_inc,
    observe,
    set_span_attribute,
    span,
    tracing_enabled,
)
from ..robustness import (
    ConvergenceError,
    NumericalError,
    ReproError,
    Rung,
    RungAttempt,
    SolverDiagnostics,
    UnstableSystemError,
    ValidationError,
    check_conditioning,
    compose_bound,
    condest_1,
    ensure_no_material_negatives,
    ensure_rate_block,
    newton_polish_r,
    refined_solve,
    run_fallback_ladder,
    spectral_radius,
    trust_verdict,
)

__all__ = [
    "QbdProcess",
    "QbdSolution",
    "cached_solution",
    "solve_r_matrix",
    "solve_r_matrix_with_diagnostics",
    "solve_g_matrix",
    "solve_g_matrix_batched",
    "solve_r_matrix_batched",
]


def _as_matrix(m, name: str) -> np.ndarray:
    return ensure_rate_block(m, name)


def _quadratic_residual(
    r: np.ndarray, a0: np.ndarray, a1: np.ndarray, a2: np.ndarray
) -> float:
    """Max-abs residual of R's defining quadratic ``A0 + R A1 + R^2 A2 = 0``."""
    return float(np.abs(a0 + r @ a1 + r @ r @ a2).max())


def _block_scale(a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> float:
    return max(np.abs(a0).max(), np.abs(a1).max(), np.abs(a2).max(), 1.0)


def _assess_trust(
    square: np.ndarray,
    boundary_residual: float,
    boundary_scale: float,
    r: np.ndarray,
    r_residual: float,
    r_scale: float,
) -> tuple[float, float, str]:
    """``(condition_estimate, error_bound, verdict)`` for one solve.

    The batched backend composes the identical quantities from stacked
    ``condest_1`` calls, so a point evaluated either way carries the
    bit-identical verdict.
    """
    cond_boundary = condest_1(square)
    cond_i_minus_r = condest_1(np.eye(r.shape[0]) - r)
    bound = compose_bound(
        cond_boundary,
        boundary_residual,
        boundary_scale,
        cond_i_minus_r,
        r_residual,
        r_scale,
    )
    return max(cond_boundary, cond_i_minus_r), bound, trust_verdict(bound)


#: Iteration-budget multiplier for the successive-substitution rung.
#: ``max_iter`` budgets the quadratically convergent logarithmic-reduction
#: rungs; substitution converges only linearly (error shrinks by roughly
#: ``sp(R)`` per step), so its rung scales the caller's budget by this
#: factor instead of using a private hard-coded cap.  With the default
#: ``max_iter=200`` this reproduces the historical 500000-iteration limit.
_SUBSTITUTION_ITER_FACTOR = 2500


def solve_r_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> np.ndarray:
    """Minimal nonnegative solution of ``A0 + R A1 + R^2 A2 = 0``.

    ``A0/A1/A2`` are the up/local/down generator blocks of the repeating
    portion (``A1`` carries the negative diagonal).  Runs the full fallback
    ladder; see :func:`solve_r_matrix_with_diagnostics` for the attempt log.

    ``max_iter`` is the iteration budget of the quadratically convergent
    logarithmic-reduction rungs; the linearly convergent successive-
    substitution rung receives ``max_iter * 2500``
    (:data:`_SUBSTITUTION_ITER_FACTOR`) and the tightened rung
    ``4 * max_iter``, so one caller-supplied budget governs the whole
    ladder.
    """
    r, _ = solve_r_matrix_with_diagnostics(a0, a1, a2, tol=tol, max_iter=max_iter)
    return r


def solve_r_matrix_with_diagnostics(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> tuple[np.ndarray, SolverDiagnostics]:
    """R-matrix solve through the fallback ladder, with the attempt log.

    Ladder rungs, in order:

    1. ``logarithmic-reduction`` — quadratically convergent, the fast path.
    2. ``successive-substitution`` — linearly convergent but very robust:
       ``R_{k+1} = -(A0 + R_k^2 A2) A1^{-1}``, budgeted at
       ``max_iter * 2500`` iterations (see :data:`_SUBSTITUTION_ITER_FACTOR`).
    3. ``logarithmic-reduction-tightened`` — re-uniformized with a larger
       uniformization constant and a tightened tolerance, budgeted at
       ``4 * max_iter`` iterations, for chains where the default
       uniformization is numerically unlucky.

    Inside an active :func:`repro.perf.sweep_cache` scope the solve is
    memoized on the exact block bytes (plus ``tol`` / ``max_iter``); a hit
    returns the bit-identical matrix with ``cache_hit=True`` on the
    diagnostics.

    Raises
    ------
    ConvergenceError
        If no rung reaches its acceptance residual; the error context
        carries the best residual and the number of rungs tried.
    """
    a0 = _as_matrix(a0, "a0")
    a1 = np.asarray(a1, dtype=float)  # carries the negative diagonal
    a2 = _as_matrix(a2, "a2")

    def compute() -> tuple[np.ndarray, SolverDiagnostics]:
        with span("qbd.r_matrix", size=a1.shape[0], tol=tol, max_iter=max_iter) as sp:
            r, diagnostics = _compute_r_uncached(a0, a1, a2, tol, max_iter)
            sp.set("method", diagnostics.method)
            sp.set("residual", diagnostics.residual)
            sp.set("iterations", diagnostics.iterations)
            sp.set("spectral_radius", diagnostics.spectral_radius)
            sp.set("rung_iterations", diagnostics.rung_iterations)
        counter_inc("qbd.r_matrix.solves")
        counter_inc(f"qbd.r_matrix.method.{diagnostics.method}")
        if diagnostics.wall_time is not None:
            observe("qbd.r_matrix.seconds", diagnostics.wall_time)
        return r, diagnostics

    cache = active_cache()
    if cache is None:
        return compute()
    key = (
        a0.shape[0],
        a0.tobytes(),
        a1.tobytes(),
        a2.tobytes(),
        float(tol),
        int(max_iter),
    )
    (r, diagnostics), status = cache.get_or_compute_with_status(
        "r-matrix", key, compute
    )
    if status != "computed":
        diagnostics = replace(diagnostics, cache_hit=True)
    return r, diagnostics


def _compute_r_uncached(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, SolverDiagnostics]:
    """The ladder itself (uncached, untraced core of the R-matrix solve)."""
    scale = _block_scale(a0, a1, a2)
    start = time.perf_counter()

    def via_log_reduction(g_tol: float, g_max_iter: int, theta_factor: float):
        def run():
            g, iterations = _solve_g_log_reduction(
                a0, a1, a2, tol=g_tol, max_iter=g_max_iter, theta_factor=theta_factor
            )
            # R = A0 * (-(A1 + A0 G))^{-1}  (continuous-time identity).
            u = a1 + a0 @ g
            r = a0 @ np.linalg.inv(-u)
            return r, _quadratic_residual(r, a0, a1, a2), iterations

        return run

    def via_substitution():
        r, iterations = _solve_r_substitution(
            a0, a1, a2, tol=tol, max_iter=max_iter * _SUBSTITUTION_ITER_FACTOR
        )
        return r, _quadratic_residual(r, a0, a1, a2), iterations

    rungs = [
        Rung(
            "logarithmic-reduction",
            via_log_reduction(tol, max_iter, theta_factor=1.0),
            max_residual=1e-8 * scale,
        ),
        Rung("successive-substitution", via_substitution, max_residual=1e-7 * scale),
        Rung(
            "logarithmic-reduction-tightened",
            via_log_reduction(_tightened_tol(tol), 4 * max_iter, theta_factor=4.0),
            max_residual=1e-7 * scale,
        ),
    ]
    r, attempts = run_fallback_ladder(rungs, "R-matrix solve")
    diagnostics = SolverDiagnostics(
        method=attempts[-1].name,
        rungs=attempts,
        residual=attempts[-1].residual,
        spectral_radius=spectral_radius(r),
        iterations=attempts[-1].iterations,
        wall_time=time.perf_counter() - start,
    )
    return r, diagnostics


def _solve_r_substitution(
    a0: np.ndarray, a1: np.ndarray, a2: np.ndarray, tol: float, max_iter: int
) -> tuple[np.ndarray, int]:
    """Successive substitution ``R_{k+1} = -(A0 + R_k^2 A2) A1^{-1}``.

    Raises :class:`ConvergenceError` (with the final step size and the
    quadratic residual) instead of silently returning an unconverged
    iterate after ``max_iter``.
    """
    a1_inv = np.linalg.inv(a1)
    r = np.zeros_like(a0)
    delta = float("inf")
    trace = IterationTrace() if tracing_enabled() else None
    for iteration in range(1, max_iter + 1):
        nxt = -(a0 + r @ r @ a2) @ a1_inv
        delta = float(np.abs(nxt - r).max())
        r = nxt
        if trace is not None:
            trace.record(delta)
        if delta < tol:
            if trace is not None:
                set_span_attribute("convergence", trace.as_dict())
            return r, iteration
    if trace is not None:
        set_span_attribute("convergence", trace.as_dict())
    raise ConvergenceError(
        f"successive substitution did not converge in {max_iter} iterations",
        residual=_quadratic_residual(r, a0, a1, a2),
        step_size=delta,
        iterations=max_iter,
    )


#: Consecutive iterations without a new step-size minimum before the
#: logarithmic-reduction iteration declares stagnation.  Quadratic (and
#: even slow linear) convergence sets a new minimum every iteration, so a
#: window this long only trips on a genuine plateau.
_STAGNATION_WINDOW = 12


def _tightened_tol(tol: float) -> float:
    """Representable tolerance for the tightened fallback rung.

    The historical rung tightened to ``min(tol, 1e-15)`` — below the
    smallest step-size change float64 arithmetic can resolve around 1.0,
    so near-boundary iterates that plateaued just above it burned the
    whole ``4 * max_iter`` budget before falling through.  Clamp to a few
    machine epsilons so the target is always achievable by an iterate
    that is actually converging.
    """
    return max(min(tol, 1e-15), 8.0 * float(np.finfo(float).eps))


def solve_g_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> np.ndarray:
    """Compute G (first-passage to the level below) by logarithmic reduction."""
    g, _ = _solve_g_log_reduction(a0, a1, a2, tol=tol, max_iter=max_iter)
    return g


def _solve_g_log_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
    theta_factor: float = 1.0,
) -> tuple[np.ndarray, int]:
    """Logarithmic reduction for G on the uniformized chain.

    ``theta_factor > 1`` re-uniformizes with a larger constant than the
    minimal one — mathematically equivalent, numerically a different
    iteration, which is what the tightened fallback rung exploits.
    """
    theta = np.abs(np.diag(a1)).max()
    if theta <= 0.0:
        raise NumericalError("A1 has a zero diagonal; not a valid generator block")
    theta *= (1.0 + 1e-9) * theta_factor
    n = a1.shape[0]
    ident = np.eye(n)
    # Uniformized (discrete) blocks.
    d0 = a0 / theta
    d1 = ident + a1 / theta
    d2 = a2 / theta

    # One LAPACK solve with a stacked right-hand side per step (instead of
    # an explicit inverse applied twice): fewer dispatches, better accuracy.
    kernels = np.linalg.solve(ident - d1, np.concatenate([d0, d2], axis=1))
    h = kernels[:, :n]  # "up" kernel
    low = kernels[:, n:]  # "down" kernel
    g = low.copy()
    t = h.copy()
    iterations = 0
    best_step = float("inf")
    stalled = 0
    trace = IterationTrace() if tracing_enabled() else None
    for iterations in range(1, max_iter + 1):
        u = h @ low + low @ h
        sol = np.linalg.solve(
            ident - u, np.concatenate([h @ h, low @ low], axis=1)
        )
        h2 = sol[:, :n]
        low2 = sol[:, n:]
        g = g + t @ low2
        t = t @ h2
        h, low = h2, low2
        step = float(np.abs(t).max())
        if trace is not None:
            trace.record(step)
        if step < tol:
            if trace is not None:
                set_span_attribute("convergence", trace.as_dict())
            return g, iterations
        # Stagnation detection: a converging iterate sets a new step-size
        # minimum every iteration; a plateau means the remaining mass will
        # never drain below ``tol``, so fail fast to the next rung instead
        # of burning the rest of the budget.
        if step < best_step * (1.0 - 1e-6):
            best_step = step
            stalled = 0
        else:
            stalled += 1
            if stalled >= _STAGNATION_WINDOW:
                if trace is not None:
                    set_span_attribute("convergence", trace.as_dict())
                raise ConvergenceError(
                    f"logarithmic reduction stagnated after {iterations} "
                    f"iterations (step plateaued at {step:.3g} >= tol {tol:.3g})",
                    residual=step,
                    iterations=iterations,
                )
    if trace is not None:
        set_span_attribute("convergence", trace.as_dict())
    raise ConvergenceError(
        f"logarithmic reduction did not converge in {max_iter} iterations",
        residual=float(np.abs(t).max()),
        iterations=iterations,
    )


def solve_g_matrix_batched(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
    theta_factor: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Logarithmic reduction for G over a stack of QBD block triples.

    ``a0/a1/a2`` are ``(N, m, m)`` stacks (``a1`` carrying the negative
    diagonal).  Every slice runs the *same* arithmetic as the scalar
    :func:`_solve_g_log_reduction` — batched ``matmul``/``solve`` dispatch
    the identical LAPACK routine per slice, so a converged slice's G is
    bit-identical to the scalar result — but the Python-level loop runs
    once per iteration instead of once per point.  Slices that converge
    are frozen (masked out of the active set) while slow slices keep
    iterating, so per-slice iteration counts match the scalar path's.

    Returns
    -------
    (g, iterations, converged):
        ``g`` is ``(N, m, m)`` (zeros for non-converged slices),
        ``iterations`` the per-slice iteration counts, and ``converged``
        a boolean mask.  Slices that stagnate or exhaust ``max_iter``
        simply come back non-converged — the caller falls back to the
        scalar ladder for them instead of receiving an exception.
    """
    a0 = np.asarray(a0, dtype=float)
    a1 = np.asarray(a1, dtype=float)
    a2 = np.asarray(a2, dtype=float)
    n_pts, m, _ = a1.shape
    g_out = np.zeros_like(a1)
    iterations = np.zeros(n_pts, dtype=np.int64)
    converged = np.zeros(n_pts, dtype=bool)

    theta = np.abs(np.diagonal(a1, axis1=1, axis2=2)).max(axis=1)
    valid = theta > 0.0  # a zero diagonal is not a valid generator block
    theta = np.where(valid, theta, 1.0) * ((1.0 + 1e-9) * theta_factor)

    ident = np.eye(m)
    th = theta[:, None, None]
    d0 = a0 / th
    d1 = ident + a1 / th
    d2 = a2 / th
    try:
        kernels = np.linalg.solve(ident - d1, np.concatenate([d0, d2], axis=2))
    except np.linalg.LinAlgError:
        return g_out, iterations, converged
    idx = np.flatnonzero(valid)
    h = kernels[idx, :, :m]
    low = kernels[idx, :, m:]
    g = low.copy()
    t = h.copy()
    best_step = np.full(idx.shape[0], np.inf)
    stalled = np.zeros(idx.shape[0], dtype=np.int64)
    resolved = np.zeros(idx.shape[0], dtype=bool)
    for iteration in range(1, max_iter + 1):
        if idx.size == 0 or resolved.all():
            break
        # One fused matmul computes h@low, low@h, h@h and low@low: the
        # gufunc dispatches the identical per-slice GEMM either way, so
        # grouping the dispatches is bit-safe and saves Python overhead.
        n_act = h.shape[0]
        prod = np.concatenate([h, low, h, low]) @ np.concatenate([low, h, h, low])
        u = prod[:n_act] + prod[n_act : 2 * n_act]
        try:
            sol = np.linalg.solve(
                ident - u,
                np.concatenate(
                    [prod[2 * n_act : 3 * n_act], prod[3 * n_act :]], axis=2
                ),
            )
        except np.linalg.LinAlgError:
            break  # leave the unresolved slices non-converged
        h = sol[:, :, :m]
        low = sol[:, :, m:]
        tprod = np.concatenate([t, t]) @ np.concatenate([low, h])
        g = g + tprod[:n_act]
        t = tprod[n_act:]
        step = np.abs(t).max(axis=(1, 2))
        done = ~resolved & (step < tol)
        # Same stagnation criterion as the scalar loop: converging slices
        # set a new step-size minimum every iteration, so only plateaus
        # accumulate ``stalled`` counts.
        new_min = step < best_step * (1.0 - 1e-6)
        best_step = np.where(new_min, step, best_step)
        stalled = np.where(new_min, 0, stalled + 1)
        failed = ~resolved & ~done & (stalled >= _STAGNATION_WINDOW)
        if done.any():
            # Snapshot at the convergence event: the slice's G and
            # iteration count are frozen here even though the (resolved)
            # slice may ride along in the stack a few more iterations.
            g_out[idx[done]] = g[done]
            converged[idx[done]] = True
            iterations[idx[done]] = iteration
        if failed.any():
            iterations[idx[failed]] = iteration
        resolved |= done | failed
        # Compact only once most of the stack is resolved: per-slice GEMMs
        # are independent, so carrying a resolved slice extra iterations is
        # bit-safe, and skipping per-event compaction keeps the copies off
        # the hot path while still bounding wasted work.
        n_resolved = int(resolved.sum())
        if n_resolved and n_resolved * 2 > idx.shape[0]:
            keep = ~resolved
            idx = idx[keep]
            h = h[keep]
            low = low[keep]
            g = g[keep]
            t = t[keep]
            best_step = best_step[keep]
            stalled = stalled[keep]
            resolved = np.zeros(idx.shape[0], dtype=bool)
    return g_out, iterations, converged


def solve_r_matrix_batched(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = 1e-13,
    max_iter: int = 200,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched first-rung R-matrix solve over ``(N, m, m)`` block stacks.

    Runs only the ``logarithmic-reduction`` rung of the scalar fallback
    ladder (the rung that wins on essentially every sweep point), batched
    across the leading axis, and applies the same acceptance test
    (quadratic residual ``<= 1e-8 * block scale``).  Slices the rung does
    not accept come back with ``accepted=False`` — the caller is expected
    to fall back to the full scalar ladder for those points, which
    reproduces the scalar behavior (substitution rung, tightened rung,
    typed errors) exactly.

    Returns
    -------
    (r, residual, iterations, accepted):
        ``r`` is ``(N, m, m)``; ``residual`` the per-slice quadratic
        residual (``inf`` where G did not converge); ``iterations`` the
        per-slice G-iteration counts; ``accepted`` the rung's mask.
    """
    a0 = np.asarray(a0, dtype=float)
    a1 = np.asarray(a1, dtype=float)
    a2 = np.asarray(a2, dtype=float)
    n_pts, m, _ = a1.shape
    g, iterations, converged = solve_g_matrix_batched(
        a0, a1, a2, tol=tol, max_iter=max_iter
    )
    r = np.zeros_like(a1)
    residual = np.full(n_pts, np.inf)
    accepted = np.zeros(n_pts, dtype=bool)
    idx = np.flatnonzero(converged)
    if idx.size:
        a0_c = a0[idx]
        a1_c = a1[idx]
        a2_c = a2[idx]
        # R = A0 * (-(A1 + A0 G))^{-1}  (continuous-time identity).
        u = a1_c + a0_c @ g[idx]
        try:
            r_c = a0_c @ np.linalg.inv(-u)
        except np.linalg.LinAlgError:
            return r, residual, iterations, accepted
        res = np.abs(a0_c + r_c @ a1_c + r_c @ r_c @ a2_c).max(axis=(1, 2))
        scale = np.maximum.reduce(
            [
                np.abs(a0_c).max(axis=(1, 2)),
                np.abs(a1_c).max(axis=(1, 2)),
                np.abs(a2_c).max(axis=(1, 2)),
                np.ones(idx.shape[0]),
            ]
        )
        ok = res <= 1e-8 * scale
        r[idx] = r_c
        residual[idx] = res
        accepted[idx] = ok
    return r, residual, iterations, accepted


@dataclass
class QbdSolution:
    """Stationary solution of a :class:`QbdProcess`.

    Attributes
    ----------
    boundary_pi:
        List of stationary probability vectors for levels ``0..b-1``.
    pi_repeat:
        Vector for level ``b`` (the first repeating level); levels ``b+k``
        follow as ``pi_repeat @ R^k``.
    r_matrix:
        The rate matrix of the geometric tail.
    diagnostics:
        :class:`SolverDiagnostics` of the solve that produced this solution
        (None for hand-built solutions).
    """

    boundary_pi: list[np.ndarray]
    pi_repeat: np.ndarray
    r_matrix: np.ndarray
    first_repeating_level: int
    diagnostics: Optional[SolverDiagnostics] = None
    #: Caller-supplied ``sp(R)`` (e.g. from the R-solve diagnostics, which
    #: already computed it for the same matrix) to skip a duplicate
    #: eigenvalue computation; left None for hand-built solutions.
    spectral_radius_hint: Optional[float] = field(default=None, repr=False)
    tail_spectral_radius: float = field(init=False, repr=False)
    condition_i_minus_r: float = field(init=False, repr=False)
    _i_minus_r_inv: np.ndarray = field(init=False, repr=False)
    #: Cumulative powers ``[I, R, R^2, ...]`` grown lazily by
    #: :meth:`level_vector`; each new level costs one matrix multiply
    #: instead of a fresh ``matrix_power`` (O(m^3 log n)) per call.
    _r_powers: list = field(init=False, repr=False)
    _r_powers_lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.r_matrix.shape[0]
        self._r_powers = [np.eye(n)]
        self._r_powers_lock = threading.Lock()
        self.tail_spectral_radius = (
            self.spectral_radius_hint
            if self.spectral_radius_hint is not None
            else spectral_radius(self.r_matrix)
        )
        if self.tail_spectral_radius >= 1.0:
            raise UnstableSystemError(
                "geometric tail is not summable: sp(R) >= 1 (the chain is "
                "not positive recurrent at these rates)",
                spectral_radius=self.tail_spectral_radius,
            )
        i_minus_r = np.eye(n) - self.r_matrix
        self.condition_i_minus_r = check_conditioning(
            i_minus_r, "I - R", spectral_radius_hint=self.tail_spectral_radius
        )
        self._i_minus_r_inv = np.linalg.inv(i_minus_r)

    @classmethod
    def from_batched(
        cls,
        boundary_pi: list,
        pi_repeat: np.ndarray,
        r_matrix: np.ndarray,
        first_repeating_level: int,
        *,
        tail_spectral_radius: float,
        condition_i_minus_r: float,
        i_minus_r_inv: np.ndarray,
        diagnostics: Optional[SolverDiagnostics] = None,
        identity: Optional[np.ndarray] = None,
    ) -> "QbdSolution":
        """Assemble a solution from batched-solver components.

        The batched backend (:mod:`repro.perf.batched`) computes ``sp(R)``,
        ``cond(I - R)`` and ``(I - R)^{-1}`` for a whole stack of chains at
        once; this constructor installs them directly instead of re-deriving
        each per point as ``__post_init__`` does.  The caller is responsible
        for the conditioning gate (batched points with
        ``cond > CONDITION_WARN`` must go to the scalar path, which owns the
        warn/raise semantics); the stability gate is re-asserted here so a
        miscomputed hint can never produce a non-summable tail silently.
        """
        if tail_spectral_radius >= 1.0:
            raise UnstableSystemError(
                "geometric tail is not summable: sp(R) >= 1 (the chain is "
                "not positive recurrent at these rates)",
                spectral_radius=tail_spectral_radius,
            )
        solution = object.__new__(cls)
        solution.boundary_pi = boundary_pi
        solution.pi_repeat = pi_repeat
        solution.r_matrix = r_matrix
        solution.first_repeating_level = first_repeating_level
        solution.diagnostics = diagnostics
        solution.spectral_radius_hint = tail_spectral_radius
        solution.tail_spectral_radius = tail_spectral_radius
        solution.condition_i_minus_r = condition_i_minus_r
        solution._i_minus_r_inv = i_minus_r_inv
        # ``identity`` may be shared across a whole batch: power 0 is only
        # ever read (``matrix_power`` appends fresh products, never mutates).
        solution._r_powers = [
            identity if identity is not None else np.eye(r_matrix.shape[0])
        ]
        solution._r_powers_lock = threading.Lock()
        return solution

    def level_probability(self, n: int) -> float:
        """Return ``P(level == n)``."""
        return float(self.level_vector(n).sum())

    def level_vector(self, n: int) -> np.ndarray:
        """Return the stationary sub-vector of level ``n``."""
        b = self.first_repeating_level
        if n < 0:
            raise ValidationError(f"level must be nonnegative, got {n}")
        if n < b:
            return self.boundary_pi[n]
        return self.pi_repeat @ self._r_power(n - b)

    def _r_power(self, k: int) -> np.ndarray:
        """Return ``R^k`` from the cumulative-power cache, extending it."""
        powers = self._r_powers
        if k < len(powers):
            return powers[k]
        with self._r_powers_lock:
            while len(powers) <= k:
                powers.append(powers[-1] @ self.r_matrix)
        return powers[k]

    def phase_marginal(self) -> np.ndarray:
        """Return the marginal over repeating phases, ``sum_{n>=b} pi_n``."""
        return self.pi_repeat @ self._i_minus_r_inv

    def tail_mass(self) -> float:
        """Return ``P(level >= first repeating level)``."""
        return float(self.phase_marginal().sum())

    def mean_level(self) -> float:
        """Return ``E[level]``."""
        b = self.first_repeating_level
        total = sum(i * float(v.sum()) for i, v in enumerate(self.boundary_pi))
        inv = self._i_minus_r_inv
        r = self.r_matrix
        ones = np.ones(r.shape[0])
        # sum_{k>=0} (b + k) pi_b R^k = b pi_b (I-R)^{-1} + pi_b R (I-R)^{-2}
        total += b * float(self.pi_repeat @ inv @ ones)
        total += float(self.pi_repeat @ r @ inv @ inv @ ones)
        return total

    def second_moment_level(self) -> float:
        """Return ``E[level^2]``."""
        b = self.first_repeating_level
        total = sum(i * i * float(v.sum()) for i, v in enumerate(self.boundary_pi))
        inv = self._i_minus_r_inv
        r = self.r_matrix
        ones = np.ones(r.shape[0])
        s0 = float(self.pi_repeat @ inv @ ones)
        s1 = float(self.pi_repeat @ r @ inv @ inv @ ones)
        # sum k^2 R^k = R (I + R) (I - R)^{-3}
        s2 = float(self.pi_repeat @ r @ (np.eye(r.shape[0]) + r) @ inv @ inv @ inv @ ones)
        total += b * b * s0 + 2.0 * b * s1 + s2
        return total

    def total_mass(self) -> float:
        """Return the total probability mass (should be 1)."""
        return sum(float(v.sum()) for v in self.boundary_pi) + self.tail_mass()


class QbdProcess:
    """A level-independent QBD with an irregular boundary.

    Levels ``0..b-1`` ("boundary") may have arbitrary phase counts; levels
    ``b, b+1, ...`` share the repeating blocks.  All blocks are supplied as
    *nonnegative rate blocks*; diagonals are derived internally so that the
    full generator has zero row sums.

    Parameters
    ----------
    boundary_local:
        ``boundary_local[i]`` — within-level rates of boundary level ``i``
        (square, diagonal ignored), for ``i = 0..b-1``.
    boundary_up:
        ``boundary_up[i]`` — rates level ``i -> i+1`` for ``i = 0..b-1``
        (the last maps boundary phases into the repeating phase set).
    boundary_down:
        ``boundary_down[i]`` — rates level ``i+1 -> i`` for ``i = 0..b-1``
        (the last maps repeating phases down into boundary level ``b-1``).
    a0, a1, a2:
        Repeating up/local/down rate blocks (``a1`` diagonal ignored).  The
        down block out of level ``b`` is ``boundary_down[b-1]``; its row
        sums may differ from ``a2``'s, which is handled exactly.
    """

    def __init__(
        self,
        boundary_local: Sequence[np.ndarray],
        boundary_up: Sequence[np.ndarray],
        boundary_down: Sequence[np.ndarray],
        a0: np.ndarray,
        a1: np.ndarray,
        a2: np.ndarray,
    ):
        self.b = len(boundary_local)
        if len(boundary_up) != self.b or len(boundary_down) != self.b:
            raise ValidationError(
                f"need as many up/down blocks as boundary levels: "
                f"{len(boundary_up)=}, {len(boundary_down)=}, expected {self.b}"
            )
        self.boundary_local = [_as_matrix(m, f"boundary_local[{i}]") for i, m in enumerate(boundary_local)]
        self.boundary_up = [_as_matrix(m, f"boundary_up[{i}]") for i, m in enumerate(boundary_up)]
        self.boundary_down = [_as_matrix(m, f"boundary_down[{i}]") for i, m in enumerate(boundary_down)]
        self.a0 = _as_matrix(a0, "a0")
        self.a1 = _as_matrix(a1, "a1")
        self.a2 = _as_matrix(a2, "a2")
        self.m = self.a1.shape[0]
        self._validate_shapes()

    def _validate_shapes(self) -> None:
        dims = [m.shape[0] for m in self.boundary_local] + [self.m]
        for i in range(self.b):
            if self.boundary_local[i].shape != (dims[i], dims[i]):
                raise ValidationError(f"boundary_local[{i}] must be {dims[i]}x{dims[i]}")
            if self.boundary_up[i].shape != (dims[i], dims[i + 1]):
                raise ValidationError(
                    f"boundary_up[{i}] must be {dims[i]}x{dims[i + 1]}, "
                    f"got {self.boundary_up[i].shape}"
                )
            if self.boundary_down[i].shape != (dims[i + 1], dims[i]):
                raise ValidationError(
                    f"boundary_down[{i}] must be {dims[i + 1]}x{dims[i]}, "
                    f"got {self.boundary_down[i].shape}"
                )
        for name, mat in (("a0", self.a0), ("a1", self.a1), ("a2", self.a2)):
            if mat.shape != (self.m, self.m):
                raise ValidationError(f"{name} must be {self.m}x{self.m}, got {mat.shape}")

    # ------------------------------------------------------------------
    def _with_diagonal(self, local: np.ndarray, out_rates: np.ndarray) -> np.ndarray:
        """Return the local block with its proper negative diagonal."""
        block = local.copy()
        np.fill_diagonal(block, 0.0)
        np.fill_diagonal(block, -(block.sum(axis=1) + out_rates))
        return block

    def solve(self) -> QbdSolution:
        """Compute the stationary distribution (matrix-geometric form).

        Every failure path raises a typed :class:`~repro.robustness.ReproError`
        subclass; the returned solution carries :class:`SolverDiagnostics`.

        Inside an active :func:`repro.perf.sweep_cache` scope the full
        solution is memoized on the exact bytes of every block; a hit
        returns a shallow copy whose diagnostics carry ``cache_hit=True``.
        """
        cache = active_cache()
        if cache is None:
            return self._solve_uncached()
        key = self._solution_key()
        solution, status = cache.get_or_compute_with_status(
            "qbd-solution", key, self._solve_uncached
        )
        if status == "computed":
            return solution
        clone = copy.copy(solution)
        clone.diagnostics = replace(solution.diagnostics, cache_hit=True)
        return clone

    def _solution_key(self) -> tuple:
        """Exact-bytes cache key over every block defining this process."""
        return QbdProcess.solution_key_for_blocks(
            self.boundary_local,
            self.boundary_up,
            self.boundary_down,
            self.a0,
            self.a1,
            self.a2,
        )

    @staticmethod
    def solution_key_for_blocks(
        boundary_local: Sequence[np.ndarray],
        boundary_up: Sequence[np.ndarray],
        boundary_down: Sequence[np.ndarray],
        a0: np.ndarray,
        a1: np.ndarray,
        a2: np.ndarray,
    ) -> tuple:
        """The ``qbd-solution`` cache key for raw blocks, without paying for
        a :class:`QbdProcess` construction (validation never changes the
        bytes, so the key is identical either way).  The batched backend
        uses this to seed the cache under the exact scalar keys."""
        blocks = (
            *boundary_local,
            *boundary_up,
            *boundary_down,
            a0,
            a1,
            a2,
        )
        return (
            len(boundary_local),
            np.asarray(a1).shape[0],
            tuple(np.asarray(block).shape for block in blocks),
            b"".join(np.asarray(block).tobytes() for block in blocks),
        )

    def _solve_uncached(self) -> QbdSolution:
        with span("qbd.solve", boundary_levels=self.b, phases=self.m) as sp:
            solution = self._solve_uncached_inner()
            diag = solution.diagnostics
            if diag is not None:
                sp.set("method", diag.method)
                sp.set("spectral_radius", diag.spectral_radius)
                sp.set("boundary_residual", diag.boundary_residual)
        counter_inc("qbd.solves")
        if diag is not None and diag.wall_time is not None:
            observe("qbd.solve.seconds", diag.wall_time)
        return solution

    def _solve_uncached_inner(self) -> QbdSolution:
        start = time.perf_counter()
        b, m = self.b, self.m
        a1_full = self._with_diagonal(self.a1, self.a0.sum(axis=1) + self.a2.sum(axis=1))
        r, r_diag = solve_r_matrix_with_diagnostics(self.a0, a1_full, self.a2)
        r_scale = _block_scale(self.a0, a1_full, self.a2)
        r_residual = r_diag.residual if r_diag.residual is not None else 0.0

        if b == 0:
            # Level 0 is already repeating with no level below: local block
            # has only A0 leaving it.
            a1_level0 = self._with_diagonal(self.a1, self.a0.sum(axis=1))
            closing = a1_level0 + r @ self.a2
            pi0 = _solve_boundary_single(closing, r)
            # Trust assessment over the square analog of the lstsq system
            # (its last balance row replaced by the geometric norm row).
            square0 = closing.T.copy()
            square0[-1] = np.linalg.inv(np.eye(m) - r).sum(axis=1)
            trust_residual = float(np.abs(pi0 @ closing).max())
            cond_est, bound, verdict = _assess_trust(
                square0,
                trust_residual,
                max(1.0, float(np.abs(closing).max())),
                r,
                r_residual,
                r_scale,
            )
            solution = QbdSolution(
                [], pi0, r, 0, spectral_radius_hint=r_diag.spectral_radius
            )
            return self._finalize(
                solution,
                r_diag,
                boundary_residual=None,
                start=start,
                condition_estimate=cond_est,
                error_bound=bound,
                trust=verdict,
            )

        pi, residual, square, scale, offsets, dims = self._boundary_stage(r)
        cond_est, bound, verdict = _assess_trust(
            square, residual, scale, r, r_residual, r_scale
        )
        escalated = False
        bound_before = None
        spectral_hint = r_diag.spectral_radius
        if verdict == "suspect":
            candidate = self._escalate(r, a1_full, r_scale)
            if candidate is not None and candidate[-1] < bound:
                bound_before = bound
                r, pi, residual, r_residual, cond_est, bound = candidate
                verdict = trust_verdict(bound)
                escalated = True
                spectral_hint = None  # R moved; recompute sp(R) honestly

        boundary_pi = [pi[offsets[i] : offsets[i] + dims[i]] for i in range(b)]
        pi_b = pi[offsets[b] :]
        solution = QbdSolution(
            boundary_pi, pi_b, r, b, spectral_radius_hint=spectral_hint
        )
        return self._finalize(
            solution,
            r_diag,
            boundary_residual=residual,
            start=start,
            condition_estimate=cond_est,
            error_bound=bound,
            trust=verdict,
            escalated=escalated,
            error_bound_before_escalation=bound_before,
            residual=r_residual,
        )

    def _boundary_stage(
        self, r: np.ndarray, refined: bool = False
    ) -> tuple[np.ndarray, float, np.ndarray, float, np.ndarray, list]:
        """Assemble and solve the finite boundary system for a given R.

        Returns ``(pi, residual, square, scale, offsets, dims)``.  With
        ``refined=True`` the square solve runs through the compensated
        :func:`~repro.robustness.trust.refined_solve` (the precision-
        escalation rung); the default path is bit-identical to the
        historical inline solve.
        """
        b, m = self.b, self.m
        dims = [mat.shape[0] for mat in self.boundary_local] + [m]
        offsets = np.concatenate([[0], np.cumsum(dims)])
        total_dim = offsets[-1]

        # Assemble the finite linear system for levels 0..b.
        big = np.zeros((total_dim, total_dim))

        def put(i: int, j: int, block: np.ndarray) -> None:
            big[offsets[i] : offsets[i] + dims[i], offsets[j] : offsets[j] + dims[j]] += block

        for i in range(b):
            down_rates = (
                self.boundary_down[i - 1].sum(axis=1) if i > 0 else np.zeros(dims[0])
            )
            local = self._with_diagonal(
                self.boundary_local[i],
                self.boundary_up[i].sum(axis=1) + down_rates,
            )
            put(i, i, local)
            put(i, i + 1, self.boundary_up[i])
        for i in range(b):
            put(i + 1, i, self.boundary_down[i])
        # Level b local: diagonal accounts for its actual down block and A0.
        local_b = self._with_diagonal(
            self.a1, self.a0.sum(axis=1) + self.boundary_down[b - 1].sum(axis=1)
        )
        put(b, b, local_b + r @ self.a2)

        # pi @ big = 0 with normalization sum(boundary) + pi_b (I-R)^{-1} 1 = 1.
        i_minus_r_inv = np.linalg.inv(np.eye(m) - r)
        norm_row = np.ones(total_dim)
        norm_row[offsets[b] :] = i_minus_r_inv.sum(axis=1)
        # The balance equations have rank total_dim - 1 (one is redundant),
        # so replace one with the normalization row and solve the square
        # system — much cheaper than the SVD behind lstsq.  The residual is
        # checked against the *full* balance system below, so an unlucky
        # replacement (or a singular square matrix) falls back to least
        # squares before anything can go wrong silently.
        square = big.T.copy()
        square[-1] = norm_row
        rhs = np.zeros(total_dim)
        rhs[-1] = 1.0
        scale = max(1.0, np.abs(big).max())
        if refined:
            pi, ok = refined_solve(square, rhs)
            residual = float(np.abs(pi @ big).max()) if ok else float("inf")
        else:
            try:
                pi = np.linalg.solve(square, rhs)
                residual = float(np.abs(pi @ big).max())
            except np.linalg.LinAlgError:
                residual = float("inf")
        if residual > 1e-7 * scale:
            a = np.vstack([big.T, norm_row[None, :]])
            rhs_ls = np.zeros(total_dim + 1)
            rhs_ls[-1] = 1.0
            pi, *_ = np.linalg.lstsq(a, rhs_ls, rcond=None)
            residual = float(np.abs(pi @ big).max())
        if residual > 1e-7 * scale:
            raise ConvergenceError(
                "QBD boundary solve failed to balance",
                residual=residual,
                tolerance=1e-7 * scale,
            )
        # Reject materially negative probabilities before clipping can mask
        # them (least-squares noise is fine; structural negatives are not).
        pi = ensure_no_material_negatives(
            pi, "QBD boundary solution", tol=1e-9, balance_residual=residual
        )
        return pi, residual, square, scale, offsets, dims

    def _escalate(
        self, r: np.ndarray, a1_full: np.ndarray, r_scale: float
    ) -> "Optional[tuple]":
        """Precision-escalation rung for a ``suspect`` solve.

        One Newton polish of R (exact Kronecker linearization) plus a
        compensated extended-precision re-solve of the boundary system.
        Returns ``(r, pi, boundary_residual, r_residual, cond, bound)``
        or None when the rung failed; the caller accepts the candidate
        only if its bound strictly shrinks, so escalation can never make
        a result *less* trustworthy.
        """
        polished, r_residual, _ = newton_polish_r(r, self.a0, a1_full, self.a2)
        try:
            pi, residual, square, scale, _, _ = self._boundary_stage(
                polished, refined=True
            )
        except (ReproError, np.linalg.LinAlgError):
            return None
        counter_inc("qbd.trust.escalations")
        cond_est, bound, _ = _assess_trust(
            square, residual, scale, polished, r_residual, r_scale
        )
        return polished, pi, residual, r_residual, cond_est, bound

    def _finalize(
        self,
        solution: QbdSolution,
        r_diag: SolverDiagnostics,
        boundary_residual: Optional[float],
        start: float,
        condition_estimate: Optional[float] = None,
        error_bound: Optional[float] = None,
        trust: Optional[str] = None,
        escalated: bool = False,
        error_bound_before_escalation: Optional[float] = None,
        residual: Optional[float] = None,
    ) -> QbdSolution:
        """Attach full diagnostics and run the normalization sanity check."""
        solution.diagnostics = SolverDiagnostics(
            method=r_diag.method,
            rungs=r_diag.rungs,
            residual=residual if residual is not None else r_diag.residual,
            spectral_radius=solution.tail_spectral_radius,
            condition_i_minus_r=solution.condition_i_minus_r,
            boundary_residual=boundary_residual,
            iterations=r_diag.iterations,
            wall_time=time.perf_counter() - start,
            condition_estimate=condition_estimate,
            error_bound=error_bound,
            trust=trust,
            escalated=escalated,
            error_bound_before_escalation=error_bound_before_escalation,
        )
        total = solution.total_mass()
        if not 0.999999 < total < 1.000001:
            raise NumericalError(
                "QBD normalization failed",
                total_mass=total,
                spectral_radius=solution.tail_spectral_radius,
                condition_number=solution.condition_i_minus_r,
            )
        return solution


def cached_solution(key: tuple, compute) -> QbdSolution:
    """Memoize a full :class:`QbdSolution` under the active sweep scope.

    The analysis layers (CS-CQ, CS-ID) use this to skip not just the solve
    but the whole chain *assembly* when they can key the solution on their
    own defining inputs (rates plus the exact phase-type representations).
    A hit returns a shallow copy whose diagnostics carry ``cache_hit=True``;
    outside a scope this is exactly ``compute()``.
    """
    cache = active_cache()
    if cache is None:
        return compute()
    solution, status = cache.get_or_compute_with_status(
        "analysis-solution", key, compute
    )
    if status == "computed":
        return solution
    clone = copy.copy(solution)
    if solution.diagnostics is not None:
        clone.diagnostics = replace(solution.diagnostics, cache_hit=True)
    return clone


def _solve_boundary_single(local_plus_ra2: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Solve the no-boundary case: pi0 (A1 + R A2) = 0 with geometric norm."""
    m = r.shape[0]
    a = np.vstack([local_plus_ra2.T, np.linalg.inv(np.eye(m) - r).sum(axis=1)[None, :]])
    rhs = np.zeros(m + 1)
    rhs[-1] = 1.0
    pi0, *_ = np.linalg.lstsq(a, rhs, rcond=None)
    return ensure_no_material_negatives(pi0, "QBD level-0 solution", tol=1e-9)
