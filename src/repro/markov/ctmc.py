"""Finite continuous-time Markov chains (dense or sparse).

Used for the truncated-chain ablation (the paper argues truncation of the
2D-infinite CS-CQ chain is "neither sufficiently accurate nor robust" — we
reproduce that claim quantitatively) and for brute-force validation of the
QBD solver on finite state spaces.  Large truncated chains are held in
scipy sparse form; dense numpy arrays work as before for small chains.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import sparse

from ..robustness import (
    ConvergenceError,
    NumericalError,
    ValidationError,
    ensure_finite_array,
)

__all__ = ["Ctmc", "build_generator"]


def build_generator(rates: np.ndarray) -> np.ndarray:
    """Turn a nonnegative off-diagonal rate matrix into a proper generator.

    The diagonal is set to minus the row sums (any preexisting diagonal is
    ignored), making every row sum to zero.
    """
    rates = ensure_finite_array(rates, "rate matrix")
    if rates.ndim != 2 or rates.shape[0] != rates.shape[1]:
        raise ValidationError(f"rate matrix must be square, got shape {rates.shape}")
    if np.any((rates - np.diag(np.diag(rates))) < 0.0):
        raise ValidationError("off-diagonal rates must be nonnegative")
    generator = rates.copy()
    np.fill_diagonal(generator, 0.0)
    np.fill_diagonal(generator, -generator.sum(axis=1))
    return generator


def _build_generator_sparse(rates: "sparse.spmatrix") -> "sparse.csr_matrix":
    """Sparse counterpart of :func:`build_generator`."""
    rates = rates.tocsr().astype(float)
    if rates.shape[0] != rates.shape[1]:
        raise ValidationError(f"rate matrix must be square, got shape {rates.shape}")
    ensure_finite_array(rates.data, "rate matrix data")
    rates = rates - sparse.diags(rates.diagonal())
    if rates.nnz and rates.data.min() < 0.0:
        raise ValidationError("off-diagonal rates must be nonnegative")
    row_sums = np.asarray(rates.sum(axis=1)).ravel()
    return (rates - sparse.diags(row_sums)).tocsr()


class Ctmc:
    """A finite CTMC defined by its generator matrix.

    Parameters
    ----------
    generator:
        Square matrix with zero row sums, dense or scipy-sparse; or a
        nonnegative rate matrix whose diagonal will be overwritten (set
        ``is_rate_matrix=True``).
    """

    def __init__(self, generator, is_rate_matrix: bool = False):
        self._sparse = sparse.issparse(generator)
        if self._sparse:
            generator = (
                _build_generator_sparse(generator)
                if is_rate_matrix
                else generator.tocsr().astype(float)
            )
            row_sums = np.asarray(generator.sum(axis=1)).ravel()
            scale = 1.0 + (np.abs(generator.data).max() if generator.nnz else 0.0)
        else:
            generator = ensure_finite_array(generator, "generator")
            if is_rate_matrix:
                generator = build_generator(generator)
            row_sums = generator.sum(axis=1)
            scale = 1.0 + np.abs(generator).max()
        if np.any(np.abs(row_sums) > 1e-8 * scale):
            raise ValidationError(
                f"generator rows must sum to zero (max abs residual "
                f"{np.abs(row_sums).max():.3g}); pass is_rate_matrix=True to "
                "have diagonals filled in"
            )
        self.generator = generator
        self.n_states = generator.shape[0]

    def stationary_distribution(self) -> np.ndarray:
        """Solve ``pi Q = 0``, ``pi 1 = 1``.

        Small dense chains use least squares on the stacked system; large
        or sparse chains use a sparse direct solve with one (redundant)
        balance equation replaced by the normalization.  Raises if no
        normalizable solution is found (residual check).
        """
        q = self.generator
        n = self.n_states
        if self._sparse or n > 500:
            pi = self._stationary_sparse()
            residual = np.abs(q.T @ pi if self._sparse else pi @ q).max()
            scale = max(1.0, np.abs(q.data).max() if self._sparse else np.abs(q).max())
        else:
            # Stack the normalization constraint onto the transposed balance
            # equations; lstsq handles the rank-deficiency of Q^T gracefully.
            a = np.vstack([q.T, np.ones((1, n))])
            b = np.zeros(n + 1)
            b[-1] = 1.0
            pi, *_ = np.linalg.lstsq(a, b, rcond=None)
            residual = np.abs(pi @ q).max()
            scale = max(1.0, np.abs(q).max())
        if residual > 1e-7 * scale:
            raise ConvergenceError(
                "stationary solve failed to balance",
                residual=float(residual),
                tolerance=float(1e-7 * scale),
            )
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0.0:
            raise NumericalError(
                "stationary solve produced a zero vector", total_mass=float(total)
            )
        return pi / total

    def _stationary_sparse(self) -> np.ndarray:
        from scipy.sparse.linalg import spsolve

        n = self.n_states
        a = (self.generator if self._sparse else sparse.csr_matrix(self.generator))
        a = a.T.tolil()
        a[-1, :] = 1.0  # replace one (redundant) balance row by normalization
        b = np.zeros(n)
        b[-1] = 1.0
        return spsolve(a.tocsc(), b)

    def expected_value(self, values: Sequence[float]) -> float:
        """Return ``sum_i pi_i values_i`` under the stationary distribution."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n_states,):
            raise ValidationError(
                f"values must have shape ({self.n_states},), got {values.shape}"
            )
        return float(self.stationary_distribution() @ values)
