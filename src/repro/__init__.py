"""repro — Task Assignment with Cycle Stealing under Central Queue.

A complete, from-scratch reproduction of

    Harchol-Balter, Li, Osogami, Scheller-Wolf, Squillante.
    "Analysis of Task Assignment with Cycle Stealing under Central Queue."
    ICDCS 2003 (IBM Research Report RC23098).

Quickstart::

    from repro import SystemParameters, CsCqAnalysis, DedicatedAnalysis

    params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
    print(CsCqAnalysis(params).mean_response_time_short())   # cycle stealing
    # Dedicated would need rho_s < 1; cycle stealing extends stability.

Subpackages
-----------
``repro.distributions``
    Service-time distributions, transforms, three-moment Coxian fitting.
``repro.busy_periods``
    Busy-period moment algebra (``B_L``, ``B_{N+1}``, delay busy periods).
``repro.markov``
    Finite CTMCs and the matrix-analytic QBD solver.
``repro.queueing``
    M/M/1, M/G/1, M/G/1-with-setup, M/M/c closed forms.
``repro.core``
    The paper's analyses: CS-CQ (the contribution), CS-ID, Dedicated,
    stability theory (Theorem 1).
``repro.simulation``
    From-scratch discrete-event simulators for all five policies.
``repro.workloads``
    The paper's workload cases and synthetic supercomputing traces.
``repro.experiments``
    Regeneration of every figure/table plus validation and ablations.
``repro.robustness``
    Typed errors, solver diagnostics, graceful degradation.
``repro.orchestration``
    Crash-safe sweeps: process isolation, checkpoints, resume, faults.
"""

from .core import (
    CsCqAnalysis,
    CsCqTruncatedChain,
    CsIdAnalysis,
    DedicatedAnalysis,
    LongHostCycle,
    SystemParameters,
    UnstableSystemError,
    cs_cq_is_stable,
    cs_cq_max_rho_s,
    cs_id_is_stable,
    cs_id_max_rho_s,
    dedicated_is_stable,
)
from .robustness import (
    ConvergenceError,
    IllConditionedError,
    NearBoundaryWarning,
    NumericalError,
    ReproError,
    SolverDiagnostics,
    ValidationError,
)
from .simulation import simulate, simulate_replications

__version__ = "1.0.0"

__all__ = [
    "ConvergenceError",
    "CsCqAnalysis",
    "CsCqTruncatedChain",
    "CsIdAnalysis",
    "DedicatedAnalysis",
    "IllConditionedError",
    "LongHostCycle",
    "NearBoundaryWarning",
    "NumericalError",
    "ReproError",
    "SolverDiagnostics",
    "SystemParameters",
    "UnstableSystemError",
    "ValidationError",
    "__version__",
    "cs_cq_is_stable",
    "cs_cq_max_rho_s",
    "cs_id_is_stable",
    "cs_id_max_rho_s",
    "dedicated_is_stable",
    "simulate",
    "simulate_replications",
]
