"""Scenario queries and their answers.

A :class:`ScenarioQuery` is one capacity-planning question — "at these
loads and size statistics, which policy keeps E[T_S] under x?" — plus a
**deadline budget**: the wall-clock allowance the service may spend
answering it.  A :class:`ServiceAnswer` is what comes back: per-policy
values, the verdict against the threshold, and — centrally — the
**fidelity** level that actually produced the numbers, with the full
rung-attempt log, so a degraded answer can never masquerade as an exact
one.

Both are plain serializable dataclasses: queries load from JSON batch
files (``python -m repro serve --batch``), answers serialize into the
service manifest.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional

from ..workloads import WorkloadCase, case_by_name

__all__ = [
    "FIDELITY_LEVELS",
    "POLICIES",
    "ScenarioQuery",
    "ServiceAnswer",
]

#: Answer sources, best first.  The service's fidelity ladder walks them
#: in this order; every answer is tagged with the level that produced it.
#:
#: ``exact``      full QBD analysis, invariant contracts evaluated
#: ``cached``     a previously computed exact answer served from the
#:                sweep cache (bit-identical numbers, no solve)
#: ``truncated``  truncated-2D-chain approximation (CS-CQ) plus closed
#:                forms where available
#: ``bound``      coarse stability-region bounds only (closed form)
FIDELITY_LEVELS = ("exact", "cached", "truncated", "bound")

#: Policies every query is answered for (the paper's three).
POLICIES = ("Dedicated", "CS-ID", "CS-CQ")


@dataclass(frozen=True)
class ScenarioQuery:
    """One scenario question with a deadline budget.

    Attributes
    ----------
    rho_s, rho_l:
        Per-host loads of the point being asked about.
    case:
        Workload-case fields (mean sizes / SCVs), as accepted by
        :class:`~repro.workloads.WorkloadCase`.
    threshold:
        Optional SLA bound x on ``E[T_S]``; the answer's verdict lists
        the policies that keep the mean short response under it.
    deadline:
        Wall-clock budget in seconds, started at admission.  ``None``
        uses the service default.
    label:
        Identifier used in spans, manifests, and fault-injection
        matching; auto-derived when empty.
    """

    rho_s: float
    rho_l: float
    case: "dict[str, Any]" = field(default_factory=dict)
    threshold: "Optional[float]" = None
    deadline: "Optional[float]" = None
    label: str = ""

    def workload(self) -> WorkloadCase:
        """The query's :class:`~repro.workloads.WorkloadCase`."""
        fields = dict(self.case)
        name = fields.pop("name", None)
        if name is not None and not fields:
            return case_by_name(str(name))
        return WorkloadCase(name=str(name or "custom"), **fields)

    def resolved_label(self) -> str:
        """The explicit label, or a canonical one derived from the point."""
        if self.label:
            return self.label
        name = self.case.get("name", "custom")
        return f"query {name} rho_s={self.rho_s:g} rho_l={self.rho_l:g}"

    @classmethod
    def from_dict(cls, data: "dict[str, Any]") -> "ScenarioQuery":
        """Build a query from a JSON object (one entry of a batch file)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: SLF001
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown query field(s) {sorted(unknown)}; expected {sorted(known)}"
            )
        if "rho_s" not in data or "rho_l" not in data:
            raise ValueError("a query needs at least rho_s and rho_l")
        return cls(**data)

    def as_dict(self) -> "dict[str, Any]":
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return asdict(self)


@dataclass(frozen=True)
class ServiceAnswer:
    """What the service returns for one admitted query.

    ``status`` is ``"answered"`` or ``"rejected"``; a rejected answer
    carries the typed error payload instead of values.  ``fidelity`` is
    the :data:`FIDELITY_LEVELS` entry that actually produced ``values``;
    ``attempts`` is the per-rung log (name, accepted, error/timing) that
    justifies the tag.  ``bounds`` are the coarse certified bounds on
    ``E[T_S]`` per policy — also used to validate higher-fidelity rungs,
    so a corrupted exact solve degrades instead of lying.
    """

    label: str
    status: str
    fidelity: "Optional[str]" = None
    values: "dict[str, float] | None" = None
    bounds: "dict[str, Any] | None" = None
    verdict: "dict[str, Any] | None" = None
    attempts: "tuple[dict, ...]" = ()
    error: "dict | None" = None
    elapsed: float = 0.0
    deadline: "Optional[float]" = None
    retries: int = 0

    @property
    def answered(self) -> bool:
        """True when the query produced usable values."""
        return self.status == "answered"

    @property
    def degraded(self) -> bool:
        """True when the answer came from below the top fidelity level."""
        return self.answered and self.fidelity != FIDELITY_LEVELS[0]

    def as_dict(self) -> "dict[str, Any]":
        """JSON-ready form for the service manifest."""
        return {
            "label": self.label,
            "status": self.status,
            "fidelity": self.fidelity,
            "values": self.values,
            "bounds": self.bounds,
            "verdict": self.verdict,
            "attempts": list(self.attempts),
            "error": self.error,
            "elapsed": self.elapsed,
            "deadline": self.deadline,
            "retries": self.retries,
        }
