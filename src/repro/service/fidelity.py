"""Answer-source fidelity ladder for scenario queries.

PR 1's :func:`~repro.robustness.run_fallback_ladder` generalizes *solver
variants*; this module generalizes the idea to *answer sources*.  A query
is answered by the best source the deadline budget (and the fault
weather) allows:

``exact``
    Full QBD analyses of all three policies, invariant contracts
    evaluated, result validated against the coarse bounds.  Populates
    the service's shared sweep cache.
``cached``
    A previously computed exact answer for the identical point, served
    straight from the cache — bit-identical numbers at microsecond cost.
    Never computes on a miss.
``truncated``
    The truncated-2D-chain approximation the paper critiques (good
    enough when the exact solve is unaffordable): CS-CQ from a
    budget-sized truncation, Dedicated from the closed-form M/G/1
    answer; CS-ID is not available at this fidelity and reports NaN.
``bound``
    Closed-form stability-region bounds only: ``E[S_s] <= E[T_S]`` and,
    inside the Dedicated stability region, the policy-dominance upper
    bound ``E[T_S] <= E[T_S]^Dedicated`` (cycle stealing only helps
    shorts).  Microseconds, always available for a valid point.

The bounds double as a *validator* for the higher rungs: an exact or
truncated value outside the certified interval is rejected (the rung
fails, the ladder descends) — a silently corrupted solve degrades the
answer's fidelity tag instead of lying through it.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..core import (
    CsCqAnalysis,
    CsCqPhAnalysis,
    CsCqTruncatedChain,
    CsIdAnalysis,
    CsIdPhAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    UnstableSystemError,
    cs_cq_is_stable,
    cs_id_is_stable,
    dedicated_is_stable,
)
from ..distributions import Exponential
from ..orchestration.spec import point_key
from ..perf import SweepCache
from ..queueing import Mg1Queue
from ..robustness import ContractViolation
from .query import POLICIES, ScenarioQuery

__all__ = [
    "BOUNDS_SLACK",
    "answer_key",
    "bound_values",
    "cached_rung",
    "coarse_bounds",
    "exact_rung",
    "store_answer",
    "truncated_rung",
    "validate_against_bounds",
    "verdict_for",
]

#: Relative slack allowed when validating a rung's values against the
#: coarse bounds: dominance holds exactly in theory, but degraded solves
#: near the stability boundary carry a few percent of numerical error.
BOUNDS_SLACK = 0.05

#: Truncation sizes for the ``truncated`` rung, largest first; the rung
#: picks the biggest whose rough cost estimate fits the remaining budget.
TRUNCATION_SIZES = (60, 40, 24)

_INF = float("inf")


def answer_key(query: ScenarioQuery) -> str:
    """Cache key of a query's answer: content hash of the scenario point.

    The label, threshold and deadline are deliberately excluded — two
    queries about the same point share an answer regardless of how they
    were phrased or budgeted.
    """
    case = query.workload()
    return point_key(
        "service-answer",
        {
            "rho_s": float(query.rho_s),
            "rho_l": float(query.rho_l),
            "mean_short": case.mean_short,
            "mean_long": case.mean_long,
            "short_scv": case.short_scv,
            "long_scv": case.long_scv,
        },
    )


# --------------------------------------------------------------------------- #
# Coarse bounds (the ladder's floor, and every rung's validator)
# --------------------------------------------------------------------------- #


def coarse_bounds(query: ScenarioQuery) -> "dict[str, dict[str, Any]]":
    """Certified closed-form bounds on ``E[T_S]`` per policy.

    For each policy: ``stable`` (Theorem 1), ``lower`` (the mean short
    size — response includes service), and ``upper`` (the Dedicated
    M/G/1 closed form where it applies, by short-job policy dominance;
    ``inf`` when Dedicated is unstable but the policy itself still is
    stable, since the dominance argument then gives no finite cap).
    """
    case = query.workload()
    rho_s, rho_l = float(query.rho_s), float(query.rho_l)
    lower = case.mean_short
    dedicated_stable = dedicated_is_stable(rho_s, rho_l)
    if dedicated_stable and rho_s > 0:
        params = case.params(rho_s, rho_l)
        dedicated_upper = Mg1Queue(params.lam_s, params.short_service).mean_response_time()
    elif dedicated_stable:
        dedicated_upper = lower  # no arrivals: response is pure service
    else:
        dedicated_upper = _INF
    bounds: "dict[str, dict[str, Any]]" = {}
    for policy, stable in (
        ("Dedicated", dedicated_stable),
        ("CS-ID", cs_id_is_stable(rho_s, rho_l)),
        ("CS-CQ", cs_cq_is_stable(rho_s, rho_l)),
    ):
        if not stable:
            bounds[policy] = {"stable": False, "lower": _INF, "upper": _INF}
        else:
            # Dominance: cycle stealing only helps shorts, so Dedicated's
            # closed form caps CS-ID and CS-CQ wherever it is finite.
            bounds[policy] = {"stable": True, "lower": lower, "upper": dedicated_upper}
    return bounds


def bound_values(bounds: "dict[str, dict[str, Any]]") -> "dict[str, float]":
    """The ``bound`` rung's answer: the conservative (upper) estimates.

    SLA planning must not promise what the bound cannot certify, so the
    reported value is the upper end of the interval; an unstable policy
    reports ``inf``.
    """
    return {
        policy: (_INF if not b["stable"] else float(b["upper"]))
        for policy, b in bounds.items()
    }


def validate_against_bounds(
    values: "dict[str, float]",
    bounds: "dict[str, dict[str, Any]]",
    slack: float = BOUNDS_SLACK,
) -> None:
    """Reject values outside the certified bounds (within ``slack``).

    Raises :class:`~repro.robustness.ContractViolation` naming the first
    offending policy.  Non-finite values (unstable / not-computed) are
    exempt — the bounds only certify finite answers.
    """
    for policy, value in values.items():
        if policy not in bounds or value is None or not math.isfinite(value):
            continue
        b = bounds[policy]
        if not b["stable"]:
            raise ContractViolation(
                f"{policy}: finite E[T_S] reported for an unstable policy",
                contract="service-answer-bounds",
                observed=value,
            )
        lower, upper = float(b["lower"]), float(b["upper"])
        if value < lower * (1.0 - slack):
            raise ContractViolation(
                f"{policy}: E[T_S] below the service-time floor",
                contract="service-answer-bounds",
                observed=value,
                expected=lower,
                tolerance=slack,
            )
        if math.isfinite(upper) and value > upper * (1.0 + slack):
            raise ContractViolation(
                f"{policy}: E[T_S] above the Dedicated dominance bound",
                contract="service-answer-bounds",
                observed=value,
                expected=upper,
                tolerance=slack,
            )


# --------------------------------------------------------------------------- #
# Rungs
# --------------------------------------------------------------------------- #


def exact_rung(query: ScenarioQuery) -> "dict[str, float]":
    """Full-fidelity answer: QBD analyses plus invariant contracts.

    Per-policy ``E[T_S]``; an unstable policy reports ``inf``.  Evaluated
    contracts that fail raise :class:`ContractViolation` (the rung is
    rejected; the ladder descends).  The rung always solves fresh — the
    *service* stores the values under :func:`answer_key` only after they
    survive bounds validation, so the cache never holds a corrupted
    answer (see :func:`store_answer`).
    """
    case = query.workload()
    params = case.params(float(query.rho_s), float(query.rho_l))
    exponential_shorts = isinstance(params.short_service, Exponential)
    classes = {
        "Dedicated": DedicatedAnalysis,
        "CS-ID": CsIdAnalysis if exponential_shorts else CsIdPhAnalysis,
        "CS-CQ": CsCqAnalysis if exponential_shorts else CsCqPhAnalysis,
    }
    values: "dict[str, float]" = {}
    captured: "dict[str, Any]" = {}
    for policy in POLICIES:
        try:
            analysis = classes[policy](params)
            values[policy] = float(analysis.mean_response_time_short())
            captured[policy] = analysis
        except UnstableSystemError:
            values[policy] = _INF
    from ..contracts import contracts_enabled, evaluate

    if contracts_enabled():
        for policy, analysis in captured.items():
            for result in evaluate("analysis", analysis, params=params):
                if not result.passed:
                    raise result.as_violation()
    # An exact answer whose own error bound says the leading digits are
    # in doubt is worse than an honest approximation: refuse the rung so
    # the ladder descends and the answer is served at a fidelity whose
    # label matches its accuracy.
    for policy, analysis in captured.items():
        diag = getattr(analysis, "solver_diagnostics", None)
        if diag is not None and diag.trust == "untrusted":
            raise ContractViolation(
                f"{policy}: exact solve untrusted "
                f"(error bound {diag.error_bound!r})",
                contract="trust",
                observed=diag.error_bound,
            )
    return values


def store_answer(
    query: ScenarioQuery, values: "dict[str, float]", cache: "SweepCache | None"
) -> None:
    """Publish a *validated* exact answer for later ``cached``-rung replay."""
    if cache is None:
        return
    frozen = dict(values)
    cache.get_or_compute("service-answer", answer_key(query), lambda: frozen)


def cached_rung(
    query: ScenarioQuery, cache: "SweepCache | None"
) -> "Optional[dict[str, float]]":
    """Serve a previously computed exact answer, or None on a miss.

    This rung never computes: a hit is bit-identical to the exact answer
    it replays (and costs microseconds); a miss simply falls through to
    the next rung.  When the service's cache carries a persistent store
    tier (``REPRO_STORE``), the lookup also consults it — validated
    answers then survive restarts, and a restarted service replays them
    instead of re-solving.
    """
    if cache is None:
        return None
    found, value = cache.lookup("service-answer", answer_key(query))
    if not found:
        return None
    return dict(value)


def truncated_rung(
    query: ScenarioQuery, budget_remaining: float = _INF
) -> "dict[str, float]":
    """Truncated-chain approximation (exponential sizes only).

    CS-CQ comes from a :class:`~repro.core.CsCqTruncatedChain` whose
    truncation size shrinks with the remaining budget; Dedicated from the
    exact M/G/1 closed form; CS-ID reports NaN (no cheap approximation
    exists at this fidelity — the verdict marks it ``unknown``).
    """
    case = query.workload()
    params = case.params(float(query.rho_s), float(query.rho_l))
    values: "dict[str, float]" = {}
    rho_s, rho_l = float(query.rho_s), float(query.rho_l)
    if dedicated_is_stable(rho_s, rho_l):
        values["Dedicated"] = (
            Mg1Queue(params.lam_s, params.short_service).mean_response_time()
            if rho_s > 0
            else case.mean_short
        )
    else:
        values["Dedicated"] = _INF
    values["CS-ID"] = float("nan")
    if not cs_cq_is_stable(rho_s, rho_l):
        values["CS-CQ"] = _INF
        return values
    # Rough cost model: a size-n truncation is O(n^2) states; stay well
    # under the budget so the coordinator's per-rung timeout rarely fires.
    size = TRUNCATION_SIZES[-1]
    for candidate in TRUNCATION_SIZES:
        if budget_remaining >= (candidate / 40.0) ** 2 * 0.25:
            size = candidate
            break
    result = CsCqTruncatedChain(params, max_short=size, max_long=size).solve()
    values["CS-CQ"] = float(result.mean_response_time_short)
    return values


def verdict_for(
    values: "dict[str, float]",
    bounds: "dict[str, dict[str, Any]]",
    threshold: "Optional[float]",
    fidelity: str,
) -> "Optional[dict[str, Any]]":
    """Which policies keep ``E[T_S]`` under the threshold, at this fidelity.

    ``meets`` / ``fails`` / ``unknown`` partition the policies.  For the
    ``bound`` fidelity the reported values are upper bounds, so ``meets``
    is certified but a value above the threshold is only ``fails`` when
    the *lower* bound already exceeds it (otherwise ``unknown``).
    """
    if threshold is None:
        return None
    meets, fails, unknown = [], [], []
    for policy in POLICIES:
        value = values.get(policy)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            unknown.append(policy)
        elif value <= threshold:
            meets.append(policy)
        elif fidelity == "bound" and bounds.get(policy, {}).get("stable") and (
            float(bounds[policy]["lower"]) <= threshold
        ):
            # The upper bound overshoots but the interval straddles the
            # threshold: the coarse rung genuinely does not know.
            unknown.append(policy)
        else:
            fails.append(policy)
    return {
        "threshold": threshold,
        "meets": meets,
        "fails": fails,
        "unknown": unknown,
    }


def params_for(query: ScenarioQuery) -> SystemParameters:
    """The query's :class:`~repro.core.SystemParameters` (validated)."""
    return query.workload().params(float(query.rho_s), float(query.rho_l))
