"""Thread-safe fault analogues for the query service.

The sweep runner's chaos harness (:mod:`repro.orchestration.faults`)
targets worker *subprocesses*: an injected ``crash`` calls ``os._exit``,
an injected ``hang`` relies on the runner reaping the whole process.
The query service runs rungs on *threads* of the serving process, so the
same environment-variable fault spec is re-interpreted with thread-safe
semantics — one spec, one ``inject_faults`` context manager, two
harnesses:

- ``crash``      raises :class:`SimulatedWorkerCrash` — a *transient*
                 typed error that heals after ``REPRO_FAULT_CRASH_TIMES``
                 firings per label (default 1), so retry-with-backoff
                 recovers; raise the count past the retry cap to feed the
                 circuit breaker instead;
- ``hang``       sleeps ``REPRO_FAULT_HANG_SECONDS`` — the coordinator's
                 per-rung ``asyncio.wait_for`` must abandon the rung and
                 descend the ladder;
- ``numerical``  raises :class:`~repro.robustness.NumericalError` with
                 ``injected=True`` (non-transient: the rung is rejected,
                 no retry);
- ``perturb``    no fault at solve time — the service multiplies the
                 rung's finite values by ``REPRO_FAULT_PERTURB_FACTOR``
                 *before* bounds validation, simulating a silently wrong
                 solve that only the coarse-bounds validator can catch.

Faults match on the query label (``ScenarioQuery.resolved_label()``),
exactly as runner faults match on point labels.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import Counter

from ..orchestration.faults import fault_for, hang_seconds, perturb_factor
from ..robustness import NumericalError, ReproError

__all__ = [
    "ENV_CRASH_TIMES",
    "SimulatedWorkerCrash",
    "apply_perturbation",
    "maybe_fault",
    "reset_crash_counts",
]

#: How many times a ``crash`` fault fires per query label before the
#: fault "heals" (default 1: the crash is *transient*, so one retry
#: recovers).  Raise it past the retry policy's attempt cap to simulate
#: a persistently crashing region that must trip the circuit breaker.
ENV_CRASH_TIMES = "REPRO_FAULT_CRASH_TIMES"

_crash_lock = threading.Lock()
_crash_counts: "Counter[str]" = Counter()


def crash_times() -> int:
    """Crashes per label before the injected fault heals (env override)."""
    return int(os.environ.get(ENV_CRASH_TIMES, "1"))


def reset_crash_counts() -> None:
    """Forget per-label crash history (tests call this between scenarios)."""
    with _crash_lock:
        _crash_counts.clear()


class SimulatedWorkerCrash(ReproError):
    """An injected worker-thread crash (the in-process stand-in for os._exit).

    Deliberately *transient*: the service's retry-with-backoff treats it
    like a recoverable worker fault, and only repeated occurrences trip
    the circuit breaker for the parameter region.
    """


def maybe_fault(label: str) -> None:
    """Trigger the injected fault matching ``label``, thread-safely.

    Called at the top of every solver rung running on a worker thread.
    Unknown/absent faults and ``perturb`` are no-ops here (perturbation
    corrupts *values*, not execution — see :func:`apply_perturbation`).
    """
    mode = fault_for(label)
    if mode is None or mode == "perturb":
        return
    if mode == "crash":
        with _crash_lock:
            fired = _crash_counts[label]
            if fired >= crash_times():
                return  # the transient fault has healed; attempt succeeds
            _crash_counts[label] = fired + 1
        raise SimulatedWorkerCrash(
            f"injected worker crash while answering {label!r}", injected=True
        )
    if mode == "hang":
        time.sleep(hang_seconds())
        return
    raise NumericalError(
        f"injected numerical fault while answering {label!r}", injected=True
    )


def apply_perturbation(label: str, values: "dict[str, float]") -> "dict[str, float]":
    """Corrupt a rung's finite values if a ``perturb`` fault matches.

    Returns the values unchanged when no perturbation is injected.  The
    corruption happens *before* bounds validation, so an honest service
    must catch the (grossly) perturbed exact answer against the coarse
    bounds and descend the ladder instead of serving it as ``exact``.
    """
    factor = perturb_factor(label)
    if factor is None:
        return values
    return {
        policy: (value * factor if isinstance(value, float) and math.isfinite(value) else value)
        for policy, value in values.items()
    }
