"""Graceful-degradation scenario-query service.

A long-lived, stdlib-only (``asyncio`` + thread pool) front end over the
paper's solvers: clients ask capacity-planning questions — *"at these
loads, which policy keeps E[T_S] under x?"* — each with a wall-clock
deadline budget, and the service answers at the best **fidelity** the
budget and the fault weather allow instead of timing out or lying:

``exact`` → ``cached`` → ``truncated`` → ``bound``

Overload is shed at admission (typed
:class:`~repro.robustness.ServiceOverloadError` with a retry-after
hint); repeated solver failures in a parameter region trip a circuit
breaker; transient worker faults are retried with jittered backoff; and
every answer carries the fidelity tag plus the rung-attempt log that
justifies it, checked by the ``service-answer`` contracts.

Entry points: ``python -m repro serve --batch queries.json`` for batch
mode, :class:`QueryService` for programmatic use, and the chaos harness
in ``tests/test_service_chaos.py`` for the survival guarantees.  See
``docs/robustness.md`` §8.
"""

from .chaos import SimulatedWorkerCrash
from .fidelity import coarse_bounds
from .query import FIDELITY_LEVELS, POLICIES, ScenarioQuery, ServiceAnswer
from .service import QueryService

__all__ = [
    "FIDELITY_LEVELS",
    "POLICIES",
    "QueryService",
    "ScenarioQuery",
    "ServiceAnswer",
    "SimulatedWorkerCrash",
    "coarse_bounds",
]
