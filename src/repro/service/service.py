"""The graceful-degradation query service.

:class:`QueryService` answers batches of :class:`~.query.ScenarioQuery`
capacity-planning questions from a long-lived process, degrading
*predictably* instead of failing when solvers are slow, faulty, or the
service is overloaded:

- **Admission control.**  At most ``queue_limit`` queries are in flight;
  beyond that, new work is shed immediately with a typed
  :class:`~repro.robustness.ServiceOverloadError` carrying a
  ``retry_after`` hint — a fast honest *no* instead of a slow timeout.
- **Deadline budgets.**  Each admitted query starts a
  :class:`~repro.orchestration.DeadlineBudget`; every rung of the
  fidelity ladder converts ``remaining()`` into an ``asyncio.wait_for``
  timeout, so one user-facing promise bounds all solver work below it.
- **Fidelity ladder.**  Rungs from :mod:`.fidelity`, best first:
  ``exact`` → ``cached`` → ``truncated`` → ``bound``.  Every answer is
  tagged with the level actually used plus the per-rung attempt log.
- **Honesty by validation.**  Exact and truncated values must fall
  inside the closed-form coarse bounds; a silently corrupted solve
  (chaos mode ``perturb``) is rejected and the ladder descends, so the
  fidelity tag never overstates the answer.
- **Circuit breaker.**  Repeated exact-solver failures in a parameter
  region (bucketed loads) open the breaker for that region; while open,
  the exact rung is skipped outright and queries degrade immediately.
- **Retry with backoff.**  Transient worker faults
  (:class:`~.chaos.SimulatedWorkerCrash`) are retried with decorrelated
  jitter inside the rung's deadline slice.

Everything is observable: per-query spans (``service.query``), counters
(``service.submitted/answered/shed/rejected/degraded/retried`` and
``service.fidelity.<level>``), and a JSON manifest whose totals are
derived from the answers themselves — tests assert they match the
telemetry counters exactly.
"""

from __future__ import annotations

import asyncio
import math
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence

from ..orchestration.deadline import DeadlineBudget
from ..perf import SweepCache
from ..robustness import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitOpenError,
    ContractViolation,
    DeadlineExceededError,
    ReproError,
    ServiceOverloadError,
    atomic_write_json,
    retry_with_backoff,
)
from ..telemetry import counter_inc, registry, span
from . import fidelity as F
from .chaos import SimulatedWorkerCrash, apply_perturbation, maybe_fault
from .query import FIDELITY_LEVELS, ScenarioQuery, ServiceAnswer

__all__ = ["QueryService"]

#: Minimum budget slice (seconds) worth starting an exact solve with.
EXACT_MIN_BUDGET = 0.05

#: Budget slice reserved below each expensive rung so the ladder always
#: has time left to fall back to the closed-form floor.
LADDER_RESERVE = 0.02

#: Telemetry counters the manifest cross-checks (service-owned ones).
_SERVICE_COUNTERS = (
    "service.submitted",
    "service.answered",
    "service.shed",
    "service.rejected",
    "service.degraded",
    "service.retried",
)


def _error_payload(exc: BaseException) -> "dict[str, Any]":
    payload: "dict[str, Any]" = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    context = getattr(exc, "context", None)
    if context:
        payload["context"] = {k: repr(v) for k, v in context.items()}
    return payload


class QueryService:
    """Long-lived, deadline-aware scenario-query service (stdlib only).

    Parameters
    ----------
    workers:
        Solver threads.  Expensive rungs run here; cheap rungs (cache
        replay, closed-form bounds) run on the coordinator so an answer
        can always be produced even when every worker is wedged.
    queue_limit:
        Maximum queries in flight before admission control sheds.
    default_deadline:
        Budget (seconds) for queries that do not carry their own.
    cache:
        Shared :class:`~repro.perf.SweepCache` backing the ``cached``
        rung; a private one is created when omitted, bounded by
        ``max_cache_entries`` and attached to the persistent store the
        ``REPRO_STORE`` environment asks for (so validated answers
        survive restarts).  A caller-supplied cache is used as-is.
    max_cache_entries:
        LRU bound for the private cache.  The service is the one
        long-lived cache owner in the codebase — unbounded, it would
        grow for the life of the process.
    breaker:
        Circuit breaker guarding the exact rung, keyed by
        :meth:`region_key`.
    retry_policy:
        Backoff policy for transient worker faults inside a rung.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        queue_limit: int = 16,
        default_deadline: "float | None" = 5.0,
        cache: "SweepCache | None" = None,
        max_cache_entries: "int | None" = 4096,
        breaker: "CircuitBreaker | None" = None,
        retry_policy: "BackoffPolicy | None" = None,
        name: str = "service",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        self.default_deadline = default_deadline
        self.name = name
        if cache is None:
            from ..perf.store import store_from_env

            cache = SweepCache(
                max_entries=max_cache_entries, store=store_from_env()
            )
        self.cache = cache
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, cooldown=5.0
        )
        self.retry_policy = retry_policy if retry_policy is not None else BackoffPolicy(
            base=0.01, cap=0.25, max_attempts=3
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=f"repro-{name}"
        )
        self._inflight = 0
        self._closed = False

    # ----------------------------------------------------------------- #
    # Lifecycle
    # ----------------------------------------------------------------- #

    def close(self) -> None:
        """Stop accepting work and release the worker threads.

        Abandoned rungs (hung solves past their timeout) cannot be
        cancelled mid-solve; their threads die with the process.
        """
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- #
    # Admission
    # ----------------------------------------------------------------- #

    @staticmethod
    def region_key(query: ScenarioQuery) -> str:
        """Circuit-breaker bucket: loads rounded down to a 0.1 grid.

        A pathological corner of the parameter space (say, near the
        CS-CQ stability boundary) trips the breaker for *that* region
        without denying exact answers everywhere else.
        """
        bucket_s = math.floor(float(query.rho_s) * 10.0) / 10.0
        bucket_l = math.floor(float(query.rho_l) * 10.0) / 10.0
        return f"rho_s~{bucket_s:g},rho_l~{bucket_l:g}"

    def _retry_after_hint(self) -> float:
        """Rough time until a slot frees: in-flight work over worker count."""
        per_query = self.default_deadline if self.default_deadline else 1.0
        return round(max(0.1, per_query * self._inflight / self.workers), 3)

    async def submit(self, query: ScenarioQuery) -> ServiceAnswer:
        """Admit and answer one query (or shed it).

        Raises :class:`~repro.robustness.ServiceOverloadError` when the
        admission queue is full — callers that prefer a manifest row over
        an exception should use :meth:`run_batch_async`.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        counter_inc("service.submitted")
        if self._inflight >= self.queue_limit:
            counter_inc("service.shed")
            raise ServiceOverloadError(
                f"admission queue full ({self._inflight} in flight, "
                f"limit {self.queue_limit})",
                retry_after=self._retry_after_hint(),
                queue_limit=self.queue_limit,
            )
        self._inflight += 1
        try:
            return await self._answer(query)
        finally:
            self._inflight -= 1

    # ----------------------------------------------------------------- #
    # The ladder coordinator
    # ----------------------------------------------------------------- #

    async def _run_on_worker(
        self, fn: Callable[[], Any], budget: DeadlineBudget, stage: str
    ) -> Any:
        """Run ``fn`` on a worker thread under the budget's remaining slice.

        A timed-out rung is *abandoned* (threads cannot be killed); the
        coordinator keeps the reserve slice so cheaper rungs still fit.
        """
        timeout = budget.require(LADDER_RESERVE, stage) - LADDER_RESERVE
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, fn)
        # An abandoned rung may error long after we stopped listening;
        # retrieve the exception so asyncio doesn't log it as lost.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        if math.isinf(timeout):
            return await future
        return await asyncio.wait_for(asyncio.shield(future), timeout)

    def _solve_exact(
        self, query: ScenarioQuery, label: str, budget: DeadlineBudget,
        note_retry: Callable[..., None],
    ) -> "dict[str, float]":
        def attempt() -> "dict[str, float]":
            maybe_fault(label)
            return F.exact_rung(query)

        return retry_with_backoff(
            attempt,
            policy=self.retry_policy,
            retry_on=SimulatedWorkerCrash,
            description=f"exact solve for {label}",
            give_up_after=max(0.0, budget.remaining() - LADDER_RESERVE),
            on_retry=note_retry,
        )

    def _solve_truncated(
        self, query: ScenarioQuery, label: str, budget: DeadlineBudget,
        note_retry: Callable[..., None],
    ) -> "dict[str, float]":
        def attempt() -> "dict[str, float]":
            maybe_fault(label)
            return F.truncated_rung(query, budget.remaining())

        return retry_with_backoff(
            attempt,
            policy=self.retry_policy,
            retry_on=SimulatedWorkerCrash,
            description=f"truncated solve for {label}",
            give_up_after=max(0.0, budget.remaining() - LADDER_RESERVE),
            on_retry=note_retry,
        )

    async def _answer(self, query: ScenarioQuery) -> ServiceAnswer:
        label = query.resolved_label()
        deadline = query.deadline if query.deadline is not None else self.default_deadline
        budget = DeadlineBudget(deadline)
        attempts: "list[dict[str, Any]]" = []
        retries = 0

        def note_retry(attempt: int, error: BaseException, delay: float) -> None:
            nonlocal retries
            retries += 1
            counter_inc("service.retried")

        with span("service.query", label=label, deadline=deadline) as sp:
            try:
                bounds = F.coarse_bounds(query)
            except (ReproError, ValueError, KeyError, TypeError) as exc:
                # The point itself is malformed; no fidelity level can
                # answer it.  Reject, do not degrade.
                counter_inc("service.rejected")
                sp.set("status", "rejected")
                return ServiceAnswer(
                    label=label,
                    status="rejected",
                    error=_error_payload(exc),
                    attempts=tuple(attempts),
                    elapsed=budget.elapsed(),
                    deadline=deadline,
                )

            values, level = await self._descend(
                query, label, budget, bounds, attempts, note_retry
            )
            if values is None:
                counter_inc("service.rejected")
                sp.set("status", "rejected")
                exc = DeadlineExceededError(
                    f"deadline budget exhausted before any fidelity level "
                    f"could answer {label!r}",
                    budget=deadline,
                    elapsed=budget.elapsed(),
                )
                return ServiceAnswer(
                    label=label,
                    status="rejected",
                    error=_error_payload(exc),
                    attempts=tuple(attempts),
                    elapsed=budget.elapsed(),
                    deadline=deadline,
                    retries=retries,
                )

            answer = ServiceAnswer(
                label=label,
                status="answered",
                fidelity=level,
                values=values,
                bounds=bounds,
                verdict=F.verdict_for(values, bounds, query.threshold, level),
                attempts=tuple(attempts),
                elapsed=budget.elapsed(),
                deadline=deadline,
                retries=retries,
            )
            self._check_answer_contract(answer)
            counter_inc("service.answered")
            counter_inc(f"service.fidelity.{level}")
            if answer.degraded:
                counter_inc("service.degraded")
            sp.set("status", "answered")
            sp.set("fidelity", level)
            return answer

    async def _descend(
        self,
        query: ScenarioQuery,
        label: str,
        budget: DeadlineBudget,
        bounds: "dict[str, Any]",
        attempts: "list[dict[str, Any]]",
        note_retry: Callable[..., None],
    ) -> "tuple[Optional[dict[str, float]], Optional[str]]":
        """Walk the fidelity ladder; return (values, level) or (None, None)."""
        region = self.region_key(query)

        # --- exact: QBD + contracts, breaker-guarded, budget-gated ----- #
        started = budget.elapsed()
        record: "dict[str, Any]" = {"rung": "exact"}
        try:
            self.breaker.check(region)
            budget.require(EXACT_MIN_BUDGET, "exact")
            raw = await self._run_on_worker(
                lambda: self._solve_exact(query, label, budget, note_retry),
                budget,
                "exact",
            )
            values = apply_perturbation(label, raw)
            F.validate_against_bounds(values, bounds)
        except (CircuitOpenError, DeadlineExceededError) as exc:
            # Skipped, not failed: the solver never ran, so the breaker
            # state must not move.
            record.update(outcome="skipped", error=_error_payload(exc))
        except asyncio.TimeoutError:
            self.breaker.record_failure(region)
            record.update(
                outcome="timeout",
                error={"type": "RungTimeout", "message": "exact rung abandoned"},
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # solver failure: typed errors, violations
            self.breaker.record_failure(region)
            record.update(outcome="failed", error=_error_payload(exc))
        else:
            self.breaker.record_success(region)
            record["outcome"] = "accepted"
            record["elapsed"] = round(budget.elapsed() - started, 6)
            attempts.append(record)
            F.store_answer(query, values, self.cache)
            return values, "exact"
        record["elapsed"] = round(budget.elapsed() - started, 6)
        attempts.append(record)

        # --- cached: replay a validated exact answer ------------------- #
        started = budget.elapsed()
        record = {"rung": "cached"}
        cached = F.cached_rung(query, self.cache) if not budget.expired else None
        if cached is not None:
            record["outcome"] = "accepted"
            record["elapsed"] = round(budget.elapsed() - started, 6)
            attempts.append(record)
            return cached, "cached"
        record.update(
            outcome="skipped",
            error={
                "type": "CacheMiss" if not budget.expired else "DeadlineExceededError",
                "message": "no stored exact answer for this point"
                if not budget.expired
                else "budget exhausted before cache lookup",
            },
        )
        record["elapsed"] = round(budget.elapsed() - started, 6)
        attempts.append(record)

        # --- truncated: budget-sized chain approximation --------------- #
        started = budget.elapsed()
        record = {"rung": "truncated"}
        try:
            raw = await self._run_on_worker(
                lambda: self._solve_truncated(query, label, budget, note_retry),
                budget,
                "truncated",
            )
            values = apply_perturbation(label, raw)
            F.validate_against_bounds(values, bounds)
        except DeadlineExceededError as exc:
            record.update(outcome="skipped", error=_error_payload(exc))
        except asyncio.TimeoutError:
            record.update(
                outcome="timeout",
                error={"type": "RungTimeout", "message": "truncated rung abandoned"},
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # inapplicable (non-exp sizes) or faulty
            record.update(outcome="failed", error=_error_payload(exc))
        else:
            record["outcome"] = "accepted"
            record["elapsed"] = round(budget.elapsed() - started, 6)
            attempts.append(record)
            return values, "truncated"
        record["elapsed"] = round(budget.elapsed() - started, 6)
        attempts.append(record)

        # --- bound: the closed-form floor ------------------------------ #
        record = {"rung": "bound"}
        if budget.expired:
            record.update(
                outcome="skipped",
                error={
                    "type": "DeadlineExceededError",
                    "message": "budget exhausted before the bound rung",
                },
            )
            attempts.append(record)
            return None, None
        record["outcome"] = "accepted"
        record["elapsed"] = 0.0
        attempts.append(record)
        return F.bound_values(bounds), "bound"

    def _check_answer_contract(self, answer: ServiceAnswer) -> None:
        """Evaluate the ``service-answer`` contract before releasing it.

        A violation here means the *service* built an inconsistent answer
        (mis-tagged fidelity, blown deadline, value outside its own
        bounds) — raise rather than serve it.
        """
        from ..contracts import contracts_enabled, evaluate

        if not contracts_enabled():
            return
        for result in evaluate("service-answer", answer):
            if not result.passed:
                raise result.as_violation()

    # ----------------------------------------------------------------- #
    # Batch mode
    # ----------------------------------------------------------------- #

    async def run_batch_async(
        self, queries: Sequence[ScenarioQuery]
    ) -> "list[ServiceAnswer]":
        """Answer a batch concurrently; shed queries become rejected rows.

        Exactly one :class:`~.query.ServiceAnswer` per input query, in
        input order — a shed query is *answered-or-rejected*, never lost.
        """

        async def one(query: ScenarioQuery) -> ServiceAnswer:
            try:
                return await self.submit(query)
            except ServiceOverloadError as exc:
                return ServiceAnswer(
                    label=query.resolved_label(),
                    status="rejected",
                    error=_error_payload(exc),
                    deadline=query.deadline,
                )

        return list(await asyncio.gather(*(one(q) for q in queries)))

    def run_batch(self, queries: Sequence[ScenarioQuery]) -> "list[ServiceAnswer]":
        """Synchronous wrapper around :meth:`run_batch_async`."""
        return asyncio.run(self.run_batch_async(queries))

    # ----------------------------------------------------------------- #
    # Manifest
    # ----------------------------------------------------------------- #

    def build_manifest(self, answers: Iterable[ServiceAnswer]) -> "dict[str, Any]":
        """Manifest dict: per-query rows plus totals derived from them.

        The totals are computed from the answers, *not* copied from the
        telemetry counters — tests assert the two agree, which is the
        acceptance check that shed/degraded/retried/tripped accounting is
        honest end to end.
        """
        rows = [a.as_dict() for a in answers]
        by_fidelity = {level: 0 for level in FIDELITY_LEVELS}
        shed = rejected = answered = degraded = retried = 0
        for row in rows:
            if row["status"] == "answered":
                answered += 1
                by_fidelity[row["fidelity"]] += 1
                if row["fidelity"] != FIDELITY_LEVELS[0]:
                    degraded += 1
            elif (row.get("error") or {}).get("type") == "ServiceOverloadError":
                shed += 1
            else:
                rejected += 1
            retried += int(row.get("retries") or 0)
        counters = registry().snapshot().get("counters", {})
        return {
            "schema": 1,
            "kind": "service-manifest",
            "name": self.name,
            "config": {
                "workers": self.workers,
                "queue_limit": self.queue_limit,
                "default_deadline": self.default_deadline,
            },
            "totals": {
                "submitted": len(rows),
                "answered": answered,
                "shed": shed,
                "rejected": rejected,
                "degraded": degraded,
                "retried": retried,
                "tripped": self.breaker.trip_count(),
                "by_fidelity": by_fidelity,
            },
            "breaker": self.breaker.snapshot(),
            "cache": self.cache.stats(),
            "telemetry": {
                name: counters.get(name, 0) for name in _SERVICE_COUNTERS
            },
            "queries": rows,
        }

    def write_manifest(
        self, answers: Iterable[ServiceAnswer], path: "Path | str"
    ) -> Path:
        """Atomically write :meth:`build_manifest` as JSON; return the path."""
        path = Path(path)
        atomic_write_json(path, self.build_manifest(answers))
        return path
