"""Hot-path performance layer: caching (memory + disk) and benchmarking.

``repro.perf`` makes speed a tracked property of the reproduction:

* :mod:`repro.perf.cache` — the sweep-scoped memoization cache shared by
  the busy-period, phase-type-fitting and QBD layers (correctness-
  transparent: cached and uncached runs are bit-identical).
* :mod:`repro.perf.store` — the opt-in persistent second tier
  (``REPRO_STORE``): an on-disk, content-addressed, checksummed result
  store that survives processes; corrupt entries are quarantined and
  recomputed, never served.
* :mod:`repro.perf.codec` — the deterministic binary codec the store
  uses (bit-exact floats, closed type registry, no pickle).
* :mod:`repro.perf.bench` — the ``python -m repro bench`` harness that
  times the figure sweeps and the simulation engine, records
  ``results/BENCH_<name>.json`` trajectories (wall time, cache hit
  rates, solver-ladder tiers) and gates CI on regressions against the
  committed baselines in ``benchmarks/baselines/``.

Import note: this package must stay import-light (no numpy/scipy at
module level) because the distributions and solver layers import it;
:mod:`repro.perf.bench` pulls in the experiment stack lazily, and the
codec/store resolve numpy and the domain classes inside functions.
"""

from .cache import (
    SweepCache,
    active_cache,
    cached,
    clear_cache_scope,
    sweep_cache,
    use_cache,
)
from .codec import decode_value, encode_value, key_digest, register_codec
from .store import (
    PERSISTED_NAMESPACES,
    ResultStore,
    store_from_env,
)

__all__ = [
    "PERSISTED_NAMESPACES",
    "ResultStore",
    "SweepCache",
    "active_cache",
    "cached",
    "clear_cache_scope",
    "decode_value",
    "encode_value",
    "key_digest",
    "register_codec",
    "store_from_env",
    "sweep_cache",
    "use_cache",
]
