"""Hot-path performance layer: sweep-scoped caching and benchmarking.

``repro.perf`` makes speed a tracked property of the reproduction:

* :mod:`repro.perf.cache` — the sweep-scoped memoization cache shared by
  the busy-period, phase-type-fitting and QBD layers (correctness-
  transparent: cached and uncached runs are bit-identical).
* :mod:`repro.perf.bench` — the ``python -m repro bench`` harness that
  times the figure sweeps and the simulation engine, records
  ``results/BENCH_<name>.json`` trajectories (wall time, cache hit
  rates, solver-ladder tiers) and gates CI on regressions against the
  committed baselines in ``benchmarks/baselines/``.

Import note: this package must stay import-light (no numpy/scipy at
module level) because the distributions and solver layers import it;
:mod:`repro.perf.bench` pulls in the experiment stack lazily.
"""

from .cache import (
    SweepCache,
    active_cache,
    cached,
    clear_cache_scope,
    sweep_cache,
    use_cache,
)

__all__ = [
    "SweepCache",
    "active_cache",
    "cached",
    "clear_cache_scope",
    "sweep_cache",
    "use_cache",
]
