"""Sweep-scoped memoization for the matrix-analytic hot paths.

A figure sweep evaluates the same analyses at dozens of load points, and
most of those evaluations share sub-results: the busy-period moments
``B_L`` / ``B_{N+1}`` depend only on the *long*-job parameters (constant
along a ``rho_s`` sweep), every phase-type fit is keyed by its three input
moments, and the short- and long-job rows of one figure solve the *same*
QBD at the same load points.  This module provides the cache those layers
share.

Design rules
------------
* **Opt-in and scoped.**  Nothing is cached unless a :func:`sweep_cache`
  scope is active; outside a scope every ``cached(...)`` call computes
  directly.  The experiment sweeps (:mod:`repro.experiments.figures`,
  :mod:`repro.experiments.validation`), the orchestration workers and the
  bench harness each open a scope around one sweep; the cache dies with
  the scope, so long-lived processes cannot accumulate stale state.
* **Correctness-transparent.**  Keys capture *every* input of the
  computation (exact float tuples, raw matrix bytes — never rounded or
  truncated), so a cache hit returns the bit-identical object the miss
  path would have computed.  ``tests/test_perf_cache.py`` pins this
  property across the figure-4/5/6 parameter grids.
* **Observable.**  Per-namespace hit/miss counters are kept on the scope
  (:meth:`SweepCache.stats`) and surfaced in ``BENCH_*.json``; QBD-level
  hits are additionally flagged on
  :class:`~repro.robustness.SolverDiagnostics` (``cache_hit=True``) so
  the PR 1 robustness layer stays observable under caching.

Namespaces in use:

``busy-moments``
    Busy-period moment triples (:mod:`repro.busy_periods`).
``ph-fit``
    Three-moment phase-type fits (:func:`repro.distributions.fit_phase_type`).
``r-matrix``
    R-matrix fallback-ladder solves (:func:`repro.markov.qbd.solve_r_matrix_with_diagnostics`).
``qbd-solution``
    Full stationary solutions (:meth:`repro.markov.qbd.QbdProcess.solve`),
    keyed on the exact block bytes.
``analysis-solution``
    The same solutions keyed on the *analysis-level* inputs (rates + PH
    representations, via :func:`repro.markov.qbd.cached_solution`), so a
    hit skips the chain assembly as well as the solve.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Hashable, Iterator, Optional

from ..telemetry import counter_inc, set_span_attribute

__all__ = [
    "SweepCache",
    "active_cache",
    "cached",
    "clear_cache_scope",
    "sweep_cache",
    "use_cache",
]

#: The active cache scope (None outside any scope).  A ContextVar so that
#: threads and nested event loops each see their own scope.
_ACTIVE: "ContextVar[Optional[SweepCache]]" = ContextVar(
    "repro_perf_sweep_cache", default=None
)


class SweepCache:
    """In-memory memo table with per-namespace hit/miss accounting.

    Values are stored as-is and returned as-is: callers treat cached
    objects (distributions, solution arrays) as immutable, which every
    consumer in this codebase already does.

    Thread-safe: the query service shares one long-lived cache across a
    thread pool (see :func:`use_cache`), so store access and the hit/miss
    counters take a lock.  ``compute()`` itself runs *outside* the lock —
    two threads missing on the same key concurrently may both compute,
    but the first stored value wins and both callers receive it, so
    callers still observe one immutable object per key.  Each
    :meth:`get_or_compute` call records exactly one hit or one miss.
    """

    def __init__(self) -> None:
        self._store: dict[tuple[str, Hashable], Any] = {}
        self._lock = threading.Lock()
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()

    def get_or_compute(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the memoized value for ``(namespace, key)``, computing once."""
        full_key = (namespace, key)
        with self._lock:
            try:
                value = self._store[full_key]
            except KeyError:
                self.misses[namespace] += 1
            else:
                self.hits[namespace] += 1
                return value
        value = compute()
        with self._lock:
            # First store wins so every caller sees the same object.
            return self._store.setdefault(full_key, value)

    def contains(self, namespace: str, key: Hashable) -> bool:
        """True when ``(namespace, key)`` is already memoized."""
        with self._lock:
            return (namespace, key) in self._store

    def values(self, namespace: str) -> "list[Any]":
        """All values memoized under ``namespace`` (used by the bench
        harness to summarize solver diagnostics across a sweep)."""
        with self._lock:
            return [v for (ns, _), v in self._store.items() if ns == namespace]

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self) -> dict:
        """JSON-ready hit/miss summary (totals plus per-namespace detail)."""
        with self._lock:
            hits = Counter(self.hits)
            misses = Counter(self.misses)
            entries = len(self._store)
        namespaces = sorted(set(hits) | set(misses))
        total_hits = sum(hits.values())
        total_misses = sum(misses.values())
        lookups = total_hits + total_misses
        return {
            "entries": len(self._store),
            "hits": total_hits,
            "misses": total_misses,
            "hit_rate": (total_hits / lookups) if lookups else 0.0,
            "by_namespace": {
                ns: {
                    "hits": self.hits[ns],
                    "misses": self.misses[ns],
                    "hit_rate": (
                        self.hits[ns] / (self.hits[ns] + self.misses[ns])
                        if self.hits[ns] + self.misses[ns]
                        else 0.0
                    ),
                }
                for ns in namespaces
            },
        }


def active_cache() -> Optional[SweepCache]:
    """The cache of the innermost active :func:`sweep_cache` scope, or None."""
    return _ACTIVE.get()


def clear_cache_scope() -> None:
    """Drop any inherited cache scope in this context.

    A worker process forked while the driver held a :func:`sweep_cache`
    scope open inherits that scope through the copied ContextVar, which
    would silently defeat per-point scoping: the worker's own scopes nest
    inside a scope that never exits in the worker, so entries accumulate
    for the life of the process and stats are never published.  The
    orchestration worker shim calls this once per point before opening
    its own scope.
    """
    _ACTIVE.set(None)


@contextmanager
def sweep_cache() -> Iterator[SweepCache]:
    """Activate a memoization scope for the enclosed sweep.

    Nested scopes share the outermost cache (so a bench harness wrapping
    several figure sweeps deduplicates across them, and per-figure scopes
    stay no-ops inside it); the cache is discarded when the outermost
    scope exits.
    """
    existing = _ACTIVE.get()
    if existing is not None:
        yield existing
        return
    cache = SweepCache()
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)
        _publish_cache_stats(cache)


@contextmanager
def use_cache(cache: SweepCache) -> Iterator[SweepCache]:
    """Activate an *existing* cache as the scope for the enclosed block.

    :func:`sweep_cache` creates a scope that dies with the sweep; the
    query service instead owns one long-lived :class:`SweepCache` shared
    across queries and worker threads, and enters it around each rung
    execution.  Because the ContextVar is per-thread/per-task, every pool
    thread must enter the scope itself — inheriting it from the
    submitting thread is not possible.

    Unlike :func:`sweep_cache`, exiting does *not* publish stats (the
    cache outlives the scope; its owner publishes once at shutdown), and
    an already-active scope is replaced rather than shared (the service
    must never leak entries into an ambient figure-sweep scope).
    """
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


def _publish_cache_stats(cache: SweepCache) -> None:
    """Surface a dying scope's hit/miss stats as telemetry.

    Per-namespace counts become registry counters (folded across worker
    processes by the runner) and, when a span is open around the scope,
    one ``cache`` span attribute.  Once per scope, never per lookup — the
    lookup fast path stays untouched.  Telemetry must not be able to fail
    the sweep, so any error here is swallowed.
    """
    try:
        stats = cache.stats()
        for ns, detail in stats["by_namespace"].items():
            if detail["hits"]:
                counter_inc(f"cache.{ns}.hits", detail["hits"])
            if detail["misses"]:
                counter_inc(f"cache.{ns}.misses", detail["misses"])
        set_span_attribute("cache", stats)
    except Exception:
        pass


def cached(namespace: str, key: Hashable, compute: Callable[[], Any]) -> Any:
    """Memoize ``compute()`` under the active sweep scope, if any.

    Outside a :func:`sweep_cache` scope this is exactly ``compute()`` —
    the hot paths stay unconditionally correct with caching disabled.
    """
    cache = _ACTIVE.get()
    if cache is None:
        return compute()
    return cache.get_or_compute(namespace, key, compute)
