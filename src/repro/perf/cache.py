"""Sweep-scoped memoization for the matrix-analytic hot paths.

A figure sweep evaluates the same analyses at dozens of load points, and
most of those evaluations share sub-results: the busy-period moments
``B_L`` / ``B_{N+1}`` depend only on the *long*-job parameters (constant
along a ``rho_s`` sweep), every phase-type fit is keyed by its three input
moments, and the short- and long-job rows of one figure solve the *same*
QBD at the same load points.  This module provides the cache those layers
share.

Design rules
------------
* **Opt-in and scoped.**  Nothing is cached unless a :func:`sweep_cache`
  scope is active; outside a scope every ``cached(...)`` call computes
  directly.  The experiment sweeps (:mod:`repro.experiments.figures`,
  :mod:`repro.experiments.validation`), the orchestration workers and the
  bench harness each open a scope around one sweep; the cache dies with
  the scope, so long-lived processes cannot accumulate stale state.
* **Correctness-transparent.**  Keys capture *every* input of the
  computation (exact float tuples, raw matrix bytes — never rounded or
  truncated), so a cache hit returns the bit-identical object the miss
  path would have computed.  ``tests/test_perf_cache.py`` pins this
  property across the figure-4/5/6 parameter grids.
* **Observable.**  Per-namespace hit/miss/evicted counters are kept on
  the scope (:meth:`SweepCache.stats`) and surfaced in ``BENCH_*.json``;
  QBD-level hits are additionally flagged on
  :class:`~repro.robustness.SolverDiagnostics` (``cache_hit=True``) so
  the PR 1 robustness layer stays observable under caching.
* **Two tiers.**  Memory is tier 1; an optional
  :class:`~repro.perf.store.ResultStore` (``REPRO_STORE``) is tier 2, so
  results survive the process.  The store is consulted only on a memory
  miss and written only after a compute; a corrupt store entry is
  quarantined by the store and silently falls through to recompute here —
  the persistent tier can cost time, never correctness.

Namespaces in use:

``busy-moments``
    Busy-period moment triples (:mod:`repro.busy_periods`).
``ph-fit``
    Three-moment phase-type fits (:func:`repro.distributions.fit_phase_type`).
``r-matrix``
    R-matrix fallback-ladder solves (:func:`repro.markov.qbd.solve_r_matrix_with_diagnostics`).
``qbd-solution``
    Full stationary solutions (:meth:`repro.markov.qbd.QbdProcess.solve`),
    keyed on the exact block bytes.
``analysis-solution``
    The same solutions keyed on the *analysis-level* inputs (rates + PH
    representations, via :func:`repro.markov.qbd.cached_solution`), so a
    hit skips the chain assembly as well as the solve.
``service-answer``
    Validated query-service answers (:mod:`repro.service.fidelity`); with
    a store attached the replay rung survives restarts.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterator, Optional

from ..telemetry import counter_inc, set_span_attribute

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store uses codec)
    from .store import ResultStore

__all__ = [
    "SweepCache",
    "active_cache",
    "cached",
    "clear_cache_scope",
    "sweep_cache",
    "use_cache",
]

#: The active cache scope (None outside any scope).  A ContextVar so that
#: threads and nested event loops each see their own scope.
_ACTIVE: "ContextVar[Optional[SweepCache]]" = ContextVar(
    "repro_perf_sweep_cache", default=None
)

#: Sentinel for "not in the memo table" (None is a storable value).
_MISSING = object()


class SweepCache:
    """In-memory memo table with per-namespace hit/miss accounting.

    Values are stored as-is and returned as-is: callers treat cached
    objects (distributions, solution arrays) as immutable, which every
    consumer in this codebase already does.

    Thread-safe: the query service shares one long-lived cache across a
    thread pool (see :func:`use_cache`), so store access and the hit/miss
    counters take a lock.  ``compute()`` itself runs *outside* the lock —
    two threads missing on the same key concurrently may both compute,
    but the first stored value wins and both callers receive it, so
    callers still observe one immutable object per key.  Each
    :meth:`get_or_compute` call records exactly one hit or one miss.

    Parameters
    ----------
    max_entries:
        Upper bound on memoized entries; beyond it the least-recently-used
        entry is evicted (counted per-namespace in :attr:`evictions` and
        as ``cache.<ns>.evicted`` telemetry).  ``None`` (the default, used
        by sweep scopes that die with the sweep) means unbounded; the
        query service's long-lived cache sets a bound so it cannot grow
        for the life of the process.
    store:
        Optional persistent second tier (:class:`~repro.perf.store.ResultStore`).
        Consulted on memory miss, written after compute; see
        :func:`sweep_cache` for the ``REPRO_STORE`` env hookup.
    """

    def __init__(
        self,
        max_entries: "Optional[int]" = None,
        store: "Optional[ResultStore]" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self._entries: "OrderedDict[tuple[str, Hashable], Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.store = store
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.evictions: Counter = Counter()

    # ------------------------------------------------------------------ #
    # Core lookup/insert (lock held by caller)
    # ------------------------------------------------------------------ #

    def _get_locked(self, full_key: "tuple[str, Hashable]") -> Any:
        value = self._entries.get(full_key, _MISSING)
        if value is not _MISSING:
            self._entries.move_to_end(full_key)
        return value

    def _insert_locked(self, full_key: "tuple[str, Hashable]", value: Any) -> Any:
        existing = self._entries.get(full_key, _MISSING)
        if existing is not _MISSING:
            # First store wins so every caller sees the same object.
            self._entries.move_to_end(full_key)
            return existing
        self._entries[full_key] = value
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                (evicted_ns, _), _ = self._entries.popitem(last=False)
                self.evictions[evicted_ns] += 1
        return value

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def get_or_compute(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the memoized value for ``(namespace, key)``, computing once."""
        value, _ = self.get_or_compute_with_status(namespace, key, compute)
        return value

    def get_or_compute_with_status(
        self, namespace: str, key: Hashable, compute: Callable[[], Any]
    ) -> "tuple[Any, str]":
        """Like :meth:`get_or_compute`, plus where the value came from.

        The second element is ``"memory"`` (tier-1 hit), ``"store"``
        (persistent-tier hit, now also memoized) or ``"computed"``.
        Call sites that flag ``cache_hit`` on solver diagnostics use the
        status so a store hit is reported as honestly as a memory hit.
        """
        full_key = (namespace, key)
        with self._lock:
            value = self._get_locked(full_key)
            if value is not _MISSING:
                self.hits[namespace] += 1
                return value, "memory"
            self.misses[namespace] += 1
        found, value = self._store_get(namespace, key)
        if found:
            with self._lock:
                return self._insert_locked(full_key, value), "store"
        value = compute()
        self._store_put(namespace, key, value)
        with self._lock:
            return self._insert_locked(full_key, value), "computed"

    def lookup(self, namespace: str, key: Hashable) -> "tuple[bool, Any]":
        """``(found, value)`` without computing anything on a miss.

        Checks memory, then the persistent store (a store hit is memoized
        so the next lookup is tier-1).  The service fidelity ladder's
        replay rung uses this: "is a validated answer already available"
        is a question, not a computation.  Counts a hit or a miss exactly
        like :meth:`get_or_compute`.
        """
        full_key = (namespace, key)
        with self._lock:
            value = self._get_locked(full_key)
            if value is not _MISSING:
                self.hits[namespace] += 1
                return True, value
            if self.store is None:
                # No tier-2 to consult: settle the miss under the lock we
                # already hold instead of paying a second round-trip.
                self.misses[namespace] += 1
                return False, None
        found, value = self._store_get(namespace, key)
        if found:
            with self._lock:
                self.hits[namespace] += 1
                return True, self._insert_locked(full_key, value)
        with self._lock:
            self.misses[namespace] += 1
        return False, None

    def seed(self, namespace: str, key: Hashable, value: Any) -> Any:
        """Insert a value computed *outside* the cache, without counting.

        The batched sweep backend solves whole grids of QBDs in stacked
        LAPACK calls and then deposits each per-point result under the
        exact key the scalar path would have used — so later scalar
        lookups (including the persistent store, via the usual
        write-through) are indistinguishable from a scalar-computed
        entry.  No hit or miss is recorded: the batched caller already
        issued exactly one counted :meth:`lookup` per point, matching the
        scalar path's one :meth:`get_or_compute` per point.  First store
        wins, as everywhere else.
        """
        self._store_put(namespace, key, value)
        with self._lock:
            return self._insert_locked((namespace, key), value)

    def record_hit(self, namespace: str) -> None:
        """Count a hit satisfied outside the lookup path.

        The batched solve pool dedups identical pending QBDs by key
        *before* anything is computed; each deduped requester is what
        would have been a memory hit on the scalar path, so stats parity
        between the two sweep modes requires recording it as one.
        """
        with self._lock:
            self.hits[namespace] += 1

    def contains(self, namespace: str, key: Hashable) -> bool:
        """True when ``(namespace, key)`` is already memoized *in memory*.

        Deliberately does not consult the persistent store: this is the
        cheap "would a lookup be instant" probe.  Use :meth:`lookup` when
        a store hit should count.
        """
        with self._lock:
            return (namespace, key) in self._entries

    def values(self, namespace: str) -> "list[Any]":
        """All values memoized under ``namespace`` (used by the bench
        harness to summarize solver diagnostics across a sweep)."""
        with self._lock:
            return [v for (ns, _), v in self._entries.items() if ns == namespace]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Persistent tier plumbing
    # ------------------------------------------------------------------ #

    def _store_get(self, namespace: str, key: Hashable) -> "tuple[bool, Any]":
        """Tier-2 read; any store failure degrades to a clean miss."""
        store = self.store
        if store is None or not store.persists(namespace):
            return False, None
        from ..robustness import ReproError

        try:
            return store.get(namespace, key)
        except ReproError:
            # Corrupt entry: already quarantined and counted by the
            # store; from the cache's point of view it is a miss — the
            # caller recomputes and the rewrite repairs the store.
            return False, None
        except Exception:
            # The persistent tier must never be able to fail a solve.
            return False, None

    def _store_put(self, namespace: str, key: Hashable, value: Any) -> None:
        """Tier-2 write-through; failures leave the store a bit colder."""
        store = self.store
        if store is None or not store.persists(namespace):
            return
        try:
            store.put(namespace, key, value)
        except Exception:
            # SerializationError (value outside the codec registry) or
            # any I/O failure: the value stays memory-only this run.
            pass

    def stats(self) -> dict:
        """JSON-ready hit/miss summary (totals plus per-namespace detail)."""
        with self._lock:
            hits = Counter(self.hits)
            misses = Counter(self.misses)
            evictions = Counter(self.evictions)
            entries = len(self._entries)
        namespaces = sorted(set(hits) | set(misses) | set(evictions))
        total_hits = sum(hits.values())
        total_misses = sum(misses.values())
        lookups = total_hits + total_misses
        stats = {
            "entries": entries,
            "max_entries": self.max_entries,
            "hits": total_hits,
            "misses": total_misses,
            "evicted": sum(evictions.values()),
            "hit_rate": (total_hits / lookups) if lookups else 0.0,
            "by_namespace": {
                ns: {
                    "hits": hits[ns],
                    "misses": misses[ns],
                    "evicted": evictions[ns],
                    "hit_rate": (
                        hits[ns] / (hits[ns] + misses[ns])
                        if hits[ns] + misses[ns]
                        else 0.0
                    ),
                }
                for ns in namespaces
            },
        }
        if self.store is not None:
            stats["store"] = self.store.session_stats()
        return stats


def active_cache() -> Optional[SweepCache]:
    """The cache of the innermost active :func:`sweep_cache` scope, or None."""
    return _ACTIVE.get()


def clear_cache_scope() -> None:
    """Drop any inherited cache scope in this context.

    A worker process forked while the driver held a :func:`sweep_cache`
    scope open inherits that scope through the copied ContextVar, which
    would silently defeat per-point scoping: the worker's own scopes nest
    inside a scope that never exits in the worker, so entries accumulate
    for the life of the process and stats are never published.  The
    orchestration worker shim calls this once per point before opening
    its own scope (it still joins the persistent store, if enabled, via
    ``REPRO_STORE`` — the env var crosses the process boundary).
    """
    _ACTIVE.set(None)


@contextmanager
def sweep_cache(
    store: "Optional[ResultStore]" = None,
) -> Iterator[SweepCache]:
    """Activate a memoization scope for the enclosed sweep.

    Nested scopes share the outermost cache (so a bench harness wrapping
    several figure sweeps deduplicates across them, and per-figure scopes
    stay no-ops inside it); the cache is discarded when the outermost
    scope exits.

    When ``store`` is None, the persistent tier is taken from the
    ``REPRO_STORE`` environment variable (see
    :func:`~repro.perf.store.store_from_env`) — so enabling the store on
    a CLI automatically reaches every scope the run opens, including
    orchestration worker subprocesses.
    """
    existing = _ACTIVE.get()
    if existing is not None:
        yield existing
        return
    if store is None:
        from .store import store_from_env

        store = store_from_env()
    cache = SweepCache(store=store)
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)
        _publish_cache_stats(cache)


@contextmanager
def use_cache(cache: SweepCache) -> Iterator[SweepCache]:
    """Activate an *existing* cache as the scope for the enclosed block.

    :func:`sweep_cache` creates a scope that dies with the sweep; the
    query service instead owns one long-lived :class:`SweepCache` shared
    across queries and worker threads, and enters it around each rung
    execution.  Because the ContextVar is per-thread/per-task, every pool
    thread must enter the scope itself — inheriting it from the
    submitting thread is not possible.

    Unlike :func:`sweep_cache`, exiting does *not* publish stats (the
    cache outlives the scope; its owner publishes once at shutdown), and
    an already-active scope is replaced rather than shared (the service
    must never leak entries into an ambient figure-sweep scope).
    """
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


def _publish_cache_stats(cache: SweepCache) -> None:
    """Surface a dying scope's hit/miss stats as telemetry.

    Per-namespace counts become registry counters (folded across worker
    processes by the runner) and, when a span is open around the scope,
    one ``cache`` span attribute.  Once per scope, never per lookup — the
    lookup fast path stays untouched.  (Store counters are *not* re-
    published here: the store fires ``store.*`` at event time, so one
    store shared by many scopes is counted once.)  Telemetry must not be
    able to fail the sweep, so any error here is swallowed.
    """
    try:
        stats = cache.stats()
        for ns, detail in stats["by_namespace"].items():
            if detail["hits"]:
                counter_inc(f"cache.{ns}.hits", detail["hits"])
            if detail["misses"]:
                counter_inc(f"cache.{ns}.misses", detail["misses"])
            if detail["evicted"]:
                counter_inc(f"cache.{ns}.evicted", detail["evicted"])
        set_span_attribute("cache", stats)
    except Exception:
        pass


def cached(namespace: str, key: Hashable, compute: Callable[[], Any]) -> Any:
    """Memoize ``compute()`` under the active sweep scope, if any.

    Outside a :func:`sweep_cache` scope this is exactly ``compute()`` —
    the hot paths stay unconditionally correct with caching disabled.
    """
    cache = _ACTIVE.get()
    if cache is None:
        return compute()
    return cache.get_or_compute(namespace, key, compute)
