"""Crash-safe persistent result store: the sweep cache's on-disk tier.

:class:`ResultStore` persists the memo-cache namespaces (``busy-moments``,
``ph-fit``, ``r-matrix``, ``qbd-solution``, ``analysis-solution`` and the
service's ``service-answer`` replay entries) across processes, so a
repeated ``figure`` / ``bench`` / ``check`` / ``serve`` run recomputes
nothing.  A store that survives processes is above all a *durability*
problem, and every design choice here is about failing safe:

* **Content-addressed layout.**  ``<root>/<namespace>/<dd>/<digest>.entry``
  where ``digest`` is the sha256 of the encoded cache key plus the solver
  schema version (:mod:`repro.orchestration.spec`) — a solver bump
  orphans old entries instead of replaying stale numerics.
* **Self-describing entries.**  Every file is one JSON header line
  (store schema, codec version, namespace, key digest, payload sha256 and
  length, writer pid, write/access timestamps) followed by the
  :mod:`~repro.perf.codec` payload.  Reads verify *everything* before
  deserializing; deserialized QBD solutions additionally re-pass their
  invariant contracts (:mod:`repro.contracts`) before being served.
* **Typed corruption, quarantined.**  Any mismatch raises
  :class:`~repro.robustness.StoreCorruptionError` after moving the entry
  to ``<root>/corrupt/`` — the cache layer catches it and transparently
  recomputes-and-rewrites, so bit rot costs time, never correctness.
* **Lock-free concurrent access.**  Writers go through
  ``atomic_write_bytes`` (tmp file + ``os.replace``), first committed
  writer wins, readers never block; only :meth:`gc` takes an advisory
  lockfile so two collectors do not double-delete.
* **Observable.**  ``store.hits`` / ``store.misses`` / ``store.corrupt``
  / ``store.writes`` / ``store.evicted`` telemetry counters fire at event
  time, so worker-subprocess deltas merge into run manifests like every
  other counter.

Enable via ``REPRO_STORE=1`` (default root ``results/store``) or
``REPRO_STORE=/path/to/store``; the env var crosses worker process
boundaries, so orchestration workers join the same store automatically.
``python -m repro store {stats,fsck,gc}`` administers it.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from hashlib import sha256
from pathlib import Path
from threading import Lock
from typing import Any, Callable, Iterator, Optional

from ..robustness import (
    SerializationError,
    StoreCorruptionError,
    atomic_write_bytes,
)
from ..telemetry import counter_inc
from .codec import CODEC_VERSION, decode_value, encode_value, key_digest

__all__ = [
    "DEFAULT_STORE_ROOT",
    "PERSISTED_NAMESPACES",
    "ResultStore",
    "STORE_ENV_VAR",
    "STORE_SCHEMA_VERSION",
    "store_from_env",
]

#: Bump on any incompatible change to the entry layout below.
STORE_SCHEMA_VERSION = 1

MAGIC = "repro-store"

STORE_ENV_VAR = "REPRO_STORE"

DEFAULT_STORE_ROOT = os.path.join("results", "store")

#: Cache namespaces the store persists.  A namespace outside this set
#: stays memory-only (nothing stops callers inventing scratch namespaces;
#: they just will not survive the process).
PERSISTED_NAMESPACES = frozenset(
    {
        "busy-moments",
        "ph-fit",
        "r-matrix",
        "qbd-solution",
        "analysis-solution",
        "service-answer",
    }
)

#: Namespaces whose deserialized values re-pass their invariant contracts
#: before being trusted (a checksum proves the bytes are what was
#: written, not that what was written is still a valid solution under
#: today's contracts).
_CONTRACT_CHECKED = ("qbd-solution", "analysis-solution")

#: Minimum seconds between atime bumps of one entry: the bump is a full
#: atomic rewrite (the header is not updatable in place without losing
#: crash safety), so repeated reads within a run must not pay it twice.
ATIME_RESOLUTION = 600.0

#: A ``.tmp`` file this old is litter from a crashed writer, not a write
#: in flight; ``gc`` removes it.
STALE_TMP_AGE = 3600.0

#: A gc lockfile this old belongs to a dead collector and is broken.
STALE_LOCK_AGE = 600.0

_ENTRY_SUFFIX = ".entry"

#: Sentinel distinguishing "miss" from "stored None".
_MISS = object()

#: Test hook: called (if set) immediately before the commit rename of an
#: entry write, mirroring ``atomic_write._fsync`` — crash tests SIGKILL
#: the process here to prove a torn write can never surface as an entry.
_before_commit: "Optional[Callable[[], None]]" = None


def _trust_record(value: Any) -> "Optional[dict]":
    """Numerical-trust summary of a value about to be persisted, or None.

    Looks for the :class:`~repro.robustness.SolverDiagnostics` a value
    carries — directly (``r-matrix`` entries are ``(R, diagnostics)``
    pairs), via a ``diagnostics`` attribute (``qbd-solution`` /
    ``analysis-solution`` hold :class:`~repro.markov.qbd.QbdSolution`) —
    and lifts its verdict into the entry header, so ``fsck --trust`` can
    audit a store without decoding every payload.
    """
    from ..robustness import SolverDiagnostics

    diag = None
    if isinstance(value, SolverDiagnostics):
        diag = value
    elif isinstance(value, tuple):
        for item in value:
            if isinstance(item, SolverDiagnostics):
                diag = item
                break
    else:
        candidate = getattr(value, "diagnostics", None)
        if isinstance(candidate, SolverDiagnostics):
            diag = candidate
    if diag is None or diag.trust is None:
        return None
    return {
        "trust": diag.trust,
        "error_bound": diag.error_bound,
        "escalated": diag.escalated,
    }


def _result_schema_version() -> int:
    # Lazy: importing repro.orchestration at module scope would cycle
    # back into repro.perf through the runner.
    from ..orchestration.spec import SCHEMA_VERSION

    return SCHEMA_VERSION


def store_from_env(env: "Optional[dict]" = None) -> "Optional[ResultStore]":
    """Build the store the environment asks for, or None when disabled.

    ``REPRO_STORE`` unset/empty/``0``/``false``/``off`` disables;
    ``1``/``true``/``on`` enables at :data:`DEFAULT_STORE_ROOT`; any
    other value is used as the store root path.
    """
    raw = (env if env is not None else os.environ).get(STORE_ENV_VAR, "")
    raw = raw.strip()
    if raw.lower() in ("", "0", "false", "off", "no"):
        return None
    if raw.lower() in ("1", "true", "on", "yes"):
        return ResultStore(DEFAULT_STORE_ROOT)
    return ResultStore(raw)


class ResultStore:
    """On-disk, content-addressed, integrity-verified result store.

    Thread-safe (the query service shares one across its pool) and safe
    across processes: every commit is a tmp-write + ``os.replace``, every
    read is verify-then-trust, and a lost race simply means both writers
    produced the same content-addressed entry.
    """

    def __init__(self, root: "Path | str"):
        self.root = Path(root)
        self._lock = Lock()
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        self.corrupt: Counter = Counter()
        self.writes: Counter = Counter()
        self.evicted = 0
        self._schema_extra = f"result-schema={_result_schema_version()}"

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def persists(self, namespace: str) -> bool:
        """True when ``namespace`` is one the store persists."""
        return namespace in PERSISTED_NAMESPACES

    def digest(self, namespace: str, key: Any) -> str:
        """Content digest of a cache key (see :func:`~.codec.key_digest`)."""
        return key_digest(namespace, key, extra=self._schema_extra)

    def entry_path(self, namespace: str, digest: str) -> Path:
        """Entry file for a digest (two-level fan-out keeps dirs small)."""
        return self.root / namespace / digest[:2] / f"{digest}{_ENTRY_SUFFIX}"

    @property
    def corrupt_dir(self) -> Path:
        """Quarantine directory for entries that failed verification."""
        return self.root / "corrupt"

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def get(self, namespace: str, key: Any) -> Any:
        """Verified value for ``(namespace, key)``, or the miss sentinel.

        Returns ``(True, value)`` on a hit, ``(False, None)`` on a clean
        miss.  A corrupt entry is quarantined, counted, and raised as
        :class:`~repro.robustness.StoreCorruptionError` — the cache layer
        catches that and recomputes.
        """
        digest = self.digest(namespace, key)
        path = self.entry_path(namespace, digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses[namespace] += 1
            counter_inc("store.misses")
            return False, None
        except OSError as exc:
            # Unreadable is indistinguishable from corrupt: quarantine
            # is impossible (we may not even stat it), so just miss.
            with self._lock:
                self.misses[namespace] += 1
            counter_inc("store.misses")
            counter_inc("store.read_errors")
            _ = exc
            return False, None
        try:
            header, value = self._verify_entry(data, namespace, digest, path)
        except StoreCorruptionError:
            with self._lock:
                self.corrupt[namespace] += 1
            counter_inc("store.corrupt")
            self.quarantine(path)
            raise
        with self._lock:
            self.hits[namespace] += 1
        counter_inc("store.hits")
        self._touch(path, header, data)
        return True, value

    def _verify_entry(
        self, data: bytes, namespace: str, digest: str, path: Path
    ) -> "tuple[dict, Any]":
        """Checksum + schema + contract verification; returns (header, value)."""

        def corrupt(reason: str, **context: Any) -> StoreCorruptionError:
            return StoreCorruptionError(
                f"store entry failed verification: {reason}",
                path=str(path),
                reason=reason,
                **context,
            )

        newline = data.find(b"\n")
        if newline < 0:
            raise corrupt("no header line")
        try:
            header = json.loads(data[:newline].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise corrupt("header is not valid JSON")
        if not isinstance(header, dict) or header.get("magic") != MAGIC:
            raise corrupt("bad magic")
        if header.get("schema") != STORE_SCHEMA_VERSION:
            raise corrupt(
                "schema version mismatch",
                expected=STORE_SCHEMA_VERSION,
                observed=header.get("schema"),
            )
        if header.get("codec") != CODEC_VERSION:
            raise corrupt(
                "codec version mismatch",
                expected=CODEC_VERSION,
                observed=header.get("codec"),
            )
        if header.get("namespace") != namespace:
            raise corrupt(
                "namespace mismatch",
                expected=namespace,
                observed=header.get("namespace"),
            )
        if header.get("key_digest") != digest:
            raise corrupt(
                "key digest mismatch",
                expected=digest,
                observed=header.get("key_digest"),
            )
        payload = data[newline + 1 :]
        if len(payload) != header.get("payload_bytes"):
            raise corrupt(
                "payload truncated or padded",
                expected=header.get("payload_bytes"),
                observed=len(payload),
            )
        observed_sha = sha256(payload).hexdigest()
        if observed_sha != header.get("payload_sha256"):
            raise corrupt(
                "payload checksum mismatch",
                expected=header.get("payload_sha256"),
                observed=observed_sha,
            )
        try:
            value = decode_value(payload)
        except SerializationError as exc:
            # The checksum passed but the payload does not decode: the
            # writer and reader disagree about the format (schema drift
            # within one version tag).  Treat exactly like bit rot.
            raise corrupt(f"payload undecodable: {exc.message}") from exc
        self._verify_value(namespace, value, path)
        return header, value

    def _verify_value(self, namespace: str, value: Any, path: Path) -> None:
        """Re-pass deserialized QBD solutions through their contracts."""
        if namespace not in _CONTRACT_CHECKED:
            return
        from ..contracts import contracts_enabled, evaluate

        if not contracts_enabled():
            return
        # qbd-solution / analysis-solution namespaces hold QbdSolution
        # objects directly.
        for result in evaluate("solution", value):
            if not result.passed:
                raise StoreCorruptionError(
                    f"deserialized solution failed contract "
                    f"{result.name!r}: {result.detail or ''}",
                    path=str(path),
                    reason="contract-violation",
                    contract=result.name,
                    observed=result.observed,
                    expected=result.expected,
                )

    def _touch(self, path: Path, header: dict, data: bytes) -> None:
        """Best-effort atime bump (LRU input for :meth:`gc`), throttled."""
        now = time.time()
        if now - float(header.get("atime", 0.0)) < ATIME_RESOLUTION:
            return
        try:
            newline = data.find(b"\n")
            refreshed = dict(header, atime=now)
            line = json.dumps(refreshed, separators=(",", ":")).encode("utf-8")
            atomic_write_bytes(path, line + data[newline:])
        except Exception:
            # Losing an atime bump only skews LRU ordering; never let it
            # fail a read.
            pass

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def put(self, namespace: str, key: Any, value: Any) -> bool:
        """Persist a value; returns True when a new entry was committed.

        First committed writer wins: an existing entry is left untouched
        (it holds the same content — keys are content-addressed and the
        computation is deterministic).  Raises
        :class:`~repro.robustness.SerializationError` for values outside
        the codec registry; the cache layer treats that as "not
        persistable" and moves on.
        """
        if not self.persists(namespace):
            return False
        digest = self.digest(namespace, key)
        path = self.entry_path(namespace, digest)
        if path.exists():
            return False
        payload = encode_value(value)
        now = time.time()
        header = {
            "magic": MAGIC,
            "schema": STORE_SCHEMA_VERSION,
            "codec": CODEC_VERSION,
            "result_schema": _result_schema_version(),
            "namespace": namespace,
            "key_digest": digest,
            "payload_sha256": sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "writer_pid": os.getpid(),
            "written_at": now,
            "atime": now,
        }
        trust = _trust_record(value)
        if trust is not None:
            header["trust"] = trust
        line = json.dumps(header, separators=(",", ":")).encode("utf-8")
        if _before_commit is not None:
            _before_commit()
        atomic_write_bytes(path, line + b"\n" + payload)
        with self._lock:
            self.writes[namespace] += 1
        counter_inc("store.writes")
        return True

    # ------------------------------------------------------------------ #
    # Quarantine
    # ------------------------------------------------------------------ #

    def quarantine(self, path: Path) -> "Optional[Path]":
        """Move a corrupt entry to ``corrupt/`` (never delete evidence).

        Returns the quarantine path, or None when the entry vanished
        (another process may have quarantined it first — fine).
        """
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            target = self.corrupt_dir / path.name
            counter = 0
            while target.exists():
                counter += 1
                target = self.corrupt_dir / f"{path.name}.{counter}"
            os.replace(path, target)
            return target
        except OSError:
            return None

    # ------------------------------------------------------------------ #
    # Scanning, fsck, gc, stats
    # ------------------------------------------------------------------ #

    def _iter_entries(self) -> "Iterator[Path]":
        if not self.root.is_dir():
            return
        for namespace_dir in sorted(self.root.iterdir()):
            if not namespace_dir.is_dir() or namespace_dir.name == "corrupt":
                continue
            yield from sorted(namespace_dir.glob(f"*/*{_ENTRY_SUFFIX}"))

    def _iter_tmp_files(self) -> "Iterator[Path]":
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("**/.*.tmp"))

    def fsck(self, trust_budget: "Optional[float]" = None) -> dict:
        """Verify every entry; quarantine failures; return a report.

        The report's ``corrupt`` list names each quarantined entry with
        the reason its verification failed; ``tmp_files`` lists crashed-
        writer litter (harmless — committed entries never pass through a
        visible partial state — but worth knowing about).

        With ``trust_budget``, entries whose header carries a trust
        record with an error bound above the budget (or no finite bound
        at all) are listed under ``trust_flagged`` — they are *intact*,
        so they are reported, not quarantined: the numbers are exactly
        what the solver produced, the solver just could not vouch for
        all their digits.
        """
        checked = ok = 0
        corrupt: "list[dict]" = []
        trust_flagged: "list[dict]" = []
        for path in self._iter_entries():
            checked += 1
            namespace = path.parent.parent.name
            digest = path.name[: -len(_ENTRY_SUFFIX)]
            try:
                data = path.read_bytes()
                self._verify_entry(data, namespace, digest, path)
                if trust_budget is not None:
                    flagged = self._trust_over_budget(
                        data, namespace, path, trust_budget
                    )
                    if flagged is not None:
                        trust_flagged.append(flagged)
            except StoreCorruptionError as exc:
                counter_inc("store.corrupt")
                with self._lock:
                    self.corrupt[namespace] += 1
                quarantined = self.quarantine(path)
                corrupt.append(
                    {
                        "path": str(path),
                        "namespace": namespace,
                        "reason": exc.context.get("reason", exc.message),
                        "quarantined_to": str(quarantined) if quarantined else None,
                    }
                )
            except OSError as exc:
                corrupt.append(
                    {
                        "path": str(path),
                        "namespace": namespace,
                        "reason": f"unreadable: {exc}",
                        "quarantined_to": None,
                    }
                )
            else:
                ok += 1
        report = {
            "root": str(self.root),
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "tmp_files": [str(p) for p in self._iter_tmp_files()],
            "quarantined_total": sum(
                1 for _ in self.corrupt_dir.glob("*")
            ) if self.corrupt_dir.is_dir() else 0,
        }
        if trust_budget is not None:
            report["trust_budget"] = float(trust_budget)
            report["trust_flagged"] = trust_flagged
        return report

    @staticmethod
    def _trust_over_budget(
        data: bytes, namespace: str, path: Path, budget: float
    ) -> "Optional[dict]":
        """One ``trust_flagged`` report row, or None when within budget.

        Entries without a trust record (closed-form values, pre-trust
        writers) are not flagged — absence of a record means no solve is
        behind the value, not a failed one.
        """
        header = json.loads(data[: data.find(b"\n")].decode("utf-8"))
        trust = header.get("trust")
        if not isinstance(trust, dict):
            return None
        bound = trust.get("error_bound")
        finite = isinstance(bound, (int, float)) and bound == bound and bound != float("inf")
        if finite and float(bound) <= budget:
            return None
        return {
            "path": str(path),
            "namespace": namespace,
            "trust": trust.get("trust"),
            "error_bound": bound,
            "escalated": bool(trust.get("escalated", False)),
        }

    def gc(
        self,
        max_bytes: "Optional[int]" = None,
        max_age: "Optional[float]" = None,
    ) -> dict:
        """Size/age-bounded eviction, LRU by the atime in each header.

        ``max_age`` is in seconds.  Also sweeps stale ``.tmp`` litter from
        crashed writers.  Guarded by an advisory lockfile (two concurrent
        collectors would double-count and double-delete); a lockfile older
        than :data:`STALE_LOCK_AGE` is broken, a fresh one makes this call
        a no-op reporting ``locked``.
        """
        lock_path = self.root / ".gc.lock"
        if not self._acquire_gc_lock(lock_path):
            return {"root": str(self.root), "locked": True, "evicted": 0}
        try:
            now = time.time()
            entries: "list[tuple[float, int, Path]]" = []
            evicted = 0
            freed = 0
            for path in self._iter_entries():
                atime, size = self._entry_atime_size(path)
                if max_age is not None and now - atime > max_age:
                    freed += self._remove(path)
                    evicted += 1
                    continue
                entries.append((atime, size, path))
            if max_bytes is not None:
                total = sum(size for _, size, _ in entries)
                entries.sort()  # oldest atime first
                index = 0
                while total > max_bytes and index < len(entries):
                    _, size, path = entries[index]
                    freed += self._remove(path)
                    total -= size
                    evicted += 1
                    index += 1
            tmp_removed = 0
            for tmp in self._iter_tmp_files():
                try:
                    if now - tmp.stat().st_mtime > STALE_TMP_AGE:
                        tmp.unlink()
                        tmp_removed += 1
                except OSError:
                    pass
            if evicted:
                counter_inc("store.evicted", evicted)
                with self._lock:
                    self.evicted += evicted
            return {
                "root": str(self.root),
                "locked": False,
                "evicted": evicted,
                "freed_bytes": freed,
                "stale_tmp_removed": tmp_removed,
            }
        finally:
            try:
                lock_path.unlink()
            except OSError:
                pass

    def _acquire_gc_lock(self, lock_path: Path) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(
                    str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                with os.fdopen(fd, "w") as handle:
                    handle.write(str(os.getpid()))
                return True
            except FileExistsError:
                try:
                    if time.time() - lock_path.stat().st_mtime > STALE_LOCK_AGE:
                        lock_path.unlink()  # dead collector; break its lock
                        continue
                except OSError:
                    continue
                return False
            except OSError:
                return False
        return False

    def _entry_atime_size(self, path: Path) -> "tuple[float, int]":
        """(atime, size) from the header, degrading to file mtime/size."""
        try:
            size = path.stat().st_size
        except OSError:
            return 0.0, 0
        try:
            with open(path, "rb") as handle:
                header = json.loads(handle.readline().decode("utf-8"))
            return float(header.get("atime", 0.0)), size
        except Exception:
            try:
                return path.stat().st_mtime, size
            except OSError:
                return 0.0, size

    def _remove(self, path: Path) -> int:
        try:
            size = path.stat().st_size
            path.unlink()
            return size
        except OSError:
            return 0

    def session_stats(self) -> dict:
        """This process's hit/miss/corrupt/write counters (JSON-ready)."""
        with self._lock:
            return {
                "root": str(self.root),
                "hits": sum(self.hits.values()),
                "misses": sum(self.misses.values()),
                "corrupt": sum(self.corrupt.values()),
                "writes": sum(self.writes.values()),
                "evicted": self.evicted,
                "by_namespace": {
                    ns: {
                        "hits": self.hits[ns],
                        "misses": self.misses[ns],
                        "corrupt": self.corrupt[ns],
                        "writes": self.writes[ns],
                    }
                    for ns in sorted(
                        set(self.hits)
                        | set(self.misses)
                        | set(self.corrupt)
                        | set(self.writes)
                    )
                },
            }

    def disk_stats(self) -> dict:
        """What is on disk right now: entry/byte counts per namespace."""
        by_namespace: "dict[str, dict]" = {}
        total_entries = total_bytes = 0
        for path in self._iter_entries():
            namespace = path.parent.parent.name
            try:
                size = path.stat().st_size
            except OSError:
                continue
            row = by_namespace.setdefault(namespace, {"entries": 0, "bytes": 0})
            row["entries"] += 1
            row["bytes"] += size
            total_entries += 1
            total_bytes += size
        quarantined = (
            sum(1 for _ in self.corrupt_dir.glob("*"))
            if self.corrupt_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "entries": total_entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "tmp_files": sum(1 for _ in self._iter_tmp_files()),
            "by_namespace": by_namespace,
        }
