"""Deterministic, self-describing codec for persistent-store payloads.

The on-disk result store (:mod:`repro.perf.store`) must round-trip every
value the sweep cache holds — busy-period moment tuples, phase-type
distributions, ``(R, diagnostics)`` pairs, full :class:`QbdSolution`
objects, service answers — **bit-identically**, across processes and
Python sessions, without ``pickle`` (whose byte stream is neither stable
across versions nor safe to interpret after on-disk corruption).

Format
------
``encode_value`` produces ``<json tree>\\n<blob section>``:

* The first line is a compact JSON *tree* in which every node is tagged
  (``{"t": "float", "v": "0000000000000840"}``); floats are stored as
  the hex of their little-endian IEEE-754 bytes so the decoded value is
  the bit-identical double — including signed zeros, infinities, and
  NaNs down to the payload bits (which ``float.hex()`` would
  canonicalize away).
* Bulk binary leaves (``bytes``, numpy arrays) live in the blob section
  and are referenced by ``(offset, length)``; arrays additionally carry
  their exact dtype string and shape, so the decoded array is
  byte-identical C-contiguous data.
* Domain objects (distributions, :class:`SolverDiagnostics`,
  :class:`QbdSolution`, ...) are encoded through a **closed registry** of
  ``(encode, decode)`` pairs keyed by a stable tag.  A type outside the
  registry raises :class:`~repro.robustness.SerializationError` — the
  store then simply does not persist that value, rather than persisting
  something it could not faithfully restore.

Encoding the same value always produces the same bytes (dict order is
preserved, no timestamps, no addresses), which is what lets the store
derive content digests from encoded cache keys.

Import note: this module must stay import-light — numpy and the domain
classes are imported lazily on first use, because :mod:`repro.perf` is
imported *by* the distribution and solver layers.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Any, Callable, Optional

from ..robustness import SerializationError

__all__ = [
    "CODEC_VERSION",
    "decode_value",
    "encode_value",
    "key_digest",
    "register_codec",
]

#: Bump when the encoding itself changes incompatibly; folded into the
#: store's entry headers so old payloads are rejected instead of
#: misread.
CODEC_VERSION = 1

#: type -> (tag, to_state) and tag -> from_state, populated lazily by
#: :func:`_ensure_domain_registry` plus any :func:`register_codec` calls.
_ENCODERS: "dict[type, tuple[str, Callable[[Any], Any]]]" = {}
_DECODERS: "dict[str, Callable[[Any], Any]]" = {}
_DOMAIN_REGISTERED = False


def register_codec(
    tag: str,
    cls: type,
    to_state: Callable[[Any], Any],
    from_state: Callable[[Any], Any],
) -> None:
    """Register a domain class for store serialization.

    ``to_state`` maps an instance to a tree of already-encodable values
    (numbers, strings, tuples, dicts, numpy arrays, other registered
    objects); ``from_state`` inverts it.  Tags are part of the on-disk
    format — never reuse one for a different layout.
    """
    if tag in _DECODERS and _DECODERS[tag] is not from_state:
        raise ValueError(f"codec tag {tag!r} is already registered")
    _ENCODERS[cls] = (tag, to_state)
    _DECODERS[tag] = from_state


def _ensure_domain_registry() -> None:
    """Register the domain classes the five cache namespaces produce."""
    global _DOMAIN_REGISTERED
    if _DOMAIN_REGISTERED:
        return
    from ..distributions import Coxian, Erlang, Exponential, Hyperexponential
    from ..distributions.phase_type import PhaseType
    from ..markov.qbd import QbdSolution
    from ..robustness import SolverDiagnostics
    from ..robustness.retry import RungAttempt

    register_codec(
        "exponential",
        Exponential,
        lambda d: {"rate": d.rate},
        lambda s: Exponential(s["rate"]),
    )
    register_codec(
        "erlang",
        Erlang,
        lambda d: {"shape": d.shape, "rate": d.rate},
        lambda s: Erlang(s["shape"], s["rate"]),
    )
    register_codec(
        "coxian",
        Coxian,
        lambda d: {"rates": tuple(d.rates), "continue_probs": tuple(d.continue_probs)},
        lambda s: Coxian(s["rates"], s["continue_probs"]),
    )
    register_codec(
        "hyperexponential",
        Hyperexponential,
        lambda d: {"probs": tuple(d.probs), "rates": tuple(d.rates)},
        lambda s: Hyperexponential(s["probs"], s["rates"]),
    )
    register_codec(
        "phase-type",
        PhaseType,
        lambda d: {"alpha": d.alpha, "T": d.T},
        lambda s: PhaseType(s["alpha"], s["T"]),
    )
    register_codec(
        "rung-attempt",
        RungAttempt,
        lambda a: {
            "name": a.name,
            "accepted": a.accepted,
            "residual": a.residual,
            "iterations": a.iterations,
            "error": a.error,
        },
        lambda s: RungAttempt(
            name=s["name"],
            accepted=s["accepted"],
            residual=s["residual"],
            iterations=s["iterations"],
            error=s["error"],
        ),
    )
    register_codec(
        "solver-diagnostics",
        SolverDiagnostics,
        lambda d: {
            "method": d.method,
            "rungs": tuple(d.rungs),
            "residual": d.residual,
            "spectral_radius": d.spectral_radius,
            "condition_i_minus_r": d.condition_i_minus_r,
            "boundary_residual": d.boundary_residual,
            "iterations": d.iterations,
            "wall_time": d.wall_time,
            "cache_hit": d.cache_hit,
            "degraded": d.degraded,
            "notes": tuple(d.notes),
            "condition_estimate": d.condition_estimate,
            "error_bound": d.error_bound,
            "trust": d.trust,
            "escalated": d.escalated,
            "error_bound_before_escalation": d.error_bound_before_escalation,
        },
        lambda s: SolverDiagnostics(
            method=s["method"],
            rungs=tuple(s["rungs"]),
            residual=s["residual"],
            spectral_radius=s["spectral_radius"],
            condition_i_minus_r=s["condition_i_minus_r"],
            boundary_residual=s["boundary_residual"],
            iterations=s["iterations"],
            wall_time=s["wall_time"],
            cache_hit=s["cache_hit"],
            degraded=s["degraded"],
            notes=tuple(s["notes"]),
            # .get(): payloads persisted before the trust layer lack these.
            condition_estimate=s.get("condition_estimate"),
            error_bound=s.get("error_bound"),
            trust=s.get("trust"),
            escalated=s.get("escalated", False),
            error_bound_before_escalation=s.get("error_bound_before_escalation"),
        ),
    )
    # QbdSolution.__post_init__ recomputes the derived tail fields
    # (spectral radius check, cond(I - R), the inverse) from the stored
    # vectors — deterministic arithmetic on bit-identical inputs, so the
    # restored object matches the original attribute for attribute.
    register_codec(
        "qbd-solution",
        QbdSolution,
        lambda q: {
            "boundary_pi": tuple(q.boundary_pi),
            "pi_repeat": q.pi_repeat,
            "r_matrix": q.r_matrix,
            "first_repeating_level": q.first_repeating_level,
            "diagnostics": q.diagnostics,
            "spectral_radius_hint": q.spectral_radius_hint,
        },
        lambda s: QbdSolution(
            boundary_pi=list(s["boundary_pi"]),
            pi_repeat=s["pi_repeat"],
            r_matrix=s["r_matrix"],
            first_repeating_level=s["first_repeating_level"],
            diagnostics=s["diagnostics"],
            spectral_radius_hint=s["spectral_radius_hint"],
        ),
    )
    _DOMAIN_REGISTERED = True


# --------------------------------------------------------------------------- #
# Encoding
# --------------------------------------------------------------------------- #


def _encode_node(value: Any, blobs: bytearray) -> Any:
    import numpy as np

    if value is None:
        return {"t": "none"}
    # np.generic before the Python primitives: np.float64 subclasses
    # float, and the round trip must give back the numpy scalar type.
    if isinstance(value, np.generic):
        raw = value.tobytes()
        offset = len(blobs)
        blobs.extend(raw)
        return {"t": "npscalar", "dtype": value.dtype.str, "o": offset, "n": len(raw)}
    # bool before int: bool is an int subclass.
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": struct.pack("<d", value).hex()}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, bytes):
        offset = len(blobs)
        blobs.extend(value)
        return {"t": "bytes", "o": offset, "n": len(value)}
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        raw = contiguous.tobytes()
        offset = len(blobs)
        blobs.extend(raw)
        return {
            "t": "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "o": offset,
            "n": len(raw),
        }
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode_node(item, blobs) for item in value]}
    if isinstance(value, list):
        return {"t": "list", "v": [_encode_node(item, blobs) for item in value]}
    if isinstance(value, dict):
        return {
            "t": "dict",
            "v": [
                [_encode_node(k, blobs), _encode_node(v, blobs)]
                for k, v in value.items()
            ],
        }
    _ensure_domain_registry()
    entry = _ENCODERS.get(type(value))
    if entry is not None:
        tag, to_state = entry
        return {"t": "obj", "cls": tag, "v": _encode_node(to_state(value), blobs)}
    raise SerializationError(
        f"cannot serialize {type(value).__module__}.{type(value).__qualname__} "
        "for the persistent store (not in the codec registry)",
        value_type=type(value).__qualname__,
    )


def encode_value(value: Any) -> bytes:
    """Serialize ``value`` to the store's self-describing byte format."""
    blobs = bytearray()
    tree = _encode_node(value, blobs)
    header = json.dumps(
        {"codec": CODEC_VERSION, "tree": tree}, separators=(",", ":")
    ).encode("utf-8")
    return header + b"\n" + bytes(blobs)


# --------------------------------------------------------------------------- #
# Decoding
# --------------------------------------------------------------------------- #


def _decode_node(node: Any, blobs: bytes) -> Any:
    if not isinstance(node, dict) or "t" not in node:
        raise SerializationError(f"malformed codec node: {node!r}")
    tag = node["t"]
    if tag == "none":
        return None
    if tag in ("bool", "int", "str"):
        return node["v"]
    if tag == "float":
        return struct.unpack("<d", bytes.fromhex(node["v"]))[0]
    if tag == "bytes":
        return _blob_slice(blobs, node)
    if tag == "ndarray":
        import numpy as np

        raw = _blob_slice(blobs, node)
        array = np.frombuffer(raw, dtype=np.dtype(node["dtype"]))
        return array.reshape(node["shape"]).copy()  # writable, owns its data
    if tag == "npscalar":
        import numpy as np

        raw = _blob_slice(blobs, node)
        return np.frombuffer(raw, dtype=np.dtype(node["dtype"]))[0]
    if tag == "tuple":
        return tuple(_decode_node(item, blobs) for item in node["v"])
    if tag == "list":
        return [_decode_node(item, blobs) for item in node["v"]]
    if tag == "dict":
        return {
            _decode_node(k, blobs): _decode_node(v, blobs) for k, v in node["v"]
        }
    if tag == "obj":
        _ensure_domain_registry()
        from_state = _DECODERS.get(node["cls"])
        if from_state is None:
            raise SerializationError(
                f"unknown codec tag {node['cls']!r} (schema drift?)"
            )
        return from_state(_decode_node(node["v"], blobs))
    raise SerializationError(f"unknown codec node type {tag!r}")


def _blob_slice(blobs: bytes, node: dict) -> bytes:
    offset, length = node["o"], node["n"]
    if offset < 0 or length < 0 or offset + length > len(blobs):
        raise SerializationError(
            f"blob reference [{offset}:{offset + length}] outside the "
            f"{len(blobs)}-byte blob section"
        )
    return blobs[offset : offset + length]


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value`.

    Raises :class:`~repro.robustness.SerializationError` on any malformed
    or version-mismatched payload; the store wraps that in a
    :class:`~repro.robustness.StoreCorruptionError`.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise SerializationError("payload has no tree/blob separator")
    try:
        envelope = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SerializationError(f"payload tree is not valid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("codec") != CODEC_VERSION:
        raise SerializationError(
            "payload codec version mismatch",
            expected=CODEC_VERSION,
            observed=envelope.get("codec") if isinstance(envelope, dict) else None,
        )
    try:
        return _decode_node(envelope["tree"], data[newline + 1 :])
    except SerializationError:
        raise
    except Exception as exc:  # reconstruction of a domain object blew up
        raise SerializationError(
            f"payload decoded but reconstruction failed: {exc}"
        ) from exc


# --------------------------------------------------------------------------- #
# Key digests
# --------------------------------------------------------------------------- #


def key_digest(namespace: str, key: Any, extra: "Optional[str]" = None) -> str:
    """Stable content digest of a cache key (hex sha256).

    The digest covers the namespace, the full key structure (the PR 3
    bit-transparent cache keys: exact float tuples, raw matrix bytes) and
    an optional ``extra`` discriminator — the store passes the solver
    schema version through it, so a solver bump orphans old entries
    instead of replaying stale numerics.
    """
    hasher = hashlib.sha256()
    hasher.update(namespace.encode("utf-8"))
    hasher.update(b"\x00")
    if extra:
        hasher.update(extra.encode("utf-8"))
        hasher.update(b"\x00")
    hasher.update(encode_value(key))
    return hasher.hexdigest()
