"""The ``python -m repro bench`` harness: a recorded performance trajectory.

Each named benchmark times a fixed end-to-end workload (a figure sweep or
a simulation run), records the result as ``results/BENCH_<name>.json``
(wall time, repeat samples, cache hit rates, solver-ladder tiers, machine
calibration) and can compare itself against the committed baselines in
``benchmarks/baselines/`` — CI runs the reduced ``--quick`` variants and
fails on a >30% regression.

Wall-clock numbers are machine-dependent, so every record also times a
fixed numpy *calibration kernel*; when both sides of a comparison carry
one, the regression gate compares calibration-normalized times, which
keeps the gate meaningful across container generations.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from .cache import SweepCache, sweep_cache

__all__ = [
    "BENCHMARKS",
    "BenchRecord",
    "calibration_time",
    "compare_records",
    "discover_records",
    "load_baseline",
    "parse_record_filename",
    "record_filename",
    "run_benchmark",
    "write_bench_json",
]

#: Default relative regression tolerance for the CI gate.
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class Benchmark:
    """One named workload with a full and a reduced (``--quick``) grid."""

    name: str
    description: str
    full: Callable[[], object]
    quick: Callable[[], object]


def _figure4_full():
    from ..experiments import figure4_panels

    # Mirrors benchmarks/bench_figure4.py end to end: the default sweep,
    # the rho_l = 0.8 follow-up, and the two rho_l = 0.5 comparison points.
    figure4_panels()
    figure4_panels(rho_l=0.8, rho_s_values=[0.4, 0.8, 0.99, 1.1])
    figure4_panels(rho_l=0.5, rho_s_values=[0.8])
    figure4_panels(rho_l=0.5, rho_s_values=[0.8])


# The quick grids are sized to stay well above timer/scheduler noise
# (tens of milliseconds of real work) while still finishing in well under
# a second each: a too-small workload makes the 30% regression gate fire
# on noise rather than on code.


def _figure4_quick():
    from ..experiments import figure4_panels

    figure4_panels(rho_l=0.5)


def _figure5_full():
    from ..experiments import figure5_panels

    figure5_panels()


def _figure5_quick():
    from ..experiments import figure5_panels

    figure5_panels(rho_s_values=[0.2, 0.4, 0.6, 0.8, 0.9, 0.99])


def _figure6_full():
    from ..experiments import figure6_panels

    figure6_panels()


def _figure6_quick():
    from ..experiments import figure6_panels

    figure6_panels(
        rho_l_values_short=[0.1, 0.2, 0.3, 0.4],
        rho_l_values_long=[0.3, 0.4, 0.5, 0.6, 0.7],
    )


def _simulation(measured_jobs: int):
    from ..core import SystemParameters
    from ..simulation import simulate

    params = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
    simulate(
        "cs-cq",
        params,
        seed=0,
        warmup_jobs=5_000,
        measured_jobs=measured_jobs,
    )


BENCHMARKS: "dict[str, Benchmark]" = {
    bench.name: bench
    for bench in (
        Benchmark(
            "figure4",
            "figure-4 sweeps (default grid + rho_l=0.8 follow-up)",
            _figure4_full,
            _figure4_quick,
        ),
        Benchmark("figure5", "figure-5 sweep (Coxian longs)", _figure5_full, _figure5_quick),
        Benchmark("figure6", "figure-6 sweep (vs rho_l)", _figure6_full, _figure6_quick),
        Benchmark(
            "simulation",
            "CS-CQ discrete-event simulation (100k jobs)",
            lambda: _simulation(100_000),
            lambda: _simulation(20_000),
        ),
    )
}


def calibration_time(repeat: int = 5) -> float:
    """Seconds for a fixed numpy kernel; a proxy for this machine's speed.

    Recorded alongside every benchmark so a comparison between records
    made on different machines can normalize out hardware differences.
    """
    import numpy as np

    rng = np.random.default_rng(0)
    a = rng.random((200, 200))
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        b = a.copy()
        for _ in range(30):
            b = b @ a
            b /= np.abs(b).max()
        best = min(best, time.perf_counter() - start)
    return best


def _solver_summary(cache: SweepCache) -> "dict | None":
    """Ladder-tier breakdown of every QBD solved during the run."""
    solutions = cache.values("qbd-solution")
    if not solutions:
        return None
    methods: "dict[str, int]" = {}
    iterations = []
    for solution in solutions:
        diag = getattr(solution, "diagnostics", None)
        if diag is None:
            continue
        methods[diag.method] = methods.get(diag.method, 0) + 1
        if diag.iterations is not None:
            iterations.append(diag.iterations)
    return {
        "solves": len(solutions),
        "methods": methods,
        "max_iterations": max(iterations) if iterations else None,
    }


@dataclass(frozen=True)
class BenchRecord:
    """JSON-ready result of one benchmark run."""

    name: str
    quick: bool
    wall_time: float
    wall_times: "list[float]"
    cache: "dict | None"
    solver: "dict | None"
    calibration: float
    variant: "str | None" = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "quick": self.quick,
            "variant": self.variant,
            "wall_time": self.wall_time,
            "wall_times": self.wall_times,
            "repeat": len(self.wall_times),
            "cache": self.cache,
            "solver": self.solver,
            "calibration": self.calibration,
            "machine": platform.machine(),
            "python": platform.python_version(),
        }


def run_benchmark(name: str, quick: bool = False, repeat: int = 3) -> BenchRecord:
    """Time one benchmark (best of ``repeat``) under a sweep-cache scope.

    The first repeat runs cold; cache statistics are taken from its scope
    (later repeats would be all-hit and say nothing about the workload).
    """
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(BENCHMARKS))}"
        )
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    from .batched import batched_enabled

    bench = BENCHMARKS[name]
    workload = bench.quick if quick else bench.full
    from ..telemetry import registry

    wall_times = []
    cache_stats = solver = None
    for i in range(repeat):
        fallbacks_before = registry().counter("batched.fallback")
        with sweep_cache() as cache:
            start = time.perf_counter()
            workload()
            wall_times.append(time.perf_counter() - start)
            if i == 0:
                cache_stats = cache.stats()
                solver = _solver_summary(cache)
                if solver is not None and batched_enabled():
                    # How many points the batched fast path handed back to
                    # the scalar solver this (cold) repeat — the headline
                    # "did the tensor backend actually carry the load"
                    # number (per-reason counters live in telemetry).
                    solver["batched_fallbacks"] = int(
                        registry().counter("batched.fallback") - fallbacks_before
                    )
    return BenchRecord(
        name=name,
        quick=quick,
        wall_time=min(wall_times),
        wall_times=wall_times,
        cache=cache_stats,
        solver=solver,
        calibration=calibration_time(),
        variant="batched" if batched_enabled() else None,
    )


def record_filename(name: str, variant: "str | None" = None, quick: bool = False) -> str:
    """The canonical record filename: ``BENCH_<name>[.<variant>][.quick].json``.

    The filename *is* the pairing identity — discovery and the regression
    gate parse it back with :func:`parse_record_filename`, so every record
    written through here is deterministically pairable with its baseline.
    """
    if variant is not None and (
        not variant or not variant.isidentifier() or variant == "quick"
    ):
        raise ValueError(f"record variant must be an identifier, got {variant!r}")
    parts = [f"BENCH_{name}"]
    if variant:
        parts.append(variant)
    if quick:
        parts.append("quick")
    return ".".join(parts) + ".json"


def parse_record_filename(filename: str) -> "tuple[str, str | None, bool] | None":
    """Invert :func:`record_filename`: ``(name, variant, quick)`` or None.

    Returns None for files that do not follow the canonical naming —
    callers treat those as unpairable and fail loudly rather than guess.
    """
    if not filename.startswith("BENCH_") or not filename.endswith(".json"):
        return None
    stem = filename[len("BENCH_") : -len(".json")]
    parts = stem.split(".")
    name, markers = parts[0], parts[1:]
    if not name or len(markers) > 2:
        return None
    quick = False
    if markers and markers[-1] == "quick":
        quick = True
        markers = markers[:-1]
    variant = markers[0] if markers else None
    if len(markers) > 1 or variant == "quick" or (variant is not None and not variant):
        return None
    return name, variant, quick


def discover_records(
    record_dir: "Path | str",
) -> "tuple[list[tuple[str, str | None, bool, Path]], list[Path]]":
    """Deterministically enumerate the bench records in a directory.

    Returns ``(records, unparseable)``: records as sorted
    ``(name, variant, quick, path)`` tuples, plus every ``BENCH_*.json``
    whose filename does not parse — the regression gate reports those as
    hard failures, so a stale or hand-misnamed baseline can never be
    silently skipped.
    """
    records = []
    unparseable = []
    for path in sorted(Path(record_dir).glob("BENCH_*.json")):
        parsed = parse_record_filename(path.name)
        if parsed is None:
            unparseable.append(path)
        else:
            records.append((*parsed, path))
    return records, unparseable


def write_bench_json(record_dict: dict, out_dir: "Path | str") -> Path:
    """Atomically persist a record under its canonical filename."""
    from ..robustness.atomic_write import atomic_write_json

    path = Path(out_dir) / record_filename(
        record_dict["name"],
        record_dict.get("variant"),
        bool(record_dict.get("quick")),
    )
    atomic_write_json(path, record_dict, sort_keys=True)
    return path


def load_baseline(
    name: str,
    quick: bool,
    baseline_dir: "Path | str",
    variant: "str | None" = None,
) -> "dict | None":
    """Load the committed baseline record for ``name``, if one exists.

    A variant record (e.g. ``batched``) prefers its exact-variant
    baseline and falls back to the scalar anchor of the same name — that
    fallback is what lets a freshly introduced variant gate against the
    committed scalar trajectory (and is how the batched backend's speedup
    is recorded as a ``speedup_vs_baseline`` against the scalar anchor).
    """
    candidates = [Path(baseline_dir) / record_filename(name, variant, quick)]
    if variant is not None:
        candidates.append(Path(baseline_dir) / record_filename(name, None, quick))
    for path in candidates:
        if path.exists():
            return json.loads(path.read_text())
    return None


def compare_records(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> "tuple[bool, str]":
    """Regression-gate one record against its baseline.

    Returns ``(ok, message)``.  When both records carry a calibration
    time the gate takes the *more favorable* of the raw and the
    calibration-normalized wall-time ratio: normalization corrects for a
    genuinely slower machine (work per unit of machine speed), while the
    raw ratio protects against the calibration kernel itself catching a
    noisy moment on the same machine.  A real code regression inflates
    both ratios, so the gate still fires.
    """
    wall = current["wall_time"]
    base = baseline["wall_time"]
    cal_cur = current.get("calibration")
    cal_base = baseline.get("calibration")
    ratios = {"raw wall time": wall / base}
    if cal_cur and cal_base:
        ratios["calibration-normalized"] = (wall / cal_cur) / (base / cal_base)
    basis, ratio = min(ratios.items(), key=lambda kv: kv[1])
    ok = ratio <= 1.0 + tolerance
    direction = "slower" if ratio > 1.0 else "faster"
    message = (
        f"{current['name']}: {wall:.4g}s vs baseline {base:.4g}s "
        f"({basis} ratio {ratio:.2f}x, {abs(ratio - 1.0) * 100:.0f}% {direction}; "
        f"tolerance {tolerance * 100:.0f}%)"
    )
    return ok, message
