"""Batched tensor QBD backend: solve a whole sweep grid in stacked LAPACK calls.

The figure 4-6 sweeps evaluate the same A0/A1/A2 block structure at every
grid point; the scalar path pays one Python-loop QBD solve per point.  This
backend stacks the blocks of an entire sweep row into ``(N, m, m)`` tensors
and runs the logarithmic-reduction iteration, the R-matrix recovery and the
boundary solves as batched ``numpy.linalg`` calls over the leading axis
(:func:`repro.markov.qbd.solve_r_matrix_batched`), with per-point
convergence masks so slow points keep iterating while converged points
freeze — per-point iteration counts therefore match the scalar path's.
The response-time formulas downstream of the solve (Little's law on the
QBD level, the region-probability setup queue, the long-host cycle and
the M/G/1 closed forms) are evaluated vectorized over the row as well, so
a batched sweep never constructs per-point analysis objects on its fast
path.

Correctness model
-----------------
* Batched ``matmul``/``solve``/``inv``/``eigvals``/``cond`` dispatch the
  identical LAPACK routine per slice, so per-point iterates — and the
  converged G and R matrices — are bit-identical to the scalar rung-1
  results.  The stacked block *assembly* mirrors the analyses'
  ``_build_blocks`` element by element, so cache keys derived from block
  bytes match the scalar path's exactly.
* Stability decisions (which points are NaN) replicate the analyses'
  guard arithmetic operation-for-operation, so the NaN pattern is
  bit-identical to the scalar sweep.  Downstream value formulas reorder
  float reductions (batched GEMM vs scalar GEMV), which is the only
  source of divergence — bounded far below the 1e-10 relative agreement
  the property suite enforces.
* Only the first (``logarithmic-reduction``) rung is batched: any point it
  does not accept (stagnation, residual, boundary imbalance, material
  negatives, ``sp(R) >= 1``, conditioning, normalization) — and any point
  whose closed-form guards would raise or warn on the scalar path — falls
  back to the scalar per-point evaluator
  (:func:`repro.experiments.figures._policy_point_values`), reproducing
  degradation, typed errors, contract checks and warnings exactly.
* Every batched result is deposited in the active sweep cache (and, via
  the usual write-through, the persistent store) under the **exact keys
  the scalar path uses** (``analysis-solution``, ``qbd-solution``,
  ``r-matrix``), so warm runs, ``repro check`` and the bench solver
  summary are indistinguishable from scalar runs.
* Fast-path points skip the per-point invariant contracts (their values
  are instead covered by the batched-vs-scalar property suite and the
  ``repro check`` oracle); fallback points keep full contract coverage.

Switched on by ``--batched`` on the ``figure``/``bench`` CLIs or the
``REPRO_BATCHED`` environment variable (which also reaches orchestration
worker subprocesses).  ``REPRO_BATCHED_STRICT`` turns the
fail-open safety net (any unexpected fast-path error reverts the row to
the scalar path) into a hard error for tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from ..busy_periods import MG1BusyPeriod, NPlusOneBusyPeriod
from ..distributions import Exponential, coxian_from_mean_scv
from ..markov.qbd import QbdSolution, solve_r_matrix_batched
from ..robustness import RungAttempt, SolverDiagnostics, ensure_finite_scalar
from ..robustness.guards import CONDITION_WARN
from ..robustness.trust import compose_bound, condest_1, trust_verdicts
from ..telemetry import counter_inc, span
from .cache import active_cache

__all__ = [
    "BATCHED_ENV_VAR",
    "batched_enabled",
    "batched_figure_values",
    "batched_sweep_values",
]

#: Environment variable enabling the batched sweep backend (set by the
#: ``--batched`` CLI flag; crosses the worker process boundary).
BATCHED_ENV_VAR = "REPRO_BATCHED"

#: When set, fast-path implementation errors raise instead of silently
#: reverting the row to the scalar path (used by the test suite).
STRICT_ENV_VAR = "REPRO_BATCHED_STRICT"

_FALSEY = {"", "0", "false", "no", "off"}

#: Defaults of the scalar R-matrix ladder entry point — part of the
#: ``r-matrix`` cache key, so they must match
#: :func:`repro.markov.qbd.solve_r_matrix_with_diagnostics` exactly.
_R_TOL = 1e-13
_R_MAX_ITER = 200


def batched_enabled() -> bool:
    """True when the batched backend is on (``--batched`` / ``REPRO_BATCHED``)."""
    return os.environ.get(BATCHED_ENV_VAR, "").strip().lower() not in _FALSEY


def _strict() -> bool:
    return os.environ.get(STRICT_ENV_VAR, "").strip().lower() not in _FALSEY


class _FallbackTracker(set):
    """Fallback index set that remembers *why* each point fell back.

    Every batched→scalar fallback used to be invisible unless
    ``REPRO_BATCHED_STRICT`` was set; the tracker attributes each fallback
    to a reason so the sweep span and the ``batched.fallback.<reason>``
    counters can surface them (and the bench solver summary can total
    them).  A point keeps its *first* reason — later, coarser rejections
    of an already-fallen-back point add nothing.
    """

    def __init__(self) -> None:
        super().__init__()
        self.reasons: dict[str, int] = {}

    def note(self, indices, reason: str) -> None:
        fresh = [int(i) for i in indices if int(i) not in self]
        if fresh:
            self.reasons[reason] = self.reasons.get(reason, 0) + len(fresh)
            self.update(fresh)


def _note_fallback(fb: set, index: int, reason: str) -> None:
    """Add to a fallback set, recording the reason when it tracks them."""
    if isinstance(fb, _FallbackTracker):
        fb.note([index], reason)
    else:
        fb.add(index)


def _fallback_reasons(fallback: set) -> "dict[str, int]":
    """Reason histogram for one row's fallbacks.

    A plain set (the whole-row fail-open path) attributes everything to
    ``fast-path-error``, matching what actually happened.
    """
    reasons = getattr(fallback, "reasons", None)
    if reasons:
        return dict(sorted(reasons.items()))
    return {"fast-path-error": len(fallback)} if fallback else {}


def _count_fallback_reasons(reasons: "dict[str, int]") -> None:
    for reason, count in reasons.items():
        counter_inc(f"batched.fallback.{reason}", count)


def batched_sweep_values(
    case,
    load_pairs: Sequence[tuple[float, float]],
    job_class: str,
    with_diagnostics: bool = False,
) -> tuple[dict[str, np.ndarray], Optional[list]]:
    """All three policies' mean response times over one sweep row, batched.

    Returns ``(values, diagnostics)``: ``values`` maps policy labels to
    float arrays aligned with ``load_pairs`` (NaN beyond stability
    boundaries, exactly as the scalar sweep); ``diagnostics`` is a
    per-point list of ``{label: SolverDiagnostics.as_dict()}`` (or None
    entries) when requested, else None.

    Points the fast path cannot finish bit-faithfully — non-converged
    QBDs, near-boundary conditioning, degenerate closed forms — are
    re-evaluated by the scalar per-point path, which reproduces the exact
    scalar errors, warnings, degradations and contract checks.
    """
    from ..experiments.figures import _POLICY_LABELS, _policy_point_values

    cache = active_cache()
    n = len(load_pairs)
    out = {label: np.full(n, np.nan) for label in _POLICY_LABELS}
    diags: list = [None] * n
    with span(
        "perf.batched.sweep",
        case=getattr(case, "name", ""),
        job_class=job_class,
        points=n,
    ) as sweep_span:
        pool = _SolvePool(cache)
        try:
            finish = _fast_sweep(
                case,
                load_pairs,
                job_class,
                out,
                diags if with_diagnostics else None,
                cache,
                pool,
            )
            pool.flush()
            fallback, solved = finish()
        except Exception:
            if _strict():
                raise
            counter_inc("batched.fast_path_errors")
            fallback, solved = set(range(n)), 0
        for i in sorted(fallback):
            rho_s_i, rho_l_i = load_pairs[i]
            values, diag = _policy_point_values(
                case.params(rho_s_i, rho_l_i),
                job_class,
                with_diagnostics=with_diagnostics,
            )
            for label in _POLICY_LABELS:
                out[label][i] = values[label]
            if with_diagnostics:
                diags[i] = diag
        if with_diagnostics:
            # Scalar parity: labels whose value is closed-form (Dedicated,
            # CS-ID longs, saturated CS-CQ longs) carry the synthesized
            # trusted record, exactly as _policy_point_values emits.
            from ..experiments.figures import _closed_form_diagnostics

            closed = _closed_form_diagnostics().as_dict()
            for i in range(n):
                slot = diags[i] or {}
                for label in _POLICY_LABELS:
                    if label not in slot and np.isfinite(out[label][i]):
                        slot[label] = dict(closed)
                diags[i] = slot or None
        sweep_span.set("solved", solved)
        sweep_span.set("fallback", len(fallback))
        reasons = _fallback_reasons(fallback)
        if reasons:
            sweep_span.set("fallback_reasons", reasons)
            _count_fallback_reasons(reasons)
        counter_inc("batched.points", n)
        if solved:
            counter_inc("batched.solved", solved)
        if fallback:
            counter_inc("batched.fallback", len(fallback))
    return out, (diags if with_diagnostics else None)


def batched_figure_values(
    case_rows: Sequence[tuple],
) -> "list[dict[str, np.ndarray]]":
    """Solve many sweep rows through one shared QBD pool.

    ``case_rows`` is ``[(case, load_pairs, job_class), ...]`` — typically
    every row of one figure, inside one cache scope.  All rows' pending
    QBDs are pooled and solved in merged ``(N, m, m)`` stacks (one batched
    logarithmic-reduction sweep per block shape instead of one per row),
    then each row's closed forms are finished from the shared solutions.
    Values, NaN patterns, fallbacks and cache seeding are identical to
    calling :func:`batched_sweep_values` row by row — the pool only
    changes how the LAPACK work is grouped.
    """
    from ..experiments.figures import _POLICY_LABELS, _policy_point_values

    cache = active_cache()
    pool = _SolvePool(cache)
    rows: list = []
    results: list = []
    with span("perf.batched.figure", rows=len(case_rows)) as fig_span:
        for case, load_pairs, job_class in case_rows:
            n = len(load_pairs)
            out = {label: np.full(n, np.nan) for label in _POLICY_LABELS}
            try:
                finish = _fast_sweep(
                    case, load_pairs, job_class, out, None, cache, pool
                )
            except Exception:
                if _strict():
                    raise
                counter_inc("batched.fast_path_errors")
                finish = None
            rows.append((case, load_pairs, job_class, out, finish))
        pool.flush()
        total_solved = total_fallback = 0
        total_reasons: dict[str, int] = {}
        for case, load_pairs, job_class, out, finish in rows:
            n = len(load_pairs)
            if finish is None:
                fallback, solved = set(range(n)), 0
            else:
                try:
                    fallback, solved = finish()
                except Exception:
                    if _strict():
                        raise
                    counter_inc("batched.fast_path_errors")
                    fallback, solved = set(range(n)), 0
            for i in sorted(fallback):
                rho_s_i, rho_l_i = load_pairs[i]
                values, _ = _policy_point_values(
                    case.params(rho_s_i, rho_l_i), job_class
                )
                for label in _POLICY_LABELS:
                    out[label][i] = values[label]
            counter_inc("batched.points", n)
            if solved:
                counter_inc("batched.solved", solved)
            if fallback:
                counter_inc("batched.fallback", len(fallback))
            row_reasons = _fallback_reasons(fallback)
            _count_fallback_reasons(row_reasons)
            for reason, count in row_reasons.items():
                total_reasons[reason] = total_reasons.get(reason, 0) + count
            total_solved += solved
            total_fallback += len(fallback)
            results.append(out)
        fig_span.set("solved", total_solved)
        fig_span.set("fallback", total_fallback)
        if total_reasons:
            fig_span.set("fallback_reasons", dict(sorted(total_reasons.items())))
    return results


def _fast_sweep(case, load_pairs, job_class: str, out, diags, cache, pool):
    """Vectorized row evaluation, in two stages around the shared pool.

    Runs the row's guard masks and closed forms, registers the row's QBD
    solves with ``pool``, and returns a ``finish()`` callable that — once
    the pool has flushed — consumes the solutions, fills ``out`` and
    returns ``(fallback indices, #QBDs solved)``.

    Every mask below replicates a guard of the scalar path with the same
    arithmetic in the same order, so fast/scalar stability decisions are
    bit-identical; points whose scalar path would raise *unexpected*
    errors (crashes, warnings, degradations) are routed to ``fallback``.

    ``SystemParameters`` construction is mirrored, not performed: the same
    validations, the same distribution constructors (once per row instead
    of once per point) and the same ``rho / mean`` divisions produce lam
    vectors bit-identical to ``from_loads``'s per-point fields, so every
    block byte and cache key derived from them matches the scalar path's.
    Real params objects are built only for fallback points.
    """
    from ..experiments.figures import _POLICY_LABELS

    n = len(load_pairs)
    mean_short = ensure_finite_scalar(case.mean_short, "mean_short")
    mean_long = ensure_finite_scalar(case.mean_long, "mean_long")
    shorts = (
        Exponential.from_mean(mean_short)
        if case.short_scv == 1.0
        else coxian_from_mean_scv(mean_short, case.short_scv)
    )
    longs = (
        Exponential.from_mean(mean_long)
        if case.long_scv == 1.0
        else coxian_from_mean_scv(mean_long, case.long_scv)
    )
    if not isinstance(shorts, Exponential):
        # params.mu_s raises TypeError on the scalar path; the outer
        # safety net reverts the whole row to per-point evaluation.
        raise TypeError("batched fast path requires exponential short service")
    mu_s = shorts.rate
    short_mean, short_m2 = shorts.mean, shorts.moment(2)
    long_mean, long_m2 = longs.mean, longs.moment(2)
    longs_token = (float(case.mean_long), float(case.long_scv), float(mu_s))

    rho_s_in = np.array([pair[0] for pair in load_pairs], dtype=float)
    rho_l_in = np.array([pair[1] for pair in load_pairs], dtype=float)
    label_ded, label_csid, label_cscq = _POLICY_LABELS
    fallback = _FallbackTracker()
    solved = 0
    # from_loads rejects NaN/inf/negative loads with a typed ValidationError;
    # route such points through the real constructor so it raises exactly.
    invalid = ~(
        np.isfinite(rho_s_in)
        & (rho_s_in >= 0.0)
        & np.isfinite(rho_l_in)
        & (rho_l_in >= 0.0)
    )
    fallback.note(np.flatnonzero(invalid), "invalid-loads")
    with np.errstate(all="ignore"):
        lam_s = rho_s_in / mean_short  # == from_loads' lam_s, bit for bit
        lam_l = rho_l_in / mean_long
        rho_s = lam_s * short_mean  # == params.rho_s, same product
        rho_l = lam_l * long_mean  # == params.rho_l

    if job_class == "short":
        # lam_s == 0 raises a bare ValueError in the scalar response-time
        # accessors; reproduce by letting the scalar path handle it.
        fallback.note(np.flatnonzero(lam_s <= 0.0), "degenerate-rates")
        with np.errstate(all="ignore"):
            # Dedicated: two independent M/G/1s (either host unstable -> NaN).
            ded = short_mean + lam_s * short_m2 / (2.0 * (1.0 - rho_s))
            out[label_ded][:] = np.where((rho_s < 1.0) & (rho_l < 1.0), ded, np.nan)

            # CS-ID long-host cycle, mirroring LongHostCycle (c_s = c_l = 1).
            sum_rates = lam_s + lam_l
            q = np.where(sum_rates > 0.0, lam_s / sum_rates, 0.0)
            one_minus = 1.0 - rho_l
            free = 1.0 / sum_rates
            short_branch = short_mean + np.where(
                lam_l > 0.0, lam_l * short_mean * long_mean / one_minus, 0.0
            )
            long_branch = np.where(lam_l > 0.0, long_mean / one_minus, 0.0)
            mean_cycle = free + q * short_branch + (1.0 - q) * long_branch
            p_idle = np.where(sum_rates == 0.0, 1.0, free / mean_cycle)
            p_busy = 1.0 - p_idle
            csid_ok = (rho_l < 1.0) & (lam_s * p_busy * short_mean < 1.0)
            cscq_ok = (rho_l < 1.0) & (rho_s < 2.0 - rho_l)

        live = np.ones(n, dtype=bool)
        live[list(fallback)] = False
        csid_entries = pool.request(
            "cs-id",
            np.flatnonzero(csid_ok & live),
            lam_s,
            lam_l,
            longs,
            longs_token,
            mu_s,
            fallback,
        )
        cscq_entries = pool.request(
            "cs-cq",
            np.flatnonzero(cscq_ok & live),
            lam_s,
            lam_l,
            longs,
            longs_token,
            mu_s,
            fallback,
        )

        def finish_short() -> tuple[set[int], int]:
            solved = sum(not hit for _, _, hit in csid_entries + cscq_entries)
            mean_n = np.full(n, np.nan)
            for idx, levels in _mean_levels(csid_entries):
                mean_n[idx] = levels
            with np.errstate(all="ignore"):
                rate = lam_s * (1.0 - p_idle)
                csid_val = p_idle * short_mean + (1.0 - p_idle) * (mean_n / rate)
                csid_val = np.where(rate > 0.0, csid_val, short_mean)
                out[label_csid][:] = np.where(csid_ok, csid_val, np.nan)

                mean_n_cq = np.full(n, np.nan)
                for idx, levels in _mean_levels(cscq_entries):
                    mean_n_cq[idx] = levels
                out[label_cscq][:] = np.where(cscq_ok, mean_n_cq / lam_s, np.nan)

            if diags is not None:
                _collect_diags(diags, label_csid, csid_entries)
                _collect_diags(diags, label_cscq, cscq_entries)
            return fallback, solved

        return finish_short

    # ------------------------------------------------------------------
    # Long rows
    # ------------------------------------------------------------------
    # rho_l >= 1 crashes the scalar Dedicated entry (bare ValueError from
    # Mg1Queue); lam_l <= 0 crashes the CS-CQ accessor.  Both are sweep
    # construction errors, not data: reproduce them scalar.
    fallback.note(np.flatnonzero(rho_l >= 1.0), "degenerate-rates")
    fallback.note(np.flatnonzero(lam_l <= 0.0), "degenerate-rates")
    from ..core.cs_id import caught_short_remainder_moments

    with np.errstate(all="ignore"):
        ded = long_mean + lam_l * long_m2 / (2.0 * (1.0 - rho_l))
        out[label_ded][:] = np.where(rho_l < 1.0, ded, np.nan)

        # CS-ID longs: the autonomous host cycle's M/G/1-with-setup.
        sum_rates = lam_s + lam_l
        q = np.where(sum_rates > 0.0, lam_s / sum_rates, 0.0)
        p_caught = np.zeros(n)
        rem_m1 = np.zeros(n)
        rem_m2 = np.zeros(n)
        pk = lam_l * long_m2 / (2.0 * (1.0 - rho_l))

        for value in np.unique(lam_l[lam_l > 0.0]):
            sel = lam_l == value
            p_caught[sel] = 1.0 - float(shorts.laplace(float(value)).real)

        denom = 1.0 - q * (1.0 - p_caught)
        fallback.note(np.flatnonzero(denom <= 0.0), "degenerate-rates")
        p_zero = np.where(denom > 0.0, (1.0 - q) / denom, np.nan)
        need_rem = (lam_l > 0.0) & (denom > 0.0) & (p_zero < 1.0)
        for value in np.unique(lam_l[need_rem]):
            sel = need_rem & (lam_l == value)
            try:
                m1, m2, _ = caught_short_remainder_moments(shorts, float(value))
            except Exception:
                fallback.note(np.flatnonzero(sel), "remainder-moments")
                continue
            rem_m1[sel] = m1
            rem_m2[sel] = m2

        weight = 1.0 - p_zero
        sm1 = np.where(need_rem, weight * rem_m1, 0.0)
        sm2 = np.where(need_rem, weight * rem_m2, 0.0)
        # Mg1SetupQueue's moment-feasibility gate raises on the scalar path.
        infeasible = (sm1 > 0.0) & (sm2 < sm1**2 * (1 - 1e-9))
        fallback.note(np.flatnonzero(infeasible), "infeasible-moments")
        setup = np.where(
            (sm1 == 0.0) & (sm2 == 0.0),
            0.0,
            (2.0 * sm1 + lam_l * sm2) / (2.0 * (1.0 + lam_l * sm1)),
        )
        out[label_csid][:] = np.where(rho_l < 1.0, long_mean + (pk + setup), np.nan)

        # CS-CQ longs: saturated closed form beyond the short boundary ...
        nu = 2.0 * mu_s
        sat_sm1 = 1.0 / nu
        sat_sm2 = 2.0 / (nu * nu)
        sat_setup = (2.0 * sat_sm1 + lam_l * sat_sm2) / (
            2.0 * (1.0 + lam_l * sat_sm1)
        )
        cscq_stable = (rho_s < 2.0 - rho_l) & (rho_l < 1.0)
        cscq_sat = ~(rho_s < 2.0 - rho_l) & (rho_l < 1.0)
        out[label_cscq][:] = np.where(cscq_sat, long_mean + (pk + sat_setup), np.nan)

    # ... and the solved chain's region-probability setup queue inside it.
    live = np.ones(n, dtype=bool)
    live[list(fallback)] = False
    entries = pool.request(
        "cs-cq",
        np.flatnonzero(cscq_stable & live),
        lam_s,
        lam_l,
        longs,
        longs_token,
        mu_s,
        fallback,
    )

    def finish_long() -> tuple[set[int], int]:
        solved = sum(not hit for _, _, hit in entries)
        for idx, region1, region2 in _region_probabilities(entries):
            with np.errstate(all="ignore"):
                total = region1 + region2
                bad = total <= 0.0  # NumericalError -> warning, scalar path
                fallback.note(idx[bad], "bad-region-totals")
                p_zero = region1 / total
                q2 = 1.0 - p_zero
                sm1 = q2 / nu
                sm2 = 2.0 * q2 / (nu * nu)
                infeasible = (sm1 > 0.0) & (sm2 < sm1**2 * (1 - 1e-9))
                fallback.note(idx[infeasible], "infeasible-moments")
                setup = np.where(
                    (sm1 == 0.0) & (sm2 == 0.0),
                    0.0,
                    (2.0 * sm1 + lam_l[idx] * sm2)
                    / (2.0 * (1.0 + lam_l[idx] * sm1)),
                )
                out[label_cscq][idx] = long_mean + (pk[idx] + setup)
        if diags is not None:
            _collect_diags(diags, label_cscq, entries)
        return fallback, solved

    return finish_long


def _collect_diags(diags: list, label: str, entries: list) -> None:
    """Per-point diagnostics dicts, mirroring the scalar captured-analysis
    payload (cache hits marked exactly as :func:`cached_solution` marks
    them)."""
    for i, solution, hit in entries:
        diag = solution.diagnostics
        if diag is None:
            continue
        if hit:
            diag = replace(diag, cache_hit=True)
        slot = diags[i] or {}
        slot[label] = diag.as_dict()
        diags[i] = slot


# ----------------------------------------------------------------------
# Solution-level vector math
# ----------------------------------------------------------------------
def _grouped_solutions(entries: list) -> dict:
    """Group ``(index, solution, hit)`` entries by stackable shape."""
    groups: dict[tuple, list] = {}
    for i, solution, _ in entries:
        key = (
            solution.first_repeating_level,
            solution.r_matrix.shape[0],
            tuple(v.shape[0] for v in solution.boundary_pi),
        )
        groups.setdefault(key, []).append((i, solution))
    return groups


def _mean_levels(entries: list):
    """Yield ``(indices, E[level])`` over shape-homogeneous stacks.

    Mirrors :meth:`QbdSolution.mean_level`:
    ``sum_i i pi_i 1 + b pi_b (I-R)^{-1} 1 + pi_b R (I-R)^{-2} 1``.
    """
    for (b, _m, _dims), items in _grouped_solutions(entries).items():
        idx = np.array([i for i, _ in items])
        pi_b = np.stack([s.pi_repeat for _, s in items])[:, None, :]
        inv = np.stack([s._i_minus_r_inv for _, s in items])
        r = np.stack([s.r_matrix for _, s in items])
        total = b * (pi_b @ inv)[:, 0, :].sum(axis=1)
        total += ((pi_b @ r) @ inv @ inv)[:, 0, :].sum(axis=1)
        for level in range(1, b):
            total += level * np.array(
                [float(s.boundary_pi[level].sum()) for _, s in items]
            )
        yield idx, total


def _region_probabilities(entries: list):
    """Yield ``(indices, region1, region2)`` per stack (CS-CQ longs).

    Region 1 is the ZERO_L mass of boundary levels 0 and 1; region 2 is
    the ZERO_L component of the repeating phase marginal
    ``pi_b (I-R)^{-1}`` (mirrors :meth:`CsCqAnalysis.region_probabilities`).
    """
    for (_b, _m, _dims), items in _grouped_solutions(entries).items():
        idx = np.array([i for i, _ in items])
        pi_b = np.stack([s.pi_repeat for _, s in items])[:, None, :]
        inv = np.stack([s._i_minus_r_inv for _, s in items])
        region1 = np.array(
            [float(s.boundary_pi[0][0] + s.boundary_pi[1][0]) for _, s in items]
        )
        region2 = (pi_b @ inv)[:, 0, 0]
        yield idx, region1, region2


# ----------------------------------------------------------------------
# QBD solve plumbing
# ----------------------------------------------------------------------
class _PendingQbd:
    """One pending QBD solve, possibly shared by several sweep points.

    ``receivers`` lists the ``(point index, entries list, fallback set)``
    triples of every row/point waiting on this solve; the first receiver
    registered the miss (``cache_hit=False``), later ones mirror the
    scalar path's subsequent cache hits.
    """

    __slots__ = ("key", "fits", "lam_s", "lam_l", "mu_s", "receivers")

    def __init__(
        self, key: tuple, fits: dict, lam_s: float, lam_l: float, mu_s: float
    ):
        self.key = key
        self.fits = fits
        self.lam_s = lam_s
        self.lam_l = lam_l
        self.mu_s = mu_s
        self.receivers: list = []


class _SolvePool:
    """Cross-row QBD solve pool for one cache scope.

    Rows register the QBD solves they need (:meth:`request`); the pool
    dedups them by exact cache key, groups them by block shape, and
    :meth:`flush` solves each group in one merged ``(N, m, m)`` stack.
    Merging rows changes only how LAPACK calls are grouped — every slice
    still runs the identical per-point arithmetic — so results are
    bit-identical to per-row solving, while the Python/dispatch overhead
    of the logarithmic-reduction loop is paid once per shape instead of
    once per row.
    """

    def __init__(self, cache):
        self.cache = cache
        self._by_key: dict = {}
        self._groups: dict[tuple, list[_PendingQbd]] = {}

    def request(
        self,
        kind: str,
        indices: np.ndarray,
        lam_s: np.ndarray,
        lam_l: np.ndarray,
        long_service,
        longs_token: tuple,
        mu_s: float,
        fallback: set,
    ) -> list:
        """Register the ``kind`` QBD at each index; returns a live entries
        list (``[(index, QbdSolution, cache_hit)]``) completed by
        :meth:`flush`.  Cache hits resolve immediately; fit failures land
        in ``fallback``."""
        entries: list = []
        if indices.size == 0:
            return entries
        # lam_l is constant (or piecewise constant) along figure rows, so
        # consecutive points almost always reuse the previous fits.
        prev_lam_l: "float | None" = None
        fits = None
        for i in indices:
            i = int(i)
            ll = float(lam_l[i])
            if ll != prev_lam_l:
                fits = _fits(kind, ll, long_service, longs_token, mu_s)
                prev_lam_l = ll
            if fits is None:
                _note_fallback(fallback, i, "fit-failure")
                continue
            # float() everywhere a numpy scalar would otherwise enter the
            # key: np.float64 encodes differently from float in the
            # persistent store's digest, and the scalar analyses key
            # plain floats.
            ls = float(lam_s[i])
            key = _solution_cache_key(kind, ls, ll, mu_s, fits)
            item = self._by_key.get(key)
            if item is None:
                if self.cache is not None:
                    found, value = self.cache.lookup("analysis-solution", key)
                    if found and isinstance(value, QbdSolution):
                        entries.append((i, value, True))
                        continue
                item = _PendingQbd(key, fits, ls, ll, mu_s)
                self._by_key[key] = item
                sig = (kind, len(fits["ph_a"].alpha), len(fits["ph_b"].alpha))
                self._groups.setdefault(sig, []).append(item)
            elif self.cache is not None:
                # Deduped against an in-flight pending solve: on the
                # scalar path this point would have been a memory hit, so
                # count it as one (the first requester counted the miss).
                self.cache.record_hit("analysis-solution")
            item.receivers.append((i, entries, fallback))
        return entries

    def flush(self) -> None:
        """Solve every pending group in one merged stack each."""
        groups, self._groups, self._by_key = self._groups, {}, {}
        for (kind, _ka, _kb), items in groups.items():
            try:
                _solve_pending(kind, items, self.cache)
            except Exception:
                if _strict():
                    raise
                counter_inc("batched.fast_path_errors")
                for item in items:
                    for i, _entries, fb in item.receivers:
                        _note_fallback(fb, i, "fast-path-error")


#: Process-wide busy-period fit memo, keyed purely by input values.  The
#: fit pipeline is a deterministic pure function of ``(kind, lam_l,
#: mean_long, long_scv, mu_s)``, so entries never go stale; sharing the
#: memo across sweep scopes skips the per-scope recompute the scalar path
#: pays.  The persistent ``ph-fit``/``busy-moments`` namespaces still see
#: every distinct fit once per process (first scope), so a store run
#: accumulates the same entry digests either way.
_FITS_CACHE: dict = {}
_FITS_CACHE_LIMIT = 4096


def _fits(kind: str, lam_l: float, long_service, longs_token: tuple, mu_s: float):
    """Busy-period PH fits for one ``lam_l``, memoized process-wide.

    Mirrors the analyses' ``__init__`` fits exactly (the ``ph-fit`` /
    ``busy-moments`` cache namespaces make repeats cheap); a fit failure
    returns None so the affected points fall back to the scalar path's
    exact error handling.  The memo token is value-based — ``long_service``
    is rebuilt per row by the same deterministic constructor, so equal
    tokens mean bit-identical fit inputs across rows.
    """
    memo = _FITS_CACHE
    token = (kind, lam_l, *longs_token)
    if token in memo:
        return memo[token]
    if len(memo) >= _FITS_CACHE_LIMIT:
        memo.clear()
    try:
        if kind == "cs-cq":
            ph_a = fit_busy_period(
                MG1BusyPeriod(lam_l, long_service).moments(), 3
            ).as_phase_type()
            ph_b = fit_busy_period(
                NPlusOneBusyPeriod(
                    lam_l, long_service, freeing_rate=2.0 * mu_s
                ).moments(),
                3,
            ).as_phase_type()
        elif lam_l > 0.0:
            ph_a = fit_busy_period(
                MG1BusyPeriod(lam_l, long_service).moments(), 3
            ).as_phase_type()
            ph_b = fit_busy_period(
                NPlusOneBusyPeriod(
                    lam_l, long_service, freeing_rate=mu_s * 1.0
                ).moments(),
                3,
            ).as_phase_type()
        else:
            ph_a = Exponential(1.0).as_phase_type()  # unreachable filler
            ph_b = Exponential(1.0).as_phase_type()
    except Exception:
        memo[token] = None
        return None
    fits = {
        "ph_a": ph_a,
        "ph_b": ph_b,
        "key_bytes": (
            ph_a.alpha.tobytes(),
            ph_a.T.tobytes(),
            ph_b.alpha.tobytes(),
            ph_b.T.tobytes(),
        ),
    }
    memo[token] = fits
    return fits


def _solution_cache_key(
    kind: str, lam_s: float, lam_l: float, mu_s: float, fits: dict
) -> tuple:
    """The exact ``analysis-solution`` key of the matching analysis class."""
    if kind == "cs-cq":
        return ("cs-cq", lam_s, lam_l, mu_s, *fits["key_bytes"])
    return (
        "cs-id",
        lam_s,
        lam_l,
        mu_s,
        (1.0, 1.0),
        *fits["key_bytes"],
    )


def _stacked_blocks(kind: str, items: list) -> dict:
    """Stacked ``(N, ., .)`` block tensors for one shape-homogeneous group.

    Fit-homogeneous sub-runs are built vectorized and concatenated; every
    slice is element-for-element the matching analysis'
    ``_build_blocks`` output, so per-point byte keys match exactly.
    """
    builder = _cs_cq_blocks if kind == "cs-cq" else _cs_id_blocks
    stacks = []
    start = 0
    while start < len(items):
        stop = start
        fits = items[start].fits
        while stop < len(items) and items[stop].fits is fits:
            stop += 1
        run = items[start:stop]
        run_lam_s = np.array([it.lam_s for it in run])
        stacks.append(
            builder(run_lam_s, run[0].lam_l, run[0].mu_s, fits["ph_a"], fits["ph_b"])
        )
        start = stop
    if len(stacks) == 1:
        return stacks[0]
    merged = {}
    for name in ("a0", "a1", "a2"):
        merged[name] = np.concatenate([s[name] for s in stacks])
    for name in ("boundary_local", "boundary_up", "boundary_down"):
        levels = len(stacks[0][name])
        merged[name] = [
            np.concatenate([s[name][lvl] for s in stacks]) for lvl in range(levels)
        ]
    return merged


def _cs_cq_blocks(lam_s: np.ndarray, lam_l: float, mu_s: float, ph_l, ph_n1) -> dict:
    """Stacked :meth:`CsCqAnalysis._build_blocks` over a ``lam_s`` vector."""
    alpha_l, t_l, exit_l = ph_l.alpha, ph_l.T, ph_l.exit_rates
    alpha_n, t_n, exit_n = ph_n1.alpha, ph_n1.T, ph_n1.exit_rates
    k_l, k_n = len(alpha_l), len(alpha_n)
    mb = 1 + k_l + k_n
    m = mb + 1
    wait = m - 1
    bl = slice(1, 1 + k_l)
    bn = slice(1 + k_l, 1 + k_l + k_n)

    def ph_internal(block: np.ndarray) -> None:
        block[bl, bl] += t_l - np.diag(np.diag(t_l))
        block[bn, bn] += t_n - np.diag(np.diag(t_n))
        block[bl, 0] += exit_l
        block[bn, 0] += exit_n

    a1 = np.zeros((m, m))
    ph_internal(a1)
    a1[0, wait] = lam_l

    a2 = np.zeros((m, m))
    a2[0, 0] = 2.0 * mu_s
    a2[bl, bl] = mu_s * np.eye(k_l)
    a2[bn, bn] = mu_s * np.eye(k_n)
    a2[wait, bn] = 2.0 * mu_s * alpha_n

    local = np.zeros((mb, mb))
    ph_internal(local)
    local[0, bl] = lam_l * alpha_l

    down1to0 = np.zeros((mb, mb))
    down1to0[0, 0] = mu_s
    down1to0[bl, bl] = mu_s * np.eye(k_l)
    down1to0[bn, bn] = mu_s * np.eye(k_n)

    down2to1 = np.zeros((m, mb))
    down2to1[0, 0] = 2.0 * mu_s
    down2to1[bl, bl] = mu_s * np.eye(k_l)
    down2to1[bn, bn] = mu_s * np.eye(k_n)
    down2to1[wait, bn] = 2.0 * mu_s * alpha_n

    k = lam_s.size
    ls = lam_s[:, None, None]
    a0 = ls * np.eye(m)
    up0 = ls * np.eye(mb)
    up1 = np.zeros((k, mb, m))
    up1[:, :, :mb] = ls * np.eye(mb)

    def rep(mat: np.ndarray) -> np.ndarray:
        return np.broadcast_to(mat, (k,) + mat.shape)

    return dict(
        boundary_local=[rep(local), rep(local)],
        boundary_up=[up0, up1],
        boundary_down=[rep(down1to0), rep(down2to1)],
        a0=a0,
        a1=rep(a1),
        a2=rep(a2),
    )


def _cs_id_blocks(lam_s: np.ndarray, lam_l: float, mu_s: float, ph_l, ph_m) -> dict:
    """Stacked :meth:`CsIdAnalysis._build_blocks` over a ``lam_s`` vector."""
    alpha_l, t_l, exit_l = ph_l.alpha, ph_l.T, ph_l.exit_rates
    alpha_m, t_m, exit_m = ph_m.alpha, ph_m.T, ph_m.exit_rates
    k_l, k_m = len(alpha_l), len(alpha_m)
    m = 3 + k_l + k_m
    idle, s0, s1 = 0, 1, 2
    bl = slice(3, 3 + k_l)
    bm = slice(3 + k_l, 3 + k_l + k_m)

    base = np.zeros((m, m))
    if lam_l > 0.0:
        base[idle, bl] = lam_l * alpha_l
        base[s0, s1] = lam_l
    base[s0, idle] = mu_s * 1.0  # c_l = 1
    base[s1, bm] = mu_s * 1.0 * alpha_m
    base[bl, bl] += t_l - np.diag(np.diag(t_l))
    base[bm, bm] += t_m - np.diag(np.diag(t_m))
    base[bl, idle] += exit_l
    base[bm, idle] += exit_m

    k = lam_s.size
    a1 = np.broadcast_to(base, (k, m, m)).copy()
    a1[:, idle, s0] = lam_s
    a0 = lam_s[:, None, None] * np.eye(m)
    a0[:, idle, idle] = 0.0
    a2 = np.broadcast_to(mu_s * 1.0 * np.eye(m), (k, m, m))  # c_s = 1

    return dict(
        boundary_local=[a1],
        boundary_up=[a0],
        boundary_down=[a2],
        a0=a0,
        a1=a1,
        a2=a2,
    )


def _with_diagonal_batched(local: np.ndarray, out_rates: np.ndarray) -> np.ndarray:
    """Batched :meth:`QbdProcess._with_diagonal` over ``(N, m, m)`` stacks."""
    block = local.copy()
    di = np.arange(block.shape[-1])
    block[:, di, di] = 0.0
    block[:, di, di] = -(block.sum(axis=2) + out_rates)
    return block


def _decimate(values: list, limit: int = 32) -> list:
    """Stride-decimate a per-point attribute list for span attrs."""
    if len(values) <= limit:
        return values
    stride = -(-len(values) // limit)
    return values[::stride]


def _solve_pending(kind: str, items: "list[_PendingQbd]", cache) -> None:
    """Batch-solve one shape-homogeneous group of pending points.

    Appends ``(index, solution, cache_hit)`` to every receiver's entries
    list for accepted points — their results seeded into the sweep cache
    under the exact scalar keys — and adds every rejected point's
    receivers to their fallback sets.
    """
    t0 = time.perf_counter()
    k = len(items)
    blocks = _stacked_blocks(kind, items)
    a0, a1, a2 = blocks["a0"], blocks["a1"], blocks["a2"]
    b = len(blocks["boundary_local"])
    m = a1.shape[1]
    finalized: set = set()
    reject_reason: dict[int, str] = {}
    accepted_count = 0

    with span("perf.batched.solve", policy=kind, points=k) as solve_span:
        a1_full = _with_diagonal_batched(a1, a0.sum(axis=2) + a2.sum(axis=2))
        r, residual, iterations, accepted = solve_r_matrix_batched(
            a0, a1_full, a2, tol=_R_TOL, max_iter=_R_MAX_ITER
        )
        acc = np.flatnonzero(accepted)
        solve_span.set("accepted", int(acc.size))
        solve_span.set("iterations", _decimate([int(x) for x in iterations]))
        if acc.size:
            # Per-group key context: the scalar cache keys are pure byte
            # dumps of the blocks, so hoist the contiguous stacks and the
            # (constant) shape tuple once and slice per point below.
            key_stacks = [
                np.ascontiguousarray(blk)
                for blk in (
                    *blocks["boundary_local"],
                    *blocks["boundary_up"],
                    *blocks["boundary_down"],
                    a0,
                    a1,
                    a2,
                )
            ]
            key_shapes = tuple(blk.shape[1:] for blk in key_stacks)
            eye_m = np.eye(m)
            sp_r = np.abs(np.linalg.eigvals(r[acc])).max(axis=1)
            pi, resid_b, ok, offsets, dims, inv, square, bscale = (
                _solve_boundary_batched(
                    [blv[acc] for blv in blocks["boundary_local"]],
                    [blv[acc] for blv in blocks["boundary_up"]],
                    [blv[acc] for blv in blocks["boundary_down"]],
                    a0[acc],
                    a1[acc],
                    a2[acc],
                    r[acc],
                )
            )
            # cond(I - R), batched: same per-slice SVD as the scalar
            # check_conditioning; the warn band falls back so the scalar
            # path can emit its NearBoundaryWarning.
            try:
                cond = np.linalg.cond(np.eye(m) - r[acc])
            except np.linalg.LinAlgError:
                cond = np.full(acc.size, np.inf)
            pscale = np.maximum(1.0, np.abs(pi).max(axis=1))
            neg_ok = pi.min(axis=1) >= -1e-9 * pscale
            pi = np.clip(pi, 0.0, None)
            tail = (pi[:, None, offsets[b] :] @ inv)[:, 0, :].sum(axis=1)
            mass = pi[:, : offsets[b]].sum(axis=1) + tail
            # Trust over the whole stack: identical estimator arithmetic to
            # the scalar ``_assess_trust`` (same fixed condest sweeps, same
            # bound composition, same thresholds), so a point evaluated
            # either way carries the bit-identical verdict.  Non-trusted
            # points fall back to the scalar path, whose escalation rung
            # owns the suspect handling.
            cond_boundary = np.asarray(condest_1(square))
            cond_i_minus_r = np.asarray(condest_1(eye_m - r[acc]))
            r_scale = np.maximum.reduce(
                [
                    np.abs(a0[acc]).max(axis=(1, 2)),
                    np.abs(a1_full[acc]).max(axis=(1, 2)),
                    np.abs(a2[acc]).max(axis=(1, 2)),
                    np.ones(acc.size),
                ]
            )
            bound = compose_bound(
                cond_boundary, resid_b, bscale, cond_i_minus_r, residual[acc], r_scale
            )
            cond_est = np.maximum(cond_boundary, cond_i_minus_r)
            verdicts = trust_verdicts(bound)
            trusted = np.array([v == "trusted" for v in verdicts], dtype=bool)
            good = (
                ok
                & neg_ok
                & (sp_r < 1.0)
                & np.isfinite(cond)
                & (cond <= CONDITION_WARN)
                & (0.999999 < mass)
                & (mass < 1.000001)
                & trusted
            )
            for j, gi in enumerate(acc):
                if good[j]:
                    continue
                if not ok[j]:
                    reason = "boundary-unbalanced"
                elif not neg_ok[j]:
                    reason = "negative-mass"
                elif not sp_r[j] < 1.0:
                    reason = "unstable"
                elif not (np.isfinite(cond[j]) and cond[j] <= CONDITION_WARN):
                    reason = "ill-conditioned"
                elif not (0.999999 < mass[j] < 1.000001):
                    reason = "mass-gate"
                else:
                    reason = f"trust-{verdicts[j]}"
                reject_reason[int(gi)] = reason
            wall_share = (time.perf_counter() - t0) / acc.size
            for j, gi in enumerate(acc):
                if not good[j]:
                    continue
                gi = int(gi)
                solution = _finalize_point(
                    items[gi],
                    key_stacks,
                    key_shapes,
                    eye_m,
                    gi,
                    r,
                    a1_full,
                    float(residual[gi]),
                    int(iterations[gi]),
                    float(sp_r[j]),
                    float(cond[j]),
                    np.ascontiguousarray(inv[j]),
                    pi[j],
                    float(resid_b[j]),
                    offsets,
                    dims,
                    b,
                    wall_share,
                    cache,
                    condition_estimate=float(cond_est[j]),
                    error_bound=float(bound[j]),
                )
                # The first receiver registered the miss; later receivers
                # mirror the scalar path's subsequent cache hits.
                for pos, (i, entries, _fb) in enumerate(items[gi].receivers):
                    entries.append((i, solution, pos > 0))
                finalized.add(gi)
                accepted_count += 1
        solve_span.set("solved", accepted_count)
    for gi, item in enumerate(items):
        if gi not in finalized:
            reason = reject_reason.get(gi, "qbd-not-accepted")
            for i, _entries, fb in item.receivers:
                _note_fallback(fb, i, reason)
    if accepted_count:
        # Counter parity with the scalar path: every batch-solved point is
        # one QBD solve whose R came from the logarithmic-reduction rung.
        counter_inc("qbd.solves", accepted_count)
        counter_inc("qbd.r_matrix.solves", accepted_count)
        counter_inc("qbd.r_matrix.method.logarithmic-reduction", accepted_count)


def _solve_boundary_batched(
    boundary_local: list[np.ndarray],
    boundary_up: list[np.ndarray],
    boundary_down: list[np.ndarray],
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    r: np.ndarray,
) -> tuple:
    """Batched boundary linear stage (mirrors ``QbdProcess._boundary_stage``).

    Returns ``(pi, residual, ok, offsets, dims, i_minus_r_inv, square,
    scale)`` over the leading axis — the square system stack and scales
    ride along so the caller can run the stacked trust assessment on the
    exact matrices that were solved.  The square solve runs batched; the
    rare points it cannot balance get the scalar path's exact
    least-squares fallback, per point.
    """
    k, m = a1.shape[0], a1.shape[1]
    b = len(boundary_local)
    dims = [blv.shape[1] for blv in boundary_local] + [m]
    offsets = np.concatenate([[0], np.cumsum(dims)])
    total = int(offsets[-1])
    big = np.zeros((k, total, total))

    def put(i: int, j: int, block: np.ndarray) -> None:
        big[:, offsets[i] : offsets[i] + dims[i], offsets[j] : offsets[j] + dims[j]] += block

    for i in range(b):
        down_rates = (
            boundary_down[i - 1].sum(axis=2) if i > 0 else np.zeros((k, dims[0]))
        )
        local = _with_diagonal_batched(
            boundary_local[i], boundary_up[i].sum(axis=2) + down_rates
        )
        put(i, i, local)
        put(i, i + 1, boundary_up[i])
    for i in range(b):
        put(i + 1, i, boundary_down[i])
    local_b = _with_diagonal_batched(
        a1, a0.sum(axis=2) + boundary_down[b - 1].sum(axis=2)
    )
    put(b, b, local_b + r @ a2)

    i_minus_r_inv = np.linalg.inv(np.eye(m) - r)
    norm_row = np.ones((k, total))
    norm_row[:, offsets[b] :] = i_minus_r_inv.sum(axis=2)
    square = np.ascontiguousarray(np.swapaxes(big, 1, 2))
    square[:, -1, :] = norm_row
    rhs = np.zeros((k, total, 1))
    rhs[:, -1, 0] = 1.0
    scale = np.maximum(1.0, np.abs(big).max(axis=(1, 2)))
    try:
        pi = np.linalg.solve(square, rhs)[..., 0]
        residual = np.abs(pi[:, None, :] @ big).max(axis=(1, 2))
    except np.linalg.LinAlgError:
        pi = np.zeros((k, total))
        residual = np.full(k, np.inf)
    ok = residual <= 1e-7 * scale
    for i in np.flatnonzero(~ok):
        a = np.vstack([big[i].T, norm_row[i][None, :]])
        rhs_ls = np.zeros(total + 1)
        rhs_ls[-1] = 1.0
        sol, *_ = np.linalg.lstsq(a, rhs_ls, rcond=None)
        resid_i = float(np.abs(sol @ big[i]).max())
        if resid_i <= 1e-7 * scale[i]:
            pi[i] = sol
            residual[i] = resid_i
            ok[i] = True
    return pi, residual, ok, offsets, dims, i_minus_r_inv, square, scale


def _finalize_point(
    item: _PendingQbd,
    key_stacks: list,
    key_shapes: tuple,
    eye_m: np.ndarray,
    gi: int,
    r: np.ndarray,
    a1_full: np.ndarray,
    quad_residual: float,
    r_iterations: int,
    sp_r: float,
    cond: float,
    i_minus_r_inv: np.ndarray,
    pi: np.ndarray,
    boundary_residual: float,
    offsets: np.ndarray,
    dims: list[int],
    b: int,
    wall_share: float,
    cache,
    condition_estimate: Optional[float] = None,
    error_bound: Optional[float] = None,
) -> QbdSolution:
    """Assemble one accepted point's :class:`QbdSolution` and seed caches.

    All acceptance gates already passed batched; this only packages the
    per-point components (with diagnostics mimicking a scalar rung-1
    solve) and deposits them under the exact scalar cache keys.
    """
    boundary_pi = [
        np.ascontiguousarray(pi[offsets[i] : offsets[i] + dims[i]]) for i in range(b)
    ]
    pi_b = np.ascontiguousarray(pi[offsets[b] :])
    r_i = np.ascontiguousarray(r[gi])
    attempt = RungAttempt(
        "logarithmic-reduction",
        accepted=True,
        residual=quad_residual,
        iterations=r_iterations,
    )
    r_diag = SolverDiagnostics(
        method="logarithmic-reduction",
        rungs=(attempt,),
        residual=quad_residual,
        spectral_radius=sp_r,
        iterations=r_iterations,
        wall_time=wall_share,
    )
    solution = QbdSolution.from_batched(
        boundary_pi,
        pi_b,
        r_i,
        b,
        tail_spectral_radius=sp_r,
        condition_i_minus_r=cond,
        i_minus_r_inv=i_minus_r_inv,
        identity=eye_m,
        diagnostics=SolverDiagnostics(
            method="logarithmic-reduction",
            rungs=(attempt,),
            residual=quad_residual,
            spectral_radius=sp_r,
            condition_i_minus_r=cond,
            boundary_residual=boundary_residual,
            iterations=r_iterations,
            wall_time=wall_share,
            condition_estimate=condition_estimate,
            error_bound=error_bound,
            # Only trusted points pass the batched gate; anything else is
            # re-solved scalar (where the escalation rung runs).
            trust="trusted",
        ),
    )
    if cache is not None:
        # Byte-for-byte the keys :meth:`QbdProcess.solution_key_for_blocks`
        # and the scalar R-matrix cache build, assembled from the hoisted
        # contiguous stacks (block order: locals, ups, downs, a0, a1, a2).
        blk_bytes = [stack[gi].tobytes() for stack in key_stacks]
        r_key = (
            eye_m.shape[0],
            blk_bytes[-3],
            a1_full[gi].tobytes(),
            blk_bytes[-1],
            float(_R_TOL),
            int(_R_MAX_ITER),
        )
        cache.seed("r-matrix", r_key, (r_i, r_diag))
        solution_key = (b, eye_m.shape[0], key_shapes, b"".join(blk_bytes))
        cache.seed("qbd-solution", solution_key, solution)
        cache.seed("analysis-solution", item.key, solution)
    return solution


# Deferred to break the import cycle through repro.core (which reaches
# back into repro.perf.cache via the solver layers).
from ..core.cs_cq import fit_busy_period  # noqa: E402
