"""Tests for the discrete-event engine and sample streams."""

import numpy as np
import pytest

from repro.core import SystemParameters
from repro.distributions import Exponential, coxian_from_mean_scv
from repro.simulation import SampleStream, simulate
from repro.simulation.policies import DedicatedSimulation


class TestSampleStream:
    def test_preserves_distribution(self, rng):
        stream = SampleStream(Exponential(2.0), rng, block=100)
        values = [stream.next() for _ in range(50_000)]
        assert np.mean(values) == pytest.approx(0.5, rel=0.03)

    def test_block_refill(self, rng):
        stream = SampleStream(Exponential(1.0), rng, block=3)
        values = [stream.next() for _ in range(10)]  # forces several refills
        assert len(set(values)) == 10  # all distinct draws

    def test_coxian_stream(self, rng):
        dist = coxian_from_mean_scv(1.0, 8.0)
        stream = SampleStream(dist, rng, block=1000)
        values = [stream.next() for _ in range(100_000)]
        assert np.mean(values) == pytest.approx(1.0, rel=0.05)

    def test_rejects_nonpositive_block(self, rng):
        with pytest.raises(ValueError):
            SampleStream(Exponential(1.0), rng, block=0)

    @pytest.mark.parametrize("dist_fn", [
        lambda: Exponential(2.0),
        lambda: coxian_from_mean_scv(1.0, 8.0),
    ])
    def test_deterministic_across_block_sizes(self, dist_fn):
        """Satellite fix: the emitted sequence is block-size invariant.

        Vectorized phase-type samplers interleave generator consumption,
        so per-``block`` draws would diverge; the canonical-chunk refill
        pins the sequence to ``(dist, rng state)`` alone.
        """
        sequences = []
        for block in (1, 3, 100, 8192, 50_000):
            stream = SampleStream(dist_fn(), np.random.default_rng(1234), block=block)
            sequences.append([stream.next() for _ in range(10_000)])
        for other in sequences[1:]:
            assert other == sequences[0]

    def test_take_matches_next(self):
        a = SampleStream(coxian_from_mean_scv(1.0, 8.0), np.random.default_rng(7))
        b = SampleStream(coxian_from_mean_scv(1.0, 8.0), np.random.default_rng(7))
        taken = a.take(10_000)
        singles = np.array([b.next() for _ in range(10_000)])
        assert np.array_equal(taken, singles)

    def test_pinned_seed_values(self):
        """Pin the first draws for seed 0 so RNG-consumption changes are loud."""
        stream = SampleStream(Exponential(1.0), np.random.default_rng(0))
        first = [stream.next() for _ in range(3)]
        expected = np.random.default_rng(0).exponential(1.0, SampleStream.CHUNK)[:3]
        assert first == list(expected)


class TestEngineBasics:
    def test_determinism_same_seed(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        r1 = simulate("dedicated", p, seed=42, warmup_jobs=100, measured_jobs=5_000)
        r2 = simulate("dedicated", p, seed=42, warmup_jobs=100, measured_jobs=5_000)
        assert r1.mean_response_short == r2.mean_response_short
        assert r1.sim_time == r2.sim_time

    def test_different_seeds_differ(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        r1 = simulate("dedicated", p, seed=1, warmup_jobs=100, measured_jobs=5_000)
        r2 = simulate("dedicated", p, seed=2, warmup_jobs=100, measured_jobs=5_000)
        assert r1.mean_response_short != r2.mean_response_short

    def test_measured_job_counts(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        r = simulate("dedicated", p, seed=0, warmup_jobs=500, measured_jobs=4_000)
        assert r.n_measured_short + r.n_measured_long == 4_000

    def test_single_class_system(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.0)
        r = simulate("dedicated", p, seed=0, warmup_jobs=100, measured_jobs=2_000)
        assert r.n_measured_long == 0
        assert r.mean_response_short > 0

    def test_requires_some_arrivals(self):
        p = SystemParameters.from_loads(rho_s=0.0, rho_l=0.0)
        with pytest.raises(ValueError):
            DedicatedSimulation(p)

    def test_unknown_policy_name(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        with pytest.raises(ValueError):
            simulate("least-connections", p)

    def test_response_times_positive(self):
        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.5)
        r = simulate("cs-cq", p, seed=0, warmup_jobs=100, measured_jobs=5_000)
        assert r.mean_response_short > 0
        assert r.mean_response_long > 0
        assert 0 <= r.frac_long_host_idle <= 1
