"""Tests for the cross-method consistency oracle and its orchestration."""

import json
import warnings

from repro.contracts import (
    OracleConfig,
    check_point,
    classify_values,
    summarize_verdicts,
    write_check_report,
)
from repro.core import SystemParameters
from repro.orchestration import SweepPoint, SweepRunner, inject_faults, register_task
from repro.robustness import ContractViolationWarning
from repro.simulation import ConfidenceInterval

#: Cheap-but-decisive budget for full oracle runs in tests: a light load
#: point with these settings classifies `agree` in a few seconds.
CHEAP = OracleConfig(
    measured_jobs=3_000,
    warmup_jobs=500,
    n_replications=3,
    max_escalations=2,
    max_short=150,
    max_long=40,
)


@register_task("test-suspect-point")
def _suspect_point(x, via_warning):
    if via_warning:
        warnings.warn(ContractViolationWarning("contract 'demo' violated"))
        return {"values": {"y": x}}
    return {"values": {"y": x}, "suspect": True}


class TestClassifyValues:
    CONFIG = OracleConfig()

    def ci(self, mean, half_width):
        return ConfidenceInterval(mean=mean, half_width=half_width, n=5)

    def test_agreement(self):
        verdict, reasons = classify_values(
            1.00, 1.01, self.ci(1.02, 0.05), self.CONFIG
        )
        assert verdict == "agree"
        assert len(reasons) == 2

    def test_analytic_disagreement_is_suspect(self):
        verdict, reasons = classify_values(
            1.5, 1.0, self.ci(1.0, 0.05), self.CONFIG
        )
        assert verdict == "suspect"
        assert any("truncated chain disagree" in r for r in reasons)

    def test_tight_ci_exclusion_is_suspect(self):
        verdict, reasons = classify_values(
            2.0, None, self.ci(1.0, 0.02), self.CONFIG
        )
        assert verdict == "suspect"
        assert any("outside the widened" in r for r in reasons)

    def test_wide_ci_is_inconclusive(self):
        verdict, reasons = classify_values(
            1.0, None, self.ci(1.0, 0.5), self.CONFIG
        )
        assert verdict == "inconclusive"

    def test_suspect_beats_inconclusive(self):
        # Deterministic disagreement: a wide CI must not soften it.
        verdict, _ = classify_values(1.5, 1.0, self.ci(1.0, 0.5), self.CONFIG)
        assert verdict == "suspect"

    def test_non_finite_analytic_is_suspect(self):
        verdict, _ = classify_values(
            float("nan"), 1.0, self.ci(1.0, 0.01), self.CONFIG
        )
        assert verdict == "suspect"

    def test_zero_mean_ci_reads_as_wide(self):
        # relative_half_width = inf for a zero mean -> cannot decide.
        verdict, _ = classify_values(0.0, None, self.ci(0.0, 0.0), self.CONFIG)
        assert verdict == "inconclusive"


class TestOracleConfig:
    def test_round_trip(self):
        config = OracleConfig(rel_tolerance=0.1, measured_jobs=123)
        rebuilt = OracleConfig.from_dict(json.loads(json.dumps(config.as_dict())))
        assert rebuilt == config

    def test_from_none_is_default(self):
        assert OracleConfig.from_dict(None) == OracleConfig()


class TestCheckPoint:
    def test_light_load_agrees(self):
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        verdict = check_point(params, CHEAP, label="test rho_s=0.3")
        assert verdict.classification == "agree"
        assert not verdict.perturbed
        assert {c.job_class for c in verdict.comparisons} == {"short", "long"}
        assert all(c.classification == "agree" for c in verdict.comparisons)
        assert verdict.contracts and all(r.passed for r in verdict.contracts)
        # The verdict must round-trip through JSON for reports/journals.
        assert json.loads(json.dumps(verdict.as_dict()))["classification"] == "agree"

    def test_perturbation_flips_to_suspect(self):
        """Regression: a silently-wrong converged answer MUST be caught."""
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        with inject_faults(perturb=["rho_s=0.3"], perturb_factor=1.5):
            verdict = check_point(params, CHEAP, label="test rho_s=0.3")
        assert verdict.perturbed
        assert verdict.classification == "suspect"
        reasons = [r for c in verdict.comparisons for r in c.reasons]
        assert any("disagree" in r or "outside" in r for r in reasons)
        # Exponential case: the truncated chain already contradicts the
        # perturbed QBD, so no simulation budget is spent escalating.
        assert verdict.escalations == 0

    def test_exclusion_escalates_without_deterministic_referee(self):
        """With no truncated reference (non-exponential longs), a CI that
        excludes the analytic value spends the escalation budget before
        condemning the point — transient bias could still be the culprit
        — and a real perturbation survives every doubling."""
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5, long_scv=4.0)
        with inject_faults(perturb=["rho_s=0.3"], perturb_factor=1.5):
            verdict = check_point(params, CHEAP, label="test rho_s=0.3")
        assert verdict.perturbed
        assert verdict.classification == "suspect"
        assert verdict.escalations == CHEAP.max_escalations
        assert verdict.measured_jobs_final == CHEAP.measured_jobs * 4

    def test_perturbation_targets_by_label(self):
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        with inject_faults(perturb=["rho_s=0.9"], perturb_factor=1.5):
            verdict = check_point(params, CHEAP, label="test rho_s=0.3")
        assert not verdict.perturbed
        assert verdict.classification == "agree"

    def test_escalation_spends_budget_then_inconclusive(self):
        """A hopeless CI target exhausts doublings and lands inconclusive."""
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        config = OracleConfig(
            measured_jobs=200,
            warmup_jobs=50,
            n_replications=2,
            max_escalations=1,
            max_rel_half_width=1e-6,  # unreachable precision
            max_short=150,
            max_long=40,
        )
        verdict = check_point(params, config, label="test")
        assert verdict.classification == "inconclusive"
        assert verdict.escalations == 1
        assert verdict.measured_jobs_final == 400


class TestSuspectStatus:
    def test_warning_lifts_to_suspect(self):
        (outcome,) = SweepRunner(workers=0).run(
            [
                SweepPoint(
                    task="test-suspect-point",
                    kwargs={"x": 1, "via_warning": True},
                    label="warn",
                )
            ]
        )
        assert outcome.status == "suspect"
        assert outcome.ok  # the value is still usable (plots as normal)

    def test_value_key_lifts_to_suspect(self):
        (outcome,) = SweepRunner(workers=0).run(
            [
                SweepPoint(
                    task="test-suspect-point",
                    kwargs={"x": 1, "via_warning": False},
                    label="key",
                )
            ]
        )
        assert outcome.status == "suspect"
        assert "suspect" not in outcome.value  # lifted, not leaked

    def test_manifest_counts_suspect(self, tmp_path):
        manifest_path = tmp_path / "run.manifest.json"
        runner = SweepRunner(workers=0, manifest_path=manifest_path)
        runner.run(
            [
                SweepPoint(
                    task="test-suspect-point",
                    kwargs={"x": 1, "via_warning": True},
                    label="warn",
                ),
                SweepPoint(task="demo-point", kwargs={"x": 2}, label="fine"),
            ]
        )
        counts = json.loads(manifest_path.read_text())["counts"]
        assert counts["suspect"] == 1
        assert counts["ok"] == 1
        assert "1 suspect" in runner.summary()


class TestOraclePointTask:
    def test_orchestrated_perturbation_detected(self, tmp_path):
        """End to end: perturb fault -> oracle-point -> suspect manifest."""
        from dataclasses import asdict

        from repro.workloads import case_by_name

        case = case_by_name("a")
        points = [
            SweepPoint(
                task="oracle-point",
                kwargs={
                    "case": asdict(case),
                    "rho_s": rho_s,
                    "rho_l": 0.5,
                    "config": CHEAP.as_dict(),
                },
                label=f"oracle a rho_s={rho_s:g} rho_l=0.5",
            )
            for rho_s in (0.3, 0.6)
        ]
        manifest_path = tmp_path / "check.manifest.json"
        with inject_faults(perturb=["rho_s=0.6"], perturb_factor=1.5):
            runner = SweepRunner(workers=0, manifest_path=manifest_path)
            outcomes = runner.run(points)
        assert outcomes[0].status == "ok"
        assert outcomes[0].value["classification"] == "agree"
        assert outcomes[1].status == "suspect"
        assert outcomes[1].value["classification"] == "suspect"
        assert outcomes[1].value["perturbed"] is True
        counts = json.loads(manifest_path.read_text())["counts"]
        assert counts == {
            "ok": 1,
            "degraded": 0,
            "suspect": 1,
            "failed": 0,
            "timeout": 0,
            "resumed": 0,
            "total": 2,
        }


class TestCheckReport:
    def _verdicts(self):
        return [
            {"label": "a", "classification": "agree", "escalations": 0},
            {"label": "b", "classification": "suspect", "escalations": 2},
            {"label": "c", "classification": "inconclusive", "escalations": 4},
        ]

    def test_summarize(self):
        counts = summarize_verdicts(self._verdicts())
        assert counts["agree"] == 1
        assert counts["suspect"] == 1
        assert counts["inconclusive"] == 1
        assert counts["total"] == 3
        assert counts["escalations"] == 6

    def test_write_report(self, tmp_path):
        path = write_check_report(
            tmp_path, "unit", self._verdicts(), config={"seed": 1}
        )
        assert path == tmp_path / "CHECK_unit.json"
        payload = json.loads(path.read_text())
        assert payload["summary"]["suspect"] == 1
        assert payload["config"] == {"seed": 1}
        assert len(payload["points"]) == 3

    def test_accepts_point_verdicts(self, tmp_path):
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        config = OracleConfig(
            measured_jobs=200,
            warmup_jobs=50,
            n_replications=2,
            max_escalations=0,
            max_short=100,
            max_long=30,
        )
        verdict = check_point(params, config, label="report")
        path = write_check_report(tmp_path, "objects", [verdict])
        payload = json.loads(path.read_text())
        assert payload["points"][0]["label"] == "report"
