"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for sampling-based tests."""
    return np.random.default_rng(20030703)  # ICDCS 2003 vintage


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running validation tests (simulation/large chains)"
    )
