"""Crash-safety of the persistent store (satellite S4 of the store PR).

A writer SIGKILLed between the tmp-file write and the ``os.replace``
commit must leave *no* visible entry — only tmp litter that ``gc``
sweeps — and the next run must recompute transparently.  Corrupted
committed entries must be quarantined by ``fsck`` with exactly the
injected failures reported, and the ``python -m repro store fsck`` CLI
must exit nonzero on them.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.__main__ import main
from repro.perf import SweepCache
from repro.perf.store import ResultStore


def _run_killed_writer(store_root) -> subprocess.CompletedProcess:
    """Child process that dies by SIGKILL between tmp-write and replace."""
    script = textwrap.dedent(
        f"""
        import os, signal
        import repro.robustness.atomic_write as aw
        from repro.perf.store import ResultStore

        real_replace = os.replace
        def kill_before_replace(src, dst):
            os.kill(os.getpid(), signal.SIGKILL)

        os.replace = kill_before_replace  # this process is about to die
        store = ResultStore({str(store_root)!r})
        store.put("ph-fit", "crash-key", (1.0, 2.0, 3.0))
        raise SystemExit("unreachable: the write should have killed us")
        """
    )
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-c", script],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        capture_output=True,
        text=True,
    )


class TestSigkillMidWrite:
    def test_no_entry_is_visible_after_the_crash(self, tmp_path):
        root = tmp_path / "store"
        proc = _run_killed_writer(root)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        store = ResultStore(root)
        # The commit never happened: a read is a clean miss, not a torn
        # entry and not corruption.
        assert store.get("ph-fit", "crash-key") == (False, None)
        # The tmp file is the only residue.
        tmp_files = list(root.rglob(".*.tmp"))
        assert len(tmp_files) == 1

    def test_next_run_recomputes_and_repairs(self, tmp_path):
        root = tmp_path / "store"
        proc = _run_killed_writer(root)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        cache = SweepCache(store=ResultStore(root))
        value, status = cache.get_or_compute_with_status(
            "ph-fit", "crash-key", lambda: (1.0, 2.0, 3.0)
        )
        assert (value, status) == ((1.0, 2.0, 3.0), "computed")
        # The rewrite committed: a fresh process now store-hits.
        fresh = SweepCache(store=ResultStore(root))
        _, status = fresh.get_or_compute_with_status(
            "ph-fit", "crash-key", lambda: (1.0, 2.0, 3.0)
        )
        assert status == "store"

    def test_fsck_sees_litter_not_corruption(self, tmp_path):
        root = tmp_path / "store"
        _run_killed_writer(root)
        report = ResultStore(root).fsck()
        assert report["corrupt"] == []
        assert len(report["tmp_files"]) == 1

    def test_gc_sweeps_stale_tmp_litter(self, tmp_path):
        root = tmp_path / "store"
        _run_killed_writer(root)
        store = ResultStore(root)
        tmp_file = next(root.rglob(".*.tmp"))
        old = os.stat(tmp_file).st_mtime - 7200
        os.utime(tmp_file, (old, old))
        report = store.gc()
        assert report["stale_tmp_removed"] == 1
        assert not list(root.rglob(".*.tmp"))

    def test_fresh_tmp_files_are_left_alone(self, tmp_path):
        """A tmp file could be a write in flight — gc only removes old ones."""
        root = tmp_path / "store"
        _run_killed_writer(root)
        report = ResultStore(root).gc()
        assert report["stale_tmp_removed"] == 0
        assert len(list(root.rglob(".*.tmp"))) == 1


class TestFsckCli:
    def _seed(self, root, n=3):
        store = ResultStore(root)
        for i in range(n):
            store.put("ph-fit", f"k{i}", float(i))
        return store

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        self._seed(tmp_path / "store")
        code = main(["store", "fsck", "--dir", str(tmp_path / "store")])
        assert code == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_corruption_exits_nonzero_and_reports_each(self, tmp_path, capsys):
        root = tmp_path / "store"
        self._seed(root)
        entries = sorted(root.glob("ph-fit/*/*.entry"))
        data = bytearray(entries[0].read_bytes())
        data[-1] ^= 0xFF
        entries[0].write_bytes(bytes(data))
        entries[1].write_bytes(b"not even close\n")

        code = main(["store", "fsck", "--dir", str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert out.count("CORRUPT") == 2
        assert "2 corrupt" in out
        # Both quarantined; a second fsck is clean and exits 0.
        assert main(["store", "fsck", "--dir", str(root)]) == 0

    def test_stats_and_gc_commands(self, tmp_path, capsys):
        root = tmp_path / "store"
        self._seed(root)
        assert main(["store", "stats", "--dir", str(root)]) == 0
        assert "3 entries" in capsys.readouterr().out
        assert main(["store", "gc", "--dir", str(root), "--max-bytes", "0"]) == 0
        assert "evicted 3" in capsys.readouterr().out
        assert main(["store", "stats", "--dir", str(root), "--json"]) == 0
        import json

        assert json.loads(capsys.readouterr().out)["entries"] == 0


class TestEndToEndRecovery:
    def test_corruption_never_changes_a_value(self, tmp_path):
        """The acceptance criterion: corrupt any entry, values stay
        bit-identical to a pristine store's."""
        from repro.perf import sweep_cache
        from repro.workloads import case_by_name

        params = case_by_name("a").params(0.6, 0.4)
        root = tmp_path / "store"

        def compute():
            from repro.core import CsCqAnalysis

            return float(CsCqAnalysis(params).mean_response_time_short())

        with sweep_cache(store=ResultStore(root)):
            pristine = compute()

        # Corrupt EVERY committed entry.
        entries = [
            p for p in root.rglob("*.entry") if "corrupt" not in p.parts
        ]
        assert entries
        for path in entries:
            data = bytearray(path.read_bytes())
            data[len(data) // 2] ^= 0xFF
            path.write_bytes(bytes(data))

        with sweep_cache(store=ResultStore(root)):
            recovered = compute()
        assert recovered.hex() == pristine.hex()

        # And the repaired store serves the same value again.
        with sweep_cache(store=ResultStore(root)) as cache:
            replayed = compute()
            assert cache.stats()["store"]["hits"] > 0
        assert replayed.hex() == pristine.hex()


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
