"""SweepRunner behavior: classification, journaling, resume, and the
equivalence of orchestrated sweeps with the plain in-process paths."""

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core import SystemParameters
from repro.experiments.figures import response_time_series
from repro.experiments.validation import analysis_vs_simulation
from repro.orchestration import SweepPoint, SweepRunner, inject_faults, register_task
from repro.robustness import ConvergenceError, NearBoundaryWarning
from repro.simulation import simulate_replications
from repro.workloads import EXPONENTIAL_CASES


# --------------------------------------------------------------------- #
# Test tasks (registered at import; inline runs resolve them directly)
# --------------------------------------------------------------------- #


@register_task("test-warn-point")
def _warn_point(x):
    warnings.warn(NearBoundaryWarning("operating in degraded mode"))
    return {"values": {"y": x}}


@register_task("test-fail-point")
def _fail_point(x):
    raise ConvergenceError("R-matrix iteration stalled", residual=0.5, iterations=7)


@register_task("test-marker-point")
def _marker_point(x, marker_dir):
    marker = Path(marker_dir) / f"x{x}.ran"
    marker.write_text(str(int(marker.exists()) + 1))
    return {"values": {"y": x * x}}


def _demo_points(n, **extra):
    return [
        SweepPoint(task="demo-point", kwargs={"x": i, **extra}, label=f"demo/x={i}")
        for i in range(n)
    ]


class TestClassification:
    def test_inline_ok(self):
        runner = SweepRunner(workers=0)
        outcomes = runner.run(_demo_points(3))
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert [o.value["values"]["y"] for o in outcomes] == [0, 1, 4]
        assert all(o.ok and not o.resumed for o in outcomes)

    def test_inline_degraded_via_near_boundary_warning(self):
        runner = SweepRunner(workers=0)
        (outcome,) = runner.run(
            [SweepPoint(task="test-warn-point", kwargs={"x": 2.0}, label="warn")]
        )
        assert outcome.status == "degraded"
        assert outcome.ok  # degraded still yields a usable value
        assert outcome.value["values"]["y"] == 2.0

    def test_inline_failed_carries_typed_context(self):
        runner = SweepRunner(workers=0)
        (outcome,) = runner.run(
            [SweepPoint(task="test-fail-point", kwargs={"x": 1}, label="fail")]
        )
        assert outcome.status == "failed"
        assert not outcome.ok and outcome.value is None
        assert outcome.error["type"] == "ConvergenceError"
        assert "stalled" in outcome.error["message"]
        assert outcome.error["context"] == {"residual": 0.5, "iterations": 7}

    def test_pool_preserves_input_order(self):
        runner = SweepRunner(workers=2)
        outcomes = runner.run(_demo_points(6))
        assert [o.point.kwargs["x"] for o in outcomes] == list(range(6))
        assert [o.value["values"]["y"] for o in outcomes] == [i * i for i in range(6)]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=-1)
        with pytest.raises(ValueError):
            SweepRunner(timeout=0.0)


class TestJournalAndResume:
    def test_journal_records_every_point(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        SweepRunner(workers=0, journal_path=journal_path).run(_demo_points(3))
        records = [json.loads(line) for line in journal_path.read_text().splitlines()]
        assert len(records) == 3
        assert {r["status"] for r in records} == {"ok"}
        assert all(r["key"] and r["label"].startswith("demo/x=") for r in records)

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        journal_path.write_text('{"key": "stale", "status": "ok"}\n')
        runner = SweepRunner(workers=0, journal_path=journal_path)  # resume=False
        runner.run(_demo_points(1))
        records = [json.loads(line) for line in journal_path.read_text().splitlines()]
        assert len(records) == 1 and records[0]["key"] != "stale"

    def test_resume_skips_completed_points(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        points = [
            SweepPoint(
                task="test-marker-point",
                kwargs={"x": i, "marker_dir": str(tmp_path)},
                label=f"marker/x={i}",
            )
            for i in range(3)
        ]
        SweepRunner(workers=0, journal_path=journal_path).run(points)
        assert all((tmp_path / f"x{i}.ran").read_text() == "1" for i in range(3))

        resumed = SweepRunner(workers=0, journal_path=journal_path, resume=True)
        outcomes = resumed.run(points)
        assert all(o.resumed and o.status == "ok" for o in outcomes)
        assert [o.value["values"]["y"] for o in outcomes] == [0, 1, 4]
        # no marker was touched again: nothing recomputed
        assert all((tmp_path / f"x{i}.ran").read_text() == "1" for i in range(3))

    def test_resume_retries_failed_points(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        points = _demo_points(3)
        with inject_faults(numerical=("x=1",)):
            outcomes = SweepRunner(workers=0, journal_path=journal_path).run(points)
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        assert outcomes[1].error["type"] == "NumericalError"
        assert outcomes[1].error["context"].get("injected") is True

        # fault gone: resume retries only the failed point
        resumed = SweepRunner(workers=0, journal_path=journal_path, resume=True)
        outcomes = resumed.run(points)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert [o.resumed for o in outcomes] == [True, False, True]

    def test_resume_can_keep_failed_points(self, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        points = _demo_points(2)
        with inject_faults(numerical=("x=1",)):
            SweepRunner(workers=0, journal_path=journal_path).run(points)
        keeper = SweepRunner(
            workers=0,
            journal_path=journal_path,
            resume=True,
            retry_failed_on_resume=False,
        )
        outcomes = keeper.run(points)
        assert [o.status for o in outcomes] == ["ok", "failed"]
        assert all(o.resumed for o in outcomes)

    def test_summary_line(self, tmp_path):
        runner = SweepRunner(
            workers=0,
            journal_path=tmp_path / "j.jsonl",
            manifest_path=tmp_path / "m.json",
            run_name="demo",
        )
        runner.run(_demo_points(2))
        assert runner.summary() == "[sweep demo] 2 points, 2 ok"


class TestOrchestratedEquivalence:
    """The orchestrated paths must agree with the plain in-process paths."""

    def test_response_series_match(self, tmp_path):
        case = EXPONENTIAL_CASES[0]
        grid = [0.3, 0.8, 1.4]
        runner = SweepRunner(
            workers=2,
            journal_path=tmp_path / "j.jsonl",
            manifest_path=tmp_path / "m.json",
        )
        for job_class in ("short", "long"):
            direct = response_time_series(case, grid, 0.5, job_class)
            orchestrated = response_time_series(
                case, grid, 0.5, job_class, runner=runner
            )
            for d, o in zip(direct, orchestrated):
                assert o.label == d.label
                np.testing.assert_allclose(o.y, d.y, rtol=1e-12, equal_nan=True)
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert manifest["counts"]["total"] == 2 * len(grid)
        assert manifest["counts"]["failed"] == 0
        # PR 1 solver diagnostics crossed the process boundary into the
        # manifest (the short-job points run the QBD ladder).
        ladders = [p.get("ladder") for p in manifest["points"] if p.get("ladder")]
        assert ladders, "expected solver-ladder summaries in the manifest"
        assert all("method" in entry for lad in ladders for entry in lad.values())

    def test_replications_match_bit_for_bit(self):
        params = SystemParameters.from_loads(rho_s=0.5, rho_l=0.3)
        kwargs = dict(
            n_replications=2, seed=42, warmup_jobs=200, measured_jobs=2_000
        )
        direct = simulate_replications("cs-cq", params, **kwargs)
        orchestrated = simulate_replications(
            "cs-cq", params, runner=SweepRunner(workers=2), **kwargs
        )
        # identical seeding path => identical samples, not merely close
        assert orchestrated.response_short.mean == direct.response_short.mean
        assert orchestrated.response_long.mean == direct.response_long.mean
        assert len(orchestrated.replications) == len(direct.replications)

    def test_validation_rows_match(self):
        case = EXPONENTIAL_CASES[0]
        kwargs = dict(
            rho_s_values=[0.5],
            rho_l_values=[0.3],
            measured_jobs=2_000,
            warmup_jobs=200,
            seed=7,
        )
        direct = analysis_vs_simulation([case], **kwargs)
        orchestrated = analysis_vs_simulation(
            [case], runner=SweepRunner(workers=2), **kwargs
        )
        assert len(orchestrated) == len(direct) > 0
        for d, o in zip(direct, orchestrated):
            assert (o.case, o.policy, o.job_class) == (d.case, d.policy, d.job_class)
            assert o.analytic == pytest.approx(d.analytic, rel=1e-12)
            assert o.simulated == pytest.approx(d.simulated, rel=1e-12)
