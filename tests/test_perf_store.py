"""The persistent result store (repro.perf.store) and its cache tier.

Covers the durability contract from the outside in: entry round trips,
first-writer-wins commits, quarantine + transparent recompute on
corruption, fsck/gc, ``REPRO_STORE`` parsing — and the tier-2 hookup
through :class:`SweepCache` (status reporting, LRU bound satellite,
store-backed lookups) including bit-identity of store-served values
against the miss path on the figure-grid workloads.  Crash injection
lives in ``test_store_crash.py``.
"""

import pytest

from repro.busy_periods.mg1_busy import MG1BusyPeriod
from repro.distributions import fit_phase_type
from repro.perf import SweepCache, sweep_cache
from repro.perf.store import (
    DEFAULT_STORE_ROOT,
    PERSISTED_NAMESPACES,
    ResultStore,
    store_from_env,
)
from repro.robustness import SerializationError, StoreCorruptionError
from repro.workloads import case_by_name


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def only_entry(store):
    entries = [
        p
        for p in store.root.rglob("*.entry")
        if "corrupt" not in p.parts
    ]
    assert len(entries) == 1
    return entries[0]


class TestStoreBasics:
    def test_roundtrip(self, store):
        key = ("mg1", 0.5, (1.0, 2.0, 6.0))
        assert store.put("busy-moments", key, (1.0, 2.5, 9.75))
        found, value = store.get("busy-moments", key)
        assert found and value == (1.0, 2.5, 9.75)
        assert store.hits["busy-moments"] == 1

    def test_miss(self, store):
        found, value = store.get("busy-moments", "nope")
        assert not found and value is None
        assert store.misses["busy-moments"] == 1

    def test_first_writer_wins(self, store):
        assert store.put("ph-fit", "k", 1.0) is True
        assert store.put("ph-fit", "k", 2.0) is False  # existing entry kept
        assert store.get("ph-fit", "k") == (True, 1.0)

    def test_unpersisted_namespace_is_ignored(self, store):
        assert "scratch" not in PERSISTED_NAMESPACES
        assert store.put("scratch", "k", 1.0) is False
        assert not (store.root / "scratch").exists()

    def test_unserializable_value_raises(self, store):
        with pytest.raises(SerializationError):
            store.put("ph-fit", "k", object())

    def test_same_key_different_namespace_distinct(self, store):
        store.put("ph-fit", "k", "fit")
        store.put("busy-moments", "k", "moments")
        assert store.get("ph-fit", "k") == (True, "fit")
        assert store.get("busy-moments", "k") == (True, "moments")


class TestCorruption:
    def test_flipped_payload_byte_quarantines_and_raises(self, store):
        store.put("ph-fit", "k", (1.0, 2.0))
        path = only_entry(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError) as excinfo:
            store.get("ph-fit", "k")
        assert excinfo.value.reason == "payload checksum mismatch"
        assert not path.exists()  # moved...
        assert list(store.corrupt_dir.iterdir())  # ...to quarantine
        assert store.corrupt["ph-fit"] == 1

    def test_truncated_entry_detected(self, store):
        store.put("ph-fit", "k", (1.0, 2.0))
        path = only_entry(store)
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with pytest.raises(StoreCorruptionError) as excinfo:
            store.get("ph-fit", "k")
        assert excinfo.value.reason == "payload truncated or padded"

    def test_garbage_header_detected(self, store):
        store.put("ph-fit", "k", 1.0)
        path = only_entry(store)
        path.write_bytes(b"\x00garbage\nmore garbage")
        with pytest.raises(StoreCorruptionError):
            store.get("ph-fit", "k")

    def test_cache_recovers_transparently(self, store):
        """Corruption costs a recompute, never an error or a wrong value."""
        cache = SweepCache(store=store)
        original = cache.get_or_compute("ph-fit", "k", lambda: (1.5, 2.5))
        path = only_entry(store)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        fresh = SweepCache(store=store)  # fresh memory tier, same disk
        value, status = fresh.get_or_compute_with_status(
            "ph-fit", "k", lambda: (1.5, 2.5)
        )
        assert status == "computed"  # fell through to recompute
        assert value == original
        # ...and the rewrite repaired the store for the next reader.
        reread = SweepCache(store=ResultStore(store.root))
        _, status = reread.get_or_compute_with_status("ph-fit", "k", dict)
        assert status == "store"

    def test_tampered_solution_fails_contracts(self, store, monkeypatch):
        """A forged entry (valid checksum, invalid numerics) is rejected:
        checksums prove the bytes, contracts prove the solution."""
        import json
        from hashlib import sha256

        from repro.perf.codec import encode_value

        monkeypatch.delenv("REPRO_NO_CONTRACTS", raising=False)
        case = case_by_name("a")
        params = case.params(0.5, 0.5)
        with sweep_cache(store=store):
            from repro.core import CsCqAnalysis

            CsCqAnalysis(params).mean_response_time_short()
        entries = list(store.root.glob("analysis-solution/*/*.entry"))
        assert entries
        path = entries[0]
        header_line, payload = path.read_bytes().split(b"\n", 1)
        header = json.loads(header_line)
        from repro.perf.codec import decode_value

        solution = decode_value(payload)
        solution.pi_repeat[:] = solution.pi_repeat * 3.0  # break normalization
        forged = encode_value(solution)
        header["payload_sha256"] = sha256(forged).hexdigest()
        header["payload_bytes"] = len(forged)
        path.write_bytes(
            json.dumps(header, separators=(",", ":")).encode() + b"\n" + forged
        )
        digest = path.name[: -len(".entry")]
        with pytest.raises(StoreCorruptionError) as excinfo:
            store._verify_entry(path.read_bytes(), "analysis-solution", digest, path)
        assert excinfo.value.reason == "contract-violation"


class TestFsck:
    def test_clean_store(self, store):
        store.put("ph-fit", "a", 1.0)
        store.put("busy-moments", "b", 2.0)
        report = store.fsck()
        assert report["checked"] == 2 and report["ok"] == 2
        assert report["corrupt"] == []

    def test_reports_exactly_the_injected_corruptions(self, store):
        for i in range(4):
            store.put("ph-fit", f"k{i}", float(i))
        entries = sorted(store.root.glob("ph-fit/*/*.entry"))
        corrupted = entries[:2]
        data = bytearray(corrupted[0].read_bytes())
        data[-1] ^= 0xFF
        corrupted[0].write_bytes(bytes(data))
        corrupted[1].write_bytes(corrupted[1].read_bytes()[:10])

        report = store.fsck()
        assert report["checked"] == 4
        assert report["ok"] == 2
        assert {e["path"] for e in report["corrupt"]} == {str(p) for p in corrupted}
        assert all(e["quarantined_to"] for e in report["corrupt"])
        # Quarantined entries are out of the tree: a re-run is clean.
        assert store.fsck()["corrupt"] == []
        assert store.fsck()["checked"] == 2


class TestGc:
    def _fill(self, store, n):
        for i in range(n):
            store.put("ph-fit", f"k{i}", float(i))

    def test_size_bound_evicts_lru_first(self, store, monkeypatch):
        import repro.perf.store as store_module

        ticks = iter(range(1, 100))
        monkeypatch.setattr(store_module.time, "time", lambda: float(next(ticks)))
        self._fill(store, 4)  # atimes 1..4 (written_at == atime)
        sizes = [p.stat().st_size for p in store.root.glob("ph-fit/*/*.entry")]
        keep_two = sum(sorted(sizes)[:2]) + 1
        report = store.gc(max_bytes=keep_two)
        assert report["evicted"] == 2
        # The survivors are the most recently written (highest atime).
        assert store.get("ph-fit", "k3")[0]
        assert store.get("ph-fit", "k2")[0]
        assert not store.get("ph-fit", "k0")[0]

    def test_age_bound(self, store, monkeypatch):
        import time as time_module

        import repro.perf.store as store_module

        self._fill(store, 3)
        future = time_module.time() + 10_000.0
        monkeypatch.setattr(store_module.time, "time", lambda: future)
        report = store.gc(max_age=5_000.0)
        assert report["evicted"] == 3

    def test_concurrent_gc_is_refused(self, store):
        self._fill(store, 1)
        (store.root / ".gc.lock").write_text("4242")
        report = store.gc(max_bytes=0)
        assert report["locked"] is True and report["evicted"] == 0
        assert store.get("ph-fit", "k0")[0]


class TestStoreFromEnv:
    def test_disabled_values(self, monkeypatch):
        for value in (None, "", "0", "false", "off", "  "):
            if value is None:
                monkeypatch.delenv("REPRO_STORE", raising=False)
            else:
                monkeypatch.setenv("REPRO_STORE", value)
            assert store_from_env() is None

    def test_enabled_default_root(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "1")
        store = store_from_env()
        assert str(store.root) == DEFAULT_STORE_ROOT

    def test_path_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert store_from_env().root == tmp_path / "elsewhere"

    def test_sweep_cache_attaches_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "s"))
        with sweep_cache() as cache:
            assert cache.store is not None
            assert cache.store.root == tmp_path / "s"
        monkeypatch.setenv("REPRO_STORE", "0")
        with sweep_cache() as cache:
            assert cache.store is None


class TestCacheTiering:
    def test_statuses(self, store):
        cache = SweepCache(store=store)
        _, s1 = cache.get_or_compute_with_status("ph-fit", "k", lambda: 1.0)
        _, s2 = cache.get_or_compute_with_status("ph-fit", "k", lambda: 1.0)
        fresh = SweepCache(store=store)
        _, s3 = fresh.get_or_compute_with_status("ph-fit", "k", lambda: 1.0)
        _, s4 = fresh.get_or_compute_with_status("ph-fit", "k", lambda: 1.0)
        assert (s1, s2, s3, s4) == ("computed", "memory", "store", "memory")

    def test_lookup_does_not_compute(self, store):
        cache = SweepCache(store=store)
        assert cache.lookup("ph-fit", "k") == (False, None)
        cache.get_or_compute("ph-fit", "k", lambda: 7.0)
        fresh = SweepCache(store=store)
        assert fresh.lookup("ph-fit", "k") == (True, 7.0)
        assert fresh.contains("ph-fit", "k")  # store hit was memoized

    def test_no_store_behaves_as_before(self):
        cache = SweepCache()
        value, status = cache.get_or_compute_with_status("ph-fit", "k", lambda: 3)
        assert (value, status) == (3, "computed")
        assert cache.lookup("ph-fit", "k") == (True, 3)

    def test_stats_include_store(self, store):
        cache = SweepCache(store=store)
        cache.get_or_compute("ph-fit", "k", lambda: 1.0)
        stats = cache.stats()
        assert stats["store"]["writes"] == 1


class TestLruBound:
    def test_eviction_and_counters(self):
        cache = SweepCache(max_entries=2)
        cache.get_or_compute("ns", 1, lambda: "a")
        cache.get_or_compute("ns", 2, lambda: "b")
        cache.get_or_compute("ns", 1, lambda: "a")  # 1 is now most recent
        cache.get_or_compute("other", 3, lambda: "c")  # evicts 2
        assert cache.contains("ns", 1) and not cache.contains("ns", 2)
        assert cache.evictions["ns"] == 1
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["evicted"] == 1
        assert stats["max_entries"] == 2
        assert stats["by_namespace"]["ns"]["evicted"] == 1

    def test_unbounded_by_default(self):
        cache = SweepCache()
        for i in range(500):
            cache.get_or_compute("ns", i, lambda i=i: i)
        assert len(cache) == 500 and not cache.evictions

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SweepCache(max_entries=0)

    def test_evicted_entry_still_served_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        cache = SweepCache(max_entries=1, store=store)
        cache.get_or_compute("ph-fit", "a", lambda: 1.0)
        cache.get_or_compute("ph-fit", "b", lambda: 2.0)  # evicts "a"
        value, status = cache.get_or_compute_with_status(
            "ph-fit", "a", lambda: 1.0
        )
        assert (value, status) == (1.0, "store")


class TestFigureGridBitIdentity:
    """S3: store-served values equal the miss path bit for bit, for every
    cached type the figure 4/5/6 grids exercise."""

    CASES = [("a", 0.5, 0.5), ("b", 0.9, 0.5), ("c", 0.3, 0.7)]

    @pytest.mark.parametrize("name,rho_s,rho_l", CASES)
    def test_ph_fit_and_busy_moments(self, tmp_path, name, rho_s, rho_l):
        case = case_by_name(name)
        params = case.params(rho_s, rho_l)
        store = ResultStore(tmp_path / "s")

        def compute():
            fit = fit_phase_type(*(params.long_service.moment(k) for k in (1, 2, 3)))
            busy = MG1BusyPeriod(params.lam_l, params.long_service).moments()
            return fit, busy

        with sweep_cache(store=store):
            fit_miss, busy_miss = compute()
        with sweep_cache(store=ResultStore(tmp_path / "s")):
            fit_hit, busy_hit = compute()

        assert type(fit_hit) is type(fit_miss)
        for k in (1, 2, 3):
            assert fit_hit.moment(k).hex() == fit_miss.moment(k).hex()
        assert [m.hex() for m in busy_hit] == [m.hex() for m in busy_miss]

    @pytest.mark.parametrize("name,rho_s,rho_l", CASES[:2])
    def test_qbd_solution_arrays(self, tmp_path, name, rho_s, rho_l):
        from repro.core import CsCqAnalysis

        case = case_by_name(name)
        params = case.params(rho_s, rho_l)
        store_root = tmp_path / "s"

        def solve():
            analysis = CsCqAnalysis(params)
            value = analysis.mean_response_time_short()
            return value, analysis.solver_diagnostics

        with sweep_cache(store=ResultStore(store_root)):
            value_miss, diag_miss = solve()
        with sweep_cache(store=ResultStore(store_root)):
            value_hit, diag_hit = solve()

        assert float(value_hit).hex() == float(value_miss).hex()
        assert diag_miss.cache_hit is False
        assert diag_hit.cache_hit is True  # store hit reported honestly

    def test_cached_solution_clone_protects_store_object(self, tmp_path):
        """The store-hit clone carries cache_hit=True without mutating the
        memoized object (mirrors the in-memory clone contract)."""
        from repro.core import CsCqAnalysis

        params = case_by_name("a").params(0.5, 0.5)
        root = tmp_path / "s"
        with sweep_cache(store=ResultStore(root)):
            CsCqAnalysis(params).mean_response_time_short()
        with sweep_cache(store=ResultStore(root)) as cache:
            first = CsCqAnalysis(params).mean_response_time_short()
            second = CsCqAnalysis(params).mean_response_time_short()
            assert float(first).hex() == float(second).hex()
            stored = cache.values("analysis-solution")
            assert all(
                s.diagnostics is None or s.diagnostics.cache_hit is False
                for s in stored
            )

    def test_cached_solution_roundtrip(self, tmp_path):
        """Direct cached_solution() path: a store hit returns bit-identical
        stationary vectors."""
        from repro.core import CsCqAnalysis

        params = case_by_name("a").params(0.6, 0.4)
        root = tmp_path / "s"

        def capture():
            analysis = CsCqAnalysis(params)
            analysis.mean_response_time_short()
            return analysis

        with sweep_cache(store=ResultStore(root)) as cache:
            capture()
            miss_solutions = cache.values("analysis-solution")
        with sweep_cache(store=ResultStore(root)) as cache:
            capture()
            hit_solutions = cache.values("analysis-solution")

        assert len(miss_solutions) == len(hit_solutions) == 1
        miss, hit = miss_solutions[0], hit_solutions[0]
        assert hit.pi_repeat.tobytes() == miss.pi_repeat.tobytes()
        assert hit.r_matrix.tobytes() == miss.r_matrix.tobytes()
        assert len(hit.boundary_pi) == len(miss.boundary_pi)
        for a, b in zip(hit.boundary_pi, miss.boundary_pi):
            assert a.tobytes() == b.tobytes()


class TestServiceReplayAcrossRestart:
    """The fidelity ladder's replay rung survives a service restart when a
    store is attached: validated answers come back from disk."""

    def test_cached_rung_reads_through_the_store(self, tmp_path):
        from repro.service.fidelity import cached_rung, store_answer
        from repro.service.query import ScenarioQuery

        query = ScenarioQuery(rho_s=0.5, rho_l=0.5)
        answer = {"Dedicated": 2.0, "CS-ID": 1.5, "CS-CQ": 1.2}

        first_life = SweepCache(store=ResultStore(tmp_path / "s"))
        store_answer(query, answer, first_life)
        assert cached_rung(query, first_life) == answer

        # "Restart": a fresh cache over the same store root.
        second_life = SweepCache(store=ResultStore(tmp_path / "s"))
        assert cached_rung(query, second_life) == answer
        # Without the store, the same restart is a miss.
        assert cached_rung(query, SweepCache()) is None

    def test_replay_is_a_copy(self, tmp_path):
        from repro.service.fidelity import cached_rung, store_answer
        from repro.service.query import ScenarioQuery

        query = ScenarioQuery(rho_s=0.3, rho_l=0.3)
        cache = SweepCache(store=ResultStore(tmp_path / "s"))
        store_answer(query, {"Dedicated": 2.0}, cache)
        served = cached_rung(query, cache)
        served["Dedicated"] = -1.0  # a caller mutating its answer...
        assert cached_rung(query, cache) == {"Dedicated": 2.0}  # ...hurts no one


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-v"]))
