"""CheckpointJournal torn-tail hardening: loud skips, telemetry, resume."""

import json

import pytest

from repro.orchestration import CheckpointJournal, SweepPoint, SweepRunner
from repro.orchestration.spec import point_key
from repro.robustness import CorruptJournalWarning
from repro.telemetry import registry


def _write_journal(path, records, tail=""):
    lines = [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n" + tail)


class TestTornTail:
    def test_torn_tail_skipped_with_warning_and_counter(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = [
            {"key": "k1", "status": "ok", "value": 1},
            {"key": "k2", "status": "ok", "value": 2},
        ]
        _write_journal(path, good, tail='{"key": "k3", "status": "o')  # torn
        registry().reset()
        with pytest.warns(CorruptJournalWarning, match=r"1 torn/corrupt line"):
            journal = CheckpointJournal(path)
        assert len(journal) == 2
        assert journal.torn_lines == 1
        assert "k1" in journal and "k2" in journal and "k3" not in journal
        assert registry().counter("checkpoint.torn_lines") == 1

    def test_warning_names_file_and_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path, [{"key": "k1"}], tail="{garbage")
        with pytest.warns(CorruptJournalWarning) as caught:
            CheckpointJournal(path)
        message = str(caught[0].message)
        assert "journal.jsonl" in message
        assert "line 2" in message

    def test_multiple_corrupt_lines_all_reported(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"key": "a"}\nnot json\n{"key": "b"}\n{also bad\n')
        registry().reset()
        with pytest.warns(CorruptJournalWarning, match=r"2 torn/corrupt"):
            journal = CheckpointJournal(path)
        assert journal.torn_lines == 2
        assert len(journal) == 2
        assert registry().counter("checkpoint.torn_lines") == 2

    def test_clean_journal_warns_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path, [{"key": "a"}])
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            journal = CheckpointJournal(path)
        assert journal.torn_lines == 0

    def test_flush_rewrites_a_clean_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path, [{"key": "a"}], tail="{torn")
        with pytest.warns(CorruptJournalWarning):
            journal = CheckpointJournal(path)
        journal.flush()
        reloaded = CheckpointJournal(path)  # must not warn (checked below)
        assert reloaded.torn_lines == 0
        assert len(reloaded) == 1


class TestResumeAcrossTornJournal:
    def test_resume_recomputes_only_the_torn_point(self, tmp_path):
        """End to end: a journal with a torn tail resumes cleanly, keeping
        the intact record and recomputing the torn one."""
        journal_path = tmp_path / "journal.jsonl"
        points = [
            SweepPoint(task="demo-point", kwargs={"x": i}, label=f"t/x={i}")
            for i in range(2)
        ]
        first = SweepRunner(workers=0, journal_path=journal_path)
        outcomes = first.run(points)
        assert [o.status for o in outcomes] == ["ok", "ok"]

        # Tear the second point's line mid-record, as a crash would.
        lines = journal_path.read_text().splitlines()
        key1 = point_key(points[1].task, points[1].kwargs)
        torn = [
            line if key1 not in line else line[: len(line) // 2]
            for line in lines
        ]
        journal_path.write_text("\n".join(torn) + "\n")

        with pytest.warns(CorruptJournalWarning):
            second = SweepRunner(workers=0, journal_path=journal_path, resume=True)
        resumed = second.run(points)
        assert [o.status for o in resumed] == ["ok", "ok"]
        assert resumed[0].resumed and not resumed[1].resumed
