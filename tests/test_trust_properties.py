"""Property-based tests for the numerical trust layer (PR 9).

Four families of invariants:

* **Bound algebra** — composed forward error bounds are nonnegative,
  monotone under residual (perturbation) scaling, and poison-safe (NaN
  inputs compose to ``inf``, never to a trusted-looking number).
* **Verdict mapping** — verdicts are total over ``None``/NaN/inf/finite
  bounds, monotone in the bound, and the vector form is elementwise
  identical to the scalar form.
* **Scalar/batched bit-identity** — the 1-norm condition estimator and
  the end-to-end sweep produce *bit-identical* trust verdicts and error
  bounds whether a point is solved alone or inside a stack.
* **Fault visibility** — an injected silent perturbation lands
  ``suspect``/``untrusted`` at the oracle, and the committed
  near-boundary escalation case demonstrably shrinks its bound.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contracts import OracleConfig, check_point
from repro.core import CsCqAnalysis, SystemParameters
from repro.orchestration import inject_faults
from repro.perf.batched import batched_sweep_values
from repro.perf.cache import sweep_cache
from repro.robustness import (
    TRUST_LEVELS,
    TRUSTED_MAX,
    UNTRUSTED_MIN,
    compose_bound,
    condest_1,
    scale_tolerance,
    trust_verdict,
    trust_verdicts,
)
from repro.workloads import EXPONENTIAL_CASES

_RANK = {level: i for i, level in enumerate(TRUST_LEVELS)}

nonneg = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
conds = st.floats(
    min_value=1.0, max_value=1e10, allow_nan=False, allow_infinity=False
)
bounds = st.one_of(
    st.none(),
    st.floats(min_value=0.0, max_value=1e30),
    st.just(float("nan")),
    st.just(float("inf")),
)


class TestComposeBound:
    @given(
        cond_b=conds,
        res_b=nonneg,
        scale_b=positive,
        cond_ir=conds,
        res_r=nonneg,
        scale_r=positive,
    )
    def test_nonnegative(self, cond_b, res_b, scale_b, cond_ir, res_r, scale_r):
        bound = compose_bound(cond_b, res_b, scale_b, cond_ir, res_r, scale_r)
        assert bound >= 0.0

    @given(
        cond_b=conds,
        res_b=nonneg,
        scale_b=positive,
        cond_ir=conds,
        res_r=nonneg,
        scale_r=positive,
        k=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_monotone_under_perturbation_scaling(
        self, cond_b, res_b, scale_b, cond_ir, res_r, scale_r, k
    ):
        """Scaling the backward errors up by k >= 1 never shrinks the bound
        (and therefore never improves the verdict)."""
        base = compose_bound(cond_b, res_b, scale_b, cond_ir, res_r, scale_r)
        scaled = compose_bound(
            cond_b, k * res_b, scale_b, cond_ir, k * res_r, scale_r
        )
        assert scaled >= base
        assert _RANK[trust_verdict(scaled)] >= _RANK[trust_verdict(base)]

    def test_nan_poisons_to_inf(self):
        for args in (
            (float("nan"), 0.0, 1.0, 1.0, 0.0, 1.0),
            (1.0, float("nan"), 1.0, 1.0, 0.0, 1.0),
            (1.0, 0.0, 1.0, float("nan"), 0.0, 1.0),
        ):
            assert compose_bound(*args) == float("inf")

    def test_stack_matches_scalars_bitwise(self):
        cond_b = np.array([1.0, 1e3, 1e8])
        res_b = np.array([0.0, 1e-12, 1e-6])
        cond_ir = np.array([2.0, 1e5, 1e9])
        res_r = np.array([1e-16, 1e-10, 1e-4])
        stacked = compose_bound(cond_b, res_b, 1.0, cond_ir, res_r, 1.0)
        for i in range(3):
            single = compose_bound(
                cond_b[i], res_b[i], 1.0, cond_ir[i], res_r[i], 1.0
            )
            assert stacked[i] == single  # bitwise, not approximately


class TestVerdictMapping:
    @given(bound=bounds)
    def test_total_over_all_inputs(self, bound):
        assert trust_verdict(bound) in TRUST_LEVELS

    @given(
        b1=st.floats(min_value=0.0, max_value=1e30),
        b2=st.floats(min_value=0.0, max_value=1e30),
    )
    def test_monotone_in_bound(self, b1, b2):
        lo, hi = min(b1, b2), max(b1, b2)
        assert _RANK[trust_verdict(lo)] <= _RANK[trust_verdict(hi)]

    def test_thresholds(self):
        assert trust_verdict(TRUSTED_MAX) == "trusted"
        assert trust_verdict(np.nextafter(TRUSTED_MAX, 1.0)) == "suspect"
        assert trust_verdict(UNTRUSTED_MIN) == "suspect"
        assert trust_verdict(np.nextafter(UNTRUSTED_MIN, 1.0)) == "untrusted"

    def test_missing_bound_is_untrusted(self):
        assert trust_verdict(None) == "untrusted"
        assert trust_verdict(float("nan")) == "untrusted"
        assert trust_verdict(float("inf")) == "untrusted"

    @given(
        vec=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=1e30),
                st.just(float("nan")),
                st.just(float("inf")),
            ),
            min_size=1,
        )
    )
    def test_vector_matches_scalar(self, vec):
        arr = np.asarray(vec, dtype=float)
        assert trust_verdicts(arr) == [trust_verdict(float(b)) for b in arr]


class TestScaleTolerance:
    @given(base=positive, bound=bounds)
    def test_never_tightens(self, base, bound):
        assert scale_tolerance(base, bound) >= base

    @given(base=positive)
    def test_unknown_bound_is_identity(self, base):
        for bound in (None, float("nan"), float("inf"), 0.0, -1.0):
            assert scale_tolerance(base, bound) == base

    @given(base=positive, bound=st.floats(min_value=1e-30, max_value=1e6))
    def test_widens_by_exactly_the_bound(self, base, bound):
        assert scale_tolerance(base, bound) == base + bound


class TestCondestBitIdentity:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_scalar_equals_stacked_slice(self, seed):
        """condest_1 of one matrix is bitwise equal to the matching slice
        of the stacked call — the arithmetic behind the scalar and batched
        solver paths is literally the same."""
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(4, 6, 6)) + 6.0 * np.eye(6)
        batched = condest_1(stack)
        for i in range(stack.shape[0]):
            assert condest_1(stack[i]) == batched[i]

    def test_identity_estimates_one(self):
        assert condest_1(np.eye(5)) == 1.0

    def test_singular_estimates_inf(self):
        assert condest_1(np.zeros((3, 3))) == float("inf")

    def test_nonfinite_estimates_inf(self):
        a = np.eye(3)
        a[0, 0] = np.nan
        assert condest_1(a) == float("inf")


class TestSweepBitIdentity:
    def test_scalar_and_batched_verdicts_bit_identical(self, monkeypatch):
        """End to end: the same grid through the scalar per-point path and
        the batched tensor backend must yield identical trust verdicts AND
        bit-identical error bounds for every policy at every point."""
        monkeypatch.setenv("REPRO_BATCHED_STRICT", "1")
        from repro.experiments.figures import _POLICY_LABELS, _policy_point_values

        case = EXPONENTIAL_CASES[0]
        pairs = [(0.4, 0.5), (0.9, 0.5), (0.99 * 1.5, 0.5)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with sweep_cache():
                scalar_diags = []
                for rho_s, rho_l in pairs:
                    _, diags = _policy_point_values(
                        case.params(rho_s, rho_l), "short", with_diagnostics=True
                    )
                    scalar_diags.append(diags)
            with sweep_cache():
                _, batched_diags = batched_sweep_values(
                    case, pairs, "short", with_diagnostics=True
                )
        compared = 0
        for scalar_point, batched_point in zip(scalar_diags, batched_diags):
            for label in _POLICY_LABELS:
                s = (scalar_point or {}).get(label)
                b = (batched_point or {}).get(label)
                assert (s is None) == (b is None), label
                if s is None:
                    continue
                assert s["trust"] == b["trust"], label
                assert s["error_bound"] == b["error_bound"], label  # bitwise
                compared += 1
        assert compared >= 6  # all three policies at multiple points


#: Cheap oracle budget (mirrors tests/test_oracle.py): decisive in seconds.
_CHEAP = OracleConfig(
    measured_jobs=3_000,
    warmup_jobs=500,
    n_replications=3,
    max_escalations=2,
    max_short=150,
    max_long=40,
)


class TestFaultVisibility:
    def test_clean_point_is_trusted(self):
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        verdict = check_point(params, _CHEAP, label="trust rho_s=0.3")
        assert verdict.trust is not None
        assert verdict.trust["trust"] == "trusted"
        assert verdict.trust["error_bound"] is not None
        assert verdict.trust["error_bound"] < TRUSTED_MAX

    @pytest.mark.parametrize("factor", [1.5, 1.01])
    def test_perturb_fault_lands_suspect_or_untrusted(self, factor):
        """A silently perturbed solve must never keep a trusted verdict:
        the reported-vs-implied audit feeds the trust bound, so even a 1%
        perturbation (far below the oracle's 5% agreement tolerance)
        demotes the point."""
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        with inject_faults(perturb=["trust rho_s=0.3"], perturb_factor=factor):
            verdict = check_point(params, _CHEAP, label="trust rho_s=0.3")
        assert verdict.perturbed
        assert verdict.trust is not None
        assert verdict.trust["trust"] in ("suspect", "untrusted")
        assert verdict.trust["audit_disagreement"] > 0.0

    def test_perturb_tolerance_not_widened_by_audit(self):
        """The audit disagreement must feed the *verdict*, never the
        agreement tolerance — a widened tolerance must excuse
        conditioning, not corruption — so the perturbed point still
        classifies suspect."""
        params = SystemParameters.from_loads(rho_s=0.3, rho_l=0.5)
        with inject_faults(perturb=["trust rho_s=0.3"], perturb_factor=1.5):
            verdict = check_point(params, _CHEAP, label="trust rho_s=0.3")
        assert verdict.classification == "suspect"


class TestPrecisionEscalation:
    def test_escalation_shrinks_bound_near_boundary(self):
        """Committed near-boundary case: at rho_s = (1 - 1e-8)(2 - rho_l)
        the first-pass bound lands suspect, the escalation rung (Newton
        polish + compensated boundary re-solve) runs, and the accepted
        bound is strictly smaller than the pre-escalation bound."""
        rho_l = 0.8
        rho_s = (1.0 - 1e-8) * (2.0 - rho_l)
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            analysis = CsCqAnalysis(params)
            mean = analysis.mean_response_time_short()
        assert np.isfinite(mean) and mean > 0.0
        diag = analysis.solver_diagnostics
        assert diag.escalated
        assert diag.error_bound_before_escalation is not None
        assert diag.error_bound is not None
        assert diag.error_bound < diag.error_bound_before_escalation
        assert diag.trust in ("trusted", "suspect")

    def test_interior_point_does_not_escalate(self):
        params = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        analysis = CsCqAnalysis(params)
        analysis.mean_response_time_short()
        diag = analysis.solver_diagnostics
        assert not diag.escalated
        assert diag.trust == "trusted"
