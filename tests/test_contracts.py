"""Tests for the invariant-contract registry and the built-in contracts."""

import warnings

import pytest

from repro.contracts import (
    ContractResult,
    check_monotone_series,
    contract,
    contracts_enabled,
    contracts_for,
    enforce,
    evaluate,
    point_dominance_results,
    registered_contracts,
    rel_diff,
)
from repro.core import CsCqAnalysis, CsCqTruncatedChain, SystemParameters
from repro.robustness import (
    ContractViolation,
    ContractViolationWarning,
    ReproError,
    ValidationError,
)


@pytest.fixture(scope="module")
def moderate_params():
    return SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, mean_long=10.0)


@pytest.fixture(scope="module")
def moderate_analysis(moderate_params):
    return CsCqAnalysis(moderate_params)


class TestRelDiff:
    def test_basic(self):
        assert rel_diff(1.05, 1.0) == pytest.approx(0.05)

    def test_zero_reference_is_inf(self):
        assert rel_diff(1.0, 0.0) == float("inf")
        assert rel_diff(0.0, 0.0) == 0.0

    def test_nan_and_inf_are_inf(self):
        assert rel_diff(float("nan"), 1.0) == float("inf")
        assert rel_diff(1.0, float("inf")) == float("inf")

    def test_denormal_reference_does_not_raise(self):
        assert rel_diff(1.0, 5e-324) == float("inf")


class TestRegistry:
    def test_builtins_registered(self):
        names = {spec.name for spec in registered_contracts()}
        assert {
            "littles-law-short",
            "littles-law-long",
            "stationary-normalization",
            "truncation-mass",
            "dominance-short",
            "monotone-in-load",
        } <= names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @contract("littles-law-short", "analysis", "dup")
            def _dup(subject):
                raise AssertionError("never evaluated")

    def test_contracts_for_filters_by_kind(self):
        for spec in contracts_for("solution"):
            assert spec.kind == "solution"
        assert contracts_for("solution")
        assert contracts_for("no-such-kind") == ()

    def test_evaluator_repro_error_becomes_failing_result(self):
        # Feed an object missing every field: evaluators must raise typed
        # errors, which evaluate() converts to failing results.
        class Broken:
            def total_mass(self):
                raise ValidationError("mass is not a number")

        results = evaluate(
            "solution", Broken(), names=["stationary-normalization"]
        )
        assert len(results) == 1
        assert not results[0].passed
        assert "ValidationError" in results[0].detail

    def test_enforce_raises_typed_violation(self):
        values = {"CS-Central-Q": 5.0, "CS-Immed-Disp": 1.0, "Dedicated": 2.0}
        with pytest.raises(ContractViolation) as excinfo:
            enforce("point", values, job_class="short")
        error = excinfo.value
        assert error.contract == "dominance-short"
        assert error.observed == 5.0
        assert isinstance(error, ReproError)

    def test_enabled_flag_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CONTRACTS", raising=False)
        assert contracts_enabled()
        monkeypatch.setenv("REPRO_NO_CONTRACTS", "1")
        assert not contracts_enabled()


class TestAnalysisContracts:
    def test_all_pass_on_solved_point(self, moderate_analysis, moderate_params):
        results = evaluate(
            "analysis", moderate_analysis, params=moderate_params
        )
        assert results, "expected analysis contracts to apply"
        assert all(result.passed for result in results)
        names = {result.name for result in results}
        assert "littles-law-short" in names
        assert "short-throughput-balance" in names

    def test_solution_contracts_pass(self, moderate_analysis):
        results = evaluate("solution", moderate_analysis.solution)
        assert {result.name for result in results} >= {
            "stationary-normalization",
            "nonnegative-probabilities",
            "tail-moment-consistency",
        }
        assert all(result.passed for result in results)

    def test_truncation_mass_contract(self, moderate_params):
        reference = CsCqTruncatedChain(
            moderate_params, max_short=200, max_long=40
        ).solve()
        (tight,) = evaluate("truncated", reference, tolerance=1e-6)
        assert tight.passed
        (loose,) = evaluate("truncated", reference, tolerance=0.0)
        assert not loose.passed


class TestDominanceContracts:
    def test_correct_ordering_passes(self):
        values = {"CS-Central-Q": 1.0, "CS-Immed-Disp": 2.0, "Dedicated": 3.0}
        results = point_dominance_results(values, "short")
        assert len(results) == 2 and all(r.passed for r in results)

    def test_violation_fails(self):
        values = {"CS-Central-Q": 3.0, "CS-Immed-Disp": 2.0, "Dedicated": 1.0}
        results = point_dominance_results(values, "short")
        assert any(not r.passed for r in results)

    def test_nan_link_is_skipped(self):
        values = {
            "CS-Central-Q": 1.0,
            "CS-Immed-Disp": float("nan"),
            "Dedicated": 0.5,
        }
        results = point_dominance_results(values, "short")
        assert results == []

    def test_long_ordering(self):
        values = {"Dedicated": 1.0, "CS-Central-Q": 2.0, "CS-Immed-Disp": 3.0}
        assert all(r.passed for r in point_dominance_results(values, "long"))
        swapped = {"Dedicated": 2.0, "CS-Central-Q": 1.0, "CS-Immed-Disp": 3.0}
        assert any(
            not r.passed for r in point_dominance_results(swapped, "long")
        )


class TestMonotoneSeries:
    def test_nondecreasing_passes(self):
        results = check_monotone_series([1, 2, 3], [1.0, 1.0, 2.0])
        assert all(r.passed for r in results)

    def test_dip_fails_with_location(self):
        results = check_monotone_series(
            [1, 2, 3], [1.0, 5.0, 2.0], label="demo"
        )
        failed = [r for r in results if not r.passed]
        assert len(failed) == 1
        assert "x=3" in failed[0].detail and "demo" in failed[0].detail

    def test_nan_breaks_the_chain(self):
        # 5.0 -> NaN -> 2.0 must not compare 5.0 against 2.0.
        results = check_monotone_series([1, 2, 3], [5.0, float("nan"), 2.0])
        assert all(r.passed for r in results)


class TestSweepHooks:
    def test_point_values_warn_on_violation(self, monkeypatch):
        """A corrupted policy value at a sweep point raises the warning."""
        from repro.experiments import figures

        original = figures.DedicatedAnalysis

        class Corrupted(original):
            def mean_response_time_short(self):
                return super().mean_response_time_short() / 10.0

        monkeypatch.setattr(figures, "DedicatedAnalysis", Corrupted)
        params = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            figures._policy_point_values(params, "short")
        violations = [
            w for w in caught if isinstance(w.message, ContractViolationWarning)
        ]
        assert violations
        assert "dominance-short" in str(violations[0].message)

    def test_no_contracts_env_disables_hook(self, monkeypatch):
        from repro.experiments import figures

        original = figures.DedicatedAnalysis

        class Corrupted(original):
            def mean_response_time_short(self):
                return super().mean_response_time_short() / 10.0

        monkeypatch.setattr(figures, "DedicatedAnalysis", Corrupted)
        monkeypatch.setenv("REPRO_NO_CONTRACTS", "1")
        params = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            figures._policy_point_values(params, "short")
        assert not any(
            isinstance(w.message, ContractViolationWarning) for w in caught
        )

    def test_series_hook_catches_dip(self, monkeypatch):
        from repro.experiments import figures
        from repro.workloads import case_by_name

        calls = {"n": 0}
        original = figures._policy_point_values

        def corrupting(params, job_class, with_diagnostics=False):
            values, diagnostics = original(params, job_class, with_diagnostics)
            calls["n"] += 1
            if calls["n"] == 2:  # dent the middle of every curve
                values = {k: v / 100.0 for k, v in values.items()}
            return values, diagnostics

        monkeypatch.setattr(figures, "_policy_point_values", corrupting)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            figures.response_time_series(
                case_by_name("a"), [0.3, 0.5, 0.7], 0.5, "short"
            )
        messages = [
            str(w.message)
            for w in caught
            if isinstance(w.message, ContractViolationWarning)
        ]
        assert any("monotone-in-load" in m for m in messages)

    def test_clean_sweep_emits_no_warnings(self):
        from repro.experiments import figures
        from repro.workloads import case_by_name

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            figures.response_time_series(
                case_by_name("a"), [0.3, 0.6, 0.9], 0.5, "short"
            )
            figures.response_time_series(
                case_by_name("a"), [0.3, 0.6, 0.9], 0.5, "long"
            )
        assert not any(
            isinstance(w.message, ContractViolationWarning) for w in caught
        )


class TestContractViolationError:
    def test_context_round_trip(self):
        result = ContractResult(
            name="demo",
            passed=False,
            observed=2.0,
            expected=1.0,
            tolerance=0.1,
            detail="synthetic",
        )
        error = result.as_violation()
        assert error.contract == "demo"
        assert error.expected == 1.0
        assert error.tolerance == 0.1
        assert "synthetic" in str(error)

    def test_as_dict_is_jsonable(self):
        import json

        result = ContractResult(
            name="demo", passed=True, observed=1.0, expected=1.0, tolerance=0.0
        )
        assert json.loads(json.dumps(result.as_dict()))["name"] == "demo"


class TestSimulationContracts:
    def test_pass_on_real_run(self, moderate_params):
        from repro.simulation import simulate

        result = simulate(
            "cs-cq",
            moderate_params,
            seed=7,
            warmup_jobs=500,
            measured_jobs=4_000,
        )
        results = evaluate("simulation", result, params=moderate_params)
        assert results and all(r.passed for r in results)
        assert {r.name for r in results} >= {
            "sim-response-decomposition-short",
            "sim-summary-sane",
        }

    def test_decomposition_catches_shifted_waiting(self, moderate_params):
        from repro.simulation import simulate

        result = simulate(
            "cs-cq",
            moderate_params,
            seed=7,
            warmup_jobs=500,
            measured_jobs=4_000,
        )
        # A summary whose waiting time was mis-measured by 50% of E[X]
        # breaks response = waiting + service.
        import dataclasses

        broken = dataclasses.replace(
            result,
            mean_waiting_short=result.mean_waiting_short + 0.5,
        )
        results = evaluate("simulation", broken, params=moderate_params)
        failed = {r.name for r in results if not r.passed}
        assert "sim-response-decomposition-short" in failed
