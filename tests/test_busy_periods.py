"""Tests for busy-period moments (paper Section 2.3).

Every closed form is cross-checked against numerical differentiation of
the Laplace transform it came from, and against textbook formulas.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.busy_periods import (
    DelayBusyPeriod,
    MG1BusyPeriod,
    NPlusOneBusyPeriod,
    delay_busy_period_moments,
    mg1_busy_period_moments,
    moments_from_laplace,
    poisson_during_exponential_factorial_moments,
    poisson_during_ph_factorial_moments,
    random_sum_moments,
)
from repro.distributions import Exponential, coxian_from_mean_scv


class TestMg1BusyPeriod:
    def test_mean_textbook(self):
        bp = MG1BusyPeriod(0.5, Exponential(1.0))
        assert bp.mean == pytest.approx(1.0 / 0.5)  # E[X]/(1-rho) = 1/0.5

    def test_mm1_busy_period_second_moment(self):
        # M/M/1: E[B^2] = 2/(mu^2 (1-rho)^3).
        lam, mu = 0.6, 1.0
        bp = MG1BusyPeriod(lam, Exponential(mu))
        assert bp.moments()[1] == pytest.approx(2.0 / (mu**2 * (1 - lam / mu) ** 3))

    def test_moments_vs_numeric_transform(self):
        bp = MG1BusyPeriod(0.5, Exponential(1.0))
        numeric = moments_from_laplace(bp.laplace, 3, scale=bp.mean, rel_step=1e-3)
        closed = bp.moments()
        for got, want in zip(numeric, closed):
            assert got == pytest.approx(want, rel=1e-5)

    def test_moments_vs_numeric_high_variability(self):
        service = coxian_from_mean_scv(1.0, 8.0)
        bp = MG1BusyPeriod(0.4, service)
        # Step chosen inside the transform's analyticity radius.
        numeric = moments_from_laplace(bp.laplace, 3, scale=0.05, rel_step=1e-3)
        closed = bp.moments()
        for got, want in zip(numeric, closed):
            assert got == pytest.approx(want, rel=1e-4)

    def test_zero_arrival_rate_is_service(self):
        service = Exponential(2.0)
        bp = MG1BusyPeriod(0.0, service)
        assert bp.moments() == pytest.approx(service.moments(3))

    def test_transform_functional_equation(self):
        bp = MG1BusyPeriod(0.5, Exponential(1.0))
        s = 0.7
        b = bp.laplace(s)
        rhs = complex(
            bp.service.laplace(s + bp.lam - bp.lam * b)
        ).real
        assert b == pytest.approx(rhs, abs=1e-10)

    def test_mm1_busy_transform_closed_form(self):
        # M/M/1 busy period transform has a quadratic closed form.
        lam, mu = 0.5, 1.0
        bp = MG1BusyPeriod(lam, Exponential(mu))
        s = 1.3
        closed = (
            (lam + mu + s) - ((lam + mu + s) ** 2 - 4 * lam * mu) ** 0.5
        ) / (2 * lam)
        assert bp.laplace(s) == pytest.approx(closed, rel=1e-10)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            MG1BusyPeriod(1.0, Exponential(1.0))

    @given(lam=st.floats(0.05, 0.9), mu=st.floats(0.95, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_property_moments_feasible(self, lam, mu):
        if lam / mu >= 0.95:
            return
        m1, m2, m3 = MG1BusyPeriod(lam, Exponential(mu)).moments()
        assert m1 > 0
        assert m2 >= m1 * m1  # Jensen
        assert m3 * m1 >= m2 * m2 * (1 - 1e-9)  # Cauchy-Schwarz


class TestDelayBusyPeriod:
    def test_single_job_reduces_to_mg1(self):
        service = Exponential(1.0)
        delay = DelayBusyPeriod(service.moments(3), 0.5, service,
                                initial_work_laplace=service.laplace)
        single = MG1BusyPeriod(0.5, service)
        assert delay.moments() == pytest.approx(single.moments())
        assert delay.laplace(0.8) == pytest.approx(single.laplace(0.8), rel=1e-9)

    def test_mean_is_work_over_one_minus_rho(self):
        service = Exponential(2.0)
        work = (3.0, 11.0, 50.0)
        delay = DelayBusyPeriod(work, 0.8, service)
        assert delay.mean == pytest.approx(3.0 / (1 - 0.8 * 0.5))

    def test_no_arrivals_is_the_work_itself(self):
        work = (2.0, 5.0, 15.0)
        delay = DelayBusyPeriod(work, 0.0, Exponential(1.0))
        assert delay.moments() == pytest.approx(work)

    def test_moments_vs_numeric(self):
        service = Exponential(1.0)
        work_dist = coxian_from_mean_scv(2.0, 3.0)
        delay = DelayBusyPeriod(
            work_dist.moments(3), 0.4, service,
            initial_work_laplace=lambda s: complex(work_dist.laplace(s)).real,
        )
        numeric = moments_from_laplace(delay.laplace, 3, scale=0.3, rel_step=1e-3)
        for got, want in zip(numeric, delay.moments()):
            assert got == pytest.approx(want, rel=1e-4)


class TestNPlusOne:
    def test_moments_vs_numeric(self):
        bn = NPlusOneBusyPeriod(0.5, Exponential(1.0), freeing_rate=2.0)
        numeric = moments_from_laplace(bn.laplace, 3, scale=bn.mean, rel_step=1e-3)
        for got, want in zip(numeric, bn.moments()):
            assert got == pytest.approx(want, rel=1e-5)

    def test_initial_work_mean(self):
        # E[W] = E[X_L] (1 + lam_l / freeing_rate).
        lam_l, nu = 0.5, 2.0
        bn = NPlusOneBusyPeriod(lam_l, Exponential(1.0), freeing_rate=nu)
        assert bn.initial_work_moments()[0] == pytest.approx(1.0 * (1 + lam_l / nu))

    def test_mean_via_delay_formula(self):
        lam_l, nu = 0.5, 2.0
        bn = NPlusOneBusyPeriod(lam_l, Exponential(1.0), freeing_rate=nu)
        expected = (1 + lam_l / nu) / (1 - lam_l)
        assert bn.mean == pytest.approx(expected)

    def test_no_long_arrivals(self):
        service = Exponential(1.0)
        bn = NPlusOneBusyPeriod(0.0, service, freeing_rate=2.0)
        assert bn.moments() == pytest.approx(service.moments(3))

    def test_coxian_longs(self):
        service = coxian_from_mean_scv(10.0, 8.0)
        bn = NPlusOneBusyPeriod(0.05, service, freeing_rate=2.0)
        numeric = moments_from_laplace(bn.laplace, 2, scale=0.002, rel_step=1e-2)
        closed = bn.moments()
        assert numeric[0] == pytest.approx(closed[0], rel=1e-4)
        assert numeric[1] == pytest.approx(closed[1], rel=1e-3)

    def test_phase_type_stand_in_matches(self):
        bn = NPlusOneBusyPeriod(0.5, Exponential(1.0), freeing_rate=2.0)
        ph = bn.as_phase_type()
        for k, want in enumerate(bn.moments(), start=1):
            assert ph.moment(k) == pytest.approx(want, rel=1e-8)

    def test_invalid_freeing_rate(self):
        with pytest.raises(ValueError):
            NPlusOneBusyPeriod(0.5, Exponential(1.0), freeing_rate=0.0)


class TestMomentAlgebraPieces:
    def test_poisson_during_exponential(self):
        f1, f2, f3 = poisson_during_exponential_factorial_moments(2.0, 4.0)
        # N is geometric on {0,1,...} with success prob nu/(nu+lam) = 2/3:
        # E[N] = lam/nu = 1/2, E[N(N-1)] = 2 (lam/nu)^2, etc.
        assert f1 == pytest.approx(0.5)
        assert f2 == pytest.approx(0.5)
        assert f3 == pytest.approx(0.75)

    def test_poisson_during_general_interval_matches_exponential(self):
        lam, nu = 2.0, 4.0
        exp_moms = Exponential(nu).moments(3)
        via_general = poisson_during_ph_factorial_moments(lam, exp_moms)
        via_special = poisson_during_exponential_factorial_moments(lam, nu)
        assert via_general == pytest.approx(via_special)

    def test_random_sum_poisson_is_compound_poisson(self):
        # For N ~ Poisson(c): factorial moments are c, c^2, c^3, and the
        # compound Poisson variance is c E[X^2].
        c = 3.0
        x = Exponential(2.0).moments(3)
        s1, s2, s3 = random_sum_moments((c, c * c, c**3), x)
        assert s1 == pytest.approx(c * x[0])
        assert s2 - s1 * s1 == pytest.approx(c * x[1])  # Var = c E[X^2]

    def test_delay_closed_form_consistency(self):
        # delay(single job) == mg1 closed forms.
        lam = 0.5
        x = Exponential(1.0).moments(3)
        assert delay_busy_period_moments(x, lam, x) == pytest.approx(
            mg1_busy_period_moments(lam, x)
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mg1_busy_period_moments(1.5, Exponential(1.0).moments(3))
