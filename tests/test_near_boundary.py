"""Near-boundary regression tests: no silent wrong answers as rho_s -> 2 - rho_l.

The contract under test (ISSUE 1): sweeping ``rho_s`` up to
``0.999 * (2 - rho_l)``, every CS-CQ point must either

* produce a finite positive mean with a small solver residual (checked via
  the attached :class:`SolverDiagnostics`), or
* raise a typed :class:`ReproError`, or
* degrade to the truncated finite-level solver with a
  :class:`NearBoundaryWarning` attached —

never return garbage silently.
"""

import warnings

import numpy as np
import pytest

from repro.core import CsCqAnalysis, CsIdAnalysis, DedicatedAnalysis, SystemParameters
from repro.experiments import figure6_panels
from repro.workloads import EXPONENTIAL_CASES
from repro.markov import qbd
from repro.robustness import (
    ConvergenceError,
    NearBoundaryWarning,
    ReproError,
)

#: Residual bound for "the solver says this number is trustworthy".
RESIDUAL_BOUND = 1e-7


def _assert_trustworthy_or_typed(params: SystemParameters) -> None:
    """The core invariant: finite + verified, degraded + warned, or typed."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            analysis = CsCqAnalysis(params)
            mean = analysis.mean_response_time_short()
        except ReproError:
            return  # a typed failure is an acceptable outcome
    assert np.isfinite(mean) and mean > 0.0
    if analysis.degraded:
        assert any(
            issubclass(w.category, NearBoundaryWarning) for w in caught
        ), "degraded result must carry a NearBoundaryWarning"
    else:
        diag = analysis.solver_diagnostics
        scale = max(1.0, 2.0 * params.mu_s + params.lam_s + params.lam_l)
        assert diag.residual is not None and diag.residual < RESIDUAL_BOUND * scale
        assert diag.spectral_radius is not None and diag.spectral_radius < 1.0


class TestNearBoundarySweepExponential:
    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_exponential_longs(self, rho_l, fraction):
        rho_s = fraction * (2.0 - rho_l)
        _assert_trustworthy_or_typed(SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l))

    @pytest.mark.slow
    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.995, 0.999])
    def test_exponential_longs_extreme(self, rho_l, fraction):
        rho_s = fraction * (2.0 - rho_l)
        _assert_trustworthy_or_typed(SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l))


class TestNearBoundarySweepCoxian:
    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_coxian_longs(self, rho_l, fraction):
        rho_s = fraction * (2.0 - rho_l)
        params = SystemParameters.from_loads(
            rho_s=rho_s, rho_l=rho_l, mean_long=10.0, long_scv=8.0
        )
        _assert_trustworthy_or_typed(params)

    @pytest.mark.slow
    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    def test_coxian_longs_extreme(self, rho_l):
        rho_s = 0.999 * (2.0 - rho_l)
        params = SystemParameters.from_loads(
            rho_s=rho_s, rho_l=rho_l, mean_long=10.0, long_scv=8.0
        )
        _assert_trustworthy_or_typed(params)


def _assert_policy_trustworthy_or_typed(factory) -> None:
    """Same invariant for the non-CS-CQ policies: a point either raises a
    typed :class:`ReproError` (e.g. ``UnstableSystemError`` past the
    policy's own frontier) or yields finite positive means — and when the
    analysis carries solver diagnostics they must vouch for the digits
    (``trusted``/``suspect`` with a nonnegative error bound).  A raw
    ``numpy.linalg.LinAlgError`` escaping is a failure of this test.
    """
    try:
        analysis = factory()
        mean_s = analysis.mean_response_time_short()
        mean_l = analysis.mean_response_time_long()
    except ReproError:
        return  # a typed failure is an acceptable outcome
    assert np.isfinite(mean_s) and mean_s > 0.0
    assert np.isfinite(mean_l) and mean_l > 0.0
    diag = getattr(analysis, "solver_diagnostics", None)
    if diag is not None:
        assert diag.trust in ("trusted", "suspect"), diag.trust
        assert diag.error_bound is not None
        assert np.isfinite(diag.error_bound) and diag.error_bound >= 0.0


class TestNearBoundarySweepCsId:
    """CS-ID at the same rho ladder as CS-CQ.

    Most of the CS-CQ ladder (``rho_s = fraction * (2 - rho_l)``) sits past
    CS-ID's own short-host frontier, so those points must raise the typed
    ``UnstableSystemError``; the points CS-ID can carry must come back with
    trustworthy diagnostics.  The ``fraction-of-1`` ladder then probes
    CS-ID just inside its own frontier.
    """

    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_cs_cq_ladder(self, rho_l, fraction):
        rho_s = fraction * (2.0 - rho_l)
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        _assert_policy_trustworthy_or_typed(lambda: CsIdAnalysis(params))

    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_own_frontier_ladder(self, rho_l, fraction):
        params = SystemParameters.from_loads(rho_s=fraction, rho_l=rho_l)
        _assert_policy_trustworthy_or_typed(lambda: CsIdAnalysis(params))


class TestNearBoundarySweepDedicated:
    """Dedicated at the same rho ladder as CS-CQ.

    Dedicated is closed-form (two independent M/G/1s): every ladder point
    past ``rho_s = 1`` must raise the typed ``UnstableSystemError`` at
    construction, and every stable point must return finite positive
    Pollaczek-Khinchine means — no linear algebra to leak an untyped error.
    """

    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_cs_cq_ladder(self, rho_l, fraction):
        rho_s = fraction * (2.0 - rho_l)
        params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        _assert_policy_trustworthy_or_typed(lambda: DedicatedAnalysis(params))

    @pytest.mark.parametrize("rho_l", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("fraction", [0.9, 0.99])
    def test_own_frontier_ladder(self, rho_l, fraction):
        params = SystemParameters.from_loads(rho_s=fraction, rho_l=rho_l)
        _assert_policy_trustworthy_or_typed(lambda: DedicatedAnalysis(params))


class TestGracefulDegradation:
    """Force the exact solve to fail and verify the truncated fallback."""

    def _broken_solve(self, monkeypatch):
        def boom(self):
            raise ConvergenceError("forced failure for testing", residual=1.0)

        monkeypatch.setattr(qbd.QbdProcess, "solve", boom)

    def test_fallback_engages_near_boundary(self, monkeypatch):
        self._broken_solve(monkeypatch)
        params = SystemParameters.from_loads(rho_s=0.999 * 1.5, rho_l=0.5)
        with pytest.warns(NearBoundaryWarning):
            analysis = CsCqAnalysis(params)
            mean_short = analysis.mean_response_time_short()
        assert analysis.degraded
        assert np.isfinite(mean_short) and mean_short > 0.0
        assert np.isfinite(analysis.mean_response_time_long())
        diag = analysis.solver_diagnostics
        assert diag.method == "truncated-fallback"
        assert diag.degraded
        assert any("truncation mass" in note for note in diag.notes)

    def test_no_fallback_far_from_boundary(self, monkeypatch):
        self._broken_solve(monkeypatch)
        params = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        analysis = CsCqAnalysis(params)
        with pytest.raises(ConvergenceError):
            analysis.mean_response_time_short()

    def test_no_fallback_for_coxian_longs(self, monkeypatch):
        # The truncated chain needs exponential sizes; Coxian longs must
        # surface the typed error instead of degrading.
        self._broken_solve(monkeypatch)
        params = SystemParameters.from_loads(
            rho_s=0.999 * 1.5, rho_l=0.5, mean_long=10.0, long_scv=8.0
        )
        analysis = CsCqAnalysis(params)
        with pytest.raises(ConvergenceError):
            analysis.mean_response_time_short()

    def test_fallback_disabled_by_flag(self, monkeypatch):
        self._broken_solve(monkeypatch)
        params = SystemParameters.from_loads(rho_s=0.999 * 1.5, rho_l=0.5)
        analysis = CsCqAnalysis(params, degrade_near_boundary=False)
        with pytest.raises(ConvergenceError):
            analysis.mean_response_time_short()

    def test_solution_property_reraises_when_degraded(self, monkeypatch):
        self._broken_solve(monkeypatch)
        params = SystemParameters.from_loads(rho_s=0.999 * 1.5, rho_l=0.5)
        with pytest.warns(NearBoundaryWarning):
            analysis = CsCqAnalysis(params)
            analysis.mean_response_time_short()
        with pytest.raises(ConvergenceError):
            _ = analysis.solution


class TestFigureSweepCompletes:
    """Figure-6-style sweeps must complete end-to-end, crash-free."""

    def test_figure6_point_very_near_boundary(self):
        # rho_s = 1.5 fixed, rho_l swept up to 0.999 * (2 - rho_s): the
        # last point sits at 0.999 of the boundary in the rho_l direction.
        rho_s = 1.5
        boundary = 2.0 - rho_s
        rho_l_values = [0.25, 0.45, 0.999 * boundary]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NearBoundaryWarning)
            panels = figure6_panels(
                rho_s=rho_s,
                rho_l_values_short=rho_l_values,
                rho_l_values_long=[0.25, 0.5, 0.75],
                cases=EXPONENTIAL_CASES[:1],
            )
        assert panels  # completed end-to-end without raising
        shorts_panel = panels[0]
        cs_cq = shorts_panel.by_label("CS-Central-Q")
        # Stable interior points must be finite; the extreme point may be
        # finite (exact or degraded) or NaN (typed failure recorded) — but
        # the sweep itself never crashes.
        assert np.isfinite(cs_cq.y[:2]).all()

    @pytest.mark.slow
    def test_figure6_sweep_with_forced_failures(self, monkeypatch):
        # Even when the exact QBD solve is broken outright, the sweep
        # completes: near-boundary points degrade to the truncated solver,
        # interior points surface as NaN via the warning path.
        def boom(self):
            raise ConvergenceError("forced failure for testing", residual=1.0)

        monkeypatch.setattr(qbd.QbdProcess, "solve", boom)
        rho_s = 1.5
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NearBoundaryWarning)
            panels = figure6_panels(
                rho_s=rho_s,
                rho_l_values_short=[0.25, 0.999 * (2.0 - rho_s)],
                rho_l_values_long=[0.5],
                cases=EXPONENTIAL_CASES[:1],
            )
        shorts_panel = panels[0]
        cs_cq = shorts_panel.by_label("CS-Central-Q")
        assert np.isnan(cs_cq.y[0])  # interior: typed failure -> NaN
        assert np.isfinite(cs_cq.y[1])  # near boundary: truncated fallback
