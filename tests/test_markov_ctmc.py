"""Tests for the finite CTMC solver."""

import numpy as np
import pytest

from repro.markov import Ctmc, build_generator


class TestBuildGenerator:
    def test_fills_diagonal(self):
        q = build_generator([[0.0, 2.0], [3.0, 0.0]])
        assert q[0, 0] == -2.0 and q[1, 1] == -3.0
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_overwrites_existing_diagonal(self):
        q = build_generator([[99.0, 2.0], [3.0, -5.0]])
        assert q[0, 0] == -2.0

    def test_rejects_negative_offdiagonal(self):
        with pytest.raises(ValueError):
            build_generator([[0.0, -1.0], [1.0, 0.0]])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            build_generator([[0.0, 1.0, 2.0], [1.0, 0.0, 2.0]])


class TestCtmc:
    def test_two_state_birth_death(self):
        # pi0 * a = pi1 * b.
        a, b = 2.0, 3.0
        chain = Ctmc([[0.0, a], [b, 0.0]], is_rate_matrix=True)
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(b / (a + b))
        assert pi[1] == pytest.approx(a / (a + b))

    def test_mm1_truncated(self):
        lam, mu, n = 0.5, 1.0, 60
        rates = np.zeros((n, n))
        for i in range(n - 1):
            rates[i, i + 1] = lam
            rates[i + 1, i] = mu
        pi = Ctmc(rates, is_rate_matrix=True).stationary_distribution()
        rho = lam / mu
        for i in (0, 1, 5):
            assert pi[i] == pytest.approx((1 - rho) * rho**i, rel=1e-9)

    def test_sparse_path_matches_dense(self):
        rng = np.random.default_rng(5)
        n = 40
        rates = rng.random((n, n)) * 0.5
        dense_pi = Ctmc(rates, is_rate_matrix=True).stationary_distribution()
        # Embed in a larger reachable chain to exercise the sparse branch.
        big = np.zeros((600, 600))
        big[:n, :n] = rates
        for i in range(599):
            big[i, i + 1] = max(big[i, i + 1], 1e-3)
            big[i + 1, i] = max(big[i + 1, i], 10.0)
        pi_sparse = Ctmc(big, is_rate_matrix=True).stationary_distribution()
        assert pi_sparse[:n].sum() == pytest.approx(1.0, abs=1e-4)

    def test_expected_value(self):
        chain = Ctmc([[0.0, 1.0], [1.0, 0.0]], is_rate_matrix=True)
        assert chain.expected_value([0.0, 10.0]) == pytest.approx(5.0)

    def test_expected_value_shape_check(self):
        chain = Ctmc([[0.0, 1.0], [1.0, 0.0]], is_rate_matrix=True)
        with pytest.raises(ValueError):
            chain.expected_value([1.0, 2.0, 3.0])

    def test_rejects_bad_generator(self):
        with pytest.raises(ValueError):
            Ctmc([[1.0, 1.0], [1.0, 1.0]])  # rows don't sum to zero
