"""Tests for the Dedicated baseline."""

import pytest

from repro.core import DedicatedAnalysis, SystemParameters, UnstableSystemError
from repro.queueing import Mm1Queue


class TestDedicated:
    def test_matches_two_mm1s(self):
        p = SystemParameters.from_loads(rho_s=0.6, rho_l=0.4)
        a = DedicatedAnalysis(p)
        assert a.mean_response_time_short() == pytest.approx(
            Mm1Queue(0.6, 1.0).mean_response_time()
        )
        assert a.mean_response_time_long() == pytest.approx(
            Mm1Queue(0.4, 1.0).mean_response_time()
        )

    def test_littles_law(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.7)
        a = DedicatedAnalysis(p)
        assert a.mean_number_short() == pytest.approx(0.5 * a.mean_response_time_short())
        assert a.mean_number_long() == pytest.approx(0.7 * a.mean_response_time_long())

    def test_long_response_independent_of_shorts(self):
        base = DedicatedAnalysis(SystemParameters.from_loads(rho_s=0.1, rho_l=0.5))
        loaded = DedicatedAnalysis(SystemParameters.from_loads(rho_s=0.9, rho_l=0.5))
        assert base.mean_response_time_long() == pytest.approx(
            loaded.mean_response_time_long()
        )

    def test_unstable_short_rejected(self):
        with pytest.raises(UnstableSystemError):
            DedicatedAnalysis(SystemParameters.from_loads(rho_s=1.0, rho_l=0.5))

    def test_unstable_long_rejected(self):
        with pytest.raises(UnstableSystemError):
            DedicatedAnalysis(SystemParameters.from_loads(rho_s=0.5, rho_l=1.0))

    def test_high_variability_longs_hurt_longs_only(self):
        exp = DedicatedAnalysis(SystemParameters.from_loads(rho_s=0.5, rho_l=0.5))
        cox = DedicatedAnalysis(
            SystemParameters.from_loads(rho_s=0.5, rho_l=0.5, long_scv=8.0)
        )
        assert cox.mean_response_time_long() > exp.mean_response_time_long()
        assert cox.mean_response_time_short() == pytest.approx(
            exp.mean_response_time_short()
        )
