"""Tests for three-moment phase-type fitting (the paper's key approximation)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Coxian,
    Erlang,
    Exponential,
    FittingError,
    Hyperexponential,
    coxian2,
    coxian_from_mean_scv,
    fit_coxian2,
    fit_mixed_erlang,
    fit_phase_type,
)


class TestFitCoxian2:
    def test_round_trip_from_coxian(self):
        target = coxian2(2.0, 0.4, 0.35)
        fitted = fit_coxian2(*target.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(target.moment(k), rel=1e-9)

    def test_round_trip_from_hyperexponential(self):
        target = Hyperexponential.balanced_means(1.0, 8.0)
        fitted = fit_coxian2(*target.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(target.moment(k), rel=1e-9)

    def test_exponential_special_case(self):
        e = Exponential(2.0)
        fitted = fit_coxian2(*e.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(e.moment(k), rel=1e-9)

    def test_low_variability_rejected(self):
        # Erlang-4 moments are outside the Coxian-2 region.
        with pytest.raises(FittingError):
            fit_coxian2(*Erlang(4, 4.0).moments(3))

    def test_infeasible_moments_rejected(self):
        with pytest.raises(ValueError):
            fit_coxian2(1.0, 0.5, 1.0)  # m2 < m1^2


class TestFitMixedErlang:
    def test_fits_erlang_moments(self):
        target = Erlang(4, 4.0)
        fitted = fit_mixed_erlang(*target.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(target.moment(k), rel=1e-8)

    def test_fits_hyperexponential_with_k1(self):
        target = Hyperexponential([0.2, 0.8], [0.25, 2.0])
        fitted = fit_mixed_erlang(*target.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(target.moment(k), rel=1e-8)

    def test_near_deterministic_fails_gracefully(self):
        with pytest.raises(FittingError):
            fit_mixed_erlang(1.0, 1.0001, 1.001, max_order=16)


class TestFitPhaseType:
    @pytest.mark.parametrize(
        "target",
        [
            Exponential(0.7),
            coxian2(1.5, 0.2, 0.6),
            Hyperexponential.balanced_means(3.0, 20.0),
            Erlang(3, 1.0),
            Erlang(8, 2.0),
        ],
        ids=["exp", "coxian2", "h2-c20", "erlang3", "erlang8"],
    )
    def test_matches_three_moments(self, target):
        fitted = fit_phase_type(*target.moments(3))
        for k in (1, 2, 3):
            assert fitted.moment(k) == pytest.approx(target.moment(k), rel=1e-7)

    @given(
        mean=st.floats(0.1, 50.0),
        scv=st.floats(0.6, 30.0),
        skew_factor=st.floats(1.05, 5.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_round_trip(self, mean, scv, skew_factor):
        """Any feasible (m1, m2, m3) triple is matched exactly."""
        m1 = mean
        m2 = (1.0 + scv) * m1 * m1
        m3 = skew_factor * m2 * m2 / m1  # above the Cauchy-Schwarz floor
        try:
            fitted = fit_phase_type(m1, m2, m3)
        except FittingError:
            return  # outside both families' regions: acceptable, just rare
        assert fitted.moment(1) == pytest.approx(m1, rel=1e-6)
        assert fitted.moment(2) == pytest.approx(m2, rel=1e-6)
        assert fitted.moment(3) == pytest.approx(m3, rel=1e-5)


class TestCoxianFromMeanScv:
    def test_high_variability(self):
        c = coxian_from_mean_scv(1.0, 8.0)
        assert c.mean == pytest.approx(1.0)
        assert c.scv == pytest.approx(8.0)

    def test_unit_scv_is_exponential(self):
        c = coxian_from_mean_scv(2.0, 1.0)
        assert isinstance(c, Exponential)

    def test_moderate_low_variability_coxian(self):
        c = coxian_from_mean_scv(1.0, 0.6)
        assert isinstance(c, Coxian)
        assert c.mean == pytest.approx(1.0)
        assert c.scv == pytest.approx(0.6)

    def test_very_low_variability_falls_back(self):
        c = coxian_from_mean_scv(1.0, 0.2)
        assert c.mean == pytest.approx(1.0)
        assert c.scv == pytest.approx(0.2, rel=1e-6)

    def test_paper_figure5_distribution(self):
        """Figure 5's longs: 'Coxian with appropriate mean and C^2 = 8'."""
        for mean in (1.0, 10.0):
            c = coxian_from_mean_scv(mean, 8.0)
            assert c.mean == pytest.approx(mean)
            assert c.scv == pytest.approx(8.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            coxian_from_mean_scv(-1.0, 2.0)
        with pytest.raises(ValueError):
            coxian_from_mean_scv(1.0, 0.0)
