"""Property-based tests across the whole analytic stack (hypothesis)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    cs_id_is_stable,
)


@st.composite
def stable_loads(draw):
    """(rho_s, rho_l) inside every policy's stability region."""
    rho_l = draw(st.floats(0.05, 0.85))
    rho_s = draw(st.floats(0.05, 0.9))
    return rho_s, rho_l


class TestPolicyDominance:
    @given(loads=stable_loads())
    @settings(max_examples=25, deadline=None)
    def test_conclusion_ordering_everywhere(self, loads):
        """'CS-CQ is always superior to CS-ID, and both are far better than
        Dedicated' — as a property over the common stability region."""
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        dedicated = DedicatedAnalysis(p)
        cs_id = CsIdAnalysis(p)
        cs_cq = CsCqAnalysis(p)
        assert (
            cs_cq.mean_response_time_short()
            <= cs_id.mean_response_time_short()
            <= dedicated.mean_response_time_short() + 1e-9
        )
        # Longs: cycle stealing penalizes, CS-ID more than CS-CQ.
        assert (
            dedicated.mean_response_time_long() - 1e-9
            <= cs_cq.mean_response_time_long()
            <= cs_id.mean_response_time_long() + 1e-9
        )

    @given(loads=stable_loads())
    @settings(max_examples=20, deadline=None)
    def test_littles_law_property(self, loads):
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        analysis = CsCqAnalysis(p)
        assert analysis.mean_number_short() == pytest.approx(
            p.lam_s * analysis.mean_response_time_short(), rel=1e-9
        )

    @given(loads=stable_loads())
    @settings(max_examples=20, deadline=None)
    def test_region_probabilities_form_distribution_fragment(self, loads):
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        regions = CsCqAnalysis(p).region_probabilities()
        assert 0.0 < regions.region1 < 1.0
        assert 0.0 <= regions.region2 < 1.0
        assert regions.region1 + regions.region2 < 1.0 + 1e-9

    @given(
        rho_l=st.floats(0.0, 0.9),
        margin=st.floats(0.01, 0.3),
    )
    @settings(max_examples=30, deadline=None)
    def test_cs_id_stability_boundary_property(self, rho_l, margin):
        """Just inside the closed-form boundary is stable; outside is not."""
        from repro.core import cs_id_max_rho_s

        boundary = cs_id_max_rho_s(rho_l)
        assert cs_id_is_stable(boundary * (1 - margin), rho_l)
        assert not cs_id_is_stable(boundary * (1 + margin), rho_l)

    @given(rho_s=st.floats(0.1, 1.3))
    @settings(max_examples=15, deadline=None)
    def test_response_monotone_in_rho_l(self, rho_s):
        """More long load -> fewer idle cycles -> shorts wait longer."""
        values = []
        for rho_l in (0.1, 0.4):
            assume(rho_s < 2.0 - rho_l - 0.05)
            p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
            values.append(CsCqAnalysis(p).mean_response_time_short())
        if len(values) == 2:
            assert values[0] <= values[1] + 1e-9
