"""Property-based tests across the whole analytic stack (hypothesis)."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
    cs_id_is_stable,
)
from repro.robustness import ReproError


@st.composite
def stable_loads(draw):
    """(rho_s, rho_l) inside every policy's stability region."""
    rho_l = draw(st.floats(0.05, 0.85))
    rho_s = draw(st.floats(0.05, 0.9))
    return rho_s, rho_l


class TestPolicyDominance:
    @given(loads=stable_loads())
    @settings(max_examples=25, deadline=None)
    def test_conclusion_ordering_everywhere(self, loads):
        """'CS-CQ is always superior to CS-ID, and both are far better than
        Dedicated' — as a property over the common stability region."""
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        dedicated = DedicatedAnalysis(p)
        cs_id = CsIdAnalysis(p)
        cs_cq = CsCqAnalysis(p)
        assert (
            cs_cq.mean_response_time_short()
            <= cs_id.mean_response_time_short()
            <= dedicated.mean_response_time_short() + 1e-9
        )
        # Longs: cycle stealing penalizes, CS-ID more than CS-CQ.
        assert (
            dedicated.mean_response_time_long() - 1e-9
            <= cs_cq.mean_response_time_long()
            <= cs_id.mean_response_time_long() + 1e-9
        )

    @given(loads=stable_loads())
    @settings(max_examples=20, deadline=None)
    def test_littles_law_property(self, loads):
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        analysis = CsCqAnalysis(p)
        assert analysis.mean_number_short() == pytest.approx(
            p.lam_s * analysis.mean_response_time_short(), rel=1e-9
        )

    @given(loads=stable_loads())
    @settings(max_examples=20, deadline=None)
    def test_region_probabilities_form_distribution_fragment(self, loads):
        rho_s, rho_l = loads
        p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        regions = CsCqAnalysis(p).region_probabilities()
        assert 0.0 < regions.region1 < 1.0
        assert 0.0 <= regions.region2 < 1.0
        assert regions.region1 + regions.region2 < 1.0 + 1e-9

    @given(
        rho_l=st.floats(0.0, 0.9),
        margin=st.floats(0.01, 0.3),
    )
    @settings(max_examples=30, deadline=None)
    def test_cs_id_stability_boundary_property(self, rho_l, margin):
        """Just inside the closed-form boundary is stable; outside is not."""
        from repro.core import cs_id_max_rho_s

        boundary = cs_id_max_rho_s(rho_l)
        assert cs_id_is_stable(boundary * (1 - margin), rho_l)
        assert not cs_id_is_stable(boundary * (1 + margin), rho_l)

    @given(rho_s=st.floats(0.1, 1.3))
    @settings(max_examples=15, deadline=None)
    def test_response_monotone_in_rho_l(self, rho_s):
        """More long load -> fewer idle cycles -> shorts wait longer."""
        values = []
        for rho_l in (0.1, 0.4):
            assume(rho_s < 2.0 - rho_l - 0.05)
            p = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
            values.append(CsCqAnalysis(p).mean_response_time_short())
        if len(values) == 2:
            assert values[0] <= values[1] + 1e-9


#: Every float pathology we want shoved through the guards: NaN, both
#: infinities, negatives, zero, denormals, and huge-but-finite values.
_ADVERSARIAL_FLOATS = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True),
    st.sampled_from(
        [
            float("nan"),
            float("inf"),
            float("-inf"),
            -1.0,
            0.0,
            5e-324,
            -5e-324,
            1e308,
            -1e308,
        ]
    ),
)


class TestAdversarialInputs:
    """Garbage in -> typed errors out: never AssertionError, never
    ZeroDivisionError, never a silent NaN-laden object."""

    @given(rho_s=_ADVERSARIAL_FLOATS, rho_l=_ADVERSARIAL_FLOATS)
    @settings(max_examples=80, deadline=None)
    def test_from_loads_rejects_or_builds(self, rho_s, rho_l):
        try:
            params = SystemParameters.from_loads(rho_s=rho_s, rho_l=rho_l)
        except (ReproError, ValueError):
            return  # typed rejection is the contract
        # If construction succeeded, the object must be internally sane.
        assert math.isfinite(params.lam_s) and params.lam_s >= 0.0
        assert math.isfinite(params.lam_l) and params.lam_l >= 0.0

    @given(
        mean_short=_ADVERSARIAL_FLOATS,
        mean_long=_ADVERSARIAL_FLOATS,
        scv=_ADVERSARIAL_FLOATS,
    )
    @settings(max_examples=80, deadline=None)
    def test_from_loads_size_parameters(self, mean_short, mean_long, scv):
        try:
            SystemParameters.from_loads(
                rho_s=0.5,
                rho_l=0.5,
                mean_short=mean_short,
                mean_long=mean_long,
                long_scv=scv,
            )
        except (ReproError, ValueError):
            pass

    @given(observed=_ADVERSARIAL_FLOATS, expected=_ADVERSARIAL_FLOATS)
    @settings(max_examples=100, deadline=None)
    def test_rel_diff_total_on_floats(self, observed, expected):
        from repro.contracts import rel_diff

        ratio = rel_diff(observed, expected)
        assert ratio >= 0.0  # also excludes NaN: the result is orderable

    @given(mean=_ADVERSARIAL_FLOATS, half_width=_ADVERSARIAL_FLOATS)
    @settings(max_examples=100, deadline=None)
    def test_relative_half_width_never_raises(self, mean, half_width):
        from repro.simulation import ConfidenceInterval

        value = ConfidenceInterval(
            mean=mean, half_width=half_width
        ).relative_half_width
        assert isinstance(value, float)

    @given(
        analytic=_ADVERSARIAL_FLOATS,
        truncated=_ADVERSARIAL_FLOATS,
        sim_mean=_ADVERSARIAL_FLOATS,
        sim_hw=_ADVERSARIAL_FLOATS,
    )
    @settings(max_examples=100, deadline=None)
    def test_classify_values_total_on_floats(
        self, analytic, truncated, sim_mean, sim_hw
    ):
        from repro.contracts import OracleConfig, classify_values
        from repro.simulation import ConfidenceInterval

        ci = ConfidenceInterval(mean=sim_mean, half_width=sim_hw, n=5)
        verdict, reasons = classify_values(
            analytic, truncated, ci, OracleConfig()
        )
        assert verdict in ("agree", "suspect", "inconclusive")
        assert reasons

    @given(
        cq=_ADVERSARIAL_FLOATS, id_=_ADVERSARIAL_FLOATS, ded=_ADVERSARIAL_FLOATS
    )
    @settings(max_examples=100, deadline=None)
    def test_point_contracts_total_on_floats(self, cq, id_, ded):
        from repro.contracts import evaluate

        values = {"CS-Central-Q": cq, "CS-Immed-Disp": id_, "Dedicated": ded}
        for job_class in ("short", "long"):
            for result in evaluate("point", values, job_class=job_class):
                assert isinstance(result.passed, bool)

    @given(ys=st.lists(_ADVERSARIAL_FLOATS, min_size=0, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_monotone_series_total_on_floats(self, ys):
        from repro.contracts import check_monotone_series

        results = check_monotone_series(range(len(ys)), ys, label="fuzz")
        assert results  # always at least the summary result

    @given(x=_ADVERSARIAL_FLOATS)
    @settings(max_examples=60, deadline=None)
    def test_solution_contracts_reject_malformed_subjects(self, x):
        """A subject with garbage fields yields failing results or typed
        errors — evaluate() must never crash on it."""
        from repro.contracts import evaluate

        class Garbage:
            def total_mass(self):
                return x

        results = evaluate(
            "solution", Garbage(), names=["stationary-normalization"]
        )
        assert len(results) == 1
        if not (math.isfinite(x) and abs(x - 1.0) <= 1e-6):
            assert not results[0].passed
