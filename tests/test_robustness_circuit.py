"""CircuitBreaker state machine: trips, cooldowns, probes, key isolation."""

import pytest

from repro.robustness import CircuitBreaker, CircuitOpenError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown=10.0, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")
        breaker.check("k")  # must not raise

    def test_trips_after_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("k")
        assert breaker.state("k") == "closed"
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")
        assert breaker.trip_count() == 1

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure("k")
        breaker.record_failure("k")
        breaker.record_success("k")
        breaker.record_failure("k")
        breaker.record_failure("k")
        assert breaker.state("k") == "closed"

    def test_check_raises_typed_error_with_retry_after(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("k")
        assert info.value.retry_after == pytest.approx(6.0)
        assert info.value.context["failures"] == 3

    def test_cooldown_admits_one_half_open_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance(10.0)
        assert breaker.state("k") == "half-open"
        assert breaker.allow("k")  # the probe
        assert not breaker.allow("k")  # only one probe at a time

    def test_successful_probe_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance(10.0)
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

    def test_failed_probe_reopens_for_another_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("k")
        clock.advance(10.0)
        assert breaker.allow("k")
        breaker.record_failure("k")  # half-open failure trips immediately
        assert breaker.state("k") == "open"
        assert breaker.trip_count() == 2
        assert not breaker.allow("k")
        clock.advance(10.0)
        assert breaker.allow("k")


class TestKeysAndIntrospection:
    def test_keys_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("bad-region")
        assert breaker.state("bad-region") == "open"
        assert breaker.state("good-region") == "closed"
        assert breaker.allow("good-region")

    def test_snapshot_is_json_ready(self, breaker):
        for _ in range(3):
            breaker.record_failure("r1")
        breaker.record_failure("r2")
        snap = breaker.snapshot()
        assert snap["trips"] == 1
        assert snap["failure_threshold"] == 3
        states = {key: entry["state"] for key, entry in snap["keys"].items()}
        assert states == {"'r1'": "open", "'r2'": "closed"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)
