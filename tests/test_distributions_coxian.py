"""Tests for Coxian distributions (the paper's busy-period stand-ins)."""

import numpy as np
import pytest

from repro.distributions import Coxian, Exponential, coxian2


class TestCoxian:
    def test_single_stage_is_exponential(self):
        c = Coxian([2.0])
        e = Exponential(2.0)
        for k in (1, 2, 3):
            assert c.moment(k) == pytest.approx(e.moment(k))

    def test_two_stage_moments_by_hand(self):
        # X = Y1 + B*Y2, B ~ Bernoulli(p): E[X] = 1/mu1 + p/mu2.
        c = coxian2(2.0, 0.5, 0.3)
        assert c.mean == pytest.approx(0.5 + 0.3 * 2.0)
        m2 = 2 * (0.25 + 0.3 * 0.5 * 2.0 + 0.3 * 4.0)
        assert c.moment(2) == pytest.approx(m2)

    def test_zero_continuation_is_first_stage_only(self):
        c = coxian2(3.0, 1.0, 0.0)
        e = Exponential(3.0)
        for k in (1, 2, 3):
            assert c.moment(k) == pytest.approx(e.moment(k))

    def test_full_continuation_is_hypoexponential(self):
        c = coxian2(2.0, 3.0, 1.0)
        assert c.mean == pytest.approx(1 / 2 + 1 / 3)
        # Variance of a sum of independent exponentials.
        assert c.variance == pytest.approx(1 / 4 + 1 / 9)

    def test_laplace_at_zero(self):
        assert coxian2(1.0, 2.0, 0.5).laplace(0.0) == pytest.approx(1.0)

    def test_laplace_closed_form(self):
        mu1, mu2, p = 2.0, 0.5, 0.4
        c = coxian2(mu1, mu2, p)
        s = 1.3
        expected = (mu1 / (mu1 + s)) * ((1 - p) + p * mu2 / (mu2 + s))
        assert complex(c.laplace(s)).real == pytest.approx(expected, rel=1e-12)

    def test_sampling_vectorized_matches_scalar_stats(self, rng):
        c = coxian2(2.0, 0.25, 0.5)
        vec = c.sample(rng, 200_000)
        assert vec.mean() == pytest.approx(c.mean, rel=0.02)
        assert np.mean(vec**2) == pytest.approx(c.moment(2), rel=0.05)

    def test_scalar_sampling(self, rng):
        c = coxian2(2.0, 0.25, 0.5)
        values = [c.sample(rng) for _ in range(20_000)]
        assert np.mean(values) == pytest.approx(c.mean, rel=0.05)

    def test_long_chain_moments_match_phase_type(self):
        c = Coxian([1.0, 2.0, 3.0, 4.0], [0.9, 0.5, 0.2])
        ph = c.as_phase_type()
        for k in (1, 2, 3):
            assert c.moment(k) == pytest.approx(ph.moment(k))

    def test_validation(self):
        with pytest.raises(ValueError):
            Coxian([])
        with pytest.raises(ValueError):
            Coxian([1.0, 2.0], [])  # wrong number of continuation probs
        with pytest.raises(ValueError):
            Coxian([1.0, -2.0], [0.5])
        with pytest.raises(ValueError):
            Coxian([1.0, 2.0], [1.5])
