"""Simulator-vs-exact-formula validation for every policy (Section 4 style)."""

import pytest

from repro.core import (
    CsCqAnalysis,
    CsIdAnalysis,
    DedicatedAnalysis,
    SystemParameters,
)
from repro.queueing import MmcQueue
from repro.simulation import simulate, simulate_replications

JOBS = dict(warmup_jobs=20_000, measured_jobs=250_000)


@pytest.mark.slow
class TestDedicatedSim:
    def test_matches_two_mg1s(self):
        p = SystemParameters.from_loads(rho_s=0.7, rho_l=0.5)
        sim = simulate("dedicated", p, seed=3, **JOBS)
        exact = DedicatedAnalysis(p)
        assert sim.mean_response_short == pytest.approx(
            exact.mean_response_time_short(), rel=0.03
        )
        assert sim.mean_response_long == pytest.approx(
            exact.mean_response_time_long(), rel=0.03
        )


@pytest.mark.slow
class TestMgkSim:
    def test_matches_mm2_for_single_class(self):
        p = SystemParameters.from_loads(rho_s=1.4, rho_l=0.0)
        sim = simulate("mgk", p, seed=4, **JOBS)
        exact = MmcQueue(p.lam_s, 1.0, 2).mean_response_time()
        assert sim.mean_response_short == pytest.approx(exact, rel=0.03)


@pytest.mark.slow
class TestCsCqSim:
    def test_matches_analysis(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        sim = simulate("cs-cq", p, seed=5, **JOBS)
        analysis = CsCqAnalysis(p)
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.03
        )
        assert sim.mean_response_long == pytest.approx(
            analysis.mean_response_time_long(), rel=0.03
        )

    def test_matches_analysis_high_variability(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.5, long_scv=8.0)
        sim = simulate("cs-cq", p, seed=6, **JOBS)
        analysis = CsCqAnalysis(p)
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.05
        )

    def test_idle_fraction_vs_region_probabilities(self):
        """Renamed-host idle fraction == P(zero longs, <= 1 short) from the
        chain (a host is free for a long exactly in region 1)."""
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.4)
        sim = simulate("cs-cq", p, seed=7, **JOBS)
        regions = CsCqAnalysis(p).region_probabilities()
        assert sim.frac_long_host_idle == pytest.approx(regions.region1, rel=0.03)


@pytest.mark.slow
class TestCsIdSim:
    def test_matches_analysis(self):
        p = SystemParameters.from_loads(rho_s=1.0, rho_l=0.5)
        sim = simulate("cs-id", p, seed=8, **JOBS)
        analysis = CsIdAnalysis(p)
        assert sim.mean_response_short == pytest.approx(
            analysis.mean_response_time_short(), rel=0.03
        )
        assert sim.mean_response_long == pytest.approx(
            analysis.mean_response_time_long(), rel=0.03
        )

    def test_idle_fraction_matches_cycle(self):
        p = SystemParameters.from_loads(rho_s=0.9, rho_l=0.4)
        sim = simulate("cs-id", p, seed=9, **JOBS)
        assert sim.frac_long_host_idle == pytest.approx(
            CsIdAnalysis(p).cycle.prob_idle, rel=0.03
        )


@pytest.mark.slow
class TestMg2SjfSim:
    def test_runs_and_favors_shorts(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.6, mean_long=10.0)
        sim = simulate("mg2-sjf", p, seed=10, **JOBS)
        assert sim.mean_response_short < sim.mean_response_long


@pytest.mark.slow
class TestReplications:
    def test_interval_covers_analysis(self):
        p = SystemParameters.from_loads(rho_s=0.8, rho_l=0.5)
        result = simulate_replications(
            "cs-cq", p, n_replications=4, seed=11,
            warmup_jobs=10_000, measured_jobs=80_000,
        )
        analysis = CsCqAnalysis(p).mean_response_time_short()
        # Generous: CI should be near the analysis (within 3 half-widths).
        assert abs(result.response_short.mean - analysis) < 3 * max(
            result.response_short.half_width, 0.01 * analysis
        )

    def test_replication_validation(self):
        p = SystemParameters.from_loads(rho_s=0.5, rho_l=0.5)
        with pytest.raises(ValueError):
            simulate_replications("cs-cq", p, n_replications=0)
