"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.experiments import Panel, Series, format_panel
from repro.experiments.base import render_ascii_chart


def make_panel() -> Panel:
    x = np.linspace(0, 1, 11)
    return Panel(
        title="t",
        xlabel="load",
        ylabel="resp",
        series=(
            Series("flat", x, np.ones(11)),
            Series("rising", x, 1 + 3 * x),
            Series("diverging", x, np.where(x < 0.8, 1 / (1 - np.minimum(x, 0.79)), np.nan)),
        ),
    )


class TestRenderAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = render_ascii_chart(make_panel())
        assert "D=flat" in chart and "A=rising" in chart
        assert "load" in chart
        lines = chart.splitlines()
        assert len(lines) > 15

    def test_nan_points_skipped(self):
        chart = render_ascii_chart(make_panel())
        assert chart  # no exception despite NaNs

    def test_all_nan_series(self):
        x = np.array([0.0, 1.0])
        panel = Panel("t", "x", "y", (Series("dead", x, np.array([np.nan, np.nan])),))
        assert "no finite points" in render_ascii_chart(panel)

    def test_cap_quantile_limits_axis(self):
        panel = make_panel()
        capped = render_ascii_chart(panel, y_cap_quantile=0.5)
        full = render_ascii_chart(panel, y_cap_quantile=1.0)
        top_capped = float(capped.splitlines()[0].split("|")[0])
        top_full = float(full.splitlines()[0].split("|")[0])
        assert top_capped < top_full

    def test_format_panel_chart_flag(self):
        panel = make_panel()
        with_chart = format_panel(panel, chart=True)
        without = format_panel(panel)
        assert "D=flat" in with_chart
        assert "D=flat" not in without
        assert without in with_chart.replace(with_chart.split(without)[-1], "")
